#!/usr/bin/env python3
"""Diff a fresh bench JSON against its committed baseline.

Usage: check_bench.py BASELINE NEW [--band FACTOR]

Two layers of checking:

1. Structure: every key present in the baseline must be present in the
   new run with the same JSON type (objects recurse, arrays compare
   element-wise up to the shorter length). A bench that silently stops
   emitting a metric fails here.

2. Values: numeric leaves must land within a multiplicative tolerance
   band of the baseline value — new in [old / band, old * band] — because
   CI hardware differs wildly from the machine that produced the
   baseline, but a metric that collapses by more than the band (or a
   config echo like `n` that changed at all, since identical flags
   reproduce it exactly) is a regression or a drifted pinned scale.
   Baseline zeros accept any non-negative value. Strings and booleans
   must match exactly.

On top of the generic diff, serving baselines carry hard invariants from
the serving layer's acceptance contract (checked on the NEW run):
  - network.closed_read_only.mean_batch >= 2 (coalescing works under
    concurrent loopback clients),
  - network.probe_deadline_rejected >= 1 (expired budgets are rejected
    typed),
  - network.probe_overload_shed >= 1 (overload sheds retryable),
  - recovery.wal_replayed >= 1 and recovery.rows >= 1 (reopening the
    durable collection actually replayed a WAL tail onto the snapshot),
  - recovery.recovery_ms >= 0 (the recovery timer sampled),
  - replication.{bootstrap_points,subscriptions,records_shipped,
    records_applied} >= 1 and replication.converged == 1 (a follower
    bootstrapped from the primary's checkpoint, tailed the shipped WAL
    records, and fully caught up with the write burst).

Streaming baselines carry the storage backend's acceptance contract
(checked on the NEW run):
  - storage.sq8_bytes_per_vector <= 0.3 * storage.fp32_bytes_per_vector
    (the quantized store actually compresses),
  - storage.sq8_recall >= storage.fp32_recall - 0.02 (asymmetric u8
    scoring + exact re-rank costs at most 2% recall),
  - storage.pq_bytes_per_vector <= 0.12 * storage.fp32_bytes_per_vector
    (product quantization holds its ~8x+ compression floor),
  - storage.pq_recall >= storage.fp32_recall - 0.03 (ADC table scoring
    at the default codebook costs at most 3% recall),
  - memory.resident_bytes > 0 and memory.peak_resident_bytes > 0 (the
    RSS sampler works on the CI platform).

Exit code 0 when everything holds, 1 otherwise (each violation printed).
"""

import argparse
import json
import sys

DEFAULT_BAND = 25.0


def walk(baseline, new, path, band, errors):
    if isinstance(baseline, dict):
        if not isinstance(new, dict):
            errors.append(f"{path}: expected object, got {type(new).__name__}")
            return
        for key, value in baseline.items():
            if key not in new:
                errors.append(f"{path}.{key}: missing from new run")
                continue
            walk(value, new[key], f"{path}.{key}", band, errors)
    elif isinstance(baseline, list):
        if not isinstance(new, list):
            errors.append(f"{path}: expected array, got {type(new).__name__}")
            return
        for i, (b, n) in enumerate(zip(baseline, new)):
            walk(b, n, f"{path}[{i}]", band, errors)
    elif isinstance(baseline, bool):
        if new != baseline:
            errors.append(f"{path}: {baseline} -> {new}")
    elif isinstance(baseline, (int, float)):
        if not isinstance(new, (int, float)) or isinstance(new, bool):
            errors.append(f"{path}: expected number, got {new!r}")
        elif baseline == 0:
            if new < 0:
                errors.append(f"{path}: baseline 0 but new run is {new}")
        elif baseline < 0 or new <= 0:
            if baseline != new and not (baseline < 0 and new < 0):
                errors.append(f"{path}: {baseline} -> {new} (sign change)")
        elif not (baseline / band <= new <= baseline * band):
            errors.append(
                f"{path}: {new:g} outside tolerance band "
                f"[{baseline / band:g}, {baseline * band:g}] "
                f"(baseline {baseline:g}, band {band:g}x)")
    elif isinstance(baseline, str):
        if new != baseline:
            errors.append(f"{path}: {baseline!r} -> {new!r}")
    elif baseline is None:
        if new is not None:
            errors.append(f"{path}: expected null, got {new!r}")


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def serving_invariants(new, errors):
    if "network" not in new:
        return
    for path, minimum in (
        ("network.closed_read_only.mean_batch", 2.0),
        ("network.probe_deadline_rejected", 1),
        ("network.probe_overload_shed", 1),
        ("network.closed_read_only.qps", 0.000001),
        ("network.open_loop.qps", 0.000001),
        # Durability: the bench reopens a checkpointed collection with a
        # WAL tail, so replay must have happened and the recovery timer
        # must have sampled (0 ms would mean the clock never ran).
        ("recovery.wal_replayed", 1),
        ("recovery.recovery_ms", 0.0),
        ("recovery.rows", 1),
        # Replication: the follower must actually bootstrap from the
        # primary's checkpoint, the primary must ship WAL records over
        # the subscription, the follower must apply them, and the burst
        # must fully catch up (converged == 1 means final lag hit 0
        # within the bench's bound).
        ("replication.bootstrap_points", 1),
        ("replication.subscriptions", 1),
        ("replication.records_shipped", 1),
        ("replication.records_applied", 1),
        ("replication.converged", 1),
    ):
        value = lookup(new, path)
        if value is None:
            errors.append(f"{path}: missing (serving invariant)")
        elif not isinstance(value, (int, float)) or value < minimum:
            errors.append(
                f"{path}: {value!r} below required minimum {minimum} "
                "(serving invariant)")


def streaming_invariants(new, errors):
    storage = new.get("storage")
    if new.get("bench") != "streaming" or not isinstance(storage, dict):
        return
    fp32_bytes = storage.get("fp32_bytes_per_vector")
    sq8_bytes = storage.get("sq8_bytes_per_vector")
    if not isinstance(fp32_bytes, (int, float)) or \
            not isinstance(sq8_bytes, (int, float)):
        errors.append("storage.{fp32,sq8}_bytes_per_vector: missing "
                      "(storage invariant)")
    elif sq8_bytes > 0.3 * fp32_bytes:
        errors.append(
            f"storage.sq8_bytes_per_vector: {sq8_bytes} exceeds 0.3x the "
            f"fp32 payload ({fp32_bytes}) (storage invariant)")
    fp32_recall = storage.get("fp32_recall")
    sq8_recall = storage.get("sq8_recall")
    if not isinstance(fp32_recall, (int, float)) or \
            not isinstance(sq8_recall, (int, float)):
        errors.append("storage.{fp32,sq8}_recall: missing "
                      "(storage invariant)")
    elif sq8_recall < fp32_recall - 0.02:
        errors.append(
            f"storage.sq8_recall: {sq8_recall:g} more than 0.02 below the "
            f"fp32 recall ({fp32_recall:g}) (storage invariant)")
    pq_bytes = storage.get("pq_bytes_per_vector")
    if not isinstance(pq_bytes, (int, float)):
        errors.append("storage.pq_bytes_per_vector: missing "
                      "(storage invariant)")
    elif isinstance(fp32_bytes, (int, float)) and pq_bytes > 0.12 * fp32_bytes:
        errors.append(
            f"storage.pq_bytes_per_vector: {pq_bytes} exceeds 0.12x the "
            f"fp32 payload ({fp32_bytes}) (storage invariant)")
    pq_recall = storage.get("pq_recall")
    if not isinstance(pq_recall, (int, float)):
        errors.append("storage.pq_recall: missing (storage invariant)")
    elif isinstance(fp32_recall, (int, float)) and \
            pq_recall < fp32_recall - 0.03:
        errors.append(
            f"storage.pq_recall: {pq_recall:g} more than 0.03 below the "
            f"fp32 recall ({fp32_recall:g}) (storage invariant)")


def memory_invariants(new, errors):
    memory = new.get("memory")
    if not isinstance(memory, dict):
        return  # benches without a memory section are exempt
    for key in ("resident_bytes", "peak_resident_bytes"):
        value = memory.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            errors.append(
                f"memory.{key}: {value!r} but the RSS sampler must report "
                "a positive byte count on CI (memory invariant)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--band", type=float, default=DEFAULT_BAND,
                        help="multiplicative tolerance for numeric leaves "
                             f"(default {DEFAULT_BAND}x)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    errors = []
    walk(baseline, new, "$", args.band, errors)
    serving_invariants(new, errors)
    streaming_invariants(new, errors)
    memory_invariants(new, errors)

    if errors:
        print(f"check_bench: {len(errors)} violation(s) against "
              f"{args.baseline}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"check_bench: {args.new} matches {args.baseline} "
          f"(band {args.band:g}x) and all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
