#!/usr/bin/env python3
"""Documentation gates for CI.

1. Intra-repo markdown link check: every relative link target in a *.md
   file must exist (http/mailto/pure-anchor links are skipped).
2. Doc-comment coverage over the public headers: every public function
   declaration in src/{core,exec,serve,simd,replication}/*.h must be
   preceded by a `///` contract comment.

Exit code 0 when both gates pass; 1 with a listing of violations.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".claude"}

# ----------------------------------------------------------------- links --

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_markdown_links():
    errors = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if not name.endswith(".md"):
                continue
            path = os.path.join(root, name)
            with open(path, encoding="utf-8") as f:
                text = f.read()
            # Drop fenced code blocks: sample snippets are not links.
            text = re.sub(r"```.*?```", "", text, flags=re.S)
            for target in MD_LINK.findall(text):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(
                    os.path.join(root, target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, REPO)
                    errors.append(f"{rel}: broken link -> {target}")
    return errors


# -------------------------------------------------------- doc coverage ----

HEADER_GLOBS = ("src/core", "src/exec", "src/serve", "src/simd",
                "src/replication")

# A line that starts a function declaration/definition at class-public or
# namespace scope in this codebase's style (2-space members, 0-space free
# functions; bodies are indented deeper and get filtered by the keyword
# and assignment checks below).
DECL = re.compile(
    r"^(?P<indent> {0,2})"
    r"(?:template\s*<[^>]*>\s*)?"
    r"(?:(?:virtual|static|explicit|constexpr|inline|friend)\s+)*"
    r"[A-Za-z_][\w:<>,&*\s]*?"
    r"\s[~A-Za-z_]\w*\s*\("
)
NOT_DECL = re.compile(
    r"^\s*(?:if|for|while|switch|return|assert|sizeof|do|else|case|catch|"
    r"DBLSH_|EXPECT_|ASSERT_|TEST)\b"
    r"|^\s*//"
    # Assignment statements (`foo = Bar(x);`), but NOT default arguments —
    # anchored so an `=` later in a declaration line doesn't exempt it.
    r"|^\s*[\w.\[\]>-]+\s*[+\-*/|&^]?=[^=]"
)


def public_decl_lines(lines):
    """Yield (index, line) for public declarations needing a /// comment."""
    access = "file"  # namespace scope counts as public
    for i, line in enumerate(lines):
        stripped = line.strip()
        if re.match(r"^(class|struct)\s+\w+", stripped) and "; " not in stripped:
            # Class bodies default private, struct bodies public; track the
            # explicit specifiers instead of perfect brace parsing.
            access = "private" if stripped.startswith("class") else "public"
        if stripped in ("public:", "protected:"):
            access = "public" if stripped == "public:" else "private"
        elif stripped == "private:":
            access = "private"
        elif stripped.startswith("};"):
            access = "file"
        if access == "private":
            continue
        if not DECL.match(line) or NOT_DECL.search(line):
            continue
        # Constructors/operators/defaulted members don't need a contract.
        if "operator" in line or "= default" in line or "= delete" in line:
            continue
        yield i, line


def has_doc_above(lines, i):
    j = i - 1
    while j >= 0:
        s = lines[j].strip()
        if s.startswith("///"):
            return True
        if s == "" or s.endswith("&&") or s.startswith(")"):
            j -= 1
            continue
        # Multi-line declaration: walk up through its continuation lines.
        if not s.endswith((";", "{", "}")) and j > 0:
            j -= 1
            continue
        return False
    return False


def check_doc_coverage():
    errors = []
    for rel_dir in HEADER_GLOBS:
        full = os.path.join(REPO, rel_dir)
        for name in sorted(os.listdir(full)):
            if not name.endswith(".h"):
                continue
            path = os.path.join(full, name)
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            for i, line in public_decl_lines(lines):
                if not has_doc_above(lines, i):
                    rel = os.path.relpath(path, REPO)
                    errors.append(
                        f"{rel}:{i + 1}: public declaration lacks a /// "
                        f"contract comment: {line.strip()[:70]}")
    return errors


def main():
    errors = check_markdown_links() + check_doc_coverage()
    if errors:
        print(f"docs check FAILED ({len(errors)} problem(s)):")
        for e in errors:
            print("  " + e)
        return 1
    print("docs check passed: markdown links resolve, "
          "core/exec/serve/simd/replication headers are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
