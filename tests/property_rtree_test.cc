// Property tests for the R*-tree: for every combination of dimensionality,
// node capacity and construction mode, the tree must agree exactly with a
// brute-force scan on random window queries and preserve its structural
// invariants under mixed insert/remove workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "dataset/synthetic.h"
#include "rtree/rtree.h"
#include "util/random.h"

namespace dblsh::rtree {
namespace {

struct Config {
  size_t dim;
  size_t max_entries;
  bool bulk;
};

class RTreePropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  static FloatMatrix MakeData(size_t n, size_t dim) {
    return GenerateClustered({.n = n,
                              .dim = dim,
                              .clusters = 8,
                              .center_spread = 50.0,
                              .cluster_stddev = 3.0,
                              .seed = dim * 1000 + n});
  }

  static std::vector<uint32_t> Brute(const FloatMatrix& points,
                                     const Rect& window) {
    std::vector<uint32_t> out;
    for (size_t i = 0; i < points.rows(); ++i) {
      if (window.ContainsPoint(points.row(i))) {
        out.push_back(static_cast<uint32_t>(i));
      }
    }
    return out;
  }
};

TEST_P(RTreePropertyTest, WindowQueriesMatchBruteForce) {
  const Config& cfg = GetParam();
  const FloatMatrix points = MakeData(1200, cfg.dim);
  RTreeOptions options;
  options.max_entries = cfg.max_entries;
  RStarTree tree(&points, options);
  if (cfg.bulk) {
    ASSERT_TRUE(tree.BulkLoadAll().ok());
  } else {
    for (uint32_t i = 0; i < points.rows(); ++i) {
      ASSERT_TRUE(tree.Insert(i).ok());
    }
  }
  ASSERT_EQ(tree.CheckInvariants(), 0u);

  Rng rng(cfg.dim * 31 + cfg.max_entries);
  for (int trial = 0; trial < 25; ++trial) {
    const uint32_t anchor =
        static_cast<uint32_t>(rng.UniformInt(points.rows()));
    const Rect window = Rect::Window(points.row(anchor), cfg.dim,
                                     rng.Uniform(0.5, 40.0));
    std::vector<uint32_t> got;
    tree.WindowQuery(window, &got);
    std::vector<uint32_t> expected = Brute(points, window);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RTreePropertyTest, MixedInsertRemoveKeepsInvariants) {
  const Config& cfg = GetParam();
  const FloatMatrix points = MakeData(600, cfg.dim);
  RTreeOptions options;
  options.max_entries = cfg.max_entries;
  RStarTree tree(&points, options);
  Rng rng(cfg.dim * 71 + cfg.max_entries);
  std::set<uint32_t> present;
  if (cfg.bulk) {
    std::vector<uint32_t> half;
    for (uint32_t i = 0; i < 300; ++i) half.push_back(i);
    ASSERT_TRUE(tree.BulkLoad(half).ok());
    present.insert(half.begin(), half.end());
  }
  for (int op = 0; op < 800; ++op) {
    const uint32_t id = static_cast<uint32_t>(rng.UniformInt(600));
    if (present.count(id)) {
      ASSERT_TRUE(tree.Remove(id).ok()) << "remove " << id;
      present.erase(id);
    } else {
      ASSERT_TRUE(tree.Insert(id).ok()) << "insert " << id;
      present.insert(id);
    }
    if (op % 100 == 99) {
      ASSERT_EQ(tree.CheckInvariants(), 0u) << "op " << op;
    }
  }
  EXPECT_EQ(tree.size(), present.size());
  // Full-space window sees exactly the present set.
  Rect everything(cfg.dim);
  for (size_t j = 0; j < cfg.dim; ++j) {
    everything.lo(j) = -1e9f;
    everything.hi(j) = 1e9f;
  }
  std::vector<uint32_t> got;
  tree.WindowQuery(everything, &got);
  std::sort(got.begin(), got.end());
  std::vector<uint32_t> expected(present.begin(), present.end());
  EXPECT_EQ(got, expected);
}

TEST_P(RTreePropertyTest, CursorAgreesWithBatchQuery) {
  const Config& cfg = GetParam();
  const FloatMatrix points = MakeData(900, cfg.dim);
  RTreeOptions options;
  options.max_entries = cfg.max_entries;
  RStarTree tree(&points, options);
  if (cfg.bulk) {
    ASSERT_TRUE(tree.BulkLoadAll().ok());
  } else {
    for (uint32_t i = 0; i < points.rows(); ++i) {
      ASSERT_TRUE(tree.Insert(i).ok());
    }
  }
  Rng rng(cfg.dim * 13 + cfg.max_entries);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t anchor =
        static_cast<uint32_t>(rng.UniformInt(points.rows()));
    const Rect window = Rect::Window(points.row(anchor), cfg.dim,
                                     rng.Uniform(1.0, 30.0));
    std::vector<uint32_t> batch;
    tree.WindowQuery(window, &batch);
    std::vector<uint32_t> streamed;
    RStarTree::WindowCursor cursor(&tree, window);
    uint32_t id;
    while (cursor.Next(&id)) streamed.push_back(id);
    std::sort(batch.begin(), batch.end());
    std::sort(streamed.begin(), streamed.end());
    EXPECT_EQ(batch, streamed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreePropertyTest,
    ::testing::Values(Config{2, 8, true}, Config{2, 8, false},
                      Config{2, 32, true}, Config{4, 16, true},
                      Config{4, 16, false}, Config{8, 32, true},
                      Config{8, 32, false}, Config{12, 48, true},
                      Config{16, 32, true}),
    [](const auto& info) {
      return "dim" + std::to_string(info.param.dim) + "_cap" +
             std::to_string(info.param.max_entries) +
             (info.param.bulk ? "_bulk" : "_insert");
    });

// Early-stop visitor contract, independent of the sweep.
TEST(RTreeVisitTest, VisitorCanStopEarly) {
  const FloatMatrix points = GenerateUniform(2000, 3, 50.0, 44);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  Rect everything(3);
  for (size_t j = 0; j < 3; ++j) {
    everything.lo(j) = -1e9f;
    everything.hi(j) = 1e9f;
  }
  size_t visited = 0;
  tree.WindowQueryVisit(everything, [&](uint32_t) {
    ++visited;
    return visited < 17;
  });
  EXPECT_EQ(visited, 17u);
}

}  // namespace
}  // namespace dblsh::rtree
