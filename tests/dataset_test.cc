#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dataset/float_matrix.h"
#include "dataset/ground_truth.h"
#include "dataset/io.h"
#include "dataset/stats.h"
#include "dataset/synthetic.h"
#include "util/distance.h"

namespace dblsh {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------ FloatMatrix --

TEST(FloatMatrixTest, ConstructAndAccess) {
  FloatMatrix m(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  m.at(1, 1) = 5.f;
  EXPECT_FLOAT_EQ(m.at(1, 1), 5.f);
  EXPECT_FLOAT_EQ(m.row(1)[1], 5.f);
}

TEST(FloatMatrixTest, AppendRowDefinesWidth) {
  FloatMatrix m;
  const float r0[] = {1.f, 2.f, 3.f};
  m.AppendRow(r0, 3);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.rows(), 1u);
  const float r1[] = {4.f, 5.f, 6.f};
  m.AppendRow(r1, 3);
  EXPECT_FLOAT_EQ(m.at(1, 2), 6.f);
}

TEST(FloatMatrixTest, PrefixCopiesLeadingRows) {
  FloatMatrix m(5, 2);
  for (size_t i = 0; i < 5; ++i) m.at(i, 0) = static_cast<float>(i);
  const FloatMatrix p = m.Prefix(3);
  EXPECT_EQ(p.rows(), 3u);
  EXPECT_FLOAT_EQ(p.at(2, 0), 2.f);
}

// --------------------------------------------------------------------- IO --

TEST(IoTest, FvecsRoundTrip) {
  FloatMatrix m(4, 3);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      m.at(i, j) = static_cast<float>(i * 10 + j);
    }
  }
  const std::string path = TempPath("dblsh_roundtrip.fvecs");
  ASSERT_TRUE(SaveFvecs(m, path).ok());
  auto loaded = LoadFvecs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().rows(), 4u);
  EXPECT_EQ(loaded.value().cols(), 3u);
  EXPECT_FLOAT_EQ(loaded.value().at(2, 1), 21.f);
  std::remove(path.c_str());
}

TEST(IoTest, FvecsMaxRowsTruncates) {
  FloatMatrix m(10, 2);
  const std::string path = TempPath("dblsh_maxrows.fvecs");
  ASSERT_TRUE(SaveFvecs(m, path).ok());
  auto loaded = LoadFvecs(path, 4);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().rows(), 4u);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  auto r = LoadFvecs("/nonexistent/definitely/missing.fvecs");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(IoTest, TruncatedRecordIsCorruption) {
  const std::string path = TempPath("dblsh_truncated.fvecs");
  {
    std::ofstream out(path, std::ios::binary);
    const int32_t dim = 8;
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    const float partial[3] = {1.f, 2.f, 3.f};  // 8 promised, 3 written
    out.write(reinterpret_cast<const char*>(partial), sizeof(partial));
  }
  auto r = LoadFvecs(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IoTest, NegativeDimensionIsCorruption) {
  const std::string path = TempPath("dblsh_negdim.fvecs");
  {
    std::ofstream out(path, std::ios::binary);
    const int32_t dim = -5;
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  auto r = LoadFvecs(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IoTest, InconsistentDimensionsIsCorruption) {
  const std::string path = TempPath("dblsh_mixdim.fvecs");
  {
    std::ofstream out(path, std::ios::binary);
    int32_t dim = 2;
    const float row2[2] = {1.f, 2.f};
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(row2), sizeof(row2));
    dim = 3;
    const float row3[3] = {1.f, 2.f, 3.f};
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(row3), sizeof(row3));
  }
  auto r = LoadFvecs(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(IoTest, BvecsWidensToFloat) {
  const std::string path = TempPath("dblsh_bytes.bvecs");
  {
    std::ofstream out(path, std::ios::binary);
    const int32_t dim = 4;
    const uint8_t bytes[4] = {0, 1, 128, 255};
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(bytes), sizeof(bytes));
  }
  auto r = LoadBvecs(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FLOAT_EQ(r.value().at(0, 3), 255.f);
  std::remove(path.c_str());
}

TEST(IoTest, TextLoader) {
  const std::string path = TempPath("dblsh_text.txt");
  {
    std::ofstream out(path);
    out << "1 2 3\n4 5 6\n\n7 8 9\n";
  }
  auto r = LoadText(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows(), 3u);
  EXPECT_FLOAT_EQ(r.value().at(2, 0), 7.f);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- Synthetic --

TEST(SyntheticTest, ClusteredHasRequestedShape) {
  ClusteredSpec spec;
  spec.n = 500;
  spec.dim = 16;
  const FloatMatrix m = GenerateClustered(spec);
  EXPECT_EQ(m.rows(), 500u);
  EXPECT_EQ(m.cols(), 16u);
}

TEST(SyntheticTest, ClusteredIsDeterministicPerSeed) {
  ClusteredSpec spec;
  spec.n = 50;
  spec.dim = 8;
  const FloatMatrix a = GenerateClustered(spec);
  const FloatMatrix b = GenerateClustered(spec);
  EXPECT_EQ(a.data(), b.data());
  spec.seed = 1234;
  const FloatMatrix c = GenerateClustered(spec);
  EXPECT_NE(a.data(), c.data());
}

TEST(SyntheticTest, ClusteredPointsConcentrateAroundCenters) {
  // Points within a cluster are much closer to each other than the center
  // spread, so the sample NN distance must be far below it.
  ClusteredSpec spec;
  spec.n = 2000;
  spec.dim = 16;
  spec.clusters = 5;
  spec.center_spread = 200.0;
  spec.cluster_stddev = 1.0;
  const FloatMatrix m = GenerateClustered(spec);
  const double nn = EstimateNnDistance(m, 77);
  EXPECT_LT(nn, 30.0);
  EXPECT_GT(nn, 0.0);
}

TEST(SyntheticTest, UniformCoversRange) {
  const FloatMatrix m = GenerateUniform(1000, 4, 10.0, 3);
  float lo = 1e9f, hi = -1e9f;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      lo = std::min(lo, m.at(i, j));
      hi = std::max(hi, m.at(i, j));
    }
  }
  EXPECT_GE(lo, 0.f);
  EXPECT_LT(hi, 10.f);
  EXPECT_LT(lo, 1.f);   // near the edges with 4000 samples
  EXPECT_GT(hi, 9.f);
}

TEST(SyntheticTest, LowIntrinsicDimIsFlat) {
  // With intrinsic dim 2 in ambient dim 32 and tiny noise, distances to the
  // best-fit plane are small; a crude proxy: variance is captured by few
  // directions, so pairwise distances are much smaller than an isotropic
  // cloud with the same coordinate magnitudes would have.
  const FloatMatrix flat = GenerateLowIntrinsicDim(500, 32, 2, 0.01, 5);
  EXPECT_EQ(flat.rows(), 500u);
  EXPECT_EQ(flat.cols(), 32u);
}

TEST(SyntheticTest, ProfilesProduceAllTenDatasets) {
  const auto profiles = PaperDatasetProfiles(0.01);
  ASSERT_EQ(profiles.size(), 10u);
  EXPECT_EQ(profiles[0].name, "Audio");
  EXPECT_EQ(profiles[9].name, "SIFT100M");
  // Relative ordering of cardinalities is preserved.
  EXPECT_LT(profiles[0].n, profiles[9].n);
  const FloatMatrix m = GenerateProfile(profiles[0]);
  EXPECT_EQ(m.rows(), profiles[0].n);
  EXPECT_EQ(m.cols(), profiles[0].dim);
}

TEST(SyntheticTest, SplitQueriesPartitionsData) {
  const FloatMatrix all = GenerateUniform(100, 4, 10.0, 3);
  FloatMatrix data, queries;
  SplitQueries(all, 10, 99, &data, &queries);
  EXPECT_EQ(queries.rows(), 10u);
  EXPECT_EQ(data.rows(), 90u);
  EXPECT_EQ(data.cols(), 4u);
}

// ----------------------------------------------------------- GroundTruth --

TEST(GroundTruthTest, ExactKnnMatchesManualScan) {
  FloatMatrix data(5, 1);
  for (size_t i = 0; i < 5; ++i) data.at(i, 0) = static_cast<float>(i * i);
  const float query[] = {3.f};  // distances: 3,2,1,6,13
  const auto knn = ExactKnn(data, query, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].id, 2u);
  EXPECT_FLOAT_EQ(knn[0].dist, 1.f);
  EXPECT_EQ(knn[1].id, 1u);
}

TEST(GroundTruthTest, KLargerThanNReturnsAll) {
  FloatMatrix data(3, 2);
  const float query[] = {0.f, 0.f};
  EXPECT_EQ(ExactKnn(data, query, 10).size(), 3u);
}

TEST(GroundTruthTest, BatchMatchesSingle) {
  const FloatMatrix data = GenerateUniform(200, 8, 10.0, 3);
  const FloatMatrix queries = GenerateUniform(5, 8, 10.0, 4);
  const auto batch = ComputeGroundTruth(data, queries, 7);
  ASSERT_EQ(batch.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    const auto single = ExactKnn(data, queries.row(q), 7);
    ASSERT_EQ(batch[q].size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch[q][i].id, single[i].id);
    }
  }
}

TEST(StatsTest, EasyClustersHaveHighRelativeContrast) {
  // Well-separated clusters: the 1-NN is in-cluster (close) while the mean
  // distance spans clusters (far) -> RC >> 1.
  const FloatMatrix easy = GenerateClustered({.n = 2000,
                                              .dim = 32,
                                              .clusters = 10,
                                              .center_spread = 200.0,
                                              .cluster_stddev = 1.0,
                                              .seed = 61});
  const DatasetStats s = EstimateStats(easy, 30);
  EXPECT_GT(s.relative_contrast, 5.0);
  EXPECT_GT(s.mean_distance, s.mean_nn_distance);
}

TEST(StatsTest, OverlappingClustersLowerContrastAndRaiseLid) {
  const FloatMatrix easy = GenerateClustered({.n = 2000,
                                              .dim = 32,
                                              .clusters = 10,
                                              .center_spread = 200.0,
                                              .cluster_stddev = 1.0,
                                              .seed = 62});
  const FloatMatrix hard = GenerateClustered({.n = 2000,
                                              .dim = 32,
                                              .clusters = 10,
                                              .center_spread = 5.0,
                                              .cluster_stddev = 2.0,
                                              .seed = 62});
  const DatasetStats se = EstimateStats(easy, 30);
  const DatasetStats sh = EstimateStats(hard, 30);
  EXPECT_LT(sh.relative_contrast, se.relative_contrast);
  EXPECT_GT(sh.lid, se.lid);
}

TEST(StatsTest, DegenerateInputsAreSafe) {
  FloatMatrix tiny(2, 4);
  const DatasetStats s = EstimateStats(tiny);
  EXPECT_DOUBLE_EQ(s.relative_contrast, 0.0);
  FloatMatrix dupes(100, 4);  // all identical points
  const DatasetStats d = EstimateStats(dupes, 10);
  EXPECT_DOUBLE_EQ(d.mean_nn_distance, 0.0);
}

TEST(GroundTruthTest, EstimateNnDistanceIsPositiveAndPlausible) {
  const FloatMatrix data = GenerateUniform(2000, 4, 10.0, 3);
  const double est = EstimateNnDistance(data, 5);
  EXPECT_GT(est, 0.0);
  EXPECT_LT(est, 10.0 * 2.0);  // cannot exceed the diagonal
}

}  // namespace
}  // namespace dblsh
