// Tests for the exec::TaskExecutor: future-returning Submit, dynamic
// ParallelFor coverage, per-worker state, nested parallel sections on a
// saturated pool, exception propagation from both entry points, and the
// drain-on-shutdown guarantee for pending tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task_executor.h"

namespace dblsh::exec {
namespace {

TEST(ExecTest, SubmitReturnsFutureValues) {
  TaskExecutor pool(2);
  auto a = pool.Submit([] { return 21 * 2; });
  auto b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ExecTest, SubmitPropagatesExceptionsThroughFutures) {
  TaskExecutor pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ExecTest, ParallelForCoversEveryIndexExactlyOnce) {
  TaskExecutor pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecTest, ParallelForHonorsMaxParallelismOne) {
  TaskExecutor pool(4);
  // max_parallelism = 1 must run strictly sequentially on the caller.
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(
      64,
      [&](size_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        concurrent.fetch_sub(1);
      },
      /*max_parallelism=*/1);
  EXPECT_EQ(peak.load(), 1);
}

TEST(ExecTest, ParallelForWorkersGivesEachThreadItsOwnState) {
  TaskExecutor pool(3);
  std::mutex mutex;
  std::set<const int*> states_seen;
  std::atomic<size_t> iterations{0};
  pool.ParallelForWorkers(512, /*max_parallelism=*/4, [&]() {
    // One counter per participating thread: the returned body must only
    // ever see the state its own make_worker call produced.
    auto counter = std::make_shared<int>(0);
    {
      std::lock_guard lock(mutex);
      states_seen.insert(counter.get());
    }
    return [counter, &iterations](size_t) {
      ++*counter;
      iterations.fetch_add(1, std::memory_order_relaxed);
    };
  });
  EXPECT_EQ(iterations.load(), 512u);
  EXPECT_GE(states_seen.size(), 1u);
  EXPECT_LE(states_seen.size(), 4u);
}

TEST(ExecTest, NestedParallelForCompletesOnSaturatedPool) {
  // Outer loop width far beyond the pool: every worker runs outer
  // iterations that each open an inner ParallelFor. The caller-helps wait
  // loop must execute queued inner helpers, so this terminates even on a
  // 2-thread (or 1-thread) pool.
  TaskExecutor pool(2);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::atomic<size_t> total{0};
  pool.ParallelFor(kOuter, [&](size_t) {
    pool.ParallelFor(kInner, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ExecTest, ParallelForRethrowsFirstExceptionAndStopsEarly) {
  TaskExecutor pool(4);
  std::atomic<size_t> ran{0};
  constexpr size_t kN = 100000;
  try {
    pool.ParallelFor(kN, [&](size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 17) throw std::runtime_error("iteration 17 failed");
    });
    FAIL() << "ParallelFor swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 17 failed");
  }
  // Remaining iterations are abandoned after the failure is flagged; with
  // a huge n, nowhere near the full range should have run.
  EXPECT_LT(ran.load(), kN);
}

TEST(ExecTest, DestructorDrainsPendingTasks) {
  std::vector<std::future<int>> futures;
  std::atomic<int> executed{0};
  {
    TaskExecutor pool(1);  // single worker: tasks genuinely queue up
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.Submit([i, &executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1);
        return i;
      }));
    }
    // Destructor runs with most of the queue still pending.
  }
  EXPECT_EQ(executed.load(), 16);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[i].get(), i);
  }
}

TEST(ExecTest, RunOnePendingTaskHelpsFromOutsideThePool) {
  TaskExecutor pool(1);
  // Park the only worker so the queue backs up. Wait until the worker has
  // actually dequeued the gate — otherwise this thread's help loop below
  // could steal the gate itself and spin inside it forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto gate = pool.Submit([&] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  std::atomic<int> ran{0};
  pool.Schedule([&] { ran.fetch_add(1); });
  // This thread (not a pool worker) lends a hand and runs the queued task.
  while (!pool.RunOnePendingTask()) {
  }
  EXPECT_EQ(ran.load(), 1);
  release.store(true);
  gate.get();
  EXPECT_FALSE(pool.RunOnePendingTask());  // queue is empty again
}

TEST(ExecTest, DefaultPoolIsSharedAndResizable) {
  TaskExecutor& a = TaskExecutor::Default();
  TaskExecutor& b = TaskExecutor::Default();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  TaskExecutor::SetDefaultThreads(2);
  EXPECT_EQ(TaskExecutor::Default().num_threads(), 2u);
  // Restore the hardware-sized default for the rest of the suite.
  TaskExecutor::SetDefaultThreads(0);
  EXPECT_EQ(TaskExecutor::Default().num_threads(), HardwareConcurrency());
}

}  // namespace
}  // namespace dblsh::exec
