#include <gtest/gtest.h>

#include <memory>

#include "baselines/lccs_lsh.h"
#include "baselines/linear_scan.h"
#include "baselines/lsb_forest.h"
#include "baselines/pm_lsh.h"
#include "baselines/qalsh.h"
#include "baselines/r2lsh.h"
#include "baselines/vhp.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"

namespace dblsh {
namespace {

struct Fixture {
  FloatMatrix data;
  FloatMatrix queries;
  std::vector<std::vector<Neighbor>> gt;
};

Fixture MakeFixture(size_t n = 3000, size_t dim = 32, size_t k = 10,
                    uint64_t seed = 60) {
  Fixture f;
  SplitQueries(GenerateClustered(
                   {.n = n, .dim = dim, .clusters = 12, .seed = seed}),
               25, seed + 1, &f.data, &f.queries);
  f.gt = ComputeGroundTruth(f.data, f.queries, k);
  return f;
}

double MeanRecall(AnnIndex* index, const Fixture& f, size_t k = 10) {
  double sum = 0.0;
  for (size_t q = 0; q < f.queries.rows(); ++q) {
    sum += eval::Recall(index->Query(f.queries.row(q), k), f.gt[q]);
  }
  return sum / static_cast<double>(f.queries.rows());
}

// ----------------------------------------------------------- LinearScan --

TEST(LinearScanTest, IsExact) {
  const Fixture f = MakeFixture(800);
  LinearScan scan;
  ASSERT_TRUE(scan.Build(&f.data).ok());
  EXPECT_DOUBLE_EQ(MeanRecall(&scan, f), 1.0);
}

TEST(LinearScanTest, RejectsEmpty) {
  FloatMatrix empty(0, 4);
  LinearScan scan;
  EXPECT_FALSE(scan.Build(&empty).ok());
}

TEST(LinearScanTest, StatsCountWholeDataset) {
  const Fixture f = MakeFixture(500);
  LinearScan scan;
  ASSERT_TRUE(scan.Build(&f.data).ok());
  QueryStats stats;
  scan.Query(f.queries.row(0), 5, &stats);
  EXPECT_EQ(stats.candidates_verified, f.data.rows());
}

// ------------------------------------------------- Shared behaviour suite --

enum class Method { kQalsh, kR2Lsh, kVhp, kPmLsh, kLsbForest, kLccsLsh };

std::unique_ptr<AnnIndex> MakeMethod(Method method) {
  switch (method) {
    case Method::kQalsh:
      return std::make_unique<Qalsh>();
    case Method::kR2Lsh:
      return std::make_unique<R2Lsh>();
    case Method::kVhp:
      return std::make_unique<Vhp>();
    case Method::kPmLsh:
      return std::make_unique<PmLsh>();
    case Method::kLsbForest:
      return std::make_unique<LsbForest>();
    case Method::kLccsLsh:
      return std::make_unique<LccsLsh>();
  }
  return nullptr;
}

class BaselineSuite : public ::testing::TestWithParam<Method> {};

TEST_P(BaselineSuite, BuildRejectsEmptyDataset) {
  FloatMatrix empty(0, 8);
  auto index = MakeMethod(GetParam());
  EXPECT_FALSE(index->Build(&empty).ok());
}

TEST_P(BaselineSuite, FindsExactDuplicateOfDataPoint) {
  const Fixture f = MakeFixture(1500);
  auto index = MakeMethod(GetParam());
  ASSERT_TRUE(index->Build(&f.data).ok());
  // Querying with an indexed point: LSH projections of the query coincide
  // with the point's, so it must be found at distance 0.
  const auto result = index->Query(f.data.row(33), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST_P(BaselineSuite, ReasonableRecallOnClusteredData) {
  const Fixture f = MakeFixture();
  auto index = MakeMethod(GetParam());
  ASSERT_TRUE(index->Build(&f.data).ok());
  EXPECT_GT(MeanRecall(index.get(), f), 0.3) << "method " << index->Name();
}

TEST_P(BaselineSuite, ResultsSortedAndUnique) {
  const Fixture f = MakeFixture(1200);
  auto index = MakeMethod(GetParam());
  ASSERT_TRUE(index->Build(&f.data).ok());
  const auto result = index->Query(f.queries.row(0), 20);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i].dist, result[i - 1].dist);
    EXPECT_NE(result[i].id, result[i - 1].id);
  }
}

TEST_P(BaselineSuite, StatsPopulated) {
  const Fixture f = MakeFixture(1000);
  auto index = MakeMethod(GetParam());
  ASSERT_TRUE(index->Build(&f.data).ok());
  QueryStats stats;
  index->Query(f.queries.row(1), 5, &stats);
  EXPECT_GT(stats.candidates_verified, 0u);
  EXPECT_GT(stats.points_accessed, 0u);
}

TEST_P(BaselineSuite, KZeroReturnsEmpty) {
  const Fixture f = MakeFixture(300);
  auto index = MakeMethod(GetParam());
  ASSERT_TRUE(index->Build(&f.data).ok());
  EXPECT_TRUE(index->Query(f.queries.row(0), 0).empty());
}

TEST_P(BaselineSuite, ReportsHashFunctions) {
  auto index = MakeMethod(GetParam());
  EXPECT_GT(index->NumHashFunctions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSuite,
    ::testing::Values(Method::kQalsh, Method::kR2Lsh, Method::kVhp,
                      Method::kPmLsh, Method::kLsbForest, Method::kLccsLsh),
    [](const auto& info) {
      switch (info.param) {
        case Method::kQalsh:
          return "QALSH";
        case Method::kR2Lsh:
          return "R2LSH";
        case Method::kVhp:
          return "VHP";
        case Method::kPmLsh:
          return "PMLSH";
        case Method::kLsbForest:
          return "LSBForest";
        case Method::kLccsLsh:
          return "LCCSLSH";
      }
      return "Unknown";
    });

// --------------------------------------------------- Method-specific ----

TEST(QalshTest, RejectsBadParams) {
  const Fixture f = MakeFixture(200);
  QalshParams params;
  params.c = 0.9;
  Qalsh bad_c(params);
  EXPECT_FALSE(bad_c.Build(&f.data).ok());
  params.c = 1.5;
  params.m = 0;
  Qalsh bad_m(params);
  EXPECT_FALSE(bad_m.Build(&f.data).ok());
}

TEST(QalshTest, HigherBetaImprovesRecall) {
  const Fixture f = MakeFixture(2500);
  QalshParams lo_params, hi_params;
  lo_params.beta = 0.002;
  hi_params.beta = 0.15;
  Qalsh lo(lo_params), hi(hi_params);
  ASSERT_TRUE(lo.Build(&f.data).ok());
  ASSERT_TRUE(hi.Build(&f.data).ok());
  EXPECT_GE(MeanRecall(&hi, f), MeanRecall(&lo, f) - 0.02);
}

TEST(R2LshTest, OddProjectionCountRoundsDown) {
  const Fixture f = MakeFixture(300);
  R2LshParams params;
  params.m = 7;  // becomes 6 = 3 spaces
  R2Lsh index(params);
  ASSERT_TRUE(index.Build(&f.data).ok());
  EXPECT_EQ(index.NumHashFunctions(), 6u);
}

TEST(VhpTest, RejectsSlackBelowOne) {
  const Fixture f = MakeFixture(200);
  VhpParams params;
  params.t0 = 0.5;
  Vhp index(params);
  EXPECT_FALSE(index.Build(&f.data).ok());
}

TEST(PmLshTest, BudgetBoundsVerifications) {
  const Fixture f = MakeFixture(4000);
  PmLshParams params;
  params.beta = 0.05;
  PmLsh index(params);
  ASSERT_TRUE(index.Build(&f.data).ok());
  QueryStats stats;
  const size_t k = 10;
  index.Query(f.queries.row(0), k, &stats);
  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(0.05 * f.data.rows())) + k;
  EXPECT_LE(stats.candidates_verified, budget);
}

TEST(PmLshTest, HighBetaApproachesExactness) {
  const Fixture f = MakeFixture(1500);
  PmLshParams params;
  params.beta = 1.0;   // verify everything the cursor yields
  params.t_factor = 100.0;  // effectively disable early stop
  PmLsh index(params);
  ASSERT_TRUE(index.Build(&f.data).ok());
  EXPECT_GT(MeanRecall(&index, f), 0.95);
}

TEST(LsbForestTest, RejectsOversizedZCode) {
  const Fixture f = MakeFixture(200);
  LsbForestParams params;
  params.k = 10;
  params.bits = 8;  // 80 bits > 64
  LsbForest index(params);
  EXPECT_FALSE(index.Build(&f.data).ok());
}

TEST(LsbForestTest, MoreTreesImproveRecall) {
  const Fixture f = MakeFixture(2500);
  LsbForestParams small_params, big_params;
  small_params.l = 2;
  big_params.l = 12;
  LsbForest small(small_params), big(big_params);
  ASSERT_TRUE(small.Build(&f.data).ok());
  ASSERT_TRUE(big.Build(&f.data).ok());
  EXPECT_GE(MeanRecall(&big, f), MeanRecall(&small, f) - 0.02);
}

TEST(LccsLshTest, RejectsBadCodeLength) {
  const Fixture f = MakeFixture(200);
  LccsLshParams params;
  params.m = 65;
  LccsLsh index(params);
  EXPECT_FALSE(index.Build(&f.data).ok());
}

TEST(LccsLshTest, MoreProbesImproveRecall) {
  const Fixture f = MakeFixture(2500);
  LccsLshParams lo_params, hi_params;
  lo_params.probes = 32;
  hi_params.probes = 1024;
  LccsLsh lo(lo_params), hi(hi_params);
  ASSERT_TRUE(lo.Build(&f.data).ok());
  ASSERT_TRUE(hi.Build(&f.data).ok());
  EXPECT_GE(MeanRecall(&hi, f), MeanRecall(&lo, f) - 0.02);
}

}  // namespace
}  // namespace dblsh
