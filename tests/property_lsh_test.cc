// Parameterized property sweeps over the LSH math: the collision
// probability formulas, the locality-sensitivity conditions of
// Definition 3, Observation 1's scale invariance, and the rho*/alpha
// relationships of Lemma 3 — each checked across grids of (tau, w, c,
// gamma) rather than single values.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "lsh/collision.h"
#include "lsh/gaussian.h"
#include "lsh/params.h"

namespace dblsh::lsh {
namespace {

// ------------------------------------------------ collision probability --

class CollisionSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CollisionSweep, ProbabilitiesAreValidAndOrdered) {
  const auto [tau, w] = GetParam();
  const double qc = CollisionProbQueryCentric(tau, w);
  const double st = CollisionProbStatic(tau, w);
  EXPECT_GT(qc, 0.0);
  EXPECT_LE(qc, 1.0);
  EXPECT_GT(st, 0.0);
  EXPECT_LT(st, 1.0);
  // Static buckets lose boundary mass: strictly below query-centric.
  EXPECT_LT(st, qc);
}

TEST_P(CollisionSweep, LocalitySensitivityDefinition3) {
  // For any c > 1, p(tau) > p(c * tau): closer pairs collide more often —
  // the family is (tau, c*tau, p1, p2)-sensitive with p1 > p2. Strictness
  // is relaxed where both probabilities saturate to 1 in double precision
  // (w >> tau).
  const auto [tau, w] = GetParam();
  for (double c : {1.2, 1.7, 2.5}) {
    const double near = CollisionProbQueryCentric(tau, w);
    const double far = CollisionProbQueryCentric(c * tau, w);
    if (far < 1.0 - 1e-12) {
      EXPECT_GT(near, far);
    } else {
      EXPECT_GE(near, far);
    }
    EXPECT_GT(CollisionProbStatic(tau, w),
              CollisionProbStatic(c * tau, w));
  }
}

TEST_P(CollisionSweep, Observation1HoldsEverywhere) {
  const auto [tau, w] = GetParam();
  const double base = CollisionProbQueryCentric(tau, w);
  for (double scale : {0.01, 0.5, 3.0, 250.0}) {
    EXPECT_NEAR(CollisionProbQueryCentric(tau * scale, w * scale), base,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CollisionSweep,
    ::testing::Combine(::testing::Values(0.25, 1.0, 2.0, 5.0, 20.0),
                       ::testing::Values(1.0, 4.0, 9.0, 36.0)),
    [](const auto& info) {
      return "tau" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_w" + std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// --------------------------------------------------------- rho* / alpha --

class RhoSweep : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(RhoSweep, RhoStarWithinLemma3Bound) {
  const auto [c, gamma] = GetParam();
  const double w0 = 2.0 * gamma * c * c;
  const double rho_star = RhoQueryCentric(1.0, c, w0);
  EXPECT_GT(rho_star, -1e-12);
  EXPECT_LE(rho_star, RhoStarBound(c, gamma) + 1e-9);
}

TEST_P(RhoSweep, RhoStarScaleInvariantInR) {
  // rho*(r, c, w0*r) is independent of r — the dynamic index serves all
  // radii with the same exponent.
  const auto [c, gamma] = GetParam();
  const double w0 = 2.0 * gamma * c * c;
  const double base = RhoQueryCentric(1.0, c, w0);
  for (double r : {0.1, 2.0, 40.0}) {
    EXPECT_NEAR(RhoQueryCentric(r, c, w0 * r), base, 1e-9);
  }
}

TEST_P(RhoSweep, DynamicBeatsStaticAtEqualWidth) {
  const auto [c, gamma] = GetParam();
  const double w0 = 2.0 * gamma * c * c;
  EXPECT_LT(RhoQueryCentric(1.0, c, w0), RhoStatic(1.0, c, w0));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RhoSweep,
    ::testing::Combine(::testing::Values(1.2, 1.5, 2.0, 3.0, 4.0),
                       ::testing::Values(0.5, 1.0, 2.0, 3.0)),
    [](const auto& info) {
      return "c" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_gamma" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// ------------------------------------------------------- derived params --

class DeriveSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(DeriveSweep, KAndLBehaveMonotonically) {
  const auto [n, c] = GetParam();
  const double w0 = 4.0 * c * c;
  const auto base = DeriveParams(n, c, w0, 100);
  ASSERT_TRUE(base.ok());
  // More points need (weakly) more hash bits and tables.
  const auto bigger = DeriveParams(n * 10, c, w0, 100);
  ASSERT_TRUE(bigger.ok());
  EXPECT_GE(bigger.value().k, base.value().k);
  EXPECT_GE(bigger.value().l, base.value().l);
  // A larger candidate budget t shrinks both.
  const auto lazier = DeriveParams(n, c, w0, 1000);
  ASSERT_TRUE(lazier.ok());
  EXPECT_LE(lazier.value().k, base.value().k);
  EXPECT_LE(lazier.value().l, base.value().l);
}

TEST_P(DeriveSweep, SuccessProbabilityMachineryIsConsistent) {
  // The derivation must reproduce Lemma 1's quantities: p2^K <= t/n
  // (bounding far-point collisions) and (1 - p1^K)^L <= 1/e (bounding the
  // miss probability of event E1).
  const auto [n, c] = GetParam();
  const double w0 = 4.0 * c * c;
  const auto derived = DeriveParams(n, c, w0, 100);
  ASSERT_TRUE(derived.ok());
  const auto& p = derived.value();
  const double far_rate =
      std::pow(p.p2, static_cast<double>(p.k)) * (double(n) / 100.0);
  EXPECT_LE(far_rate, 1.0 + 1e-9);
  const double miss =
      std::pow(1.0 - std::pow(p.p1, static_cast<double>(p.k)),
               static_cast<double>(p.l));
  EXPECT_LE(miss, 1.0 / M_E + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeriveSweep,
    ::testing::Combine(::testing::Values<size_t>(10000, 1000000),
                       ::testing::Values(1.3, 1.5, 2.0)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// ----------------------------------------------------- alpha edge cases --

TEST(AlphaTest, KnownReferenceValues) {
  // xi(v) = v f(v) / tail(v) at selected points, cross-checked against
  // direct evaluation of the defining expression.
  for (double gamma : {0.1, 0.7518, 1.0, 2.0, 4.0}) {
    const double expected =
        gamma * NormalPdf(gamma) / NormalUpperTail(gamma);
    EXPECT_NEAR(AlphaForGamma(gamma), expected, 1e-12);
  }
}

TEST(AlphaTest, BoundDecreasesInBothArguments) {
  // 1/c^alpha(gamma) falls when either c or gamma grows.
  double prev = 1.0;
  for (double c = 1.1; c < 4.0; c += 0.3) {
    const double b = RhoStarBound(c, 2.0);
    EXPECT_LT(b, prev);
    prev = b;
  }
  prev = 1.0;
  for (double gamma = 0.5; gamma < 4.0; gamma += 0.25) {
    const double b = RhoStarBound(2.0, gamma);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

}  // namespace
}  // namespace dblsh::lsh
