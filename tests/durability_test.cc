// Tests for the durability subsystem (src/durability/ + the Collection
// integration): WAL segment round-trips and adversarial tail handling,
// snapshot edge cases, checkpoint/recover lifecycle, background tombstone
// compaction, and the randomized crash-point harness — FailPoints-injected
// kills at WAL/snapshot/manifest write boundaries, each followed by a
// reopen that is verified against the digests of the committed history
// ("every acknowledged commit survives, no torn commit is ever replayed").
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "dataset/float_matrix.h"
#include "dataset/synthetic.h"
#include "durability/fail_point.h"
#include "durability/format.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "util/random.h"
#include "util/status.h"

namespace dblsh {
namespace {

namespace fs = std::filesystem;
using durability::FailPoints;
using durability::ReadWal;
using durability::WalOp;
using durability::WalWriter;

// Fresh per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("dblsh_dur_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Order-independent digest of the live (id, vector-bytes) set — the
// logical state two collections must agree on. Computed from Snapshot()
// so quantized storage compares its deterministic decode.
uint64_t DigestOf(const Collection& collection) {
  const FloatMatrix snap = collection.Snapshot();
  uint64_t digest = 0;
  for (size_t g = 0; g < snap.rows(); ++g) {
    if (snap.IsDeleted(g)) continue;
    const auto id = static_cast<uint32_t>(g);
    uint64_t h = durability::Fnv1a64(
        reinterpret_cast<const uint8_t*>(&id), sizeof(id));
    h = durability::Fnv1a64(reinterpret_cast<const uint8_t*>(snap.row(g)),
                            snap.cols() * sizeof(float), h);
    digest ^= h;  // xor: insertion order must not matter
  }
  return digest;
}

std::vector<float> MakeVec(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (float& x : v) {
    x = static_cast<float>(rng->NextU64() % 2000) / 10.0f;
  }
  return v;
}

// Disarms every fail point before AND after each test in the file, so a
// test that arms a trigger can never leak it into a neighbor.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().Reset(); }
  void TearDown() override { FailPoints::Instance().Reset(); }
};

// ------------------------------------------------------------ WAL ---------

using WalTest = DurabilityTest;

TEST_F(WalTest, RoundTripsAllRecordKinds) {
  TempDir dir("wal_roundtrip");
  const std::string path = dir.path() + "/seg";
  const uint32_t dim = 4;
  auto writer = WalWriter::Create(path, dim, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const std::vector<float> vec = {1.5f, -2.0f, 3.25f, 0.0f};
  ASSERT_TRUE(writer.value()->Append(10, WalOp::kUpsert, 7, vec.data()).ok());
  ASSERT_TRUE(writer.value()->Append(11, WalOp::kDelete, 7, nullptr).ok());
  ASSERT_TRUE(writer.value()->Append(12, WalOp::kTrim, 3, nullptr).ok());
  writer.value().reset();

  auto replay = ReadWal(path, dim);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_TRUE(replay.value().tail.ok()) << replay.value().tail.ToString();
  ASSERT_EQ(replay.value().records.size(), 3u);
  const auto& r = replay.value().records;
  EXPECT_EQ(r[0].lsn, 10u);
  EXPECT_EQ(r[0].op, WalOp::kUpsert);
  EXPECT_EQ(r[0].id, 7u);
  EXPECT_EQ(r[0].vec, vec);
  EXPECT_EQ(r[1].op, WalOp::kDelete);
  EXPECT_TRUE(r[1].vec.empty());
  EXPECT_EQ(r[2].op, WalOp::kTrim);
  EXPECT_EQ(r[2].id, 3u);
}

TEST_F(WalTest, GroupCommitBatchesFsyncs) {
  TempDir dir("wal_group");
  auto writer = WalWriter::Create(dir.path() + "/seg", 2, 4);
  ASSERT_TRUE(writer.ok());
  const float vec[2] = {1, 2};
  const uint64_t header_syncs = writer.value()->syncs();
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer.value()->Append(i + 1, WalOp::kUpsert, 0, vec).ok());
  }
  // 8 appends at sync_every=4 cost exactly 2 fsyncs past the header's.
  EXPECT_EQ(writer.value()->syncs() - header_syncs, 2u);
  ASSERT_TRUE(writer.value()->Sync().ok());
  EXPECT_EQ(writer.value()->syncs() - header_syncs, 3u);
}

TEST_F(WalTest, RejectsDimMismatchAndMissingFile) {
  TempDir dir("wal_dim");
  const std::string path = dir.path() + "/seg";
  ASSERT_TRUE(WalWriter::Create(path, 4, 1).ok());
  auto replay = ReadWal(path, 8);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(ReadWal(dir.path() + "/nope", 4).status().code(),
            StatusCode::kIoError);
}

// Fuzz: truncating the segment at EVERY byte boundary must always yield a
// prefix of the original records plus a typed verdict — never a crash,
// never a record the full file did not contain (no phantom rows).
TEST_F(WalTest, TruncationAtEveryByteYieldsCleanPrefix) {
  TempDir dir("wal_trunc");
  const std::string path = dir.path() + "/seg";
  const uint32_t dim = 3;
  auto writer = WalWriter::Create(path, dim, 1);
  ASSERT_TRUE(writer.ok());
  Rng rng(11);
  for (uint64_t i = 0; i < 5; ++i) {
    const std::vector<float> vec = MakeVec(dim, &rng);
    if (i % 2 == 0) {
      ASSERT_TRUE(
          writer.value()->Append(i + 1, WalOp::kUpsert, 10 + i, vec.data())
              .ok());
    } else {
      ASSERT_TRUE(
          writer.value()->Append(i + 1, WalOp::kDelete, 10 + i, nullptr)
              .ok());
    }
  }
  writer.value().reset();
  const std::vector<uint8_t> full = ReadFileBytes(path);
  auto full_replay = ReadWal(path, dim);
  ASSERT_TRUE(full_replay.ok());
  ASSERT_EQ(full_replay.value().records.size(), 5u);

  const std::string cut_path = dir.path() + "/cut";
  for (size_t len = 0; len < full.size(); ++len) {
    WriteFileBytes(cut_path,
                   std::vector<uint8_t>(full.begin(), full.begin() + len));
    auto replay = ReadWal(cut_path, dim);
    if (!replay.ok()) {
      // Only header damage may fail outright.
      EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
      continue;
    }
    const auto& got = replay.value().records;
    ASSERT_LE(got.size(), 5u) << "phantom record at cut " << len;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].lsn, full_replay.value().records[i].lsn);
      EXPECT_EQ(got[i].id, full_replay.value().records[i].id);
      EXPECT_EQ(got[i].vec, full_replay.value().records[i].vec);
    }
    // A cut at a record boundary reads as a clean (shorter) segment; a
    // cut inside a record must be reported as a torn tail.
    const bool at_boundary = replay.value().bytes_scanned == len;
    EXPECT_TRUE(at_boundary ? replay.value().tail.ok()
                            : !replay.value().tail.ok())
        << "cut at byte " << len;
  }
}

// Fuzz: flipping any single byte must never surface a damaged record —
// replay stops at (or before) the flipped record with a typed tail.
TEST_F(WalTest, BitFlipsNeverYieldDamagedRecords) {
  TempDir dir("wal_flip");
  const std::string path = dir.path() + "/seg";
  const uint32_t dim = 2;
  auto writer = WalWriter::Create(path, dim, 1);
  ASSERT_TRUE(writer.ok());
  Rng rng(13);
  std::vector<std::vector<float>> vecs;
  for (uint64_t i = 0; i < 4; ++i) {
    vecs.push_back(MakeVec(dim, &rng));
    ASSERT_TRUE(
        writer.value()->Append(i + 1, WalOp::kUpsert, i, vecs.back().data())
            .ok());
  }
  writer.value().reset();
  const std::vector<uint8_t> full = ReadFileBytes(path);

  const std::string flip_path = dir.path() + "/flip";
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::vector<uint8_t> mutated = full;
    mutated[pos] ^= 0x40;
    WriteFileBytes(flip_path, mutated);
    auto replay = ReadWal(flip_path, dim);
    if (!replay.ok()) {
      EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
      continue;
    }
    // Every surviving record must be bit-identical to the original at the
    // same position, and the flip must cut replay short with a typed
    // tail — a checksum collision under a single-bit flip would be the
    // only other outcome, and FNV-1a has none over one record.
    const auto& got = replay.value().records;
    ASSERT_LT(got.size(), 5u);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].lsn, i + 1);
      EXPECT_EQ(got[i].vec, vecs[i]);
    }
    EXPECT_FALSE(replay.value().tail.ok())
        << "flip at byte " << pos << " went undetected";
  }
}

TEST_F(WalTest, GarbageAppendedAfterValidRecordsIsTypedNotFatal) {
  TempDir dir("wal_garbage");
  const std::string path = dir.path() + "/seg";
  const uint32_t dim = 2;
  auto writer = WalWriter::Create(path, dim, 1);
  ASSERT_TRUE(writer.ok());
  const float vec[2] = {4, 2};
  ASSERT_TRUE(writer.value()->Append(1, WalOp::kUpsert, 0, vec).ok());
  ASSERT_TRUE(writer.value()->Append(2, WalOp::kDelete, 0, nullptr).ok());
  writer.value().reset();

  Rng rng(17);
  const std::vector<uint8_t> bytes = ReadFileBytes(path);
  for (int round = 0; round < 32; ++round) {
    std::vector<uint8_t> mutated = bytes;
    const size_t garbage = 1 + rng.NextU64() % 64;
    for (size_t i = 0; i < garbage; ++i) {
      mutated.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    WriteFileBytes(path, mutated);
    auto replay = ReadWal(path, dim);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value().records.size(), 2u);
    EXPECT_FALSE(replay.value().tail.ok());
    EXPECT_EQ(replay.value().tail.code(), StatusCode::kCorruption);
  }
}

// ------------------------------------------------- snapshot edge cases ----

std::string DurableSpec(const std::string& dir, const std::string& extra = "",
                        const std::string& indexes = "LinearScan") {
  return "collection,durability=" + dir + extra + ": " + indexes;
}

using DurabilitySnapshotTest = DurabilityTest;

TEST_F(DurabilitySnapshotTest, EmptyCollectionRoundTrips) {
  TempDir dir("snap_empty");
  auto made = Collection::FromSpec(DurableSpec(dir.path()),
                                   std::make_unique<FloatMatrix>(0, 8));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  EXPECT_EQ(made.value()->size(), 0u);
  made.value().reset();

  auto reopened = Collection::Open(DurableSpec(dir.path()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 0u);
  EXPECT_EQ(reopened.value()->dim(), 8u);
  // An empty store must still accept writes after recovery.
  const std::vector<float> vec(8, 1.0f);
  auto up = reopened.value()->Upsert(vec.data(), vec.size());
  ASSERT_TRUE(up.ok()) << up.status().ToString();
}

TEST_F(DurabilitySnapshotTest, AllTombstonedShardRoundTrips) {
  TempDir dir("snap_tombs");
  FloatMatrix data = GenerateClustered({.n = 24, .dim = 8, .clusters = 3});
  auto made =
      Collection::FromSpec(DurableSpec(dir.path(), ",shards=2"),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  for (uint32_t id = 0; id < 24; ++id) {
    ASSERT_TRUE(made.value()->Delete(id).ok());
  }
  ASSERT_TRUE(made.value()->Checkpoint().ok());
  const uint64_t digest = DigestOf(*made.value());
  made.value().reset();

  auto reopened = Collection::Open(DurableSpec(dir.path(), ",shards=2"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 0u);
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
  // Recycled slots must work: new upserts land on tombstoned rows.
  Rng rng(23);
  for (int i = 0; i < 6; ++i) {
    const auto vec = MakeVec(8, &rng);
    ASSERT_TRUE(reopened.value()->Upsert(vec.data(), vec.size()).ok());
  }
  EXPECT_EQ(reopened.value()->size(), 6u);
}

TEST_F(DurabilitySnapshotTest, Sq8SnapshotRoundTripsByteIdentically) {
  TempDir dir("snap_sq8");
  FloatMatrix data = GenerateClustered({.n = 60, .dim = 12, .clusters = 4});
  const std::string extra = ",storage=sq8,rerank=2";
  auto made =
      Collection::FromSpec(DurableSpec(dir.path(), extra),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ASSERT_TRUE(made.value()->Delete(3).ok());
  ASSERT_TRUE(made.value()->Delete(17).ok());
  ASSERT_TRUE(made.value()->Checkpoint().ok());
  const uint64_t digest = DigestOf(*made.value());
  const std::vector<uint8_t> snap_before =
      ReadFileBytes(durability::SnapshotPath(dir.path(), 0));
  ASSERT_FALSE(snap_before.empty());
  made.value().reset();

  // Recovery adopts the persisted sq8 codes verbatim (the fp32 payload was
  // released, so re-encoding is impossible) and the checkpoint recovery
  // finishes with must reproduce the snapshot file byte for byte.
  auto reopened = Collection::Open(DurableSpec(dir.path(), extra));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
  EXPECT_EQ(ReadFileBytes(durability::SnapshotPath(dir.path(), 0)),
            snap_before);
}

TEST_F(DurabilitySnapshotTest, PqSnapshotRoundTripsByteIdentically) {
  TempDir dir("snap_pq");
  FloatMatrix data = GenerateClustered({.n = 60, .dim = 12, .clusters = 4});
  const std::string extra = ",storage=pq,m=3,rerank=2";
  auto made =
      Collection::FromSpec(DurableSpec(dir.path(), extra),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ASSERT_TRUE(made.value()->Delete(3).ok());
  ASSERT_TRUE(made.value()->Delete(17).ok());
  ASSERT_TRUE(made.value()->Checkpoint().ok());
  const uint64_t digest = DigestOf(*made.value());
  const std::vector<uint8_t> snap_before =
      ReadFileBytes(durability::SnapshotPath(dir.path(), 0));
  ASSERT_FALSE(snap_before.empty());
  made.value().reset();

  // Recovery adopts the persisted pq codes and codebooks verbatim (the
  // fp32 payload was released, so re-encoding is impossible) and the
  // checkpoint recovery finishes with must reproduce the snapshot file
  // byte for byte.
  auto reopened = Collection::Open(DurableSpec(dir.path(), extra));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
  EXPECT_EQ(ReadFileBytes(durability::SnapshotPath(dir.path(), 0)),
            snap_before);
}

// A kRetrain WAL record replays deterministically: closing without a
// final checkpoint forces reopen to re-run the retrain from the log, and
// the recovered codes must decode to the same bytes.
TEST_F(DurabilitySnapshotTest, PqRetrainReplaysFromWal) {
  TempDir dir("snap_pq_retrain");
  FloatMatrix data = GenerateClustered({.n = 64, .dim = 8, .clusters = 4});
  const std::string extra = ",storage=pq,m=4,rerank=2";
  const std::string indexes = "LinearScan,rebuild_threshold=8";
  auto made =
      Collection::FromSpec(DurableSpec(dir.path(), extra, indexes),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  // No checkpoint after this point: every mutation — including the
  // retrains the threshold keeps triggering — must come back via replay.
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    const auto vec = MakeVec(8, &rng);
    ASSERT_TRUE(made.value()->Upsert(vec.data(), vec.size()).ok());
    if (i % 7 == 3) {
      ASSERT_TRUE(made.value()->Delete(static_cast<uint32_t>(i)).ok());
    }
  }
  const uint64_t digest = DigestOf(*made.value());
  const size_t live = made.value()->size();
  made.value().reset();

  auto reopened =
      Collection::Open(DurableSpec(dir.path(), extra, indexes));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), live);
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
}

// Reopening a pq collection with a different m than the snapshot was
// written with must fail typed instead of adopting mismatched codes.
TEST_F(DurabilitySnapshotTest, PqSubspaceMismatchOnReopenIsRejected) {
  TempDir dir("snap_pq_m");
  FloatMatrix data = GenerateClustered({.n = 40, .dim = 12, .clusters = 4});
  auto made = Collection::FromSpec(
      DurableSpec(dir.path(), ",storage=pq,m=3"),
      std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  ASSERT_TRUE(made.value()->Checkpoint().ok());
  made.value().reset();
  auto reopened =
      Collection::Open(DurableSpec(dir.path(), ",storage=pq,m=4"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(DurabilitySnapshotTest, CheckpointWhileBackgroundRebuildInflight) {
  TempDir dir("snap_rebuild");
  FloatMatrix data = GenerateClustered({.n = 80, .dim = 8, .clusters = 4});
  const std::string extra = ",rebuild=background";
  auto made = Collection::FromSpec(
      DurableSpec(dir.path(), extra, "LinearScan,rebuild_threshold=4"),
      std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Rng rng(29);
  // Keep staleness crossing the threshold so rebuilds are repeatedly
  // inflight while checkpoints interleave with them.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 6; ++i) {
      const auto vec = MakeVec(8, &rng);
      ASSERT_TRUE(made.value()->Upsert(vec.data(), vec.size()).ok());
    }
    ASSERT_TRUE(made.value()->Checkpoint().ok());
  }
  const uint64_t digest = DigestOf(*made.value());
  const size_t live = made.value()->size();
  made.value().reset();

  auto reopened = Collection::Open(DurableSpec(dir.path(), extra));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), live);
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
}

// ------------------------------------------------------- open errors ------

using DurabilityOpenTest = DurabilityTest;

TEST_F(DurabilityOpenTest, MissingDirectoryIsNotFound) {
  TempDir dir("open_missing");
  auto opened = Collection::Open(DurableSpec(dir.path() + "/nope"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST_F(DurabilityOpenTest, OpenRequiresDurabilityKey) {
  auto opened = Collection::Open("collection: LinearScan");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DurabilityOpenTest, SeedingOverExistingStateIsRejected) {
  TempDir dir("open_seed");
  FloatMatrix data = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto made =
      Collection::FromSpec(DurableSpec(dir.path()),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok());
  made.value().reset();

  FloatMatrix again = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto clobber =
      Collection::FromSpec(DurableSpec(dir.path()),
                           std::make_unique<FloatMatrix>(std::move(again)));
  ASSERT_FALSE(clobber.ok());
  EXPECT_EQ(clobber.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DurabilityOpenTest, CorruptManifestIsTypedAndNeverClobbered) {
  TempDir dir("open_manifest");
  FloatMatrix data = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto made =
      Collection::FromSpec(DurableSpec(dir.path()),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok());
  made.value().reset();

  std::vector<uint8_t> manifest =
      ReadFileBytes(durability::ManifestPath(dir.path()));
  ASSERT_FALSE(manifest.empty());
  manifest[manifest.size() / 2] ^= 0xFF;
  WriteFileBytes(durability::ManifestPath(dir.path()), manifest);

  auto opened = Collection::Open(DurableSpec(dir.path()));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  // Seeding over the damaged directory must refuse too, not silently
  // reinitialize it.
  FloatMatrix again = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto seeded =
      Collection::FromSpec(DurableSpec(dir.path()),
                           std::make_unique<FloatMatrix>(std::move(again)));
  ASSERT_FALSE(seeded.ok());
  EXPECT_EQ(seeded.status().code(), StatusCode::kCorruption);
}

TEST_F(DurabilityOpenTest, CorruptSnapshotIsTyped) {
  TempDir dir("open_snap");
  FloatMatrix data = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto made =
      Collection::FromSpec(DurableSpec(dir.path()),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok());
  made.value().reset();

  const std::string snap_path = durability::SnapshotPath(dir.path(), 0);
  std::vector<uint8_t> snap = ReadFileBytes(snap_path);
  ASSERT_FALSE(snap.empty());
  snap[snap.size() - 3] ^= 0x01;
  WriteFileBytes(snap_path, snap);

  auto opened = Collection::Open(DurableSpec(dir.path()));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST_F(DurabilityOpenTest, ShardGeometryMismatchIsRejected) {
  TempDir dir("open_shards");
  FloatMatrix data = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto made =
      Collection::FromSpec(DurableSpec(dir.path(), ",shards=2"),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok());
  made.value().reset();

  auto opened = Collection::Open(DurableSpec(dir.path(), ",shards=4"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DurabilityOpenTest, TornWalTailOnLiveSegmentIsRecoveredFrom) {
  TempDir dir("open_torn");
  FloatMatrix data = GenerateClustered({.n = 20, .dim = 8, .clusters = 2});
  auto made =
      Collection::FromSpec(DurableSpec(dir.path()),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok());
  Rng rng(31);
  const auto vec = MakeVec(8, &rng);
  ASSERT_TRUE(made.value()->Upsert(vec.data(), vec.size()).ok());
  const uint64_t digest = DigestOf(*made.value());
  made.value().reset();

  // Append garbage to the live segment: a crash mid-append. Recovery must
  // keep every acknowledged record and ignore the tail.
  const auto segments = durability::ListWalSegments(dir.path(), 0);
  ASSERT_FALSE(segments.empty());
  const std::string seg_path =
      durability::WalPath(dir.path(), 0, segments.back());
  std::vector<uint8_t> bytes = ReadFileBytes(seg_path);
  for (int i = 0; i < 13; ++i) bytes.push_back(0xA5);
  WriteFileBytes(seg_path, bytes);

  auto reopened = Collection::Open(DurableSpec(dir.path()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 21u);
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
}

// ------------------------------------------------------- compaction -------

using CompactTest = DurabilityTest;

TEST_F(CompactTest, ThresholdTriggersShardRewrite) {
  TempDir dir("compact_basic");
  FloatMatrix data = GenerateClustered({.n = 100, .dim = 8, .clusters = 4});
  auto made = Collection::FromSpec(
      DurableSpec(dir.path(), ",compact_threshold=0.3"),
      std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();
  // Tombstone the tail 40 rows: ratio 0.4 crosses the 0.3 threshold and
  // the whole dead run is physically trimmable.
  for (uint32_t id = 60; id < 100; ++id) ASSERT_TRUE(c.Delete(id).ok());

  // The crossing delete schedules the compaction task synchronously, so
  // quiescing background work is a deterministic wait for it.
  c.WaitForRebuilds();
  EXPECT_GE(c.Durability().compactions, 1u);
  EXPECT_EQ(c.size(), 60u);
  EXPECT_EQ(c.Snapshot().rows(), 60u) << "tombstoned tail not trimmed";

  // The rewrite (and its kTrim WAL record) must survive a reopen.
  const uint64_t digest = DigestOf(c);
  made.value().reset();
  auto reopened =
      Collection::Open(DurableSpec(dir.path(), ",compact_threshold=0.3"));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->size(), 60u);
  EXPECT_EQ(reopened.value()->Snapshot().rows(), 60u);
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
}

TEST_F(CompactTest, Sq8ShardCompactsAndRoundTrips) {
  TempDir dir("compact_sq8");
  FloatMatrix data = GenerateClustered({.n = 100, .dim = 8, .clusters = 4});
  const std::string extra = ",storage=sq8,rerank=2,compact_threshold=0.25";
  auto made =
      Collection::FromSpec(DurableSpec(dir.path(), extra),
                           std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();
  for (uint32_t id = 70; id < 100; ++id) ASSERT_TRUE(c.Delete(id).ok());
  c.WaitForRebuilds();
  EXPECT_GE(c.Durability().compactions, 1u);
  EXPECT_EQ(c.Snapshot().rows(), 70u);

  const uint64_t digest = DigestOf(c);
  made.value().reset();
  auto reopened = Collection::Open(DurableSpec(dir.path(), extra));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(DigestOf(*reopened.value()), digest);
}

// Compaction must never block a concurrent reader: searches run throughout
// the trigger, the background rewrite, and the swap (TSan-verified in the
// sanitizer CI jobs).
TEST_F(CompactTest, CompactionDoesNotBlockConcurrentReader) {
  TempDir dir("compact_reader");
  FloatMatrix data = GenerateClustered({.n = 200, .dim = 8, .clusters = 4});
  auto made = Collection::FromSpec(
      DurableSpec(dir.path(), ",compact_threshold=0.3"),
      std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> searches{0};
  std::atomic<uint64_t> failures{0};
  std::thread reader([&] {
    Rng rng(37);
    QueryRequest request;
    request.k = 5;
    while (!stop.load(std::memory_order_acquire)) {
      const auto query = MakeVec(8, &rng);
      auto response = c.Search(query.data(), request);
      if (!response.ok()) failures.fetch_add(1);
      searches.fetch_add(1);
    }
  });

  // Push the tombstone ratio past the threshold while the reader runs.
  for (uint32_t id = 120; id < 200; ++id) ASSERT_TRUE(c.Delete(id).ok());
  // Quiesce with the reader still searching: the background rewrite and
  // its swap-in happen underneath live shared-lock readers.
  c.WaitForRebuilds();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GE(c.Durability().compactions, 1u);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(searches.load(), 0u);
  EXPECT_EQ(c.Snapshot().rows(), 120u);
  // Post-compaction searches still see exactly the live set.
  QueryRequest request;
  request.k = 10;
  Rng rng(41);
  const auto query = MakeVec(8, &rng);
  auto response = c.Search(query.data(), request);
  ASSERT_TRUE(response.ok());
  for (const Neighbor& nb : response.value().neighbors) {
    EXPECT_LT(nb.id, 120u);
  }
}

// --------------------------------------------- randomized crash harness ---

// One randomized kill-point iteration: run a random upsert/replace/delete/
// checkpoint trace against a durable collection with one armed fail point,
// record the logical digest after every applied mutation, then reopen and
// check the recovered state is exactly one of the two reachable durable
// states — the last acknowledged digest, or (when the dying write made it
// to disk whole) the digest including the final unacknowledged mutation.
// Any other outcome means a lost acknowledged commit or a replayed torn
// commit.
void RunCrashIteration(uint64_t seed) {
  SCOPED_TRACE("crash iteration seed=" + std::to_string(seed));
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  TempDir dir("crash_" + std::to_string(seed));

  const size_t dim = 8;
  const uint64_t shards = 1 + rng.NextU64() % 2;
  const uint64_t wal_sync = 1 + rng.NextU64() % 4;
  const bool sq8 = rng.NextU64() % 4 == 0;
  std::string extra = ",shards=" + std::to_string(shards) +
                      ",wal_sync=" + std::to_string(wal_sync);
  if (sq8) extra += ",storage=sq8,rerank=2";
  const std::string spec = DurableSpec(dir.path(), extra);

  const size_t n0 = 8 + rng.NextU64() % 12;
  FloatMatrix data(n0, dim);
  for (size_t r = 0; r < n0; ++r) {
    const auto vec = MakeVec(dim, &rng);
    std::memcpy(data.mutable_row(r), vec.data(), dim * sizeof(float));
  }
  auto made =
      Collection::FromSpec(spec, std::make_unique<FloatMatrix>(std::move(data)));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();

  // Arm one random kill point AFTER the seeding checkpoint, so the trace
  // below is what gets killed. nth counts hits from here on.
  const char* points[] = {durability::kFailWalAppend,
                          durability::kFailWalSync,
                          durability::kFailSnapshotWrite,
                          durability::kFailManifestWrite};
  const bool armed = rng.NextU64() % 5 != 0;  // 20%: clean-run control
  if (armed) {
    FailPoints::Instance().Reset();
    FailPoints::Instance().Arm(points[rng.NextU64() % 4],
                               1 + rng.NextU64() % 24, rng.NextU64() % 48);
  }

  // digests[i] = logical state after the i-th applied mutation; the last
  // entry a successful (acknowledged) mutation produced is last_acked.
  std::vector<uint64_t> digests = {DigestOf(c)};
  size_t last_acked = 0;
  std::vector<uint32_t> live;
  for (uint32_t id = 0; id < n0; ++id) live.push_back(id);
  bool wal_poisoned = false;

  const int ops = 24 + static_cast<int>(rng.NextU64() % 12);
  for (int op = 0; op < ops && !wal_poisoned; ++op) {
    const uint64_t kind = rng.NextU64() % 100;
    if (kind < 10) {
      // Checkpoint: a failure here (injected snapshot/manifest/rotation
      // crash) leaves the logical state untouched and the WAL intact, so
      // the trace simply continues.
      (void)c.Checkpoint();
      continue;
    }
    Status status;
    if (kind < 55 || live.empty()) {
      const auto vec = MakeVec(dim, &rng);
      auto up = c.Upsert(vec.data(), vec.size());
      status = up.status();
      if (up.ok()) live.push_back(up.value());
    } else if (kind < 75) {
      const uint32_t id = live[rng.NextU64() % live.size()];
      const auto vec = MakeVec(dim, &rng);
      status = c.Upsert(id, vec.data(), vec.size()).status();
    } else {
      const size_t pick = rng.NextU64() % live.size();
      status = c.Delete(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    // Log-after-apply: the mutation is in memory either way; only its
    // acknowledgement differs. An IoError is the injected crash — the
    // writer is now poisoned, no later mutation can be acknowledged, so
    // the process is as good as dead: stop the trace.
    digests.push_back(DigestOf(c));
    if (status.ok()) {
      last_acked = digests.size() - 1;
    } else {
      ASSERT_EQ(status.code(), StatusCode::kIoError) << status.ToString();
      wal_poisoned = true;
    }
  }

  const uint64_t final_digest = digests.back();
  made.value().reset();  // "crash": drop all in-memory state
  FailPoints::Instance().Reset();

  auto reopened = Collection::Open(spec);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const uint64_t recovered = DigestOf(*reopened.value());

  if (!wal_poisoned) {
    // Nothing died (or only a checkpoint did): recovery must reproduce
    // the final state exactly.
    ASSERT_EQ(recovered, final_digest);
  } else {
    // The dying append either reached disk whole (the unacked mutation is
    // replayed) or it did not (replay stops at the acked prefix). Both
    // are legal; anything else lost an acked commit or replayed a torn
    // one.
    ASSERT_TRUE(recovered == digests[last_acked] ||
                recovered == final_digest)
        << "recovered state matches neither the acked prefix nor the "
           "acked-prefix-plus-dying-write";
  }

  // The recovered collection must serve: search and mutate once more.
  QueryRequest request;
  request.k = 3;
  const auto query = MakeVec(dim, &rng);
  auto response = reopened.value()->Search(query.data(), request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const auto vec = MakeVec(dim, &rng);
  auto up = reopened.value()->Upsert(vec.data(), vec.size());
  ASSERT_TRUE(up.ok()) << up.status().ToString();
}

using DurabilityRecoveryTest = DurabilityTest;

// ISSUE acceptance: >= 200 randomized kill-point iterations, each verified
// against the committed-prefix oracle. Split into shards so a failure
// pins a narrower seed range (and per-test runtime stays bounded).
TEST_F(DurabilityRecoveryTest, RandomizedCrashPoints000to049) {
  for (uint64_t seed = 0; seed < 50; ++seed) RunCrashIteration(seed);
}
TEST_F(DurabilityRecoveryTest, RandomizedCrashPoints050to099) {
  for (uint64_t seed = 50; seed < 100; ++seed) RunCrashIteration(seed);
}
TEST_F(DurabilityRecoveryTest, RandomizedCrashPoints100to149) {
  for (uint64_t seed = 100; seed < 150; ++seed) RunCrashIteration(seed);
}
TEST_F(DurabilityRecoveryTest, RandomizedCrashPoints150to199) {
  for (uint64_t seed = 150; seed < 200; ++seed) RunCrashIteration(seed);
}

// A checkpoint that dies at every stage of its rotation protocol must
// leave a recoverable directory: the manifest rename is the commit point,
// and either side of it recovers to the same logical state.
TEST_F(DurabilityRecoveryTest, CheckpointCrashAtEveryStageRecovers) {
  const char* points[] = {durability::kFailWalAppend,  // new segment header
                          durability::kFailSnapshotWrite,
                          durability::kFailManifestWrite};
  for (const char* point : points) {
    // The manifest is written exactly once per checkpoint, so only nth=1
    // can fire for it; the per-shard points get both shards (nth=1 and 2).
    const uint64_t max_nth = point == durability::kFailManifestWrite ? 1 : 2;
    for (uint64_t nth = 1; nth <= max_nth; ++nth) {
      SCOPED_TRACE(std::string(point) + " nth=" + std::to_string(nth));
      TempDir dir("ckpt_crash");
      FloatMatrix data = GenerateClustered({.n = 30, .dim = 8, .clusters = 3});
      auto made =
          Collection::FromSpec(DurableSpec(dir.path(), ",shards=2"),
                               std::make_unique<FloatMatrix>(std::move(data)));
      ASSERT_TRUE(made.ok()) << made.status().ToString();
      Rng rng(nth);
      for (int i = 0; i < 5; ++i) {
        const auto vec = MakeVec(8, &rng);
        ASSERT_TRUE(made.value()->Upsert(vec.data(), vec.size()).ok());
      }
      FailPoints::Instance().Reset();
      FailPoints::Instance().Arm(point, nth, 7);
      const Status ckpt = made.value()->Checkpoint();
      FailPoints::Instance().Reset();
      EXPECT_FALSE(ckpt.ok()) << "fail point did not fire";
      const uint64_t digest = DigestOf(*made.value());
      made.value().reset();

      auto reopened = Collection::Open(DurableSpec(dir.path(), ",shards=2"));
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      EXPECT_EQ(DigestOf(*reopened.value()), digest);
    }
  }
}

}  // namespace
}  // namespace dblsh
