// Tests for the Collection serving façade: collection-spec grammar,
// transactional Upsert/Delete, lazy builds and threshold-driven rebuild
// scheduling for static methods, routing, filtered search across all 12
// registered methods, a randomized interleaved mutation/query property
// test against the LinearScan oracle, and a threaded reader/writer stress
// test (the TSan CI job runs this file).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/collection.h"
#include "core/index_factory.h"
#include "dataset/float_matrix.h"
#include "dataset/synthetic.h"
#include "exec/task_executor.h"
#include "util/random.h"

namespace dblsh {
namespace {

FloatMatrix EasyData(size_t n = 1000, size_t dim = 16, uint64_t seed = 801) {
  return GenerateClustered(
      {.n = n, .dim = dim, .clusters = 10, .seed = seed});
}

std::unique_ptr<FloatMatrix> EasyDataPtr(size_t n = 1000, size_t dim = 16,
                                         uint64_t seed = 801) {
  return std::make_unique<FloatMatrix>(EasyData(n, dim, seed));
}

// A vector far outside the clustered cloud (centers live in
// [0, 100)^dim), unambiguously its own 1-NN.
std::vector<float> OutlierVector(size_t dim, float value = 500.f) {
  return std::vector<float>(dim, value);
}

bool ContainsId(const std::vector<Neighbor>& result, uint32_t id) {
  return std::any_of(result.begin(), result.end(),
                     [id](const Neighbor& n) { return n.id == id; });
}

// Small-parameter specs for all 12 registered methods (update_test.cc's
// sizing: every method builds in milliseconds on the test datasets).
std::vector<std::string> AllMethodSpecs() {
  return {"DB-LSH,t=16", "FB-LSH,t=16", "E2LSH",      "LCCS-LSH",
          "LSB-Forest",  "LinearScan",  "MultiProbe", "PM-LSH",
          "QALSH,m=20",  "R2LSH,m=20",  "SRS",        "VHP,m=20"};
}

// Brute-force k-NN over the live rows of `data`, restricted to ids the
// (optional) filter admits — the oracle for every coherence check here.
std::vector<Neighbor> Oracle(const FloatMatrix& data, const float* q,
                             size_t k, const QueryFilter* filter = nullptr) {
  std::vector<Neighbor> all;
  for (uint32_t id = 0; id < data.rows(); ++id) {
    if (data.IsDeleted(id)) continue;
    if (filter != nullptr && !filter->Admits(id)) continue;
    double d2 = 0.0;
    for (size_t j = 0; j < data.cols(); ++j) {
      const double diff = double(q[j]) - double(data.at(id, j));
      d2 += diff * diff;
    }
    all.push_back({static_cast<float>(std::sqrt(d2)), id});
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end());
  all.resize(take);
  return all;
}

// Exact results may swap ranks with the float/SIMD pipeline on near-ties;
// accept id equality or a distance tie (same tolerance as update_test.cc).
void ExpectMatchesOracle(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(got[i].id == want[i].id ||
                std::fabs(got[i].dist - want[i].dist) <=
                    1e-4f * (1.0f + want[i].dist))
        << context << " rank " << i << ": got id " << got[i].id << " dist "
        << got[i].dist << ", want id " << want[i].id << " dist "
        << want[i].dist;
  }
}

// ------------------------------------------------------ spec grammar ------

TEST(CollectionSpecTest, FromSpecBuildsNamedIndexes) {
  auto made = Collection::FromSpec(
      "collection: DB-LSH,t=16,name=main; LinearScan; "
      "PM-LSH,rebuild_threshold=8",
      EasyDataPtr(400));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  const auto infos = made.value()->Indexes();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].name, "main");
  EXPECT_EQ(infos[0].method, "DB-LSH");
  EXPECT_TRUE(infos[0].supports_updates);
  EXPECT_TRUE(infos[0].built);
  EXPECT_EQ(infos[1].name, "LinearScan");
  EXPECT_EQ(infos[2].name, "PM-LSH");
  EXPECT_FALSE(infos[2].supports_updates);
  EXPECT_EQ(infos[2].rebuild_threshold, 8u);
  EXPECT_EQ(infos[0].rebuild_threshold, Collection::kDefaultRebuildThreshold);
}

TEST(CollectionSpecTest, FromSpecRejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "DB-LSH; LinearScan",              // missing collection: prefix
      "collection:",                     // no index specs
      "collection: DB-LSH;; LinearScan", // empty part
      "collection: NoSuchMethod",        // unknown method
      "collection: DB-LSH; DB-LSH",      // duplicate default name
      "collection: DB-LSH,rebuild_threshold=abc",  // bad collection key
      "collection: DB-LSH,no_such_key=1",          // bad method key
  };
  for (const std::string& spec : bad) {
    auto made = Collection::FromSpec(spec, EasyDataPtr(200));
    EXPECT_FALSE(made.ok()) << spec;
  }
  // Duplicate methods disambiguate with name=.
  auto made = Collection::FromSpec(
      "collection: DB-LSH,name=fast,t=8; DB-LSH,name=accurate,t=64",
      EasyDataPtr(200));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
}

TEST(CollectionSpecTest, PqSpecKeysValidated) {
  // m/nbits are pq-only keys; nbits must be 8 when given; m must fit the
  // dimensionality (dim 16 here) and be positive.
  const std::vector<std::string> bad = {
      "collection,m=4: LinearScan",               // m without storage=pq
      "collection,storage=sq8,m=4: LinearScan",   // m under sq8
      "collection,nbits=8: LinearScan",           // nbits without storage=pq
      "collection,storage=pq,m=4,nbits=4: LinearScan",  // unsupported width
      "collection,storage=pq,m=0: LinearScan",    // zero subspaces
      "collection,storage=pq,m=17: LinearScan",   // m > dim
  };
  for (const std::string& spec : bad) {
    EXPECT_FALSE(Collection::FromSpec(spec, EasyDataPtr(200)).ok()) << spec;
  }
  const std::vector<std::string> good = {
      "collection,storage=pq: LinearScan",            // default m
      "collection,storage=pq,m=4: LinearScan",
      "collection,storage=pq,m=4,nbits=8: LinearScan",
      "collection,storage=pq,m=16,rerank=8: LinearScan",  // m == dim
  };
  for (const std::string& spec : good) {
    auto made = Collection::FromSpec(spec, EasyDataPtr(200));
    EXPECT_TRUE(made.ok()) << spec << ": " << made.status().ToString();
  }
}

// Storage() must report bytes_per_vector uniformly for every storage
// kind — the `collection stats` and serving-stats surfaces rely on it.
TEST(CollectionStorageTest, BytesPerVectorReportedForAllKinds) {
  struct Case {
    const char* extra;
    const char* kind;
    size_t bytes;   // at dim 16
    size_t rerank;  // 0 = fp32 (no re-rank)
  };
  const Case cases[] = {
      {"", "fp32", 64, 0},
      {",storage=fp32", "fp32", 64, 0},
      {",storage=sq8", "sq8", 16, 4},        // default rerank
      {",storage=pq,m=4", "pq", 4, 4},
      {",storage=pq,m=4,rerank=6", "pq", 4, 6},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.extra);
    auto made = Collection::FromSpec(
        std::string("collection") + c.extra + ": LinearScan",
        EasyDataPtr(200));
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    const CollectionStorageInfo info = made.value()->Storage();
    EXPECT_EQ(info.kind, c.kind);
    EXPECT_EQ(info.bytes_per_vector, c.bytes);
    EXPECT_EQ(info.rerank, c.rerank);
    EXPECT_GT(info.resident_bytes, 0u);
    EXPECT_FALSE(info.shard_resident_bytes.empty());
  }
}

// ----------------------------------------------- transactional updates ----

TEST(CollectionTest, UpsertDeleteSearchRoundTrip) {
  auto made = Collection::FromSpec("collection: DB-LSH,t=16; LinearScan",
                                   EasyDataPtr(600));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();
  EXPECT_EQ(c.size(), 600u);
  EXPECT_EQ(c.dim(), 16u);
  EXPECT_EQ(c.epoch(), 0u);

  const std::vector<float> outlier = OutlierVector(16);
  auto up = c.Upsert(outlier.data(), outlier.size());
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  const uint32_t id = up.value();
  EXPECT_EQ(id, 600u);
  EXPECT_EQ(c.size(), 601u);
  EXPECT_EQ(c.epoch(), 1u);

  // Both indexes serve the new vector as its own exact 1-NN.
  QueryRequest request;
  request.k = 1;
  for (const char* index : {"DB-LSH", "LinearScan"}) {
    auto got = c.Search(outlier.data(), request, index);
    ASSERT_TRUE(got.ok()) << index;
    ASSERT_EQ(got.value().neighbors.size(), 1u) << index;
    EXPECT_EQ(got.value().neighbors[0].id, id) << index;
    EXPECT_FLOAT_EQ(got.value().neighbors[0].dist, 0.f) << index;
  }

  // Delete commits everywhere at once.
  ASSERT_TRUE(c.Delete(id).ok());
  EXPECT_EQ(c.size(), 600u);
  EXPECT_EQ(c.epoch(), 2u);
  EXPECT_EQ(c.Delete(id).code(), StatusCode::kNotFound);
  EXPECT_EQ(c.Delete(99999).code(), StatusCode::kNotFound);
  request.k = 5;
  for (const char* index : {"DB-LSH", "LinearScan"}) {
    auto got = c.Search(outlier.data(), request, index);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(ContainsId(got.value().neighbors, id)) << index;
  }

  // Dimension mismatches are rejected before any state changes.
  EXPECT_EQ(c.Upsert(outlier.data(), 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.epoch(), 2u);
}

TEST(CollectionTest, UpsertReplaceKeepsIdServingNewVector) {
  auto made = Collection::FromSpec("collection: DB-LSH,t=16; LinearScan",
                                   EasyDataPtr(500));
  ASSERT_TRUE(made.ok());
  Collection& c = *made.value();
  const std::vector<float> outlier = OutlierVector(16);
  const uint32_t id = 123;
  auto rep = c.Upsert(id, outlier.data(), outlier.size());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep.value(), id);  // same id keeps serving
  EXPECT_EQ(c.size(), 500u);   // replace, not grow

  QueryRequest request;
  request.k = 1;
  for (const char* index : {"DB-LSH", "LinearScan"}) {
    auto got = c.Search(outlier.data(), request, index);
    ASSERT_TRUE(got.ok());
    ASSERT_FALSE(got.value().neighbors.empty());
    EXPECT_EQ(got.value().neighbors[0].id, id) << index;
    EXPECT_FLOAT_EQ(got.value().neighbors[0].dist, 0.f) << index;
  }
  // Replacing a dead / never-assigned id is NotFound.
  ASSERT_TRUE(c.Delete(id).ok());
  EXPECT_EQ(c.Upsert(id, outlier.data(), 16).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(c.Upsert(70000, outlier.data(), 16).status().code(),
            StatusCode::kNotFound);
}

TEST(CollectionTest, EmptyCollectionBuildsIndexesLazily) {
  Collection c(8);
  ASSERT_TRUE(c.AddIndex("DB-LSH,name=main").ok());
  ASSERT_TRUE(c.AddIndex("LinearScan").ok());
  EXPECT_FALSE(c.Indexes()[0].built);

  // No index is servable before data arrives.
  QueryRequest request;
  const std::vector<float> probe = OutlierVector(8, 1.f);
  EXPECT_FALSE(c.Search(probe.data(), request).ok());
  EXPECT_FALSE(c.Search(probe.data(), request, "main").ok());

  Rng rng(5);
  std::vector<float> v(8);
  for (int i = 0; i < 20; ++i) {
    for (auto& x : v) x = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(c.Upsert(v.data(), v.size()).ok());
  }
  for (const auto& info : c.Indexes()) EXPECT_TRUE(info.built) << info.name;
  request.k = 3;
  auto got = c.Search(probe.data(), request, "main");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().neighbors.size(), 3u);
}

// ------------------------------------------------- rebuild scheduling -----

TEST(CollectionTest, StaticIndexRebuildsAtThreshold) {
  auto made = Collection::FromSpec(
      "collection: DB-LSH,t=16; PM-LSH,rebuild_threshold=6",
      EasyDataPtr(600));
  ASSERT_TRUE(made.ok());
  Collection& c = *made.value();

  const std::vector<float> outlier = OutlierVector(16);
  auto up = c.Upsert(outlier.data(), outlier.size());
  ASSERT_TRUE(up.ok());
  const uint32_t id = up.value();

  // One mutation in: DB-LSH (updatable) already serves the outlier, the
  // static PM-LSH does not — it is stale, not wrong.
  QueryRequest request;
  request.k = 1;
  auto fresh = c.Search(outlier.data(), request, "DB-LSH");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().neighbors[0].id, id);
  auto infos = c.Indexes();
  EXPECT_EQ(infos[0].staleness, 0u);
  EXPECT_EQ(infos[1].staleness, 1u);
  EXPECT_EQ(infos[1].rebuilds, 0u);

  // Drive staleness to the threshold: the collection rebuilds PM-LSH over
  // the live rows and it starts serving the outlier too.
  std::vector<float> v(16);
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    for (auto& x : v) x = static_cast<float>(50.0 + rng.Gaussian());
    ASSERT_TRUE(c.Upsert(v.data(), v.size()).ok());
  }
  infos = c.Indexes();
  EXPECT_EQ(infos[1].staleness, 0u);
  EXPECT_EQ(infos[1].rebuilds, 1u);
  auto rebuilt = c.Search(outlier.data(), request, "PM-LSH");
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_FALSE(rebuilt.value().neighbors.empty());
  EXPECT_EQ(rebuilt.value().neighbors[0].id, id);
}

// ----------------------------------------------------------- routing ------

TEST(CollectionRoutingTest, RoutesExplicitlyAndByFreshness) {
  auto made = Collection::FromSpec(
      "collection: PM-LSH,rebuild_threshold=100; DB-LSH,t=16",
      EasyDataPtr(500));
  ASSERT_TRUE(made.ok());
  Collection& c = *made.value();
  QueryRequest request;
  const std::vector<float> probe(16, 10.f);

  EXPECT_EQ(c.Search(probe.data(), request, "nope").status().code(),
            StatusCode::kNotFound);

  // All slots fresh: insertion order wins (PM-LSH is listed first).
  // After a mutation, PM-LSH is stale and routing prefers DB-LSH. The
  // routed method is observable through the response's stats profile, so
  // probe it via the per-index responses instead: both must serve.
  ASSERT_TRUE(c.Search(probe.data(), request, "PM-LSH").ok());
  ASSERT_TRUE(c.Search(probe.data(), request, "DB-LSH").ok());
  auto routed = c.Search(probe.data(), request);
  ASSERT_TRUE(routed.ok());

  const std::vector<float> outlier = OutlierVector(16);
  auto up = c.Upsert(outlier.data(), outlier.size());
  ASSERT_TRUE(up.ok());
  // PM-LSH is now stale (staleness 1 < threshold 100), DB-LSH absorbed the
  // insert; default routing must pick the fresh index and therefore find
  // the brand-new vector.
  request.k = 1;
  auto got = c.Search(outlier.data(), request);
  ASSERT_TRUE(got.ok());
  ASSERT_FALSE(got.value().neighbors.empty());
  EXPECT_EQ(got.value().neighbors[0].id, up.value());
}

TEST(CollectionRoutingTest, SearchBatchServesAllRowsUnderOneRoute) {
  auto made = Collection::FromSpec("collection: DB-LSH,t=16; LinearScan",
                                   EasyDataPtr(400));
  ASSERT_TRUE(made.ok());
  Collection& c = *made.value();
  const FloatMatrix queries = EasyData(8, 16, 902);
  QueryRequest request;
  request.k = 5;
  for (const std::string& name : {std::string(""), std::string("LinearScan"),
                                  std::string("DB-LSH")}) {
    auto got = c.SearchBatch(queries, request, name, /*num_threads=*/2);
    ASSERT_TRUE(got.ok()) << name;
    ASSERT_EQ(got.value().size(), queries.rows()) << name;
    for (const QueryResponse& response : got.value()) {
      EXPECT_EQ(response.neighbors.size(), 5u);
    }
  }
  // Mismatched query width is rejected.
  EXPECT_FALSE(c.SearchBatch(EasyData(2, 8, 1), request).ok());
}

// ------------------------------------------ filter across all methods -----

TEST(CollectionFilterTest, FilterNeverLeaksExcludedIdsForAnyMethod) {
  // One collection holding all 12 registered methods over one dataset:
  // the same filtered request must hold the exclusion guarantee for every
  // slot (the push-down lives in the shared verification path, so no
  // method needs its own filtering code).
  auto data = EasyDataPtr(900, 16, 31);
  Collection c(std::move(data));
  for (const std::string& spec : AllMethodSpecs()) {
    ASSERT_TRUE(c.AddIndex(spec).ok()) << spec;
  }
  const FloatMatrix snapshot = c.Snapshot();

  // Deny the ids nearest to the probe points — exactly the ones an
  // unfiltered search returns, so any leak surfaces immediately.
  const std::vector<uint32_t> probes = {3, 404, 777};
  for (const uint32_t probe : probes) {
    const float* q = snapshot.row(probe);
    std::vector<uint32_t> deny;
    for (const Neighbor& n : Oracle(snapshot, q, 5)) deny.push_back(n.id);

    QueryRequest plain;
    plain.k = 10;
    QueryRequest denied = plain;
    denied.filter = QueryFilter::Deny(deny);
    QueryRequest allowed = plain;
    const std::vector<uint32_t> allow = {1, 2, 5, 8, 13, 21, 34, 55};
    allowed.filter = QueryFilter::AllowOnly(allow);
    QueryRequest odd = plain;
    odd.filter =
        QueryFilter::Of([](uint32_t id) { return id % 2 == 1; });

    for (const auto& info : c.Indexes()) {
      auto got = c.Search(q, denied, info.name);
      ASSERT_TRUE(got.ok()) << info.name;
      for (const uint32_t v : deny) {
        EXPECT_FALSE(ContainsId(got.value().neighbors, v))
            << info.name << " leaked denied id " << v;
      }
      got = c.Search(q, allowed, info.name);
      ASSERT_TRUE(got.ok()) << info.name;
      for (const Neighbor& n : got.value().neighbors) {
        EXPECT_TRUE(std::count(allow.begin(), allow.end(), n.id))
            << info.name << " returned id " << n.id
            << " outside the allow-list";
      }
      got = c.Search(q, odd, info.name);
      ASSERT_TRUE(got.ok()) << info.name;
      for (const Neighbor& n : got.value().neighbors) {
        EXPECT_EQ(n.id % 2, 1u) << info.name;
      }
      // Empty filter means "index default": identical to no filter.
      QueryRequest empty_filter = plain;
      empty_filter.filter = QueryFilter::Deny({});
      auto a = c.Search(q, plain, info.name);
      auto b = c.Search(q, empty_filter, info.name);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a.value().neighbors, b.value().neighbors) << info.name;
    }
  }

  // LinearScan is exact: its filtered answer IS the filtered oracle.
  const float* q = snapshot.row(42);
  QueryRequest request;
  request.k = 7;
  request.filter = QueryFilter::Of([](uint32_t id) { return id % 3 == 0; });
  auto got = c.Search(q, request, "LinearScan");
  ASSERT_TRUE(got.ok());
  ExpectMatchesOracle(got.value().neighbors,
                      Oracle(snapshot, q, 7, &request.filter),
                      "LinearScan filtered");
}

// --------------------------------- interleaved coherence vs the oracle ----

TEST(CollectionOracleTest, RandomizedInterleavingMatchesLinearScanOracle) {
  const size_t dim = 12;
  auto made = Collection::FromSpec(
      "collection: LinearScan; DB-LSH,t=16; PM-LSH,rebuild_threshold=40",
      EasyDataPtr(400, dim, 90210));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();
  const FloatMatrix pool = EasyData(300, dim, 90211);

  Rng rng(1234);
  size_t next_pool = 0;
  std::vector<uint32_t> live;
  for (uint32_t id = 0; id < 400; ++id) live.push_back(id);

  for (size_t step = 0; step < 400; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.15 && next_pool < pool.rows()) {
      auto up = c.Upsert(pool.row(next_pool++), dim);
      ASSERT_TRUE(up.ok()) << up.status().ToString();
      live.push_back(up.value());
    } else if (dice < 0.25 && live.size() > 50) {
      const size_t pick = rng.UniformInt(live.size());
      const uint32_t id = live[pick];
      ASSERT_TRUE(c.Delete(id).ok()) << "step " << step;
      live[pick] = live.back();
      live.pop_back();
    } else if (dice < 0.30 && live.size() > 50) {
      // Replace a live id in place.
      const uint32_t id = live[rng.UniformInt(live.size())];
      std::vector<float> v(dim);
      for (auto& x : v) x = static_cast<float>(rng.Gaussian() * 30.0);
      auto rep = c.Upsert(id, v.data(), dim);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      ASSERT_EQ(rep.value(), id);
    } else {
      // Probe near a live point; LinearScan through the collection must
      // equal the brute-force oracle over the live rows, with and without
      // a filter; the approximate indexes must only return live, admitted
      // ids.
      const uint32_t near = live[rng.UniformInt(live.size())];
      const FloatMatrix snapshot = c.Snapshot();
      std::vector<float> q(snapshot.row(near), snapshot.row(near) + dim);
      q[0] += 0.25f;

      QueryRequest request;
      request.k = 5;
      if (step % 3 == 0) {
        std::vector<uint32_t> deny;
        for (size_t i = 0; i < 8; ++i) {
          deny.push_back(live[rng.UniformInt(live.size())]);
        }
        request.filter = QueryFilter::Deny(deny);
      }

      auto exact = c.Search(q.data(), request, "LinearScan");
      ASSERT_TRUE(exact.ok());
      ExpectMatchesOracle(
          exact.value().neighbors,
          Oracle(snapshot, q.data(), request.k, &request.filter),
          "step " + std::to_string(step));

      for (const char* name : {"DB-LSH", "PM-LSH"}) {
        auto approx = c.Search(q.data(), request, name);
        ASSERT_TRUE(approx.ok()) << name;
        for (const Neighbor& n : approx.value().neighbors) {
          EXPECT_FALSE(snapshot.IsDeleted(n.id))
              << name << " returned dead id " << n.id << " at step " << step;
          EXPECT_TRUE(request.filter.Admits(n.id))
              << name << " ignored the filter at step " << step;
        }
      }
    }
  }
  // The static index went through automatic rebuilds during the run.
  for (const auto& info : c.Indexes()) {
    if (!info.supports_updates) {
      EXPECT_GT(info.rebuilds, 0u) << info.name;
    }
  }
}

// -------------------------------------- threaded reader/writer stress -----

// One writer thread streams Upsert/Delete traffic while reader tasks
// hammer Search on every slot (concurrent-read DB-LSH, per-slot-serialized
// PM-LSH, exact LinearScan). Readers assert per-response invariants that
// hold at EVERY epoch (sortedness, liveness-independent filter exclusion);
// the writer pauses at checkpoints so the oracle can be compared against a
// consistent snapshot while readers keep running. The readers run as tasks
// on a dedicated executor (no raw std::thread outside src/exec/). TSan
// runs this, for the unsharded spec and the sharded/background one.
void RunReadersUnderWriterStress(const std::string& spec) {
  const size_t dim = 16;
  const size_t seed_rows = 1500;
  auto made = Collection::FromSpec(spec, EasyDataPtr(seed_rows, dim, 77));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();

  // Ids 0..15 stay untouched by the writer (it only deletes ids >= 32), so
  // a deny-filter over them is checkable from any thread at any time.
  std::vector<uint32_t> protected_ids;
  for (uint32_t id = 0; id < 16; ++id) protected_ids.push_back(id);
  const QueryFilter deny_protected = QueryFilter::Deny(protected_ids);

  constexpr size_t kReaders = 4;
  constexpr size_t kWriterBatches = 12;
  constexpr size_t kBatchOps = 25;
  std::atomic<bool> done{false};
  std::atomic<size_t> reader_queries{0};
  std::vector<std::string> routes = {"DB-LSH", "PM-LSH", "LinearScan", ""};

  exec::TaskExecutor reader_pool(kReaders);
  std::vector<std::future<void>> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.push_back(reader_pool.Submit([&, r]() {
      Rng rng(1000 + r);
      std::vector<float> q(dim);
      size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        for (auto& x : q) {
          x = static_cast<float>(50.0 + 20.0 * rng.Gaussian());
        }
        QueryRequest request;
        request.k = 10;
        request.filter = deny_protected;
        auto got = c.Search(q.data(), request, routes[i++ % routes.size()]);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        const auto& neighbors = got.value().neighbors;
        for (size_t j = 0; j < neighbors.size(); ++j) {
          // Filter exclusion holds at every epoch.
          EXPECT_FALSE(std::count(protected_ids.begin(), protected_ids.end(),
                                  neighbors[j].id));
          // Responses are internally consistent: ascending, no duplicates.
          if (j > 0) {
            EXPECT_LE(neighbors[j - 1].dist, neighbors[j].dist);
            EXPECT_NE(neighbors[j - 1].id, neighbors[j].id);
          }
        }
        reader_queries.fetch_add(1, std::memory_order_relaxed);
      }
    }));
  }

  // Writer: batches of mixed traffic, then a quiescent oracle checkpoint
  // (readers keep running — reads never conflict with reads).
  Rng rng(4242);
  const FloatMatrix pool = EasyData(kWriterBatches * kBatchOps, dim, 78);
  size_t next_pool = 0;
  std::vector<uint32_t> deletable;
  for (uint32_t id = 32; id < seed_rows; ++id) deletable.push_back(id);
  for (size_t batch = 0; batch < kWriterBatches; ++batch) {
    for (size_t op = 0; op < kBatchOps; ++op) {
      if (rng.NextDouble() < 0.5 && !deletable.empty()) {
        const size_t pick = rng.UniformInt(deletable.size());
        ASSERT_TRUE(c.Delete(deletable[pick]).ok());
        deletable[pick] = deletable.back();
        deletable.pop_back();
      } else {
        auto up = c.Upsert(pool.row(next_pool++), dim);
        ASSERT_TRUE(up.ok()) << up.status().ToString();
        if (up.value() >= 32) deletable.push_back(up.value());
      }
    }
    // Checkpoint: no writer activity while this compares, so the epoch
    // brackets a mutation-free interval and the snapshot is the truth.
    const uint64_t epoch_before = c.epoch();
    const FloatMatrix snapshot = c.Snapshot();
    std::vector<float> q(snapshot.row(64), snapshot.row(64) + dim);
    QueryRequest request;
    request.k = 5;
    auto exact = c.Search(q.data(), request, "LinearScan");
    ASSERT_TRUE(exact.ok());
    ExpectMatchesOracle(exact.value().neighbors,
                        Oracle(snapshot, q.data(), request.k),
                        "checkpoint " + std::to_string(batch));
    EXPECT_EQ(c.epoch(), epoch_before);
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.get();
  EXPECT_GT(reader_queries.load(), 0u);
  c.WaitForRebuilds();

  // Post-run coherence, single-threaded: every slot serves, nothing dead
  // leaks, and the final state matches the oracle exactly via LinearScan.
  const FloatMatrix snapshot = c.Snapshot();
  QueryRequest request;
  request.k = 10;
  for (const auto& info : c.Indexes()) {
    auto got = c.Search(snapshot.row(64), request, info.name);
    ASSERT_TRUE(got.ok()) << info.name;
    for (const Neighbor& n : got.value().neighbors) {
      EXPECT_FALSE(snapshot.IsDeleted(n.id)) << info.name;
    }
  }
  auto exact = c.Search(snapshot.row(64), request, "LinearScan");
  ASSERT_TRUE(exact.ok());
  ExpectMatchesOracle(exact.value().neighbors,
                      Oracle(snapshot, snapshot.row(64), request.k),
                      "final state");
}

TEST(ConcurrentCollectionTest, ReadersStayCoherentUnderWriter) {
  RunReadersUnderWriterStress(
      "collection: DB-LSH,t=16; PM-LSH,rebuild_threshold=64; LinearScan");
}

TEST(ConcurrentCollectionTest, ReadersStayCoherentUnderWriterSharded) {
  RunReadersUnderWriterStress(
      "collection,shards=4,rebuild=background: DB-LSH,t=16; "
      "PM-LSH,rebuild_threshold=64; LinearScan");
}

// ---------------------------------------------------------- adoption ------

TEST(CollectionTest, AddPrebuiltIndexServesWithoutRebuild) {
  auto data = EasyDataPtr(400, 16, 5150);
  FloatMatrix* raw = data.get();
  auto made = IndexFactory::Make("DB-LSH,t=16");
  ASSERT_TRUE(made.ok());
  std::unique_ptr<AnnIndex> index = std::move(made).value();
  ASSERT_TRUE(index->Build(raw).ok());

  Collection c(std::move(data));
  ASSERT_TRUE(c.AddPrebuiltIndex("restored", std::move(index)).ok());
  EXPECT_EQ(c.AddPrebuiltIndex("restored", nullptr).code(),
            StatusCode::kInvalidArgument);

  QueryRequest request;
  request.k = 3;
  const FloatMatrix snapshot = c.Snapshot();
  auto got = c.Search(snapshot.row(7), request, "restored");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().neighbors.size(), 3u);
  EXPECT_EQ(got.value().neighbors[0].id, 7u);

  // The adopted index keeps absorbing mutations like any updatable slot.
  const std::vector<float> outlier = OutlierVector(16);
  auto up = c.Upsert(outlier.data(), outlier.size());
  ASSERT_TRUE(up.ok());
  request.k = 1;
  auto found = c.Search(outlier.data(), request, "restored");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().neighbors[0].id, up.value());

  // GetIndex exposes the slot for persistence-style access.
  EXPECT_NE(c.GetIndex("restored"), nullptr);
  EXPECT_EQ(c.GetIndex("missing"), nullptr);
}

// ---------------------------------------------------------- sharding ------

TEST(ShardedCollectionTest, SpecParsesShardAndRebuildOptions) {
  auto made = Collection::FromSpec(
      "collection,shards=4: LinearScan; DB-LSH,t=16", EasyDataPtr(300));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  EXPECT_EQ(made.value()->shards(), 4u);
  EXPECT_EQ(made.value()->size(), 300u);
  EXPECT_EQ(made.value()->dim(), 16u);
  for (const auto& info : made.value()->Indexes()) {
    EXPECT_TRUE(info.built) << info.name;
    EXPECT_FALSE(info.rebuild_inflight) << info.name;
  }

  EXPECT_TRUE(Collection::FromSpec(
                  "collection,rebuild=background,shards=2: LinearScan",
                  EasyDataPtr(50))
                  .ok());
  EXPECT_TRUE(
      Collection::FromSpec("collection,rebuild=inline: LinearScan",
                           EasyDataPtr(50))
          .ok());
  // Bad collection options are rejected.
  for (const char* spec :
       {"collection,shards=0: LinearScan", "collection,shards=x: LinearScan",
        "collection,rebuild=sometimes: LinearScan",
        "collection,no_such_option=1: LinearScan"}) {
    EXPECT_FALSE(Collection::FromSpec(spec, EasyDataPtr(50)).ok()) << spec;
  }
}

TEST(ShardedCollectionTest, PrebuiltAdoptionRequiresSingleShard) {
  auto data = EasyDataPtr(200, 16, 5151);
  auto made = IndexFactory::Make("DB-LSH,t=16");
  ASSERT_TRUE(made.ok());
  Collection c(std::move(data), {.shards = 2});
  EXPECT_EQ(c.AddPrebuiltIndex("adopted", std::move(made).value()).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedCollectionTest, ExactMethodMatchesSingleShardBitForBit) {
  // LinearScan is exact and deterministic, so the 4-shard fan-out/merge
  // over the same rows must reproduce the unsharded result exactly — ids,
  // distances, and (dist, id) tie-breaks included. This is the exact-merge
  // guarantee the class comment makes.
  const size_t dim = 12;
  const FloatMatrix data = EasyData(503, dim, 4242);  // odd n: ragged shards
  auto single = Collection::FromSpec(
      "collection: LinearScan", std::make_unique<FloatMatrix>(data));
  auto sharded = Collection::FromSpec(
      "collection,shards=4: LinearScan", std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(single.ok() && sharded.ok());

  const FloatMatrix queries = EasyData(12, dim, 4243);
  QueryRequest request;
  request.k = 9;
  for (size_t q = 0; q < queries.rows(); ++q) {
    auto a = single.value()->Search(queries.row(q), request);
    auto b = sharded.value()->Search(queries.row(q), request);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().neighbors, b.value().neighbors) << "query " << q;
  }
  // The batched path merges identically, at any thread count.
  auto a = single.value()->SearchBatch(queries, request);
  auto b = sharded.value()->SearchBatch(queries, request, "", 3);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_EQ(a.value()[q].neighbors, b.value()[q].neighbors) << q;
  }
}

TEST(ShardedCollectionTest, EmptyAndTinyCollectionsServeAcrossShards) {
  // 8 shards over 3 rows: most shards are empty and must contribute
  // nothing (not errors) to the merge.
  Collection c(4, {.shards = 8});
  ASSERT_TRUE(c.AddIndex("LinearScan").ok());
  QueryRequest request;
  request.k = 5;
  const std::vector<float> probe(4, 0.5f);
  EXPECT_FALSE(c.Search(probe.data(), request).ok());  // nothing built yet
  EXPECT_EQ(c.Search(probe.data(), request, "nope").status().code(),
            StatusCode::kNotFound);  // names still resolve while empty

  std::vector<uint32_t> ids;
  for (int i = 0; i < 3; ++i) {
    const std::vector<float> v(4, static_cast<float>(i));
    auto up = c.Upsert(v.data(), v.size());
    ASSERT_TRUE(up.ok()) << up.status().ToString();
    ids.push_back(up.value());
  }
  EXPECT_EQ(c.size(), 3u);
  auto got = c.Search(probe.data(), request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().neighbors.size(), 3u);  // all rows, despite k = 5
  // Round-trip every id through replace + delete to exercise routing.
  const std::vector<float> moved(4, 9.f);
  for (const uint32_t id : ids) {
    auto rep = c.Upsert(id, moved.data(), moved.size());
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(rep.value(), id);
  }
  for (const uint32_t id : ids) ASSERT_TRUE(c.Delete(id).ok());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.Delete(ids[0]).code(), StatusCode::kNotFound);
}

// The satellite oracle test: one mutation/query trace applied to a sharded
// collection, an unsharded twin, and the brute-force oracle. Ids diverge
// between the twins (shard routing assigns different ids to fresh
// upserts), so the trace tracks the id pair per logical row and the
// comparison works on distances (exact across twins) and id mapping.
TEST(ShardedCollectionOracleTest, RandomizedTraceMatchesUnshardedAndOracle) {
  const size_t dim = 10;
  const FloatMatrix seed = EasyData(240, dim, 9090);
  // Threshold sized so each of the 4 shards (which each see ~1/4 of the
  // mutation stream) crosses it several times over the trace.
  const std::string lineup = "LinearScan; DB-LSH,t=16; "
                             "PM-LSH,rebuild_threshold=12";
  auto s1 = Collection::FromSpec("collection: " + lineup,
                                 std::make_unique<FloatMatrix>(seed));
  auto s4 = Collection::FromSpec("collection,shards=4: " + lineup,
                                 std::make_unique<FloatMatrix>(seed));
  ASSERT_TRUE(s1.ok() && s4.ok());
  Collection& one = *s1.value();
  Collection& four = *s4.value();

  const FloatMatrix pool = EasyData(200, dim, 9091);
  Rng rng(31337);
  size_t next_pool = 0;
  // Live logical rows as (id in `one`, id in `four`, source vector).
  struct LiveRow {
    uint32_t id_one;
    uint32_t id_four;
    const float* vec;
  };
  std::vector<LiveRow> live;
  for (uint32_t id = 0; id < seed.rows(); ++id) {
    live.push_back({id, id, seed.row(id)});
  }
  std::vector<float> replace_buf(dim);

  for (size_t step = 0; step < 350; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.15 && next_pool < pool.rows()) {
      const float* vec = pool.row(next_pool++);
      auto up1 = one.Upsert(vec, dim);
      auto up4 = four.Upsert(vec, dim);
      ASSERT_TRUE(up1.ok() && up4.ok());
      live.push_back({up1.value(), up4.value(), vec});
    } else if (dice < 0.25 && live.size() > 60) {
      const size_t pick = rng.UniformInt(live.size());
      ASSERT_TRUE(one.Delete(live[pick].id_one).ok()) << "step " << step;
      ASSERT_TRUE(four.Delete(live[pick].id_four).ok()) << "step " << step;
      live[pick] = live.back();
      live.pop_back();
    } else if (dice < 0.30 && live.size() > 60) {
      const size_t pick = rng.UniformInt(live.size());
      for (auto& x : replace_buf) {
        x = static_cast<float>(rng.Gaussian() * 30.0);
      }
      auto rep1 = one.Upsert(live[pick].id_one, replace_buf.data(), dim);
      auto rep4 = four.Upsert(live[pick].id_four, replace_buf.data(), dim);
      ASSERT_TRUE(rep1.ok() && rep4.ok());
      // Replaced rows point at pool-external data; drop the stale vec but
      // keep tracking the ids (vec is only used to build query probes).
      live[pick].vec = nullptr;
    } else {
      // Probe near a live point, alternating unfiltered / deny-filtered.
      const LiveRow* base = nullptr;
      for (int tries = 0; tries < 8 && base == nullptr; ++tries) {
        const LiveRow& candidate = live[rng.UniformInt(live.size())];
        if (candidate.vec != nullptr) base = &candidate;
      }
      if (base == nullptr) continue;
      std::vector<float> q(base->vec, base->vec + dim);
      q[0] += 0.25f;

      QueryRequest req_one, req_four;
      req_one.k = req_four.k = 5;
      if (step % 3 == 0) {
        std::vector<uint32_t> deny_one, deny_four;
        for (size_t i = 0; i < 8; ++i) {
          const LiveRow& row = live[rng.UniformInt(live.size())];
          deny_one.push_back(row.id_one);
          deny_four.push_back(row.id_four);
        }
        req_one.filter = QueryFilter::Deny(deny_one);
        req_four.filter = QueryFilter::Deny(deny_four);
      }

      auto exact_one = one.Search(q.data(), req_one, "LinearScan");
      auto exact_four = four.Search(q.data(), req_four, "LinearScan");
      ASSERT_TRUE(exact_one.ok() && exact_four.ok()) << "step " << step;

      // Both twins are exact over the same logical rows: identical
      // distance profiles, rank by rank.
      const auto& n1 = exact_one.value().neighbors;
      const auto& n4 = exact_four.value().neighbors;
      ASSERT_EQ(n1.size(), n4.size()) << "step " << step;
      for (size_t i = 0; i < n1.size(); ++i) {
        EXPECT_EQ(n1[i].dist, n4[i].dist)
            << "step " << step << " rank " << i;
      }

      // The sharded result must equal the oracle over the sharded
      // collection's own snapshot (filters + tombstones included).
      const FloatMatrix snapshot = four.Snapshot();
      ExpectMatchesOracle(
          n4, Oracle(snapshot, q.data(), req_four.k, &req_four.filter),
          "sharded step " + std::to_string(step));

      // Approximate methods through the sharded fan-out: every id is
      // live, admitted, and the response is sorted and duplicate-free.
      for (const char* name : {"DB-LSH", "PM-LSH"}) {
        auto approx = four.Search(q.data(), req_four, name);
        ASSERT_TRUE(approx.ok()) << name;
        const auto& neighbors = approx.value().neighbors;
        for (size_t i = 0; i < neighbors.size(); ++i) {
          EXPECT_FALSE(snapshot.IsDeleted(neighbors[i].id))
              << name << " returned dead id at step " << step;
          EXPECT_TRUE(req_four.filter.Admits(neighbors[i].id))
              << name << " ignored the filter at step " << step;
          if (i > 0) {
            EXPECT_LE(neighbors[i - 1].dist, neighbors[i].dist) << name;
            EXPECT_NE(neighbors[i - 1].id, neighbors[i].id) << name;
          }
        }
      }
    }
    // The twins see one mutation stream: sizes and epochs stay in step.
    ASSERT_EQ(one.size(), four.size()) << "step " << step;
    ASSERT_EQ(one.epoch(), four.epoch()) << "step " << step;
  }
  // The static index rebuilt on every shard-crossing of its threshold.
  for (const auto& info : four.Indexes()) {
    if (!info.supports_updates) {
      EXPECT_GT(info.rebuilds, 0u) << info.name;
    }
  }
}

// ------------------------------------------------- background rebuilds ----

TEST(ShardedCollectionTest, BackgroundRebuildSwapsInOffTheWriteLock) {
  auto made = Collection::FromSpec(
      "collection,shards=2,rebuild=background: LinearScan; "
      "PM-LSH,rebuild_threshold=4",
      EasyDataPtr(400, 16, 99));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& c = *made.value();

  const std::vector<float> outlier = OutlierVector(16);
  auto up = c.Upsert(outlier.data(), outlier.size());
  ASSERT_TRUE(up.ok());
  const uint32_t id = up.value();

  // The updatable LinearScan serves the outlier immediately; the static
  // PM-LSH is stale until its background rebuild lands.
  QueryRequest request;
  request.k = 1;
  auto fresh = c.Search(outlier.data(), request, "LinearScan");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().neighbors[0].id, id);

  // Stream mutations until every shard's PM-LSH crossed its threshold and
  // the swap landed. Each nudge re-arms the scheduler if a rebuild gave up
  // to writer churn, so this converges deterministically once quiescent.
  Rng rng(11);
  std::vector<float> v(16);
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 4; ++i) {
      for (auto& x : v) x = static_cast<float>(50.0 + rng.Gaussian());
      ASSERT_TRUE(c.Upsert(v.data(), v.size()).ok());
    }
    c.WaitForRebuilds();
    const auto infos = c.Indexes();
    ASSERT_EQ(infos[1].name, "PM-LSH");
    EXPECT_FALSE(infos[1].rebuild_inflight);  // WaitForRebuilds quiesced
    if (infos[1].rebuilds > 0 && infos[1].staleness < 4) break;
  }
  const auto infos = c.Indexes();
  EXPECT_GT(infos[1].rebuilds, 0u);
  EXPECT_LT(infos[1].staleness, 4u);
  EXPECT_TRUE(infos[1].built);
  EXPECT_TRUE(infos[1].build_error.empty());

  // The swapped-in index serves rows inserted after the original build —
  // including the outlier — and keeps honoring tombstones: delete a row
  // and it disappears from PM-LSH without any further rebuild.
  auto rebuilt = c.Search(outlier.data(), request, "PM-LSH");
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_FALSE(rebuilt.value().neighbors.empty());
  EXPECT_EQ(rebuilt.value().neighbors[0].id, id);

  ASSERT_TRUE(c.Delete(id).ok());
  request.k = 5;
  auto after = c.Search(outlier.data(), request, "PM-LSH");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(ContainsId(after.value().neighbors, id));
}

}  // namespace
}  // namespace dblsh
