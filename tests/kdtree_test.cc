#include <gtest/gtest.h>

#include <algorithm>

#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "kdtree/kd_tree.h"
#include "util/random.h"

namespace dblsh::kdtree {
namespace {

TEST(KdTreeTest, KnnMatchesBruteForce) {
  const FloatMatrix points = GenerateUniform(2000, 6, 50.0, 41);
  KdTree tree(&points);
  const FloatMatrix queries = GenerateUniform(20, 6, 50.0, 42);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto got = tree.Knn(queries.row(q), 10);
    const auto expected = ExactKnn(points, queries.row(q), 10);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].dist, expected[i].dist, 1e-4) << "rank " << i;
    }
  }
}

TEST(KdTreeTest, KnnOnClusteredData) {
  const FloatMatrix points = GenerateClustered(
      {.n = 3000, .dim = 12, .clusters = 10, .seed = 43});
  KdTree tree(&points);
  const auto got = tree.Knn(points.row(7), 5);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].id, 7u);  // the point itself is its own 1-NN
  EXPECT_FLOAT_EQ(got[0].dist, 0.f);
}

TEST(KdTreeTest, CursorYieldsAscendingDistances) {
  const FloatMatrix points = GenerateUniform(1000, 4, 20.0, 44);
  KdTree tree(&points);
  const FloatMatrix queries = GenerateUniform(5, 4, 20.0, 45);
  for (size_t q = 0; q < queries.rows(); ++q) {
    KdTree::NnCursor cursor(&tree, queries.row(q));
    Neighbor nb;
    float last = 0.f;
    size_t count = 0;
    while (cursor.Next(&nb)) {
      EXPECT_GE(nb.dist, last - 1e-5f);
      last = nb.dist;
      ++count;
    }
    EXPECT_EQ(count, points.rows());  // full enumeration, no duplicates
  }
}

TEST(KdTreeTest, CursorPrefixMatchesKnn) {
  const FloatMatrix points = GenerateClustered(
      {.n = 1500, .dim = 8, .clusters = 6, .seed = 46});
  KdTree tree(&points);
  const float* q = points.row(3);
  KdTree::NnCursor cursor(&tree, q);
  const auto knn = tree.Knn(q, 20);
  for (size_t i = 0; i < 20; ++i) {
    Neighbor nb;
    ASSERT_TRUE(cursor.Next(&nb));
    EXPECT_NEAR(nb.dist, knn[i].dist, 1e-4) << "rank " << i;
  }
}

TEST(KdTreeTest, EmptyTree) {
  FloatMatrix points(0, 3);
  KdTree tree(&points);
  const float q[3] = {0, 0, 0};
  EXPECT_TRUE(tree.Knn(q, 5).empty());
  KdTree::NnCursor cursor(&tree, q);
  Neighbor nb;
  EXPECT_FALSE(cursor.Next(&nb));
}

TEST(KdTreeTest, AllIdenticalPoints) {
  FloatMatrix points(100, 3);  // all zeros
  KdTree tree(&points);
  const float q[3] = {1, 1, 1};
  const auto knn = tree.Knn(q, 10);
  ASSERT_EQ(knn.size(), 10u);
  for (const auto& nb : knn) EXPECT_NEAR(nb.dist, std::sqrt(3.f), 1e-5);
}

TEST(KdTreeTest, KGreaterThanN) {
  const FloatMatrix points = GenerateUniform(7, 2, 10.0, 47);
  KdTree tree(&points);
  const float q[2] = {5, 5};
  EXPECT_EQ(tree.Knn(q, 50).size(), 7u);
}

TEST(KdTreeTest, WindowQueryMatchesBruteForce) {
  const FloatMatrix points = GenerateClustered(
      {.n = 2000, .dim = 5, .clusters = 8, .seed = 49});
  KdTree tree(&points);
  Rng rng(50);
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t anchor = static_cast<uint32_t>(rng.UniformInt(2000));
    const double half = rng.Uniform(0.5, 25.0);
    std::vector<float> lo(5), hi(5);
    for (size_t j = 0; j < 5; ++j) {
      lo[j] = points.at(anchor, j) - static_cast<float>(half);
      hi[j] = points.at(anchor, j) + static_cast<float>(half);
    }
    std::vector<uint32_t> got;
    tree.WindowQuery(lo.data(), hi.data(), &got);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < points.rows(); ++i) {
      bool inside = true;
      for (size_t j = 0; j < 5; ++j) {
        if (points.at(i, j) < lo[j] || points.at(i, j) > hi[j]) {
          inside = false;
          break;
        }
      }
      if (inside) expected.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(KdTreeTest, WindowCursorStreamsWithoutDuplicates) {
  const FloatMatrix points = GenerateUniform(1500, 4, 50.0, 51);
  KdTree tree(&points);
  std::vector<float> lo(4, 10.f), hi(4, 40.f);
  KdTree::WindowCursor cursor(&tree, lo.data(), hi.data());
  std::vector<uint32_t> streamed;
  uint32_t id;
  while (cursor.Next(&id)) streamed.push_back(id);
  std::vector<uint32_t> batch;
  tree.WindowQuery(lo.data(), hi.data(), &batch);
  std::sort(streamed.begin(), streamed.end());
  std::sort(batch.begin(), batch.end());
  EXPECT_EQ(streamed, batch);
  EXPECT_EQ(std::unique(streamed.begin(), streamed.end()), streamed.end());
}

TEST(KdTreeTest, EmptyWindowYieldsNothing) {
  const FloatMatrix points = GenerateUniform(500, 3, 10.0, 52);
  KdTree tree(&points);
  std::vector<float> lo(3, 100.f), hi(3, 200.f);  // outside the data
  std::vector<uint32_t> out;
  tree.WindowQuery(lo.data(), hi.data(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTreeTest, LeafSizeOneWorks) {
  const FloatMatrix points = GenerateUniform(300, 3, 10.0, 48);
  KdTree tree(&points, 1);
  const auto got = tree.Knn(points.row(0), 3);
  const auto expected = ExactKnn(points, points.row(0), 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(got[i].dist, expected[i].dist, 1e-4);
  }
}

}  // namespace
}  // namespace dblsh::kdtree
