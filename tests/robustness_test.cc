// Robustness and lifecycle tests: rebuild/reuse patterns, degenerate
// datasets, and cross-method agreement — the failure modes a downstream
// user hits first.
#include <gtest/gtest.h>

#include "baselines/lccs_lsh.h"
#include "baselines/linear_scan.h"
#include "baselines/qalsh.h"
#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "rtree/rtree.h"
#include "util/random.h"

namespace dblsh {
namespace {

// ------------------------------------------------------------- rebuilds --

TEST(RebuildTest, RTreeBulkLoadReplacesPreviousContent) {
  const FloatMatrix points = GenerateUniform(500, 3, 50.0, 70);
  rtree::RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  ASSERT_TRUE(tree.BulkLoad({1, 2, 3}).ok());  // rebuild smaller
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  rtree::Rect everything(3);
  for (size_t j = 0; j < 3; ++j) {
    everything.lo(j) = -1e9f;
    everything.hi(j) = 1e9f;
  }
  std::vector<uint32_t> out;
  tree.WindowQuery(everything, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(RebuildTest, DbLshRebuildOnNewDataset) {
  const FloatMatrix first = GenerateClustered(
      {.n = 1000, .dim = 16, .clusters = 4, .seed = 71});
  const FloatMatrix second = GenerateClustered(
      {.n = 2000, .dim = 16, .clusters = 8, .seed = 72});
  DbLsh index;
  ASSERT_TRUE(index.Build(&first).ok());
  ASSERT_TRUE(index.Build(&second).ok());  // rebuild over different data
  EXPECT_EQ(index.IndexEntries(), index.params().l * second.rows());
  const auto result = index.Query(second.row(0), 3);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST(RebuildTest, QalshRebuildResetsScratch) {
  const FloatMatrix first = GenerateClustered(
      {.n = 800, .dim = 16, .clusters = 4, .seed = 73});
  const FloatMatrix second = GenerateClustered(
      {.n = 1600, .dim = 16, .clusters = 8, .seed = 74});
  Qalsh index;
  ASSERT_TRUE(index.Build(&first).ok());
  (void)index.Query(first.row(0), 5);
  ASSERT_TRUE(index.Build(&second).ok());
  const auto result = index.Query(second.row(1500), 5);
  ASSERT_FALSE(result.empty());  // ids beyond the first dataset's range work
}

// --------------------------------------------------------- degeneracies --

TEST(DegenerateDataTest, AllIdenticalPoints) {
  FloatMatrix dupes(200, 8);  // all zeros
  DbLsh index;
  ASSERT_TRUE(index.Build(&dupes).ok());
  const auto result = index.Query(dupes.row(0), 10);
  ASSERT_EQ(result.size(), 10u);
  for (const auto& nb : result) EXPECT_FLOAT_EQ(nb.dist, 0.f);
}

TEST(DegenerateDataTest, SingleDimension) {
  FloatMatrix line(300, 1);
  for (size_t i = 0; i < 300; ++i) line.at(i, 0) = static_cast<float>(i);
  DbLsh index;
  ASSERT_TRUE(index.Build(&line).ok());
  const float q[1] = {150.2f};
  const auto result = index.Query(q, 3);
  ASSERT_FALSE(result.empty());
  EXPECT_NEAR(result[0].dist, 0.2f, 1e-4);
}

TEST(DegenerateDataTest, TwoPoints) {
  FloatMatrix two(2, 4);
  two.at(1, 0) = 100.f;
  DbLsh index;
  ASSERT_TRUE(index.Build(&two).ok());
  const auto result = index.Query(two.row(1), 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
}

TEST(DegenerateDataTest, ConstantColumnsDoNotBreakProjections) {
  // Columns with zero variance are common in real descriptor files.
  FloatMatrix data(500, 8);
  Rng rng(75);
  for (size_t i = 0; i < 500; ++i) {
    data.at(i, 0) = 42.f;  // constant column
    for (size_t j = 1; j < 8; ++j) {
      data.at(i, j) = static_cast<float>(rng.Uniform(0, 10));
    }
  }
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(7), 5);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

// ------------------------------------------------------------ agreement --

TEST(AgreementTest, AllMethodsAgreeOnObviousNearestNeighbor) {
  // One point is planted far closer to the query than everything else;
  // every method must rank it first.
  FloatMatrix data = GenerateClustered(
      {.n = 1000, .dim = 24, .clusters = 6, .seed = 76});
  std::vector<float> query(data.row(123), data.row(123) + 24);
  for (auto& v : query) v += 0.01f;

  DbLsh db;
  Qalsh qalsh;
  LccsLsh lccs;
  LinearScan scan;
  ASSERT_TRUE(db.Build(&data).ok());
  ASSERT_TRUE(qalsh.Build(&data).ok());
  ASSERT_TRUE(lccs.Build(&data).ok());
  ASSERT_TRUE(scan.Build(&data).ok());
  for (AnnIndex* index :
       std::initializer_list<AnnIndex*>{&db, &qalsh, &lccs, &scan}) {
    const auto result = index->Query(query.data(), 1);
    ASSERT_FALSE(result.empty()) << index->Name();
    EXPECT_EQ(result[0].id, 123u) << index->Name();
  }
}

TEST(AgreementTest, RepeatedQueriesAreDeterministic) {
  const FloatMatrix data = GenerateClustered(
      {.n = 1500, .dim = 16, .clusters = 8, .seed = 77});
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto first = index.Query(data.row(9), 10);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto again = index.Query(data.row(9), 10);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i].id, first[i].id);
    }
  }
}

}  // namespace
}  // namespace dblsh
