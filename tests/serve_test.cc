// Tests for the network serving front-end (src/serve/): wire-format
// round-trips and hardening (truncated frames, oversize length prefixes,
// bad checksums, unknown ops, mid-frame disconnects), the micro-batching
// coalescer's window/cap/deadline/backpressure contract, and end-to-end
// server behavior over loopback TCP — including that a dying client
// leaves its batch peers unaffected and that shutdown drains held
// requests. The TSan CI job runs the Coalescer*/Serve* suites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "dataset/float_matrix.h"
#include "dataset/synthetic.h"
#include "exec/task_executor.h"
#include "serve/client.h"
#include "serve/coalescer.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/status.h"

namespace dblsh::serve {
namespace {

using Clock = Coalescer::Clock;

FloatMatrix SmallData(size_t n = 200, size_t dim = 8) {
  return GenerateClustered({.n = n, .dim = dim, .clusters = 5, .seed = 99});
}

std::unique_ptr<Collection> SmallCollection(size_t n = 200, size_t dim = 8) {
  auto made = Collection::FromSpec(
      "collection: LinearScan",
      std::make_unique<FloatMatrix>(SmallData(n, dim)));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  return std::move(made).value();
}

// Polls until `count` reaches `want` (callbacks fire on executor threads).
void AwaitCount(const std::atomic<int>& count, int want,
                int timeout_ms = 5000) {
  const auto give_up =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (count.load() < want && Clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(count.load(), want) << "timed out waiting for callbacks";
}

bool SameIds(const std::vector<Neighbor>& a, const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id && a[i].dist != b[i].dist) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Wire format.

TEST(ServeProtocolTest, FrameRoundTrips) {
  std::vector<uint8_t> payload;
  wire::PutU32(&payload, 42);
  wire::PutString(&payload, "main");
  wire::PutF64(&payload, 1.5);
  const auto frame = EncodeFrame(OpCode::kSearch, 7, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), &header));
  EXPECT_EQ(header.op, OpCode::kSearch);
  EXPECT_EQ(header.request_id, 7u);
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_EQ(header.payload_checksum,
            Fnv1a32(payload.data(), payload.size()));

  wire::Reader r(frame.data() + kHeaderBytes, payload.size());
  uint32_t v;
  std::string s;
  double d;
  ASSERT_TRUE(r.GetU32(&v) && r.GetString(&s) && r.GetF64(&d));
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "main");
  EXPECT_EQ(d, 1.5);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ServeProtocolTest, HeaderRejectsWrongMagicVersionReserved) {
  const auto frame = EncodeFrame(OpCode::kPing, 1, {});
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), &header));

  auto bad = frame;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(DecodeHeader(bad.data(), &header));
  bad = frame;
  bad[4] = kProtocolVersion + 1;  // version
  EXPECT_FALSE(DecodeHeader(bad.data(), &header));
  bad = frame;
  bad[6] = 1;  // reserved
  EXPECT_FALSE(DecodeHeader(bad.data(), &header));
}

TEST(ServeProtocolTest, ReaderIsBoundsChecked) {
  std::vector<uint8_t> payload;
  wire::PutU16(&payload, 100);  // string length prefix lying about its body
  wire::Reader lying(payload.data(), payload.size());
  std::string s;
  EXPECT_FALSE(lying.GetString(&s));

  const uint8_t two[2] = {1, 2};
  wire::Reader short32(two, sizeof(two));
  uint32_t v;
  EXPECT_FALSE(short32.GetU32(&v));

  std::vector<uint8_t> floats;
  wire::PutF32(&floats, 1.f);
  wire::Reader overrun(floats.data(), floats.size());
  std::vector<float> out;
  EXPECT_FALSE(overrun.GetF32Array(2, &out));  // asks for 8 bytes of 4
  EXPECT_TRUE(overrun.GetF32Array(1, &out));
  EXPECT_EQ(out[0], 1.f);
}

TEST(ServeProtocolTest, F32ArrayCountOverflowCannotPassTheBoundsCheck) {
  std::vector<uint8_t> floats;
  wire::PutF32(&floats, 1.f);
  wire::Reader r(floats.data(), floats.size());
  std::vector<float> out;
  // With a naive `remaining() < count * 4` bound these counts wrap the
  // multiplication (to 4 and 0), pass the check, and resize() throws.
  EXPECT_FALSE(r.GetF32Array(SIZE_MAX / 4 + 1, &out));
  EXPECT_FALSE(r.GetF32Array(size_t{1} << 62, &out));
  EXPECT_TRUE(r.GetF32Array(1, &out));  // the reader position is intact
  EXPECT_EQ(out[0], 1.f);
}

TEST(ServeProtocolTest, StatusMappingRoundTripsAndFlagsRetryable) {
  EXPECT_TRUE(IsRetryable(WireStatus::kOverloaded));
  EXPECT_TRUE(IsRetryable(WireStatus::kShuttingDown));
  EXPECT_FALSE(IsRetryable(WireStatus::kDeadlineExceeded));
  EXPECT_FALSE(IsRetryable(WireStatus::kOk));

  EXPECT_TRUE(ToStatus(WireStatus::kOverloaded, "x").retryable());
  EXPECT_TRUE(ToStatus(WireStatus::kShuttingDown, "x").retryable());
  EXPECT_FALSE(ToStatus(WireStatus::kDeadlineExceeded, "x").retryable());
  EXPECT_EQ(ToStatus(WireStatus::kDeadlineExceeded, "x").code(),
            StatusCode::kDeadlineExceeded);

  for (const WireStatus ws :
       {WireStatus::kOk, WireStatus::kInvalidArgument, WireStatus::kNotFound,
        WireStatus::kDeadlineExceeded, WireStatus::kInternal}) {
    EXPECT_EQ(FromStatus(ToStatus(ws, "msg")), ws);
  }
  EXPECT_EQ(FromStatus(Status::Unavailable("shed")), WireStatus::kOverloaded);
}

TEST(ServeProtocolTest, PutStringTruncatesOversizeInput) {
  std::vector<uint8_t> out;
  wire::PutString(&out, std::string(100000, 'a'));
  wire::Reader r(out.data(), out.size());
  std::string s;
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(s.size(), 0xFFFFu);
}

// ---------------------------------------------------------------------------
// Coalescer.

class CoalescerTest : public ::testing::Test {
 protected:
  CoalescerTest()
      : data_(SmallData()),
        collection_(SmallCollection()),
        flush_pool_(1),
        query_pool_(2) {}

  std::unique_ptr<Coalescer> Make(const CoalescerOptions& options) {
    return std::make_unique<Coalescer>(&flush_pool_, &query_pool_, options);
  }

  std::vector<float> Query(size_t i = 0) const {
    const float* row = data_.row(i);
    return {row, row + data_.cols()};
  }

  FloatMatrix data_;  ///< same seed as the collection's seed rows
  std::unique_ptr<Collection> collection_;
  exec::TaskExecutor flush_pool_;
  exec::TaskExecutor query_pool_;
};

TEST_F(CoalescerTest, CoalescesConcurrentSubmitsIntoOneBatch) {
  auto coalescer = Make({.window_us = 50000, .max_batch = 32});
  QueryRequest request{.k = 5};
  std::atomic<int> done{0};
  std::mutex mu;
  std::vector<uint32_t> batch_sizes;
  std::vector<QueryResponse> responses(6);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(coalescer
                    ->Submit(collection_.get(), Query(i), request,
                             Clock::time_point::max(),
                             [&, i](const Status& s, QueryResponse r,
                                    uint32_t batch_size) {
                               ASSERT_TRUE(s.ok()) << s.ToString();
                               std::lock_guard lock(mu);
                               responses[i] = std::move(r);
                               batch_sizes.push_back(batch_size);
                               ++done;
                             })
                    .ok());
  }
  AwaitCount(done, 6);
  for (uint32_t b : batch_sizes) EXPECT_EQ(b, 6u);
  const CoalescerStats stats = coalescer->stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.batches_dispatched, 1u);
  EXPECT_EQ(stats.batched_queries, 6u);
  EXPECT_EQ(stats.max_batch_size, 6u);
  // Coalesced answers must equal direct single-query answers.
  for (int i = 0; i < 6; ++i) {
    auto direct = collection_->Search(Query(i).data(), request);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(SameIds(responses[i].neighbors, direct.value().neighbors));
  }
}

TEST_F(CoalescerTest, BatchCapFlushesEarly) {
  auto coalescer = Make({.window_us = 10000000, .max_batch = 2});
  std::atomic<int> done{0};
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(coalescer
                    ->Submit(collection_.get(), Query(i), QueryRequest{},
                             Clock::time_point::max(),
                             [&](const Status& s, QueryResponse,
                                 uint32_t batch_size) {
                               EXPECT_TRUE(s.ok());
                               EXPECT_EQ(batch_size, 2u);
                               ++done;
                             })
                    .ok());
  }
  AwaitCount(done, 4);
  // Dispatched at the cap, not after the 10-second window.
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));
  EXPECT_EQ(coalescer->stats().batches_dispatched, 2u);
}

TEST_F(CoalescerTest, IncompatibleRequestsDoNotShareBatches) {
  auto coalescer = Make({.window_us = 20000});
  std::atomic<int> done{0};
  for (const size_t k : {size_t{3}, size_t{5}}) {
    ASSERT_TRUE(coalescer
                    ->Submit(collection_.get(), Query(), QueryRequest{.k = k},
                             Clock::time_point::max(),
                             [&, k](const Status& s, QueryResponse r,
                                    uint32_t batch_size) {
                               EXPECT_TRUE(s.ok());
                               EXPECT_EQ(r.neighbors.size(), k);
                               EXPECT_EQ(batch_size, 1u);
                               ++done;
                             })
                    .ok());
  }
  AwaitCount(done, 2);
  EXPECT_EQ(coalescer->stats().batches_dispatched, 2u);
}

TEST_F(CoalescerTest, FilteredRequestBypassesTheWindow) {
  auto coalescer = Make({.window_us = 10000000});
  QueryRequest request;
  request.filter = QueryFilter::Deny({0});
  std::atomic<int> done{0};
  const auto t0 = Clock::now();
  ASSERT_TRUE(coalescer
                  ->Submit(collection_.get(), Query(), request,
                           Clock::time_point::max(),
                           [&](const Status& s, QueryResponse r,
                               uint32_t batch_size) {
                             EXPECT_TRUE(s.ok());
                             EXPECT_EQ(batch_size, 1u);
                             for (const auto& nb : r.neighbors) {
                               EXPECT_NE(nb.id, 0u);
                             }
                             ++done;
                           })
                  .ok());
  AwaitCount(done, 1);
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));
}

TEST_F(CoalescerTest, ExpiredDeadlineIsRejectedAtAdmission) {
  auto coalescer = Make({});
  bool callback_ran = false;
  const Status s = coalescer->Submit(
      collection_.get(), Query(), QueryRequest{},
      Clock::now() - std::chrono::milliseconds(1),
      [&](const Status&, QueryResponse, uint32_t) { callback_ran = true; });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(callback_ran);
  EXPECT_EQ(coalescer->stats().rejected_deadline, 1u);
  EXPECT_EQ(coalescer->stats().admitted, 0u);
}

TEST_F(CoalescerTest, DeadlineExpiringInWindowSkipsExecution) {
  auto coalescer = Make({.window_us = 5000000});
  std::atomic<int> done{0};
  ASSERT_TRUE(coalescer
                  ->Submit(collection_.get(), Query(), QueryRequest{},
                           Clock::now() + std::chrono::milliseconds(5),
                           [&](const Status& s, QueryResponse,
                               uint32_t batch_size) {
                             EXPECT_EQ(s.code(),
                                       StatusCode::kDeadlineExceeded);
                             EXPECT_EQ(batch_size, 0u);
                             ++done;
                           })
                  .ok());
  AwaitCount(done, 1);
  // The query never reached the index.
  EXPECT_EQ(coalescer->stats().batched_queries, 0u);
  EXPECT_GE(coalescer->stats().rejected_deadline, 1u);
}

TEST_F(CoalescerTest, ShedsWithRetryableStatusAtMaxInflight) {
  auto coalescer = Make(
      {.window_us = 200000, .max_batch = 32, .max_inflight = 2});
  std::atomic<int> done{0};
  auto ok_callback = [&](const Status& s, QueryResponse, uint32_t) {
    EXPECT_TRUE(s.ok());
    ++done;
  };
  ASSERT_TRUE(coalescer
                  ->Submit(collection_.get(), Query(0), QueryRequest{},
                           Clock::time_point::max(), ok_callback)
                  .ok());
  ASSERT_TRUE(coalescer
                  ->Submit(collection_.get(), Query(1), QueryRequest{},
                           Clock::time_point::max(), ok_callback)
                  .ok());
  const Status shed = coalescer->Submit(
      collection_.get(), Query(2), QueryRequest{}, Clock::time_point::max(),
      [&](const Status&, QueryResponse, uint32_t) { FAIL(); });
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(shed.retryable());
  EXPECT_EQ(coalescer->stats().shed_overload, 1u);
  coalescer->Drain();
  AwaitCount(done, 2);
}

TEST_F(CoalescerTest, DrainFlushesHeldQueriesAndStopsIntake) {
  auto coalescer = Make({.window_us = 10000000});
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(coalescer
                    ->Submit(collection_.get(), Query(i), QueryRequest{},
                             Clock::time_point::max(),
                             [&](const Status& s, QueryResponse, uint32_t) {
                               EXPECT_TRUE(s.ok());
                               ++done;
                             })
                    .ok());
  }
  coalescer->Drain();
  EXPECT_EQ(done.load(), 3);  // Drain returns only after completion
  EXPECT_EQ(coalescer->inflight(), 0u);
  const Status refused = coalescer->Submit(
      collection_.get(), Query(), QueryRequest{}, Clock::time_point::max(),
      [](const Status&, QueryResponse, uint32_t) {});
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
}

TEST_F(CoalescerTest, SubmitBatchDispatchesWithoutWindowHold) {
  auto coalescer = Make({.window_us = 10000000});
  FloatMatrix queries(4, collection_->dim());
  for (size_t i = 0; i < 4; ++i) {
    const auto q = Query(i);
    std::copy(q.begin(), q.end(), queries.mutable_row(i));
  }
  QueryRequest request{.k = 3};
  std::atomic<int> done{0};
  const auto t0 = Clock::now();
  ASSERT_TRUE(coalescer
                  ->SubmitBatch(collection_.get(), queries, request,
                                Clock::time_point::max(),
                                [&](const Status& s,
                                    std::vector<QueryResponse> responses) {
                                  EXPECT_TRUE(s.ok());
                                  EXPECT_EQ(responses.size(), 4u);
                                  ++done;
                                })
                  .ok());
  AwaitCount(done, 1);
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));
  EXPECT_EQ(coalescer->stats().batched_queries, 4u);
}

TEST_F(CoalescerTest, DestructorDrainsHeldQueries) {
  std::atomic<int> done{0};
  {
    auto coalescer = Make({.window_us = 10000000});
    ASSERT_TRUE(coalescer
                    ->Submit(collection_.get(), Query(), QueryRequest{},
                             Clock::time_point::max(),
                             [&](const Status& s, QueryResponse, uint32_t) {
                               EXPECT_TRUE(s.ok());
                               ++done;
                             })
                    .ok());
  }
  EXPECT_EQ(done.load(), 1);
}

// ---------------------------------------------------------------------------
// Server, end to end over loopback.

class ServeServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    data_ = SmallData();
    collection_ = SmallCollection();
    options.max_connections =
        options.max_connections == 32 ? 4 : options.max_connections;
    auto started =
        Server::Start({{"main", collection_.get()}}, options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  std::unique_ptr<Client> MakeClient() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::vector<float> Query(size_t i = 0) const {
    const float* row = data_.row(i);
    return {row, row + data_.cols()};
  }

  FloatMatrix data_;  ///< same seed as the collection's seed rows
  std::unique_ptr<Collection> collection_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeServerTest, PingAndSearchRoundTrip) {
  StartServer();
  auto client = MakeClient();
  ASSERT_TRUE(client->Ping().ok());

  QueryRequest request{.k = 5};
  const auto q = Query(3);
  auto reply = client->Search("main", q.data(), q.size(), request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GE(reply.value().batch_size, 1u);
  auto direct = collection_->Search(q.data(), request);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(
      SameIds(reply.value().response.neighbors, direct.value().neighbors));
  EXPECT_GT(reply.value().response.stats.candidates_verified, 0u);
}

TEST_F(ServeServerTest, SearchBatchUpsertDeleteStatsRoundTrip) {
  StartServer();
  auto client = MakeClient();

  FloatMatrix queries(3, collection_->dim());
  for (size_t i = 0; i < 3; ++i) {
    const auto q = Query(i);
    std::copy(q.begin(), q.end(), queries.mutable_row(i));
  }
  auto batch = client->SearchBatch("main", queries, QueryRequest{.k = 4});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch.value().size(), 3u);
  auto direct = collection_->SearchBatch(queries, QueryRequest{.k = 4});
  ASSERT_TRUE(direct.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(SameIds(batch.value()[i].neighbors,
                        direct.value()[i].neighbors));
  }

  // Upsert an outlier, find it, replace it under its id, then delete it.
  const std::vector<float> outlier(collection_->dim(), 500.f);
  auto id = client->Upsert("main", outlier.data(), outlier.size());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto found =
      client->Search("main", outlier.data(), outlier.size(), {.k = 1});
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found.value().response.neighbors.size(), 1u);
  EXPECT_EQ(found.value().response.neighbors[0].id, id.value());

  auto replaced =
      client->Upsert("main", id.value(), outlier.data(), outlier.size());
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value(), id.value());
  ASSERT_TRUE(client->Delete("main", id.value()).ok());
  EXPECT_EQ(client->Delete("main", id.value()).code(),
            StatusCode::kNotFound);

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats.value().collections.size(), 1u);
  EXPECT_EQ(stats.value().collections[0].name, "main");
  EXPECT_EQ(stats.value().collections[0].live_vectors, collection_->size());
  EXPECT_EQ(stats.value().server.upserts, 2u);
  EXPECT_EQ(stats.value().server.deletes, 2u);
  EXPECT_GE(stats.value().server.searches, 4u);
}

TEST_F(ServeServerTest, UnknownCollectionAndDimMismatchAreTyped) {
  StartServer();
  auto client = MakeClient();
  const auto q = Query();
  EXPECT_EQ(client->Search("nope", q.data(), q.size(), {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client->Search("main", q.data(), 3, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(client->Delete("nope", 0).code(), StatusCode::kNotFound);
}

TEST_F(ServeServerTest, PipelinedSearchesCoalesceIntoBatches) {
  ServerOptions options;
  options.coalescer.window_us = 50000;  // generous window on a 1-CPU box
  StartServer(options);
  auto client = MakeClient();

  QueryRequest request{.k = 5};
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    const auto q = Query(i);
    auto sent = client->SendSearch("main", q.data(), q.size(), request);
    ASSERT_TRUE(sent.ok()) << sent.status().ToString();
    ids.push_back(sent.value());
  }
  uint32_t max_batch = 0;
  for (int i = 0; i < 8; ++i) {
    auto got = client->ReceiveSearchReply();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value().status.ok()) << got.value().status.ToString();
    max_batch = std::max(max_batch, got.value().reply.batch_size);
  }
  // The acceptance bar: concurrent loopback searches demonstrably batch.
  EXPECT_GE(max_batch, 2u);
  const ServerStats stats = server_->Stats();
  EXPECT_GE(stats.max_batch_size, 2u);
  EXPECT_GE(stats.mean_batch_size, 2.0);
}

TEST_F(ServeServerTest, ExpiredDeadlineIsRejectedWithoutExecution) {
  StartServer();
  auto client = MakeClient();
  const auto q = Query();
  auto reply =
      client->Search("main", q.data(), q.size(), {}, /*deadline_us=*/1);
  EXPECT_EQ(reply.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server_->Stats().rejected_deadline, 1u);
  // The connection stays healthy and an undeadlined search still works.
  auto ok = client->Search("main", q.data(), q.size(), {});
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServeServerTest, OverloadShedsWithRetryableStatus) {
  ServerOptions options;
  options.coalescer.max_inflight = 1;
  options.coalescer.window_us = 100000;
  StartServer(options);
  auto client = MakeClient();

  const auto q = Query();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client->SendSearch("main", q.data(), q.size(), {}).ok());
  }
  int ok = 0, shed = 0;
  for (int i = 0; i < 4; ++i) {
    auto got = client->ReceiveSearchReply();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (got.value().status.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(got.value().status.retryable())
          << got.value().status.ToString();
      ++shed;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);
  EXPECT_GE(server_->Stats().shed_overload, 1u);
}

TEST_F(ServeServerTest, ConnectionCapShedsWithRetryableFrame) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  auto client = MakeClient();
  ASSERT_TRUE(client->Ping().ok());  // the one admitted connection

  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // The shed frame arrives unprompted, addressed to request_id 0.
  uint8_t header_buf[kHeaderBytes];
  ASSERT_TRUE(ReadFull(fd.value(), header_buf, kHeaderBytes).ok());
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(header_buf, &header));
  EXPECT_EQ(header.request_id, 0u);
  std::vector<uint8_t> payload(header.payload_len);
  ASSERT_TRUE(ReadFull(fd.value(), payload.data(), payload.size()).ok());
  wire::Reader r(payload.data(), payload.size());
  uint8_t status;
  ASSERT_TRUE(r.GetU8(&status));
  EXPECT_EQ(static_cast<WireStatus>(status), WireStatus::kOverloaded);
  EXPECT_TRUE(IsRetryable(static_cast<WireStatus>(status)));
  CloseFd(fd.value());
  EXPECT_GE(server_->Stats().connections_rejected, 1u);
  ASSERT_TRUE(client->Ping().ok());  // the admitted peer is unaffected
}

// Reads one frame off a raw socket (hardening tests drive the protocol
// below the Client abstraction).
Status ReadRawFrame(int fd, FrameHeader* header,
                    std::vector<uint8_t>* payload) {
  uint8_t header_buf[kHeaderBytes];
  Status s = ReadFull(fd, header_buf, kHeaderBytes);
  if (!s.ok()) return s;
  if (!DecodeHeader(header_buf, header)) {
    return Status::Corruption("bad header");
  }
  payload->resize(header->payload_len);
  return payload->empty() ? Status::OK()
                          : ReadFull(fd, payload->data(), payload->size());
}

WireStatus StatusOf(const std::vector<uint8_t>& payload) {
  wire::Reader r(payload.data(), payload.size());
  uint8_t status = 0xFF;
  r.GetU8(&status);
  return static_cast<WireStatus>(status);
}

TEST(ServeClientTest, OversizeResponseLengthIsRejectedBeforeAllocation) {
  // A spoofed "server" that answers with a huge length prefix must not be
  // able to make the client allocate gigabytes: the client mirrors the
  // server's payload gate.
  uint16_t port = 0;
  auto listening = ListenTcp("127.0.0.1", 0, &port);
  ASSERT_TRUE(listening.ok());
  ClientOptions options;
  options.max_payload_bytes = 1024;
  auto client = Client::Connect("127.0.0.1", port, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto accepted = AcceptWithTimeout(listening.value(), 1000);
  ASSERT_TRUE(accepted.ok());

  // Pre-send the bogus response (request_id 1 = the client's first call);
  // TCP buffers the Ping request the client writes before reading it.
  auto frame = EncodeFrame(OpCode::kPing, 1, {});
  frame[16] = 0xFF;  // payload_len := huge, no payload follows
  frame[17] = 0xFF;
  frame[18] = 0xFF;
  frame[19] = 0x7F;
  ASSERT_TRUE(WriteFull(accepted.value(), frame.data(), frame.size()).ok());

  const Status s = client.value()->Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  CloseFd(accepted.value());
  CloseFd(listening.value());
}

TEST_F(ServeServerTest, GarbageStreamIsDroppedWithoutHarmingPeers) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> garbage(64, 0xAB);
  ASSERT_TRUE(WriteFull(fd.value(), garbage.data(), garbage.size()).ok());
  // The server answers nothing and closes: the next read sees EOF.
  uint8_t byte;
  const Status s = ReadFull(fd.value(), &byte, 1);
  EXPECT_FALSE(s.ok());
  CloseFd(fd.value());

  auto client = MakeClient();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_GE(server_->Stats().protocol_errors, 1u);
}

TEST_F(ServeServerTest, OversizeLengthPrefixIsRejectedBeforeAllocation) {
  ServerOptions options;
  options.max_payload_bytes = 1024;
  StartServer(options);
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());

  auto frame = EncodeFrame(OpCode::kPing, 9, {});
  frame[16] = 0xFF;  // payload_len := huge, no payload follows
  frame[17] = 0xFF;
  frame[18] = 0xFF;
  frame[19] = 0x7F;
  ASSERT_TRUE(WriteFull(fd.value(), frame.data(), frame.size()).ok());

  FrameHeader header;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &payload).ok());
  EXPECT_EQ(header.request_id, 9u);
  EXPECT_EQ(StatusOf(payload), WireStatus::kProtocolError);
  // ... and the connection is dropped (the stream cannot resync).
  uint8_t byte;
  EXPECT_FALSE(ReadFull(fd.value(), &byte, 1).ok());
  CloseFd(fd.value());
  EXPECT_GE(server_->Stats().protocol_errors, 1u);
}

TEST_F(ServeServerTest, HugeBatchDimensionsAreAnsweredNotFatal) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());

  // num = dim = 2^31 makes num*dim = 2^62: a naive `count * 4` bound
  // wraps to 0, resize(2^62) throws on an executor thread, and the whole
  // process dies. The server must answer a typed error instead.
  std::vector<uint8_t> payload;
  wire::PutString(&payload, "main");
  wire::PutU32(&payload, 10);            // k
  wire::PutU32(&payload, 0);             // deadline_us
  wire::PutU32(&payload, 0);             // candidate_budget
  wire::PutF64(&payload, 0.0);           // r0
  wire::PutU32(&payload, 0x80000000u);   // num
  wire::PutU32(&payload, 0x80000000u);   // dim — and no floats follow
  const auto frame = EncodeFrame(OpCode::kSearchBatch, 31, payload);
  ASSERT_TRUE(WriteFull(fd.value(), frame.data(), frame.size()).ok());

  FrameHeader header;
  std::vector<uint8_t> response;
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &response).ok());
  EXPECT_EQ(header.request_id, 31u);
  EXPECT_EQ(StatusOf(response), WireStatus::kProtocolError);
  CloseFd(fd.value());

  auto client = MakeClient();
  EXPECT_TRUE(client->Ping().ok());  // the server is still alive
  EXPECT_GE(server_->Stats().protocol_errors, 1u);
}

TEST_F(ServeServerTest, BadChecksumIsAnsweredAndTheConnectionSurvives) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());

  std::vector<uint8_t> payload;
  wire::PutU32(&payload, 1234);
  auto frame = EncodeFrame(OpCode::kPing, 11, payload);
  frame[20] ^= 0xFF;  // corrupt the checksum
  ASSERT_TRUE(WriteFull(fd.value(), frame.data(), frame.size()).ok());

  FrameHeader header;
  std::vector<uint8_t> response;
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &response).ok());
  EXPECT_EQ(StatusOf(response), WireStatus::kProtocolError);

  // Frame boundaries stayed sound: a clean Ping on the same socket works.
  const auto ping = EncodeFrame(OpCode::kPing, 12, {});
  ASSERT_TRUE(WriteFull(fd.value(), ping.data(), ping.size()).ok());
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &response).ok());
  EXPECT_EQ(header.request_id, 12u);
  EXPECT_EQ(StatusOf(response), WireStatus::kOk);
  CloseFd(fd.value());
}

TEST_F(ServeServerTest, UnknownOpCodeIsAnsweredAndTheConnectionSurvives) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  const auto frame = EncodeFrame(static_cast<OpCode>(99), 21, {});
  ASSERT_TRUE(WriteFull(fd.value(), frame.data(), frame.size()).ok());
  FrameHeader header;
  std::vector<uint8_t> response;
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &response).ok());
  EXPECT_EQ(header.request_id, 21u);
  EXPECT_EQ(StatusOf(response), WireStatus::kProtocolError);

  const auto ping = EncodeFrame(OpCode::kPing, 22, {});
  ASSERT_TRUE(WriteFull(fd.value(), ping.data(), ping.size()).ok());
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &response).ok());
  EXPECT_EQ(StatusOf(response), WireStatus::kOk);
  CloseFd(fd.value());
}

TEST_F(ServeServerTest, TruncatedPayloadIsAnsweredProtocolError) {
  StartServer();
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  // A checksum-valid Search frame whose payload is one truncated string.
  std::vector<uint8_t> payload;
  wire::PutU16(&payload, 500);  // name length prefix with no body
  const auto frame = EncodeFrame(OpCode::kSearch, 31, payload);
  ASSERT_TRUE(WriteFull(fd.value(), frame.data(), frame.size()).ok());
  FrameHeader header;
  std::vector<uint8_t> response;
  ASSERT_TRUE(ReadRawFrame(fd.value(), &header, &response).ok());
  EXPECT_EQ(StatusOf(response), WireStatus::kProtocolError);
  CloseFd(fd.value());
}

TEST_F(ServeServerTest, MidFrameDisconnectLeavesPeersUnaffected) {
  ServerOptions options;
  options.coalescer.window_us = 100000;
  StartServer(options);

  // Peer A dies twice over: once mid-frame, once with a request in the
  // coalescer window whose response will hit a closed socket.
  {
    auto fd = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok());
    const auto frame = EncodeFrame(OpCode::kPing, 41, {});
    ASSERT_TRUE(WriteFull(fd.value(), frame.data(), 10).ok());
    CloseFd(fd.value());  // disconnect mid-header
  }
  auto dying = MakeClient();
  const auto q = Query();
  ASSERT_TRUE(dying->SendSearch("main", q.data(), q.size(), {}).ok());
  dying.reset();  // gone before its coalesced batch dispatches

  auto client = MakeClient();
  auto reply = client->Search("main", q.data(), q.size(), {.k = 3});
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().response.neighbors.size(), 3u);
  EXPECT_GE(server_->Stats().protocol_errors, 1u);
}

TEST_F(ServeServerTest, ShutdownDrainsHeldRequests) {
  ServerOptions options;
  options.coalescer.window_us = 300000;
  StartServer(options);
  auto client = MakeClient();

  const auto q = Query();
  ASSERT_TRUE(client->SendSearch("main", q.data(), q.size(), {}).ok());
  // Give the reader time to admit the request into the window.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Shutdown();  // must flush the window, not abandon the request

  auto got = client->ReceiveSearchReply();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.value().status.ok()) << got.value().status.ToString();
  // After shutdown the server side is closed.
  EXPECT_FALSE(client->Ping().ok());
  server_->Shutdown();  // idempotent
}

TEST(ServeServerStartTest, RejectsBadCollectionSets) {
  auto collection = SmallCollection();
  EXPECT_EQ(Server::Start({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Server::Start({{"", collection.get()}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Server::Start({{"a", nullptr}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Server::Start({{"a", collection.get()},
                           {"a", collection.get()}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dblsh::serve
