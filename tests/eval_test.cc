#include <gtest/gtest.h>

#include "baselines/linear_scan.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace dblsh::eval {
namespace {

// ----------------------------------------------------------------- Recall --

TEST(RecallTest, PerfectMatchIsOne) {
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}, {3.f, 2}};
  EXPECT_DOUBLE_EQ(Recall(gt, gt), 1.0);
}

TEST(RecallTest, EmptyReturnIsZero) {
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}};
  EXPECT_DOUBLE_EQ(Recall({}, gt), 0.0);
}

TEST(RecallTest, PartialOverlapCountsByDistance) {
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}, {3.f, 2}, {4.f, 3}};
  // Found the 1st and 3rd true neighbors (by distance), missed the others.
  std::vector<Neighbor> got = {{1.f, 0}, {3.f, 2}, {9.f, 9}, {11.f, 8}};
  EXPECT_DOUBLE_EQ(Recall(got, gt), 0.5);
}

TEST(RecallTest, EqualDistanceDifferentIdStillCounts) {
  // Standard ANN convention: ties at the same distance are interchangeable.
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}};
  std::vector<Neighbor> got = {{1.f, 42}, {2.f, 43}};
  EXPECT_DOUBLE_EQ(Recall(got, gt), 1.0);
}

TEST(RecallTest, DuplicateDistancesConsumeGroundTruthOnce) {
  std::vector<Neighbor> gt = {{1.f, 0}, {5.f, 1}};
  std::vector<Neighbor> got = {{1.f, 0}, {1.f, 9}};  // two at distance 1
  EXPECT_DOUBLE_EQ(Recall(got, gt), 0.5);  // only one true entry at 1.0
}

// ------------------------------------------------------------ OverallRatio --

TEST(OverallRatioTest, ExactAnswerIsOne) {
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}};
  EXPECT_DOUBLE_EQ(OverallRatio(gt, gt), 1.0);
}

TEST(OverallRatioTest, KnownInflation) {
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}};
  std::vector<Neighbor> got = {{1.5f, 5}, {2.f, 1}};
  EXPECT_DOUBLE_EQ(OverallRatio(got, gt), (1.5 + 1.0) / 2.0);
}

TEST(OverallRatioTest, MissingRanksPenalized) {
  std::vector<Neighbor> gt = {{1.f, 0}, {2.f, 1}, {4.f, 2}};
  std::vector<Neighbor> got = {{2.f, 5}};  // ratio 2 at rank 0, 2 missing
  EXPECT_DOUBLE_EQ(OverallRatio(got, gt), (2.0 + 2.0 + 2.0) / 3.0);
}

TEST(OverallRatioTest, NeverBelowOne) {
  std::vector<Neighbor> gt = {{2.f, 0}};
  std::vector<Neighbor> got = {{1.f, 5}};  // "better than exact" clamps to 1
  EXPECT_DOUBLE_EQ(OverallRatio(got, gt), 1.0);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Method", "Recall"});
  t.AddRow({"DB-LSH", "0.93"});
  t.AddRow({"PM-LSH", "0.9"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("DB-LSH"), std::string::npos);
  EXPECT_NE(s.find("Recall"), std::string::npos);
  // All lines have equal width.
  size_t width = s.find('\n');
  for (size_t pos = 0; pos < s.size();) {
    const size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TableTest, CsvExport) {
  Table t({"Method", "Recall"});
  t.AddRow({"DB-LSH", "0.93"});
  t.AddRow({"weird,name", "says \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv,
            "Method,Recall\n"
            "DB-LSH,0.93\n"
            "\"weird,name\",\"says \"\"hi\"\"\"\n");
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(Table::Fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Table::FmtMs(0.5), "0.500ms");
  EXPECT_EQ(Table::FmtMs(2500.0), "2.50s");
}

// ---------------------------------------------------------------- Runner --

TEST(RunnerTest, WorkloadSplitsAndComputesGroundTruth) {
  const Workload w = MakeWorkload(
      "test", GenerateUniform(500, 8, 10.0, 70), 20, 5);
  EXPECT_EQ(w.queries.rows(), 20u);
  EXPECT_EQ(w.data.rows(), 480u);
  ASSERT_EQ(w.ground_truth.size(), 20u);
  EXPECT_EQ(w.ground_truth[0].size(), 5u);
}

TEST(RunnerTest, LinearScanScoresPerfectly) {
  const Workload w = MakeWorkload(
      "test", GenerateClustered({.n = 600, .dim = 16, .seed = 71}), 10, 5);
  LinearScan scan;
  auto result = RunMethod(&scan, w);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().recall, 1.0);
  EXPECT_DOUBLE_EQ(result.value().overall_ratio, 1.0);
  EXPECT_GT(result.value().avg_query_ms, 0.0);
  EXPECT_GE(result.value().indexing_time_sec, 0.0);
}

TEST(RunnerTest, BuildFailurePropagates) {
  Workload w;  // empty data
  w.k = 5;
  LinearScan scan;
  EXPECT_FALSE(RunMethod(&scan, w).ok());
}

TEST(RunnerTest, PaperLineupHasAllMethods) {
  const auto methods = MakePaperMethods(10000);
  ASSERT_EQ(methods.size(), 8u);
  EXPECT_EQ(methods[0]->Name(), "DB-LSH");
  EXPECT_EQ(methods[1]->Name(), "FB-LSH");
}

}  // namespace
}  // namespace dblsh::eval
