#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/fb_lsh.h"
#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "util/random.h"

namespace dblsh {
namespace {

FloatMatrix EasyData(size_t n = 4000, size_t dim = 32, uint64_t seed = 50) {
  return GenerateClustered(
      {.n = n, .dim = dim, .clusters = 12, .seed = seed});
}

// ------------------------------------------------------------ Validation --

TEST(DbLshBuildTest, RejectsEmptyDataset) {
  FloatMatrix empty(0, 8);
  DbLsh index;
  EXPECT_FALSE(index.Build(&empty).ok());
  EXPECT_FALSE(index.Build(nullptr).ok());
}

TEST(DbLshBuildTest, RejectsBadApproximationRatio) {
  const FloatMatrix data = EasyData(100);
  DbLshParams params;
  params.c = 1.0;
  DbLsh index(params);
  EXPECT_FALSE(index.Build(&data).ok());
}

TEST(DbLshBuildTest, RejectsZeroTables) {
  const FloatMatrix data = EasyData(100);
  DbLshParams params;
  params.l = 0;
  DbLsh index(params);
  EXPECT_FALSE(index.Build(&data).ok());
}

TEST(DbLshBuildTest, AutoDerivesPaperDefaults) {
  const FloatMatrix data = EasyData(2000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto& p = index.params();
  EXPECT_DOUBLE_EQ(p.c, 1.5);
  EXPECT_DOUBLE_EQ(p.w0, 4.0 * 1.5 * 1.5);  // w0 = 4c^2
  EXPECT_EQ(p.k, 10u);                      // n <= 1M
  EXPECT_EQ(p.l, 5u);
  EXPECT_GE(p.t, 8u);
  EXPECT_EQ(index.NumHashFunctions(), p.k * p.l);
  EXPECT_EQ(index.IndexEntries(), p.l * data.rows());
}

// ------------------------------------------------------------- Accuracy --

TEST(DbLshQueryTest, FindsExactPointInDataset) {
  const FloatMatrix data = EasyData();
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  // Querying with a data point: its projection sits at the center of every
  // window, so a distance-0 hit must appear in the top-k. (For k = 1 the
  // c-ANN contract legitimately allows returning a within-c*r neighbor
  // instead, so k = 5 is used here.)
  for (uint32_t id : {0u, 100u, 2222u}) {
    const auto result = index.Query(data.row(id), 5);
    ASSERT_FALSE(result.empty());
    EXPECT_FLOAT_EQ(result[0].dist, 0.f);
  }
}

TEST(DbLshQueryTest, HighRecallOnClusteredData) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(4000), 30, 51, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  DbLshParams params;
  params.t = 40;  // candidate budget 2tL = 400 (10% of n)
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&data).ok());
  double recall_sum = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto result = index.Query(queries.row(q), 10);
    recall_sum += eval::Recall(result, gt[q]);
  }
  EXPECT_GT(recall_sum / queries.rows(), 0.8);
}

TEST(DbLshQueryTest, OverallRatioNearOne) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(4000), 30, 52, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  double ratio_sum = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    ratio_sum += eval::OverallRatio(index.Query(queries.row(q), 10), gt[q]);
  }
  EXPECT_LT(ratio_sum / queries.rows(), 1.15);
}

TEST(DbLshQueryTest, TheoreticalApproximationGuaranteeHolds) {
  // Theorem 1: c-ANN with ratio c^2 and probability >= 1/2 - 1/e. Measured
  // per query for k=1, the success rate must comfortably exceed that bound.
  FloatMatrix data, queries;
  SplitQueries(EasyData(3000), 50, 53, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 1);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const double c2 = index.params().c * index.params().c;
  size_t success = 0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto result = index.Query(queries.row(q), 1);
    ASSERT_FALSE(result.empty());
    if (result[0].dist <= c2 * gt[q][0].dist + 1e-4) ++success;
  }
  const double guarantee = 0.5 - 1.0 / M_E;  // ~0.132
  EXPECT_GT(double(success) / queries.rows(), guarantee);
}

TEST(DbLshQueryTest, KZeroReturnsEmpty) {
  const FloatMatrix data = EasyData(500);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  EXPECT_TRUE(index.Query(data.row(0), 0).empty());
}

TEST(DbLshQueryTest, KGreaterThanNReturnsAtMostN) {
  const FloatMatrix data = EasyData(64);
  DbLshParams params;
  params.t = 1000;  // budget large enough to see everything
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(0), 1000);
  EXPECT_LE(result.size(), 64u);
  EXPECT_GT(result.size(), 0u);
}

TEST(DbLshQueryTest, ResultsSortedAscendingAndUnique) {
  const FloatMatrix data = EasyData(2000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(5), 20);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i].dist, result[i - 1].dist);
  }
  std::vector<uint32_t> ids;
  for (const auto& nb : result) ids.push_back(nb.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

// --------------------------------------------------------------- Budget --

TEST(DbLshQueryTest, RespectsCandidateBudget) {
  const FloatMatrix data = EasyData(5000);
  DbLshParams params;
  params.t = 10;
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&data).ok());
  QueryStats stats;
  const size_t k = 5;
  index.Query(data.row(9), k, &stats);
  EXPECT_LE(stats.candidates_verified,
            2 * index.params().t * index.params().l + k);
}

TEST(DbLshQueryTest, StatsArePopulated) {
  const FloatMatrix data = EasyData(2000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  QueryStats stats;
  index.Query(data.row(0), 5, &stats);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.window_queries, 0u);
  EXPECT_GT(stats.candidates_verified, 0u);
}

// ---------------------------------------------------------------- RcNn --

TEST(DbLshRcNnTest, LargeRadiusFindsSomething) {
  const FloatMatrix data = EasyData(1000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  // With a radius covering the whole data spread, case (1) of Definition 2
  // applies: the query must return a point within c*r.
  const double huge_r = 1e4;
  const auto result = index.RcNnQuery(data.row(0), huge_r);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->dist, index.params().c * huge_r);
}

TEST(DbLshRcNnTest, TinyRadiusOnIsolatedQueryFindsNothing) {
  // A query far from all points with r far below the true NN distance must
  // return nothing (case (2) of Definition 2).
  FloatMatrix data(100, 4);
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      data.at(i, j) = 100.f + static_cast<float>(i);
    }
  }
  DbLshParams params;
  params.r0 = 1.0;
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&data).ok());
  const float far_query[4] = {0.f, 0.f, 0.f, 0.f};
  const auto result = index.RcNnQuery(far_query, 1e-3);
  EXPECT_FALSE(result.has_value());
}

TEST(DbLshRcNnTest, ReturnedPointIsWithinCr) {
  const FloatMatrix data = EasyData(2000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto gt = ExactKnn(data, data.row(42), 2);
  // r = true NN distance of a perturbed query: must return a c*r point.
  const double r = std::max<double>(gt[1].dist, 1e-3);
  const auto result = index.RcNnQuery(data.row(42), r);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->dist, index.params().c * r + 1e-4);
}

// ------------------------------------------------------------ FB ablation --

TEST(FbLshTest, FixedBucketingStillWorks) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(3000), 20, 54, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  DbLsh fb(FbLshDefaultParams(data.rows()));
  ASSERT_TRUE(fb.Build(&data).ok());
  EXPECT_EQ(fb.Name(), "FB-LSH");
  double recall_sum = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    recall_sum += eval::Recall(fb.Query(queries.row(q), 10), gt[q]);
  }
  EXPECT_GT(recall_sum / queries.rows(), 0.4);
}

TEST(FbLshTest, DynamicBucketingBeatsFixedAtEqualBudget) {
  // The paper's central ablation: same (K,L)-index, same candidate budget;
  // query-centric buckets must reach at least the recall of fixed ones
  // (aggregated over queries to absorb randomness).
  FloatMatrix data, queries;
  SplitQueries(EasyData(4000, 32, 55), 40, 56, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);

  DbLshParams dynamic_params;
  dynamic_params.k = 8;
  dynamic_params.l = 5;
  dynamic_params.t = 30;
  DbLshParams fixed_params = dynamic_params;
  fixed_params.bucketing = BucketingMode::kFixedGrid;

  DbLsh dynamic_index(dynamic_params), fixed_index(fixed_params);
  ASSERT_TRUE(dynamic_index.Build(&data).ok());
  ASSERT_TRUE(fixed_index.Build(&data).ok());
  double dyn_recall = 0.0, fix_recall = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    dyn_recall += eval::Recall(dynamic_index.Query(queries.row(q), 10), gt[q]);
    fix_recall += eval::Recall(fixed_index.Query(queries.row(q), 10), gt[q]);
  }
  EXPECT_GE(dyn_recall, fix_recall - 1.0);  // allow 2.5% noise margin
}

// ----------------------------------------------------- Build variations --

TEST(DbLshBuildTest, InsertionBuildMatchesBulkLoadQuality) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(1500), 15, 57, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 5);
  DbLshParams bulk_params;
  DbLshParams insert_params;
  insert_params.bulk_load = false;
  DbLsh bulk_index(bulk_params), insert_index(insert_params);
  ASSERT_TRUE(bulk_index.Build(&data).ok());
  ASSERT_TRUE(insert_index.Build(&data).ok());
  double bulk_recall = 0.0, insert_recall = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    bulk_recall += eval::Recall(bulk_index.Query(queries.row(q), 5), gt[q]);
    insert_recall +=
        eval::Recall(insert_index.Query(queries.row(q), 5), gt[q]);
  }
  // Same projections, same buckets: identical candidates, identical recall.
  EXPECT_NEAR(bulk_recall, insert_recall, 1e-9);
}

TEST(DbLshBuildTest, DeterministicAcrossRebuilds) {
  const FloatMatrix data = EasyData(1000);
  DbLsh a, b;
  ASSERT_TRUE(a.Build(&data).ok());
  ASSERT_TRUE(b.Build(&data).ok());
  for (uint32_t q : {3u, 77u, 500u}) {
    const auto ra = a.Query(data.row(q), 5);
    const auto rb = b.Query(data.row(q), 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) EXPECT_EQ(ra[i].id, rb[i].id);
  }
}

TEST(DbLshBuildTest, WorksOnTinyDataset) {
  const FloatMatrix data = EasyData(12);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(0), 3);
  EXPECT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST(DbLshBuildTest, HighDimensionalData) {
  const FloatMatrix data = EasyData(800, 256, 58);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(1), 5);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

}  // namespace
}  // namespace dblsh
