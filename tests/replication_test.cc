// End-to-end tests for WAL-shipping replication (src/replication/ over
// src/serve/): snapshot bootstrap, log tailing, randomized-stream
// convergence against a digest oracle, follower kill/restart catch-up,
// stale-follower re-seed after a primary checkpoint, fault injection at
// both replication write paths, and the read-only write gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/collection.h"
#include "dataset/float_matrix.h"
#include "durability/fail_point.h"
#include "durability/format.h"
#include "replication/replica.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/random.h"
#include "util/status.h"

namespace dblsh {
namespace {

namespace fs = std::filesystem;
using durability::FailPoints;
using replication::Replica;
using replication::ReplicaOptions;
using serve::Client;
using serve::Server;
using serve::ServerOptions;

// Fresh per-test scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("dblsh_repl_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Order-independent digest of the live (id, vector-bytes) set — the
// logical state the primary and the follower must agree on (same oracle
// as tests/durability_test.cc; computed from Snapshot(), so quantized
// storage compares its deterministic decode).
uint64_t DigestOf(const Collection& collection) {
  const FloatMatrix snap = collection.Snapshot();
  uint64_t digest = 0;
  for (size_t g = 0; g < snap.rows(); ++g) {
    if (snap.IsDeleted(g)) continue;
    const auto id = static_cast<uint32_t>(g);
    uint64_t h = durability::Fnv1a64(
        reinterpret_cast<const uint8_t*>(&id), sizeof(id));
    h = durability::Fnv1a64(reinterpret_cast<const uint8_t*>(snap.row(g)),
                            snap.cols() * sizeof(float), h);
    digest ^= h;  // xor: insertion order must not matter
  }
  return digest;
}

std::vector<float> MakeVec(size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (float& x : v) {
    x = static_cast<float>(rng->NextU64() % 2000) / 10.0f;
  }
  return v;
}

constexpr size_t kDim = 6;

// Primary + serving front-end + follower, wired over loopback. LinearScan
// is the index on both sides on purpose: its answers are a pure function
// of the live rows, so read-equivalence checks are immune to
// rebuild-timing differences between the two collections.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::Instance().Reset(); }
  void TearDown() override {
    replica_.reset();
    server_.reset();
    primary_.reset();
    FailPoints::Instance().Reset();
  }

  static std::string Spec(const std::string& dir, const std::string& extra,
                          const std::string& indexes) {
    return "collection,shards=2,durability=" + dir + extra + ": " + indexes;
  }

  void StartPrimary(const std::string& extra = "",
                    const std::string& indexes = "LinearScan",
                    size_t seed_rows = 24) {
    primary_dir_ = std::make_unique<TempDir>("primary");
    Rng rng(7);
    FloatMatrix seed(seed_rows, kDim);
    for (size_t i = 0; i < seed_rows; ++i) {
      const auto v = MakeVec(kDim, &rng);
      std::copy(v.begin(), v.end(), seed.mutable_row(i));
    }
    auto made = Collection::FromSpec(
        Spec(primary_dir_->path(), extra, indexes),
        std::make_unique<FloatMatrix>(std::move(seed)));
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    primary_ = std::move(made).value();
    auto started = Server::Start({{"main", primary_.get()}}, {});
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  ReplicaOptions MakeReplicaOptions(const std::string& extra = "",
                                    const std::string& indexes =
                                        "LinearScan") {
    if (replica_dir_ == nullptr) {
      replica_dir_ = std::make_unique<TempDir>("replica");
    }
    ReplicaOptions options;
    options.primary_host = "127.0.0.1";
    options.primary_port = server_->port();
    options.collection = "main";
    options.dir = replica_dir_->path();
    options.spec = Spec(replica_dir_->path(), extra, indexes);
    options.reconnect_backoff_ms = 50;
    return options;
  }

  void StartReplica(const std::string& extra = "",
                    const std::string& indexes = "LinearScan") {
    auto started = Replica::Start(MakeReplicaOptions(extra, indexes));
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    replica_ = std::move(started).value();
  }

  // Polls until the follower's digest equals the (quiescent) primary's.
  bool AwaitConverged(int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    const uint64_t want = DigestOf(*primary_);
    while (std::chrono::steady_clock::now() < deadline) {
      if (DigestOf(*replica_->collection()) == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  // Randomized upsert (fresh + in-place) / delete stream on the primary.
  void MutatePrimary(size_t ops, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint32_t> live;
    {
      const FloatMatrix snap = primary_->Snapshot();
      for (size_t g = 0; g < snap.rows(); ++g) {
        if (!snap.IsDeleted(g)) live.push_back(static_cast<uint32_t>(g));
      }
    }
    for (size_t i = 0; i < ops; ++i) {
      const auto v = MakeVec(kDim, &rng);
      const uint64_t dice = rng.NextU64() % 10;
      if (dice < 5 || live.empty()) {
        auto id = primary_->Upsert(v.data(), v.size());
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        live.push_back(id.value());
      } else if (dice < 8) {
        const uint32_t id = live[rng.NextU64() % live.size()];
        auto replaced = primary_->Upsert(id, v.data(), v.size());
        ASSERT_TRUE(replaced.ok()) << replaced.status().ToString();
      } else {
        const size_t at = rng.NextU64() % live.size();
        ASSERT_TRUE(primary_->Delete(live[at]).ok());
        live.erase(live.begin() + static_cast<ptrdiff_t>(at));
      }
    }
  }

  // Fixed queries must answer identically on both sides.
  void ExpectEqualReads(size_t queries, uint64_t seed, size_t k) {
    Rng rng(seed);
    for (size_t i = 0; i < queries; ++i) {
      const auto q = MakeVec(kDim, &rng);
      QueryRequest request;
      request.k = k;
      auto p = primary_->Search(q.data(), request);
      auto r = replica_->collection()->Search(q.data(), request);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(p.value().neighbors.size(), r.value().neighbors.size());
      for (size_t n = 0; n < p.value().neighbors.size(); ++n) {
        EXPECT_EQ(p.value().neighbors[n].id, r.value().neighbors[n].id);
        EXPECT_EQ(p.value().neighbors[n].dist, r.value().neighbors[n].dist);
      }
    }
  }

  std::unique_ptr<TempDir> primary_dir_;
  std::unique_ptr<TempDir> replica_dir_;
  std::unique_ptr<Collection> primary_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Replica> replica_;
};

TEST_F(ReplicationTest, BootstrapReplicatesSeedStateAndServesEqualReads) {
  StartPrimary();
  StartReplica();
  ASSERT_TRUE(AwaitConverged());
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
  EXPECT_EQ(replica_->FirstError(), "");
  ExpectEqualReads(8, 99, 5);
}

TEST_F(ReplicationTest, RandomizedStreamConvergesToPrimaryDigest) {
  StartPrimary();
  StartReplica();
  MutatePrimary(300, 1234);
  ASSERT_TRUE(AwaitConverged());
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
  EXPECT_EQ(replica_->FirstError(), "");

  const serve::ReplicationReport report = replica_->Report();
  ASSERT_EQ(report.shards.size(), 2u);
  const std::vector<uint64_t> primary_lsns = primary_->ShardAppliedLsns();
  for (size_t s = 0; s < report.shards.size(); ++s) {
    EXPECT_EQ(report.shards[s].applied_lsn, primary_lsns[s]);
    EXPECT_GE(report.shards[s].primary_lsn, report.shards[s].applied_lsn);
  }
  EXPECT_GT(report.records_applied, 0u);
}

TEST_F(ReplicationTest, FollowerRejectsWritesWithReadOnlyAndPrimaryAddress) {
  StartPrimary();
  StartReplica();
  MutatePrimary(10, 5);
  ASSERT_TRUE(AwaitConverged());
  const std::string primary_address =
      "127.0.0.1:" + std::to_string(server_->port());

  // Direct writes hit the collection gate.
  Rng rng(6);
  const auto v = MakeVec(kDim, &rng);
  auto direct = replica_->collection()->Upsert(v.data(), v.size());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kReadOnly);
  EXPECT_NE(direct.status().message().find(primary_address),
            std::string::npos);

  // And the same refusal travels the wire as kReadOnly through a serving
  // front-end over the replica, with the replica's report wired in.
  Replica* replica = replica_.get();
  ServerOptions options;
  options.replication_report = [replica] { return replica->Report(); };
  auto follower_server =
      Server::Start({{"main", replica_->collection()}}, options);
  ASSERT_TRUE(follower_server.ok()) << follower_server.status().ToString();
  auto client =
      Client::Connect("127.0.0.1", follower_server.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto wire = client.value()->Upsert("main", v.data(), v.size());
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), StatusCode::kReadOnly);
  EXPECT_NE(wire.status().message().find(primary_address),
            std::string::npos);
  EXPECT_EQ(client.value()->Delete("main", 0).code(), StatusCode::kReadOnly);

  auto status = client.value()->ReplicaStatus("main");
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_EQ(status.value().role, 1);
  EXPECT_EQ(status.value().primary, primary_address);
  ASSERT_EQ(status.value().shards.size(), 2u);
  for (const auto& shard : status.value().shards) {
    EXPECT_GE(shard.primary_lsn, shard.applied_lsn);
  }

  // The primary's own front-end answers the same op as role 0.
  auto primary_client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(primary_client.ok());
  auto primary_status = primary_client.value()->ReplicaStatus("main");
  ASSERT_TRUE(primary_status.ok()) << primary_status.status().ToString();
  EXPECT_EQ(primary_status.value().role, 0);
  EXPECT_TRUE(primary_status.value().primary.empty());
  EXPECT_GT(primary_status.value().records_shipped, 0u);
}

TEST_F(ReplicationTest, KilledFollowerRecoversLocallyAndCatchesUp) {
  StartPrimary();
  StartReplica();
  MutatePrimary(80, 42);
  ASSERT_TRUE(AwaitConverged());

  // Drop the replica with no checkpoint of its own: the durable directory
  // holds exactly what tailing re-logged, like a kill -9 would leave.
  replica_.reset();

  // The primary moves on while the follower is down.
  MutatePrimary(120, 43);

  // Restart over the same directory: local recovery + re-subscribe from
  // the recovered per-shard LSNs.
  StartReplica();
  ASSERT_TRUE(AwaitConverged());
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
  EXPECT_EQ(replica_->FirstError(), "");
}

TEST_F(ReplicationTest, StaleFollowerReseedsAfterPrimaryCheckpoint) {
  StartPrimary();
  StartReplica();
  MutatePrimary(40, 7);
  ASSERT_TRUE(AwaitConverged());
  replica_.reset();

  // While the follower is down the primary both advances AND checkpoints,
  // so tailing from the follower's old position may no longer be possible
  // — Start() must detect the snapshot-mode answer and re-seed.
  MutatePrimary(60, 8);
  ASSERT_TRUE(primary_->Checkpoint().ok());

  StartReplica();
  ASSERT_TRUE(AwaitConverged());
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
}

TEST_F(ReplicationTest, InjectedSnapshotChunkFailureFailsBootstrapCleanly) {
  StartPrimary();
  // Kill the primary's first chunk send: the stream ends mid-snapshot and
  // bootstrap reports the disconnect instead of opening a torn replica.
  FailPoints::Instance().Arm(durability::kFailReplicationChunk, 1, 0);
  auto failed = Replica::Start(MakeReplicaOptions());
  EXPECT_FALSE(failed.ok());
  EXPECT_GE(FailPoints::Instance().HitCount(durability::kFailReplicationChunk),
            1u);

  // Disarmed, the same directory bootstraps fine — the torn attempt left
  // nothing a re-seed cannot overwrite.
  FailPoints::Instance().Reset();
  StartReplica();
  ASSERT_TRUE(AwaitConverged());
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
}

TEST_F(ReplicationTest, InjectedApplyFailureRetriesViaRedelivery) {
  StartPrimary();
  StartReplica();
  ASSERT_TRUE(AwaitConverged());

  // The follower's 2nd streamed-record apply dies mid-stream. The record
  // was neither applied nor locally logged, so the tail drops the
  // connection and resumes from its applied LSN; the primary redelivers.
  FailPoints::Instance().Arm(durability::kFailReplicationApply, 2, 0);
  MutatePrimary(50, 77);
  ASSERT_TRUE(AwaitConverged());
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
  EXPECT_EQ(replica_->FirstError(), "");
  EXPECT_GE(FailPoints::Instance().HitCount(durability::kFailReplicationApply),
            2u);
}

TEST_F(ReplicationTest, QuantizedStorageReplicatesRetrainsExactly) {
  // sq8 with a small rebuild threshold: the mutation stream keeps
  // triggering full rebuilds, each re-training the quantizer from the
  // live rows. The retrain travels the log as its own record, so the
  // follower's decoded bytes match the primary's exactly.
  StartPrimary(",storage=sq8,rerank=4", "LinearScan,rebuild_threshold=8");
  StartReplica(",storage=sq8,rerank=4", "LinearScan,rebuild_threshold=8");
  MutatePrimary(200, 2024);
  const bool converged = AwaitConverged();
  const auto p_lsns = primary_->ShardAppliedLsns();
  const auto r_lsns = replica_->collection()->ShardAppliedLsns();
  ASSERT_TRUE(converged)
      << "error=" << replica_->FirstError() << " primary_lsns=" << p_lsns[0]
      << "," << p_lsns[1] << " replica_lsns=" << r_lsns[0] << ","
      << r_lsns[1];
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
  EXPECT_EQ(replica_->FirstError(), "");
  ExpectEqualReads(5, 31, 4);
}

TEST_F(ReplicationTest, PqStorageReplicatesRetrainsExactly) {
  // The pq analog: the follower bootstraps from a pq snapshot (adopting
  // codes + codebooks verbatim), then applies the streamed tail including
  // kRetrain records. Deterministic k-means makes the follower's
  // re-derived codebooks byte-equal to the primary's, so the decoded
  // digests must match exactly.
  StartPrimary(",storage=pq,m=3,rerank=4", "LinearScan,rebuild_threshold=8");
  StartReplica(",storage=pq,m=3,rerank=4", "LinearScan,rebuild_threshold=8");
  MutatePrimary(200, 2025);
  const bool converged = AwaitConverged();
  const auto p_lsns = primary_->ShardAppliedLsns();
  const auto r_lsns = replica_->collection()->ShardAppliedLsns();
  ASSERT_TRUE(converged)
      << "error=" << replica_->FirstError() << " primary_lsns=" << p_lsns[0]
      << "," << p_lsns[1] << " replica_lsns=" << r_lsns[0] << ","
      << r_lsns[1];
  EXPECT_EQ(DigestOf(*primary_), DigestOf(*replica_->collection()));
  EXPECT_EQ(replica_->FirstError(), "");
  ExpectEqualReads(5, 33, 4);
}

TEST_F(ReplicationTest, ServerStatsCountSubscriptionsAndShippedRecords) {
  StartPrimary();
  StartReplica();
  MutatePrimary(30, 3);
  ASSERT_TRUE(AwaitConverged());
  const serve::ServerStats stats = server_->Stats();
  // Bootstrap subscribes once per shard in snapshot mode, then once per
  // shard for the tails.
  EXPECT_GE(stats.replication_subscriptions, 4u);
  EXPECT_GE(stats.replication_records_shipped, 30u);
}

}  // namespace
}  // namespace dblsh
