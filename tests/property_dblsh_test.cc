// Parameterized property tests of the DB-LSH index across approximation
// ratios, bucket widths, table counts and bucketing modes, plus tests for
// the SRS baseline and the parallel batch query runner.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/srs.h"
#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "eval/parallel.h"

namespace dblsh {
namespace {

struct Fixture {
  FloatMatrix data;
  FloatMatrix queries;
  std::vector<std::vector<Neighbor>> gt;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    SplitQueries(GenerateClustered({.n = 3000,
                                    .dim = 32,
                                    .clusters = 12,
                                    .center_spread = 60.0,
                                    .cluster_stddev = 2.0,
                                    .seed = 2001}),
                 25, 2002, &f->data, &f->queries);
    f->gt = ComputeGroundTruth(f->data, f->queries, 10);
    return f;
  }();
  return *fixture;
}

// ------------------------------------------------------ parameter sweep --

struct SweepConfig {
  double c;
  double gamma;  // w0 = 2 gamma c^2
  size_t l;
  BucketingMode mode;
};

class DbLshSweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(DbLshSweep, BuildsAndAnswersWithGuarantee) {
  const SweepConfig& cfg = GetParam();
  const Fixture& f = SharedFixture();
  DbLshParams params;
  params.c = cfg.c;
  params.w0 = 2.0 * cfg.gamma * cfg.c * cfg.c;
  params.l = cfg.l;
  params.t = 40;
  params.bucketing = cfg.mode;
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&f.data).ok());

  // Theorem 1's success probability is >= 1/2 - 1/e per query; empirically
  // over 25 queries the c^2 guarantee must hold far more often than that.
  const double c2 = cfg.c * cfg.c;
  size_t success = 0;
  for (size_t q = 0; q < f.queries.rows(); ++q) {
    const auto result = index.Query(f.queries.row(q), 1);
    ASSERT_FALSE(result.empty());
    if (result[0].dist <= c2 * f.gt[q][0].dist + 1e-4) ++success;
  }
  EXPECT_GT(static_cast<double>(success) / f.queries.rows(),
            0.5 - 1.0 / 2.718281828459045);
}

TEST_P(DbLshSweep, BudgetIsRespected) {
  const SweepConfig& cfg = GetParam();
  const Fixture& f = SharedFixture();
  DbLshParams params;
  params.c = cfg.c;
  params.w0 = 2.0 * cfg.gamma * cfg.c * cfg.c;
  params.l = cfg.l;
  params.t = 12;
  params.bucketing = cfg.mode;
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&f.data).ok());
  for (size_t q = 0; q < 5; ++q) {
    QueryStats stats;
    index.Query(f.queries.row(q), 10, &stats);
    EXPECT_LE(stats.candidates_verified, 2 * params.t * params.l + 10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DbLshSweep,
    ::testing::Values(
        SweepConfig{1.2, 2.0, 5, BucketingMode::kDynamicQueryCentric},
        SweepConfig{1.5, 2.0, 5, BucketingMode::kDynamicQueryCentric},
        SweepConfig{2.0, 2.0, 5, BucketingMode::kDynamicQueryCentric},
        SweepConfig{3.0, 2.0, 5, BucketingMode::kDynamicQueryCentric},
        SweepConfig{1.5, 1.0, 5, BucketingMode::kDynamicQueryCentric},
        SweepConfig{1.5, 3.0, 5, BucketingMode::kDynamicQueryCentric},
        SweepConfig{1.5, 2.0, 1, BucketingMode::kDynamicQueryCentric},
        SweepConfig{1.5, 2.0, 10, BucketingMode::kDynamicQueryCentric},
        SweepConfig{1.5, 2.0, 5, BucketingMode::kFixedGrid},
        SweepConfig{2.0, 2.0, 8, BucketingMode::kFixedGrid}),
    [](const auto& info) {
      const SweepConfig& cfg = info.param;
      return "c" + std::to_string(static_cast<int>(cfg.c * 10)) + "_g" +
             std::to_string(static_cast<int>(cfg.gamma * 10)) + "_l" +
             std::to_string(cfg.l) +
             (cfg.mode == BucketingMode::kFixedGrid ? "_fixed" : "_dyn");
    });

// --------------------------------------------------------- more tables --

TEST(DbLshMonotonicityTest, MoreTablesDoNotHurtRecall) {
  const Fixture& f = SharedFixture();
  double prev_recall = -1.0;
  for (size_t l : {1, 3, 8}) {
    DbLshParams params;
    params.l = l;
    params.t = 200 / (2 * l);  // constant total budget 2tL ~ 200
    DbLsh index(params);
    ASSERT_TRUE(index.Build(&f.data).ok());
    double recall = 0.0;
    for (size_t q = 0; q < f.queries.rows(); ++q) {
      recall += eval::Recall(index.Query(f.queries.row(q), 10), f.gt[q]);
    }
    recall /= static_cast<double>(f.queries.rows());
    EXPECT_GT(recall, prev_recall - 0.15) << "l = " << l;
    prev_recall = recall;
  }
}

TEST(DbLshMonotonicityTest, LargerBudgetNeverLosesRecallMaterially) {
  const Fixture& f = SharedFixture();
  double prev = -1.0;
  for (size_t t : {4, 16, 64, 256}) {
    DbLshParams params;
    params.t = t;
    DbLsh index(params);
    ASSERT_TRUE(index.Build(&f.data).ok());
    double recall = 0.0;
    for (size_t q = 0; q < f.queries.rows(); ++q) {
      recall += eval::Recall(index.Query(f.queries.row(q), 10), f.gt[q]);
    }
    recall /= static_cast<double>(f.queries.rows());
    EXPECT_GE(recall, prev - 0.05) << "t = " << t;
    prev = recall;
  }
  EXPECT_GT(prev, 0.9);  // the largest budget must be near-exact here
}

// ---------------------------------------------------------------- SRS ----

TEST(SrsTest, RejectsBadParams) {
  const Fixture& f = SharedFixture();
  SrsParams params;
  params.c = 0.8;
  EXPECT_FALSE(Srs(params).Build(&f.data).ok());
  params.c = 1.5;
  params.m = 0;
  EXPECT_FALSE(Srs(params).Build(&f.data).ok());
}

TEST(SrsTest, FindsExactDuplicate) {
  const Fixture& f = SharedFixture();
  Srs index;
  ASSERT_TRUE(index.Build(&f.data).ok());
  const auto result = index.Query(f.data.row(17), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST(SrsTest, TinyIndexStillGivesUsableRecall) {
  const Fixture& f = SharedFixture();
  Srs index;
  ASSERT_TRUE(index.Build(&f.data).ok());
  EXPECT_EQ(index.NumHashFunctions(), 6u);  // the "tiny index" headline
  double recall = 0.0;
  for (size_t q = 0; q < f.queries.rows(); ++q) {
    recall += eval::Recall(index.Query(f.queries.row(q), 10), f.gt[q]);
  }
  EXPECT_GT(recall / f.queries.rows(), 0.4);
}

TEST(SrsTest, NoisierThanPmLshProjection) {
  // SRS (m = 6) needs more candidates than PM-LSH (m = 15) to reach the
  // same recall — the refinement PM-LSH claims. Checked indirectly: at an
  // equal small budget, SRS recall <= PM-LSH-style recall + noise.
  const Fixture& f = SharedFixture();
  SrsParams srs_params;
  srs_params.beta = 0.02;
  srs_params.threshold = 1e9;  // budget-limited only
  Srs small(srs_params);
  SrsParams big_params = srs_params;
  big_params.m = 15;
  Srs big(big_params);
  ASSERT_TRUE(small.Build(&f.data).ok());
  ASSERT_TRUE(big.Build(&f.data).ok());
  double small_recall = 0.0, big_recall = 0.0;
  for (size_t q = 0; q < f.queries.rows(); ++q) {
    small_recall +=
        eval::Recall(small.Query(f.queries.row(q), 10), f.gt[q]);
    big_recall += eval::Recall(big.Query(f.queries.row(q), 10), f.gt[q]);
  }
  EXPECT_GE(big_recall, small_recall - 0.5);
}

// ------------------------------------------------------- parallel query --

TEST(ParallelQueryTest, MatchesSequentialExactly) {
  const Fixture& f = SharedFixture();
  DbLsh index;
  ASSERT_TRUE(index.Build(&f.data).ok());
  const auto parallel = eval::ParallelQuery(index, f.queries, 10, 4);
  ASSERT_EQ(parallel.size(), f.queries.rows());
  for (size_t q = 0; q < f.queries.rows(); ++q) {
    const auto sequential = index.Query(f.queries.row(q), 10);
    ASSERT_EQ(parallel[q].size(), sequential.size()) << "query " << q;
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[q][i].id, sequential[i].id);
      EXPECT_FLOAT_EQ(parallel[q][i].dist, sequential[i].dist);
    }
  }
}

TEST(ParallelQueryTest, SingleThreadAndEmptyInputs) {
  const Fixture& f = SharedFixture();
  DbLsh index;
  ASSERT_TRUE(index.Build(&f.data).ok());
  const auto one = eval::ParallelQuery(index, f.queries, 5, 1);
  EXPECT_EQ(one.size(), f.queries.rows());
  FloatMatrix none(0, f.data.cols());
  EXPECT_TRUE(eval::ParallelQuery(index, none, 5, 4).empty());
}

TEST(ParallelQueryTest, ScratchReuseAcrossManyQueries) {
  // Exercises the epoch machinery in a caller-owned scratch.
  const Fixture& f = SharedFixture();
  DbLsh index;
  ASSERT_TRUE(index.Build(&f.data).ok());
  DbLsh::QueryScratch scratch;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (size_t q = 0; q < f.queries.rows(); ++q) {
      const auto a = index.Query(f.queries.row(q), 5, nullptr, &scratch);
      const auto b = index.Query(f.queries.row(q), 5);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
    }
  }
}

}  // namespace
}  // namespace dblsh
