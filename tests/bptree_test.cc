#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bptree/bplus_tree.h"
#include "util/random.h"

namespace dblsh::bptree {
namespace {

std::vector<BPlusTree::Entry> RandomEntries(size_t n, uint64_t seed,
                                            double lo = -100.0,
                                            double hi = 100.0) {
  Rng rng(seed);
  std::vector<BPlusTree::Entry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = {static_cast<float>(rng.Uniform(lo, hi)),
                  static_cast<uint32_t>(i)};
  }
  return entries;
}

std::vector<uint32_t> BruteRange(std::vector<BPlusTree::Entry> entries,
                                 float lo, float hi) {
  std::vector<uint32_t> out;
  std::sort(entries.begin(), entries.end());
  for (const auto& e : entries) {
    if (e.key >= lo && e.key <= hi) out.push_back(e.id);
  }
  return out;
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.LowerBound(0.f).Valid());
  EXPECT_FALSE(tree.UpperNeighborBelow(0.f).Valid());
}

TEST(BPlusTreeTest, BulkLoadSortsAndLinks) {
  auto entries = RandomEntries(5000, 31);
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  EXPECT_GT(tree.height(), 1u);
}

TEST(BPlusTreeTest, RangeQueryMatchesBruteForce) {
  auto entries = RandomEntries(3000, 32);
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  Rng rng(33);
  for (int trial = 0; trial < 50; ++trial) {
    const float a = static_cast<float>(rng.Uniform(-120, 120));
    const float b = static_cast<float>(rng.Uniform(-120, 120));
    const float lo = std::min(a, b), hi = std::max(a, b);
    std::vector<uint32_t> got;
    tree.RangeQuery(lo, hi, &got);
    std::sort(got.begin(), got.end());
    auto expected = BruteRange(entries, lo, hi);
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(BPlusTreeTest, InsertMatchesBulkLoad) {
  auto entries = RandomEntries(2000, 34);
  BPlusTree inserted;
  for (const auto& e : entries) inserted.Insert(e.key, e.id);
  EXPECT_EQ(inserted.size(), 2000u);
  EXPECT_EQ(inserted.CheckInvariants(), 0u);
  BPlusTree bulk;
  ASSERT_TRUE(bulk.BulkLoad(entries).ok());
  // Both enumerate the same sorted sequence.
  auto it_a = inserted.Begin();
  auto it_b = bulk.Begin();
  while (it_a.Valid() && it_b.Valid()) {
    EXPECT_FLOAT_EQ(it_a.key(), it_b.key());
    it_a.Next();
    it_b.Next();
  }
  EXPECT_FALSE(it_a.Valid());
  EXPECT_FALSE(it_b.Valid());
}

TEST(BPlusTreeTest, LowerBoundSemantics) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad({{1.f, 0}, {3.f, 1}, {3.f, 2}, {7.f, 3}}).ok());
  auto it = tree.LowerBound(3.f);
  ASSERT_TRUE(it.Valid());
  EXPECT_FLOAT_EQ(it.key(), 3.f);
  it = tree.LowerBound(4.f);
  ASSERT_TRUE(it.Valid());
  EXPECT_FLOAT_EQ(it.key(), 7.f);
  it = tree.LowerBound(8.f);
  EXPECT_FALSE(it.Valid());
  it = tree.LowerBound(-10.f);
  ASSERT_TRUE(it.Valid());
  EXPECT_FLOAT_EQ(it.key(), 1.f);
}

TEST(BPlusTreeTest, UpperNeighborBelowSemantics) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad({{1.f, 0}, {3.f, 1}, {7.f, 2}}).ok());
  auto it = tree.UpperNeighborBelow(3.f);  // strictly below 3
  ASSERT_TRUE(it.Valid());
  EXPECT_FLOAT_EQ(it.key(), 1.f);
  it = tree.UpperNeighborBelow(100.f);  // all keys below: last one
  ASSERT_TRUE(it.Valid());
  EXPECT_FLOAT_EQ(it.key(), 7.f);
  it = tree.UpperNeighborBelow(0.5f);  // nothing below
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, BidirectionalIteration) {
  auto entries = RandomEntries(500, 35);
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  // Walk to the end, then all the way back.
  auto it = tree.Begin();
  std::vector<float> forward;
  float last = it.key();
  while (it.Valid()) {
    forward.push_back(it.key());
    EXPECT_GE(it.key(), last);
    last = it.key();
    it.Next();
  }
  EXPECT_EQ(forward.size(), 500u);
  it = tree.UpperNeighborBelow(1e9f);  // last element
  std::vector<float> backward;
  while (it.Valid()) {
    backward.push_back(it.key());
    it.Prev();
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

TEST(BPlusTreeTest, DuplicateKeysAllEnumerated) {
  BPlusTree tree(8);
  for (uint32_t i = 0; i < 300; ++i) tree.Insert(5.f, i);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  std::vector<uint32_t> out;
  tree.RangeQuery(5.f, 5.f, &out);
  EXPECT_EQ(out.size(), 300u);
}

TEST(BPlusTreeTest, SmallFanoutStressesSplits) {
  BPlusTree tree(4);
  auto entries = RandomEntries(1000, 36);
  for (const auto& e : entries) tree.Insert(e.key, e.id);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  EXPECT_GT(tree.height(), 3u);
}

TEST(BPlusTreeTest, MixedBulkLoadThenInsert) {
  auto entries = RandomEntries(1000, 37);
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  auto extra = RandomEntries(1000, 38);
  for (auto& e : extra) {
    e.id += 1000;
    tree.Insert(e.key, e.id);
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  // Every inserted id is reachable via a range query around its key.
  Rng rng(39);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& e = extra[rng.UniformInt(extra.size())];
    std::vector<uint32_t> out;
    tree.RangeQuery(e.key, e.key, &out);
    EXPECT_TRUE(std::find(out.begin(), out.end(), e.id) != out.end());
  }
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(RandomEntries(100, 40)).ok());
  BPlusTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_EQ(moved.CheckInvariants(), 0u);
}

TEST(BPlusTreeTest, EraseRemovesOnlyTheNamedEntry) {
  auto entries = RandomEntries(2000, 77);
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  ASSERT_TRUE(tree.Erase(entries[42].key, entries[42].id).ok());
  EXPECT_EQ(tree.size(), 1999u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  // Erasing again (or a never-present pair) reports NotFound.
  EXPECT_EQ(tree.Erase(entries[42].key, entries[42].id).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tree.Erase(12345.f, 99999).code(), StatusCode::kNotFound);
  // Every other entry is still enumerable.
  std::vector<uint32_t> got;
  tree.RangeQuery(-1e9f, 1e9f, &got);
  EXPECT_EQ(got.size(), 1999u);
}

TEST(BPlusTreeTest, EraseToEmptyAndReinsert) {
  auto entries = RandomEntries(500, 78);
  BPlusTree tree(/*fanout=*/8);  // small fanout: deep tree, many merges
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  for (const auto& e : entries) {
    ASSERT_TRUE(tree.Erase(e.key, e.id).ok());
    EXPECT_EQ(tree.CheckInvariants(), 0u);
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  // The emptied tree accepts fresh inserts.
  tree.Insert(1.5f, 7);
  tree.Insert(-2.5f, 8);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  std::vector<uint32_t> got;
  tree.RangeQuery(-10.f, 10.f, &got);
  EXPECT_EQ(got.size(), 2u);
}

TEST(BPlusTreeTest, RandomInsertEraseMixKeepsInvariants) {
  // Property test: a shuffled insert/erase interleaving against a sorted
  // mirror; invariants and full-range enumeration must hold throughout.
  Rng rng(79);
  BPlusTree tree(/*fanout=*/6);
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  std::vector<BPlusTree::Entry> mirror;
  uint32_t next_id = 0;
  for (size_t step = 0; step < 3000; ++step) {
    if (mirror.empty() || rng.NextDouble() < 0.6) {
      const auto key = static_cast<float>(rng.Uniform(-50.0, 50.0));
      tree.Insert(key, next_id);
      mirror.push_back({key, next_id});
      ++next_id;
    } else {
      const size_t victim = rng.UniformInt(mirror.size());
      ASSERT_TRUE(tree.Erase(mirror[victim].key, mirror[victim].id).ok());
      mirror[victim] = mirror.back();
      mirror.pop_back();
    }
    if (step % 256 == 0) {
      ASSERT_EQ(tree.CheckInvariants(), 0u);
    }
  }
  ASSERT_EQ(tree.CheckInvariants(), 0u);
  ASSERT_EQ(tree.size(), mirror.size());
  std::sort(mirror.begin(), mirror.end());
  size_t i = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next(), ++i) {
    ASSERT_LT(i, mirror.size());
    EXPECT_EQ(it.key(), mirror[i].key);
    EXPECT_EQ(it.id(), mirror[i].id);
  }
  EXPECT_EQ(i, mirror.size());
}

TEST(BPlusTreeTest, EraseWithDuplicateKeysTargetsTheRightId) {
  BPlusTree tree(/*fanout=*/4);
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  for (uint32_t id = 0; id < 64; ++id) tree.Insert(1.0f, id);
  for (uint32_t id = 0; id < 64; id += 2) {
    ASSERT_TRUE(tree.Erase(1.0f, id).ok());
  }
  EXPECT_EQ(tree.size(), 32u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  std::vector<uint32_t> got;
  tree.RangeQuery(1.0f, 1.0f, &got);
  ASSERT_EQ(got.size(), 32u);
  for (uint32_t id : got) EXPECT_EQ(id % 2, 1u) << "even ids were erased";
}

}  // namespace
}  // namespace dblsh::bptree
