#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "util/distance.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/top_k_heap.h"
#include "util/vecs.h"

namespace dblsh {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(42);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(42);
  EXPECT_EQ(rng.NextU64(), first);
}

// -------------------------------------------------------------- Distance --

TEST(DistanceTest, L2KnownValues) {
  const float a[] = {0.f, 0.f, 0.f};
  const float b[] = {1.f, 2.f, 2.f};
  EXPECT_FLOAT_EQ(L2DistanceSquared(a, b, 3), 9.f);
  EXPECT_FLOAT_EQ(L2Distance(a, b, 3), 3.f);
}

TEST(DistanceTest, ZeroDistanceToSelf) {
  const float a[] = {1.5f, -2.f, 3.f, 0.25f, 9.f};
  EXPECT_FLOAT_EQ(L2DistanceSquared(a, a, 5), 0.f);
}

TEST(DistanceTest, HandlesNonMultipleOfFourDims) {
  // Exercises the scalar tail of the unrolled kernel.
  for (size_t dim = 1; dim <= 9; ++dim) {
    std::vector<float> a(dim), b(dim);
    float expected = 0.f;
    for (size_t j = 0; j < dim; ++j) {
      a[j] = static_cast<float>(j);
      b[j] = static_cast<float>(2 * j + 1);
      const float d = a[j] - b[j];
      expected += d * d;
    }
    EXPECT_FLOAT_EQ(L2DistanceSquared(a.data(), b.data(), dim), expected)
        << "dim=" << dim;
  }
}

TEST(DistanceTest, DotProductKnownValue) {
  const float a[] = {1.f, 2.f, 3.f, 4.f, 5.f};
  const float b[] = {5.f, 4.f, 3.f, 2.f, 1.f};
  EXPECT_FLOAT_EQ(DotProduct(a, b, 5), 35.f);
  EXPECT_FLOAT_EQ(NormSquared(a, 5), 55.f);
}

// ------------------------------------------------------------- TopKHeap --

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap heap(3);
  for (uint32_t i = 0; i < 10; ++i) {
    heap.Push(static_cast<float>(10 - i), i);  // distances 10..1
  }
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_FLOAT_EQ(result[0].dist, 1.f);
  EXPECT_FLOAT_EQ(result[1].dist, 2.f);
  EXPECT_FLOAT_EQ(result[2].dist, 3.f);
}

TEST(TopKHeapTest, ThresholdIsInfinityUntilFull) {
  TopKHeap heap(2);
  EXPECT_TRUE(std::isinf(heap.Threshold()));
  heap.Push(1.f, 0);
  EXPECT_TRUE(std::isinf(heap.Threshold()));
  heap.Push(2.f, 1);
  EXPECT_FLOAT_EQ(heap.Threshold(), 2.f);
  heap.Push(0.5f, 2);
  EXPECT_FLOAT_EQ(heap.Threshold(), 1.f);
}

TEST(TopKHeapTest, ZeroKIsAlwaysEmpty) {
  TopKHeap heap(0);
  heap.Push(1.f, 0);
  EXPECT_EQ(heap.Size(), 0u);
  EXPECT_TRUE(heap.TakeSorted().empty());
}

TEST(TopKHeapTest, FewerThanKStaysPartial) {
  TopKHeap heap(5);
  heap.Push(3.f, 0);
  heap.Push(1.f, 1);
  EXPECT_FALSE(heap.Full());
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
}

TEST(TopKHeapTest, TieBreaksById) {
  TopKHeap heap(2);
  heap.Push(1.f, 7);
  heap.Push(1.f, 3);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_EQ(result[1].id, 7u);
}

// Regression: Push at a full heap used to compare by distance only, so an
// equal-distance candidate with a smaller id was rejected and the result
// set depended on candidate arrival order. The full Neighbor ordering
// (dist, then id) must decide replacement too.
TEST(TopKHeapTest, FullHeapReplacementUsesIdTieBreak) {
  TopKHeap heap(2);
  heap.Push(1.f, 4);
  heap.Push(2.f, 9);
  EXPECT_TRUE(heap.Full());
  heap.Push(2.f, 6);  // ties the threshold with a smaller id: must evict 9
  auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 4u);
  EXPECT_EQ(result[1].id, 6u);

  // A larger id at the threshold distance must still be rejected.
  TopKHeap heap2(2);
  heap2.Push(1.f, 4);
  heap2.Push(2.f, 6);
  heap2.Push(2.f, 9);
  result = heap2.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 4u);
  EXPECT_EQ(result[1].id, 6u);

  // Arrival order of equal-distance candidates no longer matters.
  TopKHeap heap3(1);
  heap3.Push(5.f, 8);
  heap3.Push(5.f, 2);
  heap3.Push(5.f, 5);
  result = heap3.TakeSorted();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 2u);
}

// ------------------------------------------------------------------ vecs --

// Scratch file holding hand-assembled vecs bytes, removed on destruction.
class VecsFile {
 public:
  explicit VecsFile(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("dblsh_vecs_" + tag + "_" + std::to_string(::getpid())))
                .string();
  }
  ~VecsFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

  void Write(const std::vector<uint8_t>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

 private:
  std::string path_;
};

void AppendI32(std::vector<uint8_t>* bytes, int32_t v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  bytes->insert(bytes->end(), p, p + sizeof(v));
}

template <typename T>
void AppendVector(std::vector<uint8_t>* bytes, const std::vector<T>& vec) {
  AppendI32(bytes, static_cast<int32_t>(vec.size()));
  const auto* p = reinterpret_cast<const uint8_t*>(vec.data());
  bytes->insert(bytes->end(), p, p + vec.size() * sizeof(T));
}

TEST(VecsTest, FvecsRoundTrips) {
  VecsFile file("fvecs");
  std::vector<uint8_t> bytes;
  AppendVector<float>(&bytes, {1.0f, -2.5f, 3.25f});
  AppendVector<float>(&bytes, {4.0f, 5.0f, 6.0f});
  file.Write(bytes);

  auto read = util::ReadFvecs(file.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().dim, 3u);
  ASSERT_EQ(read.value().count(), 2u);
  EXPECT_FLOAT_EQ(read.value().values[1], -2.5f);
  EXPECT_FLOAT_EQ(read.value().values[5], 6.0f);
}

TEST(VecsTest, BvecsAndIvecsRoundTrip) {
  VecsFile bfile("bvecs");
  std::vector<uint8_t> bytes;
  AppendVector<uint8_t>(&bytes, {0, 127, 255, 7});
  bfile.Write(bytes);
  auto b = util::ReadBvecs(bfile.path());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b.value().dim, 4u);
  ASSERT_EQ(b.value().count(), 1u);
  EXPECT_EQ(b.value().values[2], 255);

  VecsFile ifile("ivecs");
  bytes.clear();
  AppendVector<int32_t>(&bytes, {42, -1});
  ifile.Write(bytes);
  auto i = util::ReadIvecs(ifile.path());
  ASSERT_TRUE(i.ok()) << i.status().ToString();
  EXPECT_EQ(i.value().dim, 2u);
  ASSERT_EQ(i.value().count(), 1u);
  EXPECT_EQ(i.value().values[0], 42);
  EXPECT_EQ(i.value().values[1], -1);
}

TEST(VecsTest, MaxVectorsTruncatesTheScan) {
  VecsFile file("fvecs_max");
  std::vector<uint8_t> bytes;
  for (int v = 0; v < 5; ++v) {
    AppendVector<float>(&bytes, {static_cast<float>(v), 0.f});
  }
  file.Write(bytes);

  auto read = util::ReadFvecs(file.path(), 3);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().count(), 3u);
  EXPECT_FLOAT_EQ(read.value().values[4], 2.0f);
}

TEST(VecsTest, MissingFileIsIoError) {
  auto read = util::ReadFvecs("/nonexistent/no_such.fvecs");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(VecsTest, RejectsCorruptFiles) {
  // Truncated payload: header promises 3 floats, body holds 2.
  VecsFile truncated("trunc");
  std::vector<uint8_t> bytes;
  AppendI32(&bytes, 3);
  AppendI32(&bytes, 0);  // 4 bytes of payload (one float), then EOF
  AppendI32(&bytes, 0);
  truncated.Write(bytes);
  auto read = util::ReadFvecs(truncated.path());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);

  // Non-positive dimension.
  VecsFile nonpositive("nonpos");
  bytes.clear();
  AppendI32(&bytes, -4);
  nonpositive.Write(bytes);
  read = util::ReadFvecs(nonpositive.path());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);

  // Inconsistent dimension between vectors.
  VecsFile inconsistent("baddim");
  bytes.clear();
  AppendVector<float>(&bytes, {1.f, 2.f});
  AppendVector<float>(&bytes, {1.f, 2.f, 3.f});
  inconsistent.Write(bytes);
  read = util::ReadFvecs(inconsistent.path());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);

  // Truncated header: a lone stray byte where the next int32 should be.
  VecsFile torn("torn");
  bytes.clear();
  AppendVector<float>(&bytes, {1.f, 2.f});
  bytes.push_back(0x7);
  torn.Write(bytes);
  read = util::ReadFvecs(torn.path());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(VecsTest, BvecsAsFloatWidensComponents) {
  VecsFile file("bvecs_f");
  std::vector<uint8_t> bytes;
  AppendVector<uint8_t>(&bytes, {0, 127, 255, 7});
  AppendVector<uint8_t>(&bytes, {1, 2, 3, 4});
  file.Write(bytes);
  auto read = util::ReadBvecsAsFloat(file.path());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().dim, 4u);
  ASSERT_EQ(read.value().count(), 2u);
  EXPECT_EQ(read.value().values[1], 127.0f);
  EXPECT_EQ(read.value().values[2], 255.0f);
  EXPECT_EQ(read.value().values[7], 4.0f);
  // max_vectors truncates like the typed readers.
  auto first = util::ReadBvecsAsFloat(file.path(), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().count(), 1u);
}

TEST(VecsTest, StreamingVisitsRowsInOrder) {
  VecsFile ffile("stream_f");
  std::vector<uint8_t> bytes;
  for (int v = 0; v < 5; ++v) {
    AppendVector<float>(&bytes, {static_cast<float>(v), -1.f});
  }
  ffile.Write(bytes);
  std::vector<float> seen;
  std::vector<size_t> indexes;
  auto visited = util::StreamFvecs(
      ffile.path(), [&](size_t index, const float* row, size_t dim) {
        ASSERT_EQ(dim, 2u);
        indexes.push_back(index);
        seen.push_back(row[0]);
      });
  ASSERT_TRUE(visited.ok()) << visited.status().ToString();
  EXPECT_EQ(visited.value(), 5u);
  EXPECT_EQ(indexes, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(seen, (std::vector<float>{0.f, 1.f, 2.f, 3.f, 4.f}));

  // max_vectors stops the scan early.
  size_t count = 0;
  auto limited = util::StreamFvecs(
      ffile.path(), [&](size_t, const float*, size_t) { ++count; }, 2);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value(), 2u);
  EXPECT_EQ(count, 2u);

  VecsFile bfile("stream_b");
  bytes.clear();
  AppendVector<uint8_t>(&bytes, {9, 200});
  AppendVector<uint8_t>(&bytes, {0, 255});
  bfile.Write(bytes);
  seen.clear();
  auto widened = util::StreamBvecsAsFloat(
      bfile.path(), [&](size_t, const float* row, size_t dim) {
        seen.insert(seen.end(), row, row + dim);
      });
  ASSERT_TRUE(widened.ok()) << widened.status().ToString();
  EXPECT_EQ(widened.value(), 2u);
  EXPECT_EQ(seen, (std::vector<float>{9.f, 200.f, 0.f, 255.f}));
}

TEST(VecsTest, StreamingReportsTypedErrorsAfterVisitedPrefix) {
  auto missing = util::StreamFvecs("/nonexistent/no_such.fvecs",
                                   [](size_t, const float*, size_t) {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);

  // One good vector, then a truncated payload: the visitor sees the good
  // prefix and the scan fails with Corruption.
  VecsFile torn("stream_torn");
  std::vector<uint8_t> bytes;
  AppendVector<float>(&bytes, {1.f, 2.f});
  AppendI32(&bytes, 2);
  AppendI32(&bytes, 0);  // half of the promised payload, then EOF
  torn.Write(bytes);
  size_t visited = 0;
  auto read = util::StreamFvecs(
      torn.path(), [&](size_t, const float*, size_t) { ++visited; });
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(visited, 1u);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc += std::sqrt(double(i));
  volatile double sink = acc;
  (void)sink;
  EXPECT_GT(t.ElapsedSec(), 0.0);
  EXPECT_GT(t.ElapsedMs(), t.ElapsedSec());  // ms numerically larger
}

}  // namespace
}  // namespace dblsh
