#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/distance.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/top_k_heap.h"

namespace dblsh {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(42);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(42);
  EXPECT_EQ(rng.NextU64(), first);
}

// -------------------------------------------------------------- Distance --

TEST(DistanceTest, L2KnownValues) {
  const float a[] = {0.f, 0.f, 0.f};
  const float b[] = {1.f, 2.f, 2.f};
  EXPECT_FLOAT_EQ(L2DistanceSquared(a, b, 3), 9.f);
  EXPECT_FLOAT_EQ(L2Distance(a, b, 3), 3.f);
}

TEST(DistanceTest, ZeroDistanceToSelf) {
  const float a[] = {1.5f, -2.f, 3.f, 0.25f, 9.f};
  EXPECT_FLOAT_EQ(L2DistanceSquared(a, a, 5), 0.f);
}

TEST(DistanceTest, HandlesNonMultipleOfFourDims) {
  // Exercises the scalar tail of the unrolled kernel.
  for (size_t dim = 1; dim <= 9; ++dim) {
    std::vector<float> a(dim), b(dim);
    float expected = 0.f;
    for (size_t j = 0; j < dim; ++j) {
      a[j] = static_cast<float>(j);
      b[j] = static_cast<float>(2 * j + 1);
      const float d = a[j] - b[j];
      expected += d * d;
    }
    EXPECT_FLOAT_EQ(L2DistanceSquared(a.data(), b.data(), dim), expected)
        << "dim=" << dim;
  }
}

TEST(DistanceTest, DotProductKnownValue) {
  const float a[] = {1.f, 2.f, 3.f, 4.f, 5.f};
  const float b[] = {5.f, 4.f, 3.f, 2.f, 1.f};
  EXPECT_FLOAT_EQ(DotProduct(a, b, 5), 35.f);
  EXPECT_FLOAT_EQ(NormSquared(a, 5), 55.f);
}

// ------------------------------------------------------------- TopKHeap --

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap heap(3);
  for (uint32_t i = 0; i < 10; ++i) {
    heap.Push(static_cast<float>(10 - i), i);  // distances 10..1
  }
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 3u);
  EXPECT_FLOAT_EQ(result[0].dist, 1.f);
  EXPECT_FLOAT_EQ(result[1].dist, 2.f);
  EXPECT_FLOAT_EQ(result[2].dist, 3.f);
}

TEST(TopKHeapTest, ThresholdIsInfinityUntilFull) {
  TopKHeap heap(2);
  EXPECT_TRUE(std::isinf(heap.Threshold()));
  heap.Push(1.f, 0);
  EXPECT_TRUE(std::isinf(heap.Threshold()));
  heap.Push(2.f, 1);
  EXPECT_FLOAT_EQ(heap.Threshold(), 2.f);
  heap.Push(0.5f, 2);
  EXPECT_FLOAT_EQ(heap.Threshold(), 1.f);
}

TEST(TopKHeapTest, ZeroKIsAlwaysEmpty) {
  TopKHeap heap(0);
  heap.Push(1.f, 0);
  EXPECT_EQ(heap.Size(), 0u);
  EXPECT_TRUE(heap.TakeSorted().empty());
}

TEST(TopKHeapTest, FewerThanKStaysPartial) {
  TopKHeap heap(5);
  heap.Push(3.f, 0);
  heap.Push(1.f, 1);
  EXPECT_FALSE(heap.Full());
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
}

TEST(TopKHeapTest, TieBreaksById) {
  TopKHeap heap(2);
  heap.Push(1.f, 7);
  heap.Push(1.f, 3);
  const auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_EQ(result[1].id, 7u);
}

// Regression: Push at a full heap used to compare by distance only, so an
// equal-distance candidate with a smaller id was rejected and the result
// set depended on candidate arrival order. The full Neighbor ordering
// (dist, then id) must decide replacement too.
TEST(TopKHeapTest, FullHeapReplacementUsesIdTieBreak) {
  TopKHeap heap(2);
  heap.Push(1.f, 4);
  heap.Push(2.f, 9);
  EXPECT_TRUE(heap.Full());
  heap.Push(2.f, 6);  // ties the threshold with a smaller id: must evict 9
  auto result = heap.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 4u);
  EXPECT_EQ(result[1].id, 6u);

  // A larger id at the threshold distance must still be rejected.
  TopKHeap heap2(2);
  heap2.Push(1.f, 4);
  heap2.Push(2.f, 6);
  heap2.Push(2.f, 9);
  result = heap2.TakeSorted();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 4u);
  EXPECT_EQ(result[1].id, 6u);

  // Arrival order of equal-distance candidates no longer matters.
  TopKHeap heap3(1);
  heap3.Push(5.f, 8);
  heap3.Push(5.f, 2);
  heap3.Push(5.f, 5);
  result = heap3.TakeSorted();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 2u);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double acc = 0.0;
  for (int i = 0; i < 100000; ++i) acc += std::sqrt(double(i));
  volatile double sink = acc;
  (void)sink;
  EXPECT_GT(t.ElapsedSec(), 0.0);
  EXPECT_GT(t.ElapsedMs(), t.ElapsedSec());  // ms numerically larger
}

}  // namespace
}  // namespace dblsh
