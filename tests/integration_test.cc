// End-to-end tests running every index through the shared harness on one
// workload, mirroring how the bench binaries drive the library.
#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "eval/runner.h"

namespace dblsh::eval {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new Workload(MakeWorkload(
        "integration",
        GenerateClustered({.n = 4000, .dim = 48, .clusters = 16, .seed = 80}),
        20, 10));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }
  static Workload* workload_;
};

Workload* IntegrationTest::workload_ = nullptr;

TEST_F(IntegrationTest, AllPaperMethodsRunAndProduceSaneMetrics) {
  const auto methods = MakePaperMethods(workload_->data.rows());
  for (const auto& method : methods) {
    auto result = RunMethod(method.get(), *workload_);
    ASSERT_TRUE(result.ok()) << method->Name() << ": "
                             << result.status().ToString();
    const MethodResult& r = result.value();
    EXPECT_GE(r.recall, 0.0) << r.method;
    EXPECT_LE(r.recall, 1.0) << r.method;
    EXPECT_GE(r.overall_ratio, 1.0) << r.method;
    EXPECT_GT(r.avg_query_ms, 0.0) << r.method;
    EXPECT_GT(r.indexing_time_sec, 0.0) << r.method;
    EXPECT_GT(r.avg_candidates, 0.0) << r.method;
  }
}

TEST_F(IntegrationTest, DbLshReachesCompetitiveRecall) {
  const auto methods = MakePaperMethods(workload_->data.rows());
  auto db_result = RunMethod(methods[0].get(), *workload_);
  ASSERT_TRUE(db_result.ok());
  // The paper reports 80-95% recall at default settings on most datasets.
  EXPECT_GT(db_result.value().recall, 0.7);
  EXPECT_LT(db_result.value().overall_ratio, 1.1);
}

TEST_F(IntegrationTest, CandidateCountsExplainCostModel) {
  // DB-LSH's candidate budget (2tL + k) should be far below a linear scan,
  // which is the whole point of sub-linear query cost.
  const auto methods = MakePaperMethods(workload_->data.rows());
  auto db_result = RunMethod(methods[0].get(), *workload_);
  ASSERT_TRUE(db_result.ok());
  EXPECT_LT(db_result.value().avg_candidates,
            0.5 * static_cast<double>(workload_->data.rows()));
}

TEST_F(IntegrationTest, VaryingNPreservesRecallShape) {
  // Fig. 6: recall stays roughly stable as cardinality grows (distribution
  // unchanged). Check DB-LSH recall does not collapse between 0.5n and n.
  const FloatMatrix full = GenerateClustered(
      {.n = 3000, .dim = 32, .clusters = 12, .seed = 81});
  double recalls[2];
  size_t idx = 0;
  for (const size_t n : {1500, 3000}) {
    Workload w = MakeWorkload("vary_n", full.Prefix(n), 15, 10);
    const auto methods = MakePaperMethods(w.data.rows());
    auto r = RunMethod(methods[0].get(), w);
    ASSERT_TRUE(r.ok());
    recalls[idx++] = r.value().recall;
  }
  EXPECT_GT(recalls[1], recalls[0] - 0.25);
}

}  // namespace
}  // namespace dblsh::eval
