#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "core/db_lsh.h"
#include "core/index_factory.h"
#include "dataset/synthetic.h"
#include "eval/runner.h"

namespace dblsh {
namespace {

/// Small shared workload: every registered method must build on it and
/// answer batched queries in well under a second.
class FactoryRoundTripTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new eval::Workload(eval::MakeWorkload(
        "factory",
        GenerateClustered({.n = 1500, .dim = 24, .clusters = 12, .seed = 3}),
        /*num_queries=*/4, /*k=*/5));
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  static eval::Workload* workload_;
};

eval::Workload* FactoryRoundTripTest::workload_ = nullptr;

TEST_F(FactoryRoundTripTest, AllTwelveMethodsAreRegistered) {
  const auto methods = IndexFactory::ListMethods();
  const std::set<std::string> names(methods.begin(), methods.end());
  const std::set<std::string> expected = {
      "DB-LSH",  "FB-LSH",     "E2LSH", "LCCS-LSH", "LSB-Forest",
      "LinearScan", "MultiProbe", "PM-LSH", "QALSH", "R2LSH",
      "SRS",     "VHP"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(methods.size(), names.size()) << "duplicate display names";
}

TEST_F(FactoryRoundTripTest, EveryMethodRoundTripsThroughBatchQueries) {
  for (const std::string& name : IndexFactory::ListMethods()) {
    SCOPED_TRACE(name);
    auto made = IndexFactory::Make(name);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    const std::unique_ptr<AnnIndex> index = std::move(made).value();
    ASSERT_TRUE(index->Build(&workload_->data).ok());

    QueryRequest request;
    request.k = workload_->k;
    const auto responses = index->QueryBatch(workload_->queries, request);
    ASSERT_EQ(responses.size(), workload_->queries.rows());
    for (const QueryResponse& response : responses) {
      EXPECT_FALSE(response.neighbors.empty());
      EXPECT_LE(response.neighbors.size(), workload_->k);
      EXPECT_TRUE(std::is_sorted(response.neighbors.begin(),
                                 response.neighbors.end()));
      EXPECT_GT(response.stats.candidates_verified, 0u);
      EXPECT_GT(response.stats.points_accessed, 0u);
    }
  }
}

TEST_F(FactoryRoundTripTest, DescribeCoversEveryMethod) {
  for (const std::string& name : IndexFactory::ListMethods()) {
    auto description = IndexFactory::Describe(name);
    ASSERT_TRUE(description.ok()) << name;
    EXPECT_FALSE(description.value().empty()) << name;
  }
  EXPECT_FALSE(IndexFactory::Describe("NoSuchMethod").ok());
}

TEST_F(FactoryRoundTripTest, PaperLineupSpecsAllParse) {
  const auto specs = eval::PaperMethodSpecs(workload_->data.rows());
  ASSERT_FALSE(specs.empty());
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    EXPECT_TRUE(IndexFactory::Make(spec).ok());
  }
  const auto methods = eval::MakePaperMethods(workload_->data.rows());
  EXPECT_EQ(methods.size(), specs.size());
}

TEST(IndexFactoryTest, NameMatchingIgnoresCaseAndSeparators) {
  for (const std::string& spelling :
       {std::string("db-lsh"), std::string("DB_LSH"), std::string("dblsh"),
        std::string("Db-Lsh")}) {
    auto made = IndexFactory::Make(spelling);
    ASSERT_TRUE(made.ok()) << spelling;
    EXPECT_EQ(made.value()->Name(), "DB-LSH") << spelling;
  }
}

TEST(IndexFactoryTest, SpecOverridesReachTheParams) {
  auto made = IndexFactory::Make("DB-LSH, c=2.0, l=3, t=17, seed=9");
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  const auto* db = dynamic_cast<const DbLsh*>(made.value().get());
  ASSERT_NE(db, nullptr);
  EXPECT_DOUBLE_EQ(db->params().c, 2.0);
  EXPECT_EQ(db->params().l, 3u);
  EXPECT_EQ(db->params().t, 17u);
  EXPECT_EQ(db->params().seed, 9u);
}

TEST(IndexFactoryTest, FbLshSizeHintDrivesThePaperLRule) {
  auto small = IndexFactory::Make("FB-LSH,n=50000");
  auto large = IndexFactory::Make("FB-LSH,n=200000");
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_EQ(dynamic_cast<const DbLsh*>(small.value().get())->params().l, 10u);
  EXPECT_EQ(dynamic_cast<const DbLsh*>(large.value().get())->params().l, 12u);
  EXPECT_EQ(large.value()->Name(), "FB-LSH");
  EXPECT_FALSE(IndexFactory::Make("FB-LSH,bucketing=dynamic").ok());
}

TEST(IndexFactoryTest, MalformedSpecsReturnStatusErrors) {
  // Unknown method, with the registry listed in the message.
  auto unknown = IndexFactory::Make("HNSW,m=16");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("DB-LSH"), std::string::npos);

  for (const char* spec : {
           "",                    // no method name
           "c=1.5,DB-LSH",        // key=value before the name
           "DB-LSH,c",            // missing '='
           "DB-LSH,=1.5",         // empty key
           "DB-LSH,c=",           // empty value
           "DB-LSH,c=1.5,c=2.0",  // duplicate key
           "DB-LSH,c=abc",        // unparsable double
           "DB-LSH,l=-3",         // negative for unsigned
           "DB-LSH,zzz=1",        // unknown key
           "DB-LSH,bucketing=diagonal",  // unknown enum token
           "LinearScan,c=1.5",    // key on a parameterless method
           "PM-LSH,t_factor=x",   // unparsable double, baseline binder
       }) {
    SCOPED_TRACE(spec);
    auto made = IndexFactory::Make(spec);
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QueryApiTest, SearchFoldsStatsIntoTheResponse) {
  const FloatMatrix data =
      GenerateClustered({.n = 800, .dim = 16, .clusters = 8, .seed = 5});
  auto made = IndexFactory::Make("DB-LSH");
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(made.value()->Build(&data).ok());

  QueryRequest request;
  request.k = 7;
  const QueryResponse response = made.value()->Search(data.row(0), request);
  ASSERT_FALSE(response.neighbors.empty());
  EXPECT_EQ(response.neighbors[0].id, 0u);  // the point itself
  EXPECT_GT(response.stats.candidates_verified, 0u);
  EXPECT_GT(response.stats.rounds, 0u);
  EXPECT_GT(response.stats.window_queries, 0u);
}

TEST(QueryApiTest, PerQueryCandidateBudgetOverrideIsHonored) {
  const FloatMatrix data =
      GenerateClustered({.n = 3000, .dim = 24, .clusters = 6, .seed = 11});
  auto made = IndexFactory::Make("DB-LSH,t=200");
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(made.value()->Build(&data).ok());

  std::vector<float> query(data.row(42), data.row(42) + data.cols());
  query[0] += 10.f;  // off-manifold so the budget, not certification, stops

  QueryRequest tight;
  tight.k = 5;
  tight.candidate_budget = 2;
  QueryRequest wide;
  wide.k = 5;
  wide.candidate_budget = 200;
  const auto tight_response = made.value()->Search(query.data(), tight);
  const auto wide_response = made.value()->Search(query.data(), wide);
  // Budget 2tL+k: t=2 caps verification far below t=200's cap.
  EXPECT_LT(tight_response.stats.candidates_verified,
            wide_response.stats.candidates_verified);
  const auto* db = dynamic_cast<const DbLsh*>(made.value().get());
  EXPECT_LE(tight_response.stats.candidates_verified,
            2 * tight.candidate_budget * db->params().l + tight.k);
}

TEST(QueryApiTest, BatchMatchesSequentialSearch) {
  const FloatMatrix data =
      GenerateClustered({.n = 1200, .dim = 16, .clusters = 10, .seed = 21});
  FloatMatrix queries;
  for (size_t i = 0; i < 16; ++i) {
    queries.AppendRow(data.row(i * 70), data.cols());
  }
  for (const char* spec : {"DB-LSH", "LinearScan", "PM-LSH"}) {
    SCOPED_TRACE(spec);
    auto made = IndexFactory::Make(spec);
    ASSERT_TRUE(made.ok());
    ASSERT_TRUE(made.value()->Build(&data).ok());
    QueryRequest request;
    request.k = 9;
    const auto batched = made.value()->QueryBatch(queries, request, 4);
    ASSERT_EQ(batched.size(), queries.rows());
    for (size_t q = 0; q < queries.rows(); ++q) {
      const auto single = made.value()->Search(queries.row(q), request);
      EXPECT_EQ(batched[q].neighbors, single.neighbors) << "query " << q;
    }
  }
}

// The QueryRequest composition contract (core/query.h): override fields
// are independent, and zero/empty always means "the index's configured
// default". A request that spells the defaults out explicitly must
// round-trip to exactly the plain-Query() answer, field by field and all
// together.
TEST(QueryApiTest, RequestOverridesComposeAndZeroMeansDefault) {
  const FloatMatrix data =
      GenerateClustered({.n = 1500, .dim = 16, .clusters = 8, .seed = 33});
  auto made = IndexFactory::Make("DB-LSH,t=32");
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(made.value()->Build(&data).ok());
  const auto* db = dynamic_cast<const DbLsh*>(made.value().get());
  ASSERT_NE(db, nullptr);

  std::vector<float> query(data.row(99), data.row(99) + data.cols());
  query[0] += 0.5f;
  QueryRequest dflt;
  dflt.k = 8;
  const auto baseline = made.value()->Search(query.data(), dflt);

  // Zero / empty round-trips to the default, field by field.
  QueryRequest zeros;
  zeros.k = 8;
  zeros.candidate_budget = 0;
  zeros.r0 = 0.0;
  zeros.filter = QueryFilter();  // empty
  EXPECT_EQ(made.value()->Search(query.data(), zeros).neighbors,
            baseline.neighbors);
  QueryRequest empty_lists;
  empty_lists.k = 8;
  empty_lists.filter = QueryFilter::Deny({});  // empty list == empty filter
  EXPECT_TRUE(empty_lists.filter.empty());
  EXPECT_EQ(made.value()->Search(query.data(), empty_lists).neighbors,
            baseline.neighbors);

  // Spelling a default out explicitly composes to the same answer: an
  // explicit budget equal to the configured t is indistinguishable from 0.
  QueryRequest explicit_budget;
  explicit_budget.k = 8;
  explicit_budget.candidate_budget = db->params().t;
  EXPECT_EQ(made.value()->Search(query.data(), explicit_budget).neighbors,
            baseline.neighbors);

  // Each field keeps acting when the others stay at their defaults, and
  // they compose in one request: a filter plus a budget override applies
  // both (no field masks another).
  const uint32_t top = baseline.neighbors[0].id;
  QueryRequest filtered;
  filtered.k = 8;
  filtered.filter = QueryFilter::Deny({top});
  const auto without_top = made.value()->Search(query.data(), filtered);
  EXPECT_FALSE(std::any_of(
      without_top.neighbors.begin(), without_top.neighbors.end(),
      [top](const Neighbor& n) { return n.id == top; }));

  QueryRequest combined;
  combined.k = 8;
  combined.candidate_budget = db->params().t;  // explicit default
  combined.r0 = 0.0;                           // default
  combined.filter = QueryFilter::Deny({top});  // active
  const auto both = made.value()->Search(query.data(), combined);
  EXPECT_EQ(both.neighbors, without_top.neighbors);
  EXPECT_FALSE(std::any_of(
      both.neighbors.begin(), both.neighbors.end(),
      [top](const Neighbor& n) { return n.id == top; }));
}

// Regression: a restrictive allow-list must not disable DB-LSH's
// termination tests. With fewer admitted ids than k the heap never fills
// and the push budget never trips, so the coverage exit has to count
// filter-rejected candidates too — without that the radius ladder runs
// its full 256-round cap of ever-growing window scans.
TEST(QueryApiTest, RestrictiveFilterStillTerminatesTheRadiusLadder) {
  const FloatMatrix data =
      GenerateClustered({.n = 2000, .dim = 16, .clusters = 8, .seed = 44});
  auto made = IndexFactory::Make("DB-LSH,t=16");
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(made.value()->Build(&data).ok());

  QueryRequest request;
  request.k = 10;
  request.filter = QueryFilter::AllowOnly({7, 450, 1999});
  const auto response = made.value()->Search(data.row(0), request);
  // Exactly the admitted ids come back (3 < k), by ascending distance.
  ASSERT_EQ(response.neighbors.size(), 3u);
  for (const Neighbor& n : response.neighbors) {
    EXPECT_TRUE(n.id == 7 || n.id == 450 || n.id == 1999);
  }
  // The ladder stopped once every live point had been consumed (pushed or
  // filter-rejected), far short of the 256-round degenerate-input cap.
  EXPECT_LT(response.stats.rounds, 64u);
}

TEST(QueryApiTest, EmptyBatchIsFine) {
  const FloatMatrix data =
      GenerateClustered({.n = 500, .dim = 8, .clusters = 4, .seed = 1});
  auto made = IndexFactory::Make("LinearScan");
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(made.value()->Build(&data).ok());
  EXPECT_TRUE(made.value()->QueryBatch(FloatMatrix(), QueryRequest()).empty());
}

}  // namespace
}  // namespace dblsh
