// VectorStore suite: Sq8Store/PqStore quantization contracts, save/load
// of the v3/v4 formats for every backend, v2/v3 load compatibility, and
// the end-to-end recall contract of quantized storage (asymmetric scan +
// exact re-rank) against the exact LinearScan oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/collection.h"
#include "core/db_lsh.h"
#include "dataset/float_matrix.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "dataset/vector_store.h"
#include "eval/metrics.h"
#include "simd/simd.h"
#include "util/distance.h"
#include "util/random.h"

namespace dblsh {
namespace {

FloatMatrix RandomMatrix(size_t n, size_t dim, uint64_t seed,
                         double span = 10.0) {
  FloatMatrix m(n, dim);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      m.at(i, j) = static_cast<float>(rng.Uniform(-span, span));
    }
  }
  return m;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StorageKindTest, NamesRoundTrip) {
  EXPECT_STREQ(StorageKindName(StorageKind::kFp32), "fp32");
  EXPECT_STREQ(StorageKindName(StorageKind::kSq8), "sq8");
  EXPECT_STREQ(StorageKindName(StorageKind::kPq), "pq");
  ASSERT_TRUE(ParseStorageKind("fp32").ok());
  EXPECT_EQ(ParseStorageKind("fp32").value(), StorageKind::kFp32);
  ASSERT_TRUE(ParseStorageKind("sq8").ok());
  EXPECT_EQ(ParseStorageKind("sq8").value(), StorageKind::kSq8);
  ASSERT_TRUE(ParseStorageKind("pq").ok());
  EXPECT_EQ(ParseStorageKind("pq").value(), StorageKind::kPq);
  EXPECT_FALSE(ParseStorageKind("opq").ok());
  EXPECT_FALSE(ParseStorageKind("").ok());
}

// Per-dimension reconstruction error of trained rows is bounded by half a
// quantization step — the contract the exact re-rank depends on.
TEST(Sq8StoreTest, QuantizationErrorWithinHalfScalePerDim) {
  const size_t n = 200, dim = 23;  // odd dim: exercise kernel tails later
  const FloatMatrix original = RandomMatrix(n, dim, 71);
  auto store = MakeVectorStore(StorageKind::kSq8,
                               std::make_unique<FloatMatrix>(original));
  auto& sq8 = static_cast<Sq8Store&>(*store);
  ASSERT_TRUE(sq8.trained());
  ASSERT_EQ(sq8.scales().size(), dim);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    store->DecodeRow(static_cast<uint32_t>(i), decoded.data());
    for (size_t j = 0; j < dim; ++j) {
      const float bound = sq8.scales()[j] * 0.5f * 1.001f;  // fp slack
      EXPECT_LE(std::fabs(original.at(i, j) - decoded[j]), bound)
          << "row " << i << " dim " << j;
    }
  }
  EXPECT_EQ(store->bytes_per_vector(), dim);
  EXPECT_TRUE(store->matrix().payload_released());
}

// A constant dimension must not divide by zero: scale falls back to 1.0
// and the dimension reconstructs exactly.
TEST(Sq8StoreTest, ConstantDimensionReconstructsExactly) {
  const size_t n = 50, dim = 4;
  FloatMatrix m = RandomMatrix(n, dim, 5);
  for (size_t i = 0; i < n; ++i) m.at(i, 2) = 3.25f;
  auto store =
      MakeVectorStore(StorageKind::kSq8, std::make_unique<FloatMatrix>(m));
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    store->DecodeRow(static_cast<uint32_t>(i), decoded.data());
    EXPECT_EQ(decoded[2], 3.25f) << "row " << i;
  }
}

// Insert/erase must follow FloatMatrix's LIFO recycle contract, quantize
// on write, and clamp out-of-range inserts instead of wrapping.
TEST(Sq8StoreTest, InsertEraseRecycleAndClamp) {
  const size_t dim = 8;
  const FloatMatrix seed = RandomMatrix(20, dim, 9, /*span=*/1.0);
  auto store = MakeVectorStore(StorageKind::kSq8,
                               std::make_unique<FloatMatrix>(seed));
  ASSERT_TRUE(store->EraseRow(7).ok());
  ASSERT_TRUE(store->EraseRow(3).ok());
  EXPECT_FALSE(store->EraseRow(3).ok());  // double erase rejected
  std::vector<float> v(dim, 0.5f);
  EXPECT_EQ(store->InsertRow(v.data(), dim), 3u);  // LIFO: last erased first
  EXPECT_EQ(store->InsertRow(v.data(), dim), 7u);
  std::vector<float> grown(dim, 0.25f);
  EXPECT_EQ(store->InsertRow(grown.data(), dim), 20u);  // then append
  EXPECT_EQ(store->matrix().rows(), 21u);

  // Far outside the trained [-1, 1]-ish range: codes clamp, decode stays
  // at the range edge instead of wrapping to garbage.
  std::vector<float> outlier(dim, 1000.f);
  const uint32_t id = store->InsertRow(outlier.data(), dim);
  std::vector<float> decoded(dim);
  store->DecodeRow(id, decoded.data());
  auto& sq8 = static_cast<Sq8Store&>(*store);
  for (size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(decoded[j], sq8.offsets()[j] + sq8.scales()[j] * 255.f,
                1e-4f);
  }
}

// DecodedCopy must reproduce decoded rows AND the exact tombstone state,
// free-list order included (background rebuilds replay it).
TEST(Sq8StoreTest, DecodedCopyPreservesTombstoneState) {
  const size_t dim = 6;
  auto store = MakeVectorStore(
      StorageKind::kSq8,
      std::make_unique<FloatMatrix>(RandomMatrix(30, dim, 13)));
  ASSERT_TRUE(store->EraseRow(11).ok());
  ASSERT_TRUE(store->EraseRow(4).ok());
  const FloatMatrix copy = store->DecodedCopy();
  EXPECT_EQ(copy.rows(), 30u);
  EXPECT_EQ(copy.live_rows(), 28u);
  EXPECT_TRUE(copy.IsDeleted(11));
  EXPECT_TRUE(copy.IsDeleted(4));
  ASSERT_EQ(copy.free_slots().size(), 2u);
  EXPECT_EQ(copy.free_slots()[0], 11u);
  EXPECT_EQ(copy.free_slots()[1], 4u);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < copy.rows(); ++i) {
    if (copy.IsDeleted(i)) continue;
    store->DecodeRow(static_cast<uint32_t>(i), decoded.data());
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(copy.at(i, j), decoded[j]) << "row " << i;
    }
  }
}

// Fp32Store is the identity backend: same bytes, exact scores, no decode
// cost anywhere.
TEST(Fp32StoreTest, IdentityBackend) {
  const size_t n = 40, dim = 12;
  const FloatMatrix original = RandomMatrix(n, dim, 3);
  auto store = MakeVectorStore(StorageKind::kFp32,
                               std::make_unique<FloatMatrix>(original));
  EXPECT_FALSE(store->quantized());
  EXPECT_EQ(store->bytes_per_vector(), dim * sizeof(float));
  EXPECT_FALSE(store->matrix().payload_released());
  const float* query = original.row(1);
  std::vector<float> prep;
  store->PrepareQuery(query, &prep);
  std::vector<float> out(n);
  store->ScoreBatch(prep.data(), 0, nullptr, n, out.data());
  for (size_t i = 0; i < n; ++i) {
    // The store scores through the active dispatch tier; compare against
    // the same tier's one-to-one kernel (bit-identical by the simd batch
    // property test) and the scalar reference within accumulation error.
    EXPECT_EQ(out[i],
              simd::Active().l2_squared(query, original.row(i), dim))
        << "row " << i;
    EXPECT_NEAR(out[i], L2DistanceSquared(query, original.row(i), dim),
                1e-2f)
        << "row " << i;
    EXPECT_EQ(store->ExactL2Squared(query, static_cast<uint32_t>(i)),
              out[i]);
  }
  const FloatMatrix copy = store->DecodedCopy();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(copy.at(i, j), original.at(i, j));
    }
  }
}

// The sq8 hot-path score (both sides in code space) and the exact re-rank
// score must agree with scoring against the decoded rows directly.
TEST(Sq8StoreTest, ScoresMatchDecodedRows) {
  const size_t n = 64, dim = 17;
  const FloatMatrix original = RandomMatrix(n, dim, 21);
  auto store = MakeVectorStore(StorageKind::kSq8,
                               std::make_unique<FloatMatrix>(original));
  const FloatMatrix decoded = store->DecodedCopy();
  Rng rng(77);
  std::vector<float> query(dim);
  for (auto& v : query) v = static_cast<float>(rng.Uniform(-10.0, 10.0));

  // Exact re-rank score == fp32 distance to the decoded row.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(store->ExactL2Squared(query.data(), uint32_t(i)),
                L2DistanceSquared(query.data(), decoded.row(i), dim),
                1e-2f)
        << "row " << i;
  }

  // Hot-path score == distance between the *quantized* query and the
  // decoded row (both sides on the code grid — offsets cancel).
  auto& sq8 = static_cast<Sq8Store&>(*store);
  std::vector<float> qquant(dim);
  for (size_t j = 0; j < dim; ++j) {
    const float t =
        std::round((query[j] - sq8.offsets()[j]) / sq8.scales()[j]);
    qquant[j] = sq8.offsets()[j] +
                sq8.scales()[j] * std::min(255.f, std::max(0.f, t));
  }
  std::vector<float> prep;
  store->PrepareQuery(query.data(), &prep);
  std::vector<float> scores(n);
  store->ScoreBatch(prep.data(), 0, nullptr, n, scores.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(scores[i],
                L2DistanceSquared(qquant.data(), decoded.row(i), dim),
                1e-2f)
        << "row " << i;
  }
}

// PQ shape contracts: m code bytes per row, 256 * dim codebook floats
// regardless of the ragged subspace split, payload released.
TEST(PqStoreTest, ShapeAndCompression) {
  const size_t n = 500, dim = 23, m = 5;  // 23 % 5 != 0: ragged split
  const FloatMatrix original = RandomMatrix(n, dim, 61);
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(original), m);
  auto& pq = static_cast<PqStore&>(*store);
  ASSERT_TRUE(pq.trained());
  EXPECT_EQ(pq.m(), m);
  EXPECT_EQ(store->bytes_per_vector(), m);
  EXPECT_EQ(pq.codebooks().size(), PqStore::kCentroids * dim);
  EXPECT_EQ(pq.codes().size(), n * m);
  EXPECT_TRUE(store->matrix().payload_released());
  EXPECT_TRUE(store->quantized());
  // Balanced ragged split: first dim % m subspaces are one wider.
  EXPECT_EQ(pq.sub_begin(0), 0u);
  EXPECT_EQ(pq.sub_begin(m), dim);
  for (size_t j = 0; j < m; ++j) {
    EXPECT_EQ(pq.sub_dim(j), j < dim % m ? dim / m + 1 : dim / m) << j;
  }
}

// With fewer seed rows than centroids the surplus centroids duplicate
// existing rows, so every seed row must encode (and decode) exactly.
TEST(PqStoreTest, FewerRowsThanCentroidsEncodeExactly) {
  const size_t n = 20, dim = 12, m = 3;
  const FloatMatrix original = RandomMatrix(n, dim, 67);
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(original), m);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    store->DecodeRow(static_cast<uint32_t>(i), decoded.data());
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(decoded[j], original.at(i, j)) << "row " << i << " dim " << j;
    }
  }
}

// A subspace whose dimensions are constant across all rows must
// reconstruct that subvector exactly (every centroid collapses onto it).
TEST(PqStoreTest, ConstantSubvectorReconstructsExactly) {
  const size_t n = 400, dim = 8, m = 4;  // subspaces of 2 dims each
  FloatMatrix data = RandomMatrix(n, dim, 71);
  for (size_t i = 0; i < n; ++i) {
    data.at(i, 4) = 1.5f;  // subspace 2 = dims {4, 5} held constant
    data.at(i, 5) = -2.75f;
  }
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(data), m);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < n; ++i) {
    store->DecodeRow(static_cast<uint32_t>(i), decoded.data());
    EXPECT_EQ(decoded[4], 1.5f) << "row " << i;
    EXPECT_EQ(decoded[5], -2.75f) << "row " << i;
  }
}

// Insert/erase must follow FloatMatrix's LIFO recycle contract and
// re-encode the recycled slot's code bytes on write.
TEST(PqStoreTest, InsertEraseRecycleReencode) {
  const size_t n = 300, dim = 8, m = 4;
  const FloatMatrix seed = RandomMatrix(n, dim, 73);
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(seed), m);
  auto& pq = static_cast<PqStore&>(*store);
  const std::vector<uint8_t> code7(pq.codes().begin() + 7 * m,
                                   pq.codes().begin() + 8 * m);
  ASSERT_TRUE(store->EraseRow(7).ok());
  ASSERT_TRUE(store->EraseRow(3).ok());
  EXPECT_FALSE(store->EraseRow(3).ok());  // double erase rejected
  // LIFO: last erased slot is recycled first; the new vector's code must
  // land in the recycled slot and differ from the old occupant's.
  std::vector<float> v(seed.row(100), seed.row(100) + dim);
  EXPECT_EQ(store->InsertRow(v.data(), dim), 3u);
  EXPECT_EQ(store->InsertRow(v.data(), dim), 7u);
  const std::vector<uint8_t> new7(pq.codes().begin() + 7 * m,
                                  pq.codes().begin() + 8 * m);
  const std::vector<uint8_t> new3(pq.codes().begin() + 3 * m,
                                  pq.codes().begin() + 4 * m);
  EXPECT_EQ(new7, new3);  // same vector, same codes
  // Appending past the end grows the code array in step with the matrix.
  EXPECT_EQ(store->InsertRow(v.data(), dim), static_cast<uint32_t>(n));
  EXPECT_EQ(pq.codes().size(), (n + 1) * m);
  std::vector<float> d3(dim), d7(dim);
  store->DecodeRow(3, d3.data());
  store->DecodeRow(7, d7.data());
  for (size_t j = 0; j < dim; ++j) EXPECT_EQ(d3[j], d7[j]) << j;
}

// DecodedCopy must reproduce decoded rows AND the exact tombstone state,
// free-list order included.
TEST(PqStoreTest, DecodedCopyPreservesTombstoneState) {
  const size_t dim = 6, m = 2;
  auto store = MakeVectorStore(
      StorageKind::kPq,
      std::make_unique<FloatMatrix>(RandomMatrix(30, dim, 79)), m);
  ASSERT_TRUE(store->EraseRow(11).ok());
  ASSERT_TRUE(store->EraseRow(4).ok());
  const FloatMatrix copy = store->DecodedCopy();
  EXPECT_EQ(copy.rows(), 30u);
  EXPECT_EQ(copy.live_rows(), 28u);
  EXPECT_TRUE(copy.IsDeleted(11));
  EXPECT_TRUE(copy.IsDeleted(4));
  ASSERT_EQ(copy.free_slots().size(), 2u);
  EXPECT_EQ(copy.free_slots()[0], 11u);
  EXPECT_EQ(copy.free_slots()[1], 4u);
  std::vector<float> decoded(dim);
  for (size_t i = 0; i < copy.rows(); ++i) {
    if (copy.IsDeleted(i)) continue;
    store->DecodeRow(static_cast<uint32_t>(i), decoded.data());
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(copy.at(i, j), decoded[j]) << "row " << i;
    }
  }
}

// The ADC score and the exact re-rank score must both equal the fp32
// distance to the centroid-decoded row: the query side of ADC is never
// quantized, so Σ_j ||q_j - c_j||^2 == ||q - decode(row)||^2.
TEST(PqStoreTest, AdcScoresMatchDecodedRows) {
  const size_t n = 64, dim = 17, m = 5;
  const FloatMatrix original = RandomMatrix(n, dim, 83);
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(original), m);
  const FloatMatrix decoded = store->DecodedCopy();
  Rng rng(85);
  std::vector<float> query(dim);
  for (auto& v : query) v = static_cast<float>(rng.Uniform(-10.0, 10.0));
  std::vector<float> prep;
  store->PrepareQuery(query.data(), &prep);
  EXPECT_EQ(prep.size(), m * PqStore::kCentroids);  // the ADC LUT
  std::vector<float> scores(n);
  store->ScoreBatch(prep.data(), 0, nullptr, n, scores.data());
  for (size_t i = 0; i < n; ++i) {
    const float exact =
        L2DistanceSquared(query.data(), decoded.row(i), dim);
    EXPECT_NEAR(scores[i], exact, 1e-2f) << "row " << i;
    EXPECT_NEAR(store->ExactL2Squared(query.data(), uint32_t(i)), exact,
                1e-2f)
        << "row " << i;
  }
  // Id-list form agrees with the contiguous form.
  std::vector<uint32_t> ids = {5, 0, 63, 17, 17};
  std::vector<float> by_id(ids.size());
  store->ScoreBatch(prep.data(), 0, ids.data(), ids.size(), by_id.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(by_id[i], scores[ids[i]]) << "id " << ids[i];
  }
}

// An empty-seeded store trains on its first insert; until then it is
// untrained, and afterwards the first row reconstructs exactly.
TEST(PqStoreTest, EmptySeededTrainsOnFirstInsert) {
  const size_t dim = 10, m = 2;
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(0, dim), m);
  auto& pq = static_cast<PqStore&>(*store);
  EXPECT_FALSE(pq.trained());
  std::vector<float> v(dim);
  for (size_t j = 0; j < dim; ++j) v[j] = 0.5f * float(j) - 2.f;
  EXPECT_EQ(store->InsertRow(v.data(), dim), 0u);
  EXPECT_TRUE(pq.trained());
  std::vector<float> decoded(dim);
  store->DecodeRow(0, decoded.data());
  for (size_t j = 0; j < dim; ++j) EXPECT_EQ(decoded[j], v[j]) << j;
}

// RetrainQuantizer must be a pure function of the store's current state:
// two stores that evolved identically retrain to byte-identical
// codebooks and codes (the property WAL replay and replication rely on).
TEST(PqStoreTest, RetrainQuantizerIsDeterministic) {
  const size_t n = 256, dim = 8, m = 4;
  const FloatMatrix seed = RandomMatrix(n, dim, 89, /*span=*/1.0);
  const FloatMatrix drift = RandomMatrix(64, dim, 91, /*span=*/50.0);
  auto evolve = [&] {
    auto store = MakeVectorStore(StorageKind::kPq,
                                 std::make_unique<FloatMatrix>(seed), m);
    for (size_t i = 0; i < drift.rows(); ++i) {
      store->InsertRow(drift.row(i), dim);
    }
    EXPECT_TRUE(store->EraseRow(10).ok());  // non-void lambda: no ASSERT
    return store;
  };
  auto a = evolve();
  auto b = evolve();
  const bool a_changed = a->RetrainQuantizer();
  const bool b_changed = b->RetrainQuantizer();
  EXPECT_EQ(a_changed, b_changed);
  auto& pa = static_cast<PqStore&>(*a);
  auto& pb = static_cast<PqStore&>(*b);
  EXPECT_EQ(pa.codebooks(), pb.codebooks());
  EXPECT_EQ(pa.codes(), pb.codes());
}

std::vector<std::vector<Neighbor>> QueryAll(const DbLsh& index,
                                            const FloatMatrix& queries,
                                            size_t k) {
  std::vector<std::vector<Neighbor>> out;
  for (size_t q = 0; q < queries.rows(); ++q) {
    out.push_back(index.Query(queries.row(q), k));
  }
  return out;
}

void ExpectSameResults(const std::vector<std::vector<Neighbor>>& a,
                       const std::vector<std::vector<Neighbor>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
    for (size_t r = 0; r < a[q].size(); ++r) {
      EXPECT_EQ(a[q][r].id, b[q][r].id) << "query " << q << " rank " << r;
      EXPECT_EQ(a[q][r].dist, b[q][r].dist)
          << "query " << q << " rank " << r;
    }
  }
}

// v3 fp32 round-trip through both load surfaces: the legacy
// Load(FloatMatrix*) and the LoadStore + Load(VectorStore*) pair.
TEST(StorePersistenceTest, V3Fp32RoundTrip) {
  const FloatMatrix data = RandomMatrix(600, 16, 31);
  const FloatMatrix queries = RandomMatrix(5, 16, 32);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto before = QueryAll(index, queries, 10);
  const std::string path = TempPath("store_v3_fp32.idx");
  ASSERT_TRUE(index.Save(path).ok());

  FloatMatrix reload1 = data;
  auto legacy = DbLsh::Load(path, &reload1);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ExpectSameResults(before, QueryAll(legacy.value(), queries, 10));

  auto store = DbLsh::LoadStore(path, std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->storage_kind(), StorageKind::kFp32);
  auto via_store = DbLsh::Load(path, store.value().get());
  ASSERT_TRUE(via_store.ok()) << via_store.status().ToString();
  ExpectSameResults(before, QueryAll(via_store.value(), queries, 10));
  std::remove(path.c_str());
}

// v3 sq8 round-trip: LoadStore re-encodes the original fp32 dataset with
// the SAVED quantization parameters, so the restored codes are
// byte-identical (the codes checksum enforces it) and queries reproduce.
TEST(StorePersistenceTest, V3Sq8RoundTrip) {
  const FloatMatrix data = RandomMatrix(600, 16, 41);
  const FloatMatrix queries = RandomMatrix(5, 16, 42);
  auto store = MakeVectorStore(StorageKind::kSq8,
                               std::make_unique<FloatMatrix>(data));
  DbLsh index;
  {
    ScopedDecodeView view(store.get());
    ASSERT_TRUE(index.Build(&store->matrix()).ok());
  }
  const auto before = QueryAll(index, queries, 10);
  const std::string path = TempPath("store_v3_sq8.idx");
  ASSERT_TRUE(index.Save(path).ok());

  // The fp32-only surface must reject the quantized file with a pointer
  // to the store path, not crash or load garbage.
  FloatMatrix reject = data;
  EXPECT_FALSE(DbLsh::Load(path, &reject).ok());

  auto restored =
      DbLsh::LoadStore(path, std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->storage_kind(), StorageKind::kSq8);
  auto& sq8 = static_cast<Sq8Store&>(*restored.value());
  auto& orig = static_cast<Sq8Store&>(*store);
  EXPECT_EQ(sq8.scales(), orig.scales());
  EXPECT_EQ(sq8.offsets(), orig.offsets());
  EXPECT_EQ(sq8.codes(), orig.codes());
  auto loaded = DbLsh::Load(path, restored.value().get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameResults(before, QueryAll(loaded.value(), queries, 10));
  std::remove(path.c_str());
}

// Version-2 files (pre-VectorStore: no storage tag, implicitly fp32) must
// keep loading. Forged from a v3 fp32 file by rewriting the version field
// and dropping the tag byte — byte-identical to what the v2 writer
// produced, since v3 only inserted the tag.
TEST(StorePersistenceTest, V2FilesStillLoad) {
  const FloatMatrix data = RandomMatrix(500, 12, 51);
  const FloatMatrix queries = RandomMatrix(5, 12, 52);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto before = QueryAll(index, queries, 10);
  const std::string v3_path = TempPath("store_compat_v3.idx");
  ASSERT_TRUE(index.Save(v3_path).ok());

  std::ifstream in(v3_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 13u);
  const uint32_t v2 = 2;
  std::memcpy(bytes.data() + 8, &v2, sizeof(v2));  // version after magic
  bytes.erase(bytes.begin() + 12);                 // drop the storage tag
  const std::string v2_path = TempPath("store_compat_v2.idx");
  std::ofstream out(v2_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  FloatMatrix reload = data;
  auto legacy = DbLsh::Load(v2_path, &reload);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ExpectSameResults(before, QueryAll(legacy.value(), queries, 10));

  auto store =
      DbLsh::LoadStore(v2_path, std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->storage_kind(), StorageKind::kFp32);
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
}

// v4 pq round-trip: LoadStore re-encodes the original fp32 dataset with
// the SAVED codebooks, so the restored codes are byte-identical (the
// codes checksum enforces it) and queries reproduce.
TEST(StorePersistenceTest, V4PqRoundTrip) {
  const FloatMatrix data = RandomMatrix(600, 16, 43);
  const FloatMatrix queries = RandomMatrix(5, 16, 44);
  auto store = MakeVectorStore(StorageKind::kPq,
                               std::make_unique<FloatMatrix>(data), 4);
  DbLsh index;
  {
    ScopedDecodeView view(store.get());
    ASSERT_TRUE(index.Build(&store->matrix()).ok());
  }
  const auto before = QueryAll(index, queries, 10);
  const std::string path = TempPath("store_v4_pq.idx");
  ASSERT_TRUE(index.Save(path).ok());

  // The fp32-only surface must reject the quantized file.
  FloatMatrix reject = data;
  EXPECT_FALSE(DbLsh::Load(path, &reject).ok());

  auto restored =
      DbLsh::LoadStore(path, std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value()->storage_kind(), StorageKind::kPq);
  auto& pq = static_cast<PqStore&>(*restored.value());
  auto& orig = static_cast<PqStore&>(*store);
  EXPECT_EQ(pq.m(), orig.m());
  EXPECT_EQ(pq.codebooks(), orig.codebooks());
  EXPECT_EQ(pq.codes(), orig.codes());
  auto loaded = DbLsh::Load(path, restored.value().get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameResults(before, QueryAll(loaded.value(), queries, 10));
  std::remove(path.c_str());
}

// Version-3 files (sq8/fp32, pre-PQ) must keep loading. v4 changed only
// the version number for those storage kinds, so a v3 file is forged by
// rewriting the version field of a current sq8 save. A *pq* file forged
// to v3 must be rejected: the kPq tag did not exist before v4.
TEST(StorePersistenceTest, V3FilesStillLoadAndV3PqIsRejected) {
  const FloatMatrix data = RandomMatrix(500, 12, 53);
  const FloatMatrix queries = RandomMatrix(5, 12, 54);
  auto forge_version = [](const std::string& from, const std::string& to,
                          uint32_t version) {
    std::ifstream in(from, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 12u);
    std::memcpy(bytes.data() + 8, &version, sizeof(version));
    std::ofstream out(to, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  auto sq8 = MakeVectorStore(StorageKind::kSq8,
                             std::make_unique<FloatMatrix>(data));
  DbLsh index;
  {
    ScopedDecodeView view(sq8.get());
    ASSERT_TRUE(index.Build(&sq8->matrix()).ok());
  }
  const auto before = QueryAll(index, queries, 10);
  const std::string v4_path = TempPath("store_compat_v4_sq8.idx");
  ASSERT_TRUE(index.Save(v4_path).ok());
  const std::string v3_path = TempPath("store_compat_v3_sq8.idx");
  forge_version(v4_path, v3_path, 3);
  auto restored =
      DbLsh::LoadStore(v3_path, std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value()->storage_kind(), StorageKind::kSq8);
  auto loaded = DbLsh::Load(v3_path, restored.value().get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameResults(before, QueryAll(loaded.value(), queries, 10));

  auto pq = MakeVectorStore(StorageKind::kPq,
                            std::make_unique<FloatMatrix>(data), 4);
  DbLsh pq_index;
  {
    ScopedDecodeView view(pq.get());
    ASSERT_TRUE(pq_index.Build(&pq->matrix()).ok());
  }
  const std::string pq_v4 = TempPath("store_compat_v4_pq.idx");
  ASSERT_TRUE(pq_index.Save(pq_v4).ok());
  const std::string pq_v3 = TempPath("store_compat_v3_pq.idx");
  forge_version(pq_v4, pq_v3, 3);
  EXPECT_FALSE(
      DbLsh::LoadStore(pq_v3, std::make_unique<FloatMatrix>(data)).ok());

  std::remove(v4_path.c_str());
  std::remove(v3_path.c_str());
  std::remove(pq_v4.c_str());
  std::remove(pq_v3.c_str());
}

// The recall contract of quantized storage, isolated from any index's
// candidate generation: a LinearScan collection under storage=sq8 scans
// every row asymmetrically and exact-re-ranks the top k*4 — recall
// against the fp32 LinearScan oracle (exact ground truth) must drop no
// more than 2%.
TEST(Sq8RecallTest, WithinTwoPercentOfLinearScanOracleAtDepth4k) {
  ClusteredSpec spec;
  spec.n = 2000;
  spec.dim = 16;
  spec.clusters = 200;  // ~10 points/cluster: realistic local structure
  spec.center_spread = 25.0;
  spec.cluster_stddev = 2.0;
  spec.seed = 20260809;
  const FloatMatrix data = GenerateClustered(spec);
  auto made = Collection::FromSpec(
      "collection,storage=sq8: LinearScan,name=scan",
      std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& collection = *made.value();

  Rng rng(99);
  const size_t k = 10, nq = 100;
  double recall_sum = 0.0;
  std::vector<float> query(spec.dim);
  for (size_t q = 0; q < nq; ++q) {
    const float* base = data.row(rng.UniformInt(data.rows()));
    for (size_t j = 0; j < spec.dim; ++j) {
      query[j] =
          base[j] + static_cast<float>(rng.Gaussian() * spec.cluster_stddev);
    }
    const auto oracle = ExactKnn(data, query.data(), k);
    QueryRequest request;
    request.k = k;
    auto got = collection.Search(query.data(), request, "scan");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::vector<Neighbor> answer = std::move(got.value().neighbors);
    // Distances under sq8 are to decoded rows; rescore the returned ids
    // against the original data so Recall's distance matching measures
    // id-recall rather than quantization noise.
    for (Neighbor& nb : answer) {
      nb.dist = L2Distance(data.row(nb.id), query.data(), spec.dim);
    }
    std::sort(answer.begin(), answer.end());
    recall_sum += eval::Recall(answer, oracle);
  }
  const double recall = recall_sum / double(nq);
  EXPECT_GE(recall, 0.98) << "sq8 recall dropped more than 2% below the "
                             "LinearScan oracle";
}

// The PQ analog at rerank=8: a LinearScan collection under storage=pq
// scans every row via the ADC tables and exact-re-ranks the top k*8 —
// recall against the fp32 LinearScan oracle must stay >= 0.95 at this
// pinned scale (2000 rows, dim 16, m 8: 2-dim subspaces). Unlike sq8,
// PQ's re-rank re-scores against the same centroid decode the ADC table
// already measures, so recall is governed by codebook fineness — the
// subspaces must stay narrow enough for 256 centroids to resolve the
// cluster structure.
TEST(PqRecallTest, WithinOracleAtRerank8) {
  ClusteredSpec spec;
  spec.n = 2000;
  spec.dim = 16;
  spec.clusters = 200;
  spec.center_spread = 25.0;
  spec.cluster_stddev = 2.0;
  spec.seed = 20260810;
  const FloatMatrix data = GenerateClustered(spec);
  auto made = Collection::FromSpec(
      "collection,storage=pq,m=8,rerank=8: LinearScan,name=scan",
      std::make_unique<FloatMatrix>(data));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  Collection& collection = *made.value();

  Rng rng(101);
  const size_t k = 10, nq = 100;
  double recall_sum = 0.0;
  std::vector<float> query(spec.dim);
  for (size_t q = 0; q < nq; ++q) {
    const float* base = data.row(rng.UniformInt(data.rows()));
    for (size_t j = 0; j < spec.dim; ++j) {
      query[j] =
          base[j] + static_cast<float>(rng.Gaussian() * spec.cluster_stddev);
    }
    const auto oracle = ExactKnn(data, query.data(), k);
    QueryRequest request;
    request.k = k;
    auto got = collection.Search(query.data(), request, "scan");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    std::vector<Neighbor> answer = std::move(got.value().neighbors);
    // Distances under pq are to centroid-decoded rows; rescore against
    // the original data so Recall measures id-recall.
    for (Neighbor& nb : answer) {
      nb.dist = L2Distance(data.row(nb.id), query.data(), spec.dim);
    }
    std::sort(answer.begin(), answer.end());
    recall_sum += eval::Recall(answer, oracle);
  }
  const double recall = recall_sum / double(nq);
  EXPECT_GE(recall, 0.95) << "pq recall dropped below the LinearScan "
                             "oracle contract";
}

}  // namespace
}  // namespace dblsh
