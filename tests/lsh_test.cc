#include <gtest/gtest.h>

#include <cmath>

#include "dataset/synthetic.h"
#include "lsh/collision.h"
#include "lsh/gaussian.h"
#include "lsh/params.h"
#include "lsh/projection.h"
#include "util/random.h"

namespace dblsh::lsh {
namespace {

// --------------------------------------------------------------- Gaussian --

TEST(GaussianTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(NormalPdf(1.0), 0.2419707245, 1e-9);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-12);
}

TEST(GaussianTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.9750021049, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.96), 0.0249978951, 1e-6);
}

TEST(GaussianTest, TailComplementsCdf) {
  for (double x : {-3.0, -1.0, 0.0, 0.5, 2.0, 4.0}) {
    EXPECT_NEAR(NormalUpperTail(x), 1.0 - NormalCdf(x), 1e-12);
  }
}

// -------------------------------------------------------------- Collision --

TEST(CollisionTest, QueryCentricAtZeroDistanceIsOne) {
  EXPECT_DOUBLE_EQ(CollisionProbQueryCentric(0.0, 4.0), 1.0);
}

TEST(CollisionTest, QueryCentricMonotoneDecreasingInTau) {
  double prev = 1.1;
  for (double tau = 0.1; tau < 20.0; tau += 0.3) {
    const double p = CollisionProbQueryCentric(tau, 4.0);
    EXPECT_LT(p, prev);
    EXPECT_GT(p, 0.0);
    prev = p;
  }
}

TEST(CollisionTest, QueryCentricIncreasingInWidth) {
  double prev = 0.0;
  for (double w = 0.5; w < 50.0; w *= 2.0) {
    const double p = CollisionProbQueryCentric(2.0, w);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(CollisionTest, QueryCentricClosedFormMatchesDefinition) {
  // Eq. 4: p = Integral_{-w/2tau}^{w/2tau} f(t) dt = 2 Phi(w/2tau) - 1.
  for (double tau : {0.5, 1.0, 3.0}) {
    for (double w : {1.0, 4.0, 9.0}) {
      const double expected = NormalCdf(w / (2 * tau)) -
                              NormalCdf(-w / (2 * tau));
      EXPECT_NEAR(CollisionProbQueryCentric(tau, w), expected, 1e-12);
    }
  }
}

TEST(CollisionTest, StaticMatchesNumericIntegration) {
  // Eq. 2 by midpoint quadrature vs the closed form used in the library.
  for (double tau : {0.5, 1.0, 2.0, 5.0}) {
    for (double w : {1.0, 4.0, 16.0}) {
      const int steps = 20000;
      double integral = 0.0;
      for (int s = 0; s < steps; ++s) {
        const double t = (s + 0.5) * w / steps;
        integral += (1.0 / tau) * NormalPdf(t / tau) * (1.0 - t / w) *
                    (w / steps);
      }
      EXPECT_NEAR(CollisionProbStatic(tau, w), 2.0 * integral, 1e-4)
          << "tau=" << tau << " w=" << w;
    }
  }
}

TEST(CollisionTest, StaticBelowQueryCentricForSameWidth) {
  // Static buckets suffer boundary losses, so their collision probability
  // is strictly lower at equal width.
  for (double tau : {0.5, 1.0, 2.0}) {
    EXPECT_LT(CollisionProbStatic(tau, 4.0),
              CollisionProbQueryCentric(tau, 4.0));
  }
}

TEST(CollisionTest, Observation1ScaleInvariance) {
  // p(r; w0*r) == p(1; w0) for any r: the key fact enabling one index for
  // all radii.
  const double w0 = 9.0;
  const double base = CollisionProbQueryCentric(1.0, w0);
  for (double r : {0.25, 1.0, 7.0, 113.0}) {
    EXPECT_NEAR(CollisionProbQueryCentric(r, w0 * r), base, 1e-12);
  }
}

TEST(CollisionTest, EmpiricalCollisionMatchesFormula) {
  // Monte Carlo check of Eq. 4 with real projections: points at controlled
  // distance tau collide (|h(o1)-h(o2)| <= w/2) at the predicted rate.
  const size_t dim = 32;
  const double tau = 2.0;
  const double w = 6.0;
  Rng rng(21);
  const size_t trials = 4000;
  ProjectionBank bank(trials, dim, 17);
  std::vector<float> o1(dim), o2(dim);
  for (size_t j = 0; j < dim; ++j) o1[j] = static_cast<float>(rng.Gaussian());
  // o2 = o1 + tau * e where e is a random unit vector.
  std::vector<float> e(dim);
  double norm = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    e[j] = static_cast<float>(rng.Gaussian());
    norm += e[j] * e[j];
  }
  norm = std::sqrt(norm);
  for (size_t j = 0; j < dim; ++j) {
    o2[j] = o1[j] + static_cast<float>(tau * e[j] / norm);
  }
  size_t collisions = 0;
  for (size_t f = 0; f < trials; ++f) {
    const float d = bank.Project(f, o1.data()) - bank.Project(f, o2.data());
    if (std::fabs(d) <= w / 2.0) ++collisions;
  }
  const double expected = CollisionProbQueryCentric(tau, w);
  EXPECT_NEAR(double(collisions) / trials, expected, 0.03);
}

// ------------------------------------------------------------------- Rho --

TEST(RhoTest, RhoStarBelowOneOverCForPaperWidth) {
  // With w0 = 4c^2 (gamma = 2), rho* is far below 1/c (paper Fig. 4b).
  for (double c : {1.5, 2.0, 3.0}) {
    const double w0 = 4.0 * c * c;
    EXPECT_LT(RhoQueryCentric(1.0, c, w0), 1.0 / c);
  }
}

TEST(RhoTest, AlphaAtGamma2MatchesPaper) {
  // Lemma 3: alpha = 4.746 at gamma = 2 (w0 = 4c^2).
  EXPECT_NEAR(AlphaForGamma(2.0), 4.746, 5e-3);
}

TEST(RhoTest, AlphaIncreasesWithGamma) {
  double prev = 0.0;
  for (double g = 0.2; g < 5.0; g += 0.2) {
    const double a = AlphaForGamma(g);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(RhoTest, AlphaCrossesOneNearPaperThreshold) {
  // "xi(gamma) > 1 holds when gamma > 0.7518" (Sec. V-B).
  EXPECT_LT(AlphaForGamma(0.74), 1.0);
  EXPECT_GT(AlphaForGamma(0.76), 1.0);
}

TEST(RhoTest, RhoStarBoundedByLemma3) {
  // rho* <= 1/c^alpha for w0 = 2 gamma c^2 (checked across c and gamma).
  for (double gamma : {1.0, 2.0, 3.0}) {
    for (double c = 1.1; c <= 4.0; c += 0.3) {
      const double w0 = 2.0 * gamma * c * c;
      const double rho_star = RhoQueryCentric(1.0, c, w0);
      EXPECT_LE(rho_star, RhoStarBound(c, gamma) + 1e-9)
          << "c=" << c << " gamma=" << gamma;
    }
  }
}

TEST(RhoTest, RhoStarBelowStaticRhoAtPaperWidth) {
  // Fig. 4(b): with w = 4c^2 the dynamic exponent is decisively smaller.
  for (double c = 1.2; c <= 4.0; c += 0.4) {
    const double w0 = 4.0 * c * c;
    EXPECT_LT(RhoQueryCentric(1.0, c, w0), RhoStatic(1.0, c, w0));
  }
}

// ---------------------------------------------------------------- Params --

TEST(ParamsTest, DeriveMatchesFormulas) {
  const size_t n = 100000;
  const double c = 2.0;
  const double w0 = 16.0;
  const size_t t = 100;
  auto r = DeriveParams(n, c, w0, t);
  ASSERT_TRUE(r.ok());
  const auto& p = r.value();
  EXPECT_NEAR(p.p1, CollisionProbQueryCentric(1.0, w0), 1e-12);
  EXPECT_NEAR(p.p2, CollisionProbQueryCentric(c, w0), 1e-12);
  const double ratio = double(n) / double(t);
  EXPECT_EQ(p.k, static_cast<size_t>(
                     std::ceil(std::log(ratio) / std::log(1.0 / p.p2))));
  EXPECT_EQ(p.l,
            static_cast<size_t>(std::ceil(std::pow(ratio, p.rho_star))));
}

TEST(ParamsTest, LargerCNeedsFewerTables) {
  const auto r1 = DeriveParams(1000000, 1.5, 9.0, 100);
  const auto r2 = DeriveParams(1000000, 3.0, 36.0, 100);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(r2.value().rho_star, r1.value().rho_star);
  EXPECT_LE(r2.value().l, r1.value().l);
}

TEST(ParamsTest, RejectsInvalidArguments) {
  EXPECT_FALSE(DeriveParams(1000, 1.0, 9.0, 10).ok());   // c == 1
  EXPECT_FALSE(DeriveParams(1000, 2.0, 0.0, 10).ok());   // w0 == 0
  EXPECT_FALSE(DeriveParams(1000, 2.0, 9.0, 0).ok());    // t == 0
  EXPECT_FALSE(DeriveParams(10, 2.0, 9.0, 10).ok());     // n <= t
}

// ------------------------------------------------------------- Projection --

TEST(ProjectionTest, DeterministicPerSeed) {
  ProjectionBank a(4, 8, 33), b(4, 8, 33), c(4, 8, 34);
  const float point[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (size_t f = 0; f < 4; ++f) {
    EXPECT_FLOAT_EQ(a.Project(f, point), b.Project(f, point));
  }
  bool any_diff = false;
  for (size_t f = 0; f < 4; ++f) {
    any_diff |= (a.Project(f, point) != c.Project(f, point));
  }
  EXPECT_TRUE(any_diff);
}

TEST(ProjectionTest, LinearityOfProjection) {
  ProjectionBank bank(3, 5, 11);
  float x[5] = {1, 0, 2, -1, 3};
  float y[5] = {0, 1, -2, 1, 0};
  float sum[5];
  for (int j = 0; j < 5; ++j) sum[j] = x[j] + y[j];
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_NEAR(bank.Project(f, sum),
                bank.Project(f, x) + bank.Project(f, y), 1e-4);
  }
}

TEST(ProjectionTest, ProjectDatasetMatchesPerPoint) {
  const FloatMatrix data = GenerateUniform(20, 6, 5.0, 2);
  ProjectionBank bank(4, 6, 9);
  const FloatMatrix proj = bank.ProjectDataset(data);
  ASSERT_EQ(proj.rows(), 20u);
  ASSERT_EQ(proj.cols(), 4u);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t f = 0; f < 4; ++f) {
      EXPECT_FLOAT_EQ(proj.at(i, f), bank.Project(f, data.row(i)));
    }
  }
}

TEST(ProjectionTest, TwoStableDistancePreservation) {
  // For 2-stable projections, h(o1)-h(o2) ~ N(0, ||o1-o2||^2): check the
  // empirical variance of projected differences against the true distance.
  const size_t dim = 24;
  Rng rng(3);
  std::vector<float> o1(dim), o2(dim);
  for (size_t j = 0; j < dim; ++j) {
    o1[j] = static_cast<float>(rng.Uniform(0, 10));
    o2[j] = static_cast<float>(rng.Uniform(0, 10));
  }
  double true_d2 = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    true_d2 += (o1[j] - o2[j]) * (o1[j] - o2[j]);
  }
  const size_t trials = 8000;
  ProjectionBank bank(trials, dim, 5);
  double sum_sq = 0.0;
  for (size_t f = 0; f < trials; ++f) {
    const double d = bank.Project(f, o1.data()) - bank.Project(f, o2.data());
    sum_sq += d * d;
  }
  EXPECT_NEAR(sum_sq / trials / true_d2, 1.0, 0.08);
}

TEST(StaticHashFamilyTest, BucketsShiftWithOffset) {
  StaticHashFamily fam(8, 4, 2.0, 77);
  const float p[4] = {1.f, 2.f, 3.f, 4.f};
  const float q[4] = {1.f, 2.f, 3.f, 4.f};
  for (size_t f = 0; f < 8; ++f) {
    EXPECT_EQ(fam.Hash(f, p), fam.Hash(f, q));  // identical points collide
  }
}

TEST(StaticHashFamilyTest, EmpiricalCollisionMatchesEq2) {
  // Monte Carlo validation of the static-family collision probability.
  const size_t dim = 32;
  const double tau = 1.5;
  const double w = 6.0;
  Rng rng(19);
  std::vector<float> o1(dim), o2(dim), e(dim);
  for (size_t j = 0; j < dim; ++j) o1[j] = static_cast<float>(rng.Gaussian());
  double norm = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    e[j] = static_cast<float>(rng.Gaussian());
    norm += e[j] * e[j];
  }
  norm = std::sqrt(norm);
  for (size_t j = 0; j < dim; ++j) {
    o2[j] = o1[j] + static_cast<float>(tau * e[j] / norm);
  }
  const size_t trials = 6000;
  StaticHashFamily fam(trials, dim, w, 23);
  size_t collisions = 0;
  for (size_t f = 0; f < trials; ++f) {
    if (fam.Hash(f, o1.data()) == fam.Hash(f, o2.data())) ++collisions;
  }
  EXPECT_NEAR(double(collisions) / trials, CollisionProbStatic(tau, w), 0.03);
}

}  // namespace
}  // namespace dblsh::lsh
