// Tests for the library extensions beyond the paper's core algorithms:
// the E2LSH reference baseline, index persistence, and the early-stop
// slack (the paper's future-work direction).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "baselines/e2lsh.h"
#include "baselines/multiprobe_lsh.h"
#include "core/db_lsh.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace dblsh {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

FloatMatrix EasyData(size_t n = 3000, size_t dim = 32, uint64_t seed = 90) {
  return GenerateClustered(
      {.n = n, .dim = dim, .clusters = 12, .seed = seed});
}

// ----------------------------------------------------------------- E2LSH --

TEST(E2LshTest, RejectsBadParams) {
  const FloatMatrix data = EasyData(200);
  E2LshParams params;
  params.c = 1.0;
  EXPECT_FALSE(E2Lsh(params).Build(&data).ok());
  params.c = 1.5;
  params.k = 0;
  EXPECT_FALSE(E2Lsh(params).Build(&data).ok());
  params.k = 8;
  params.levels = 0;
  EXPECT_FALSE(E2Lsh(params).Build(&data).ok());
  FloatMatrix empty(0, 8);
  EXPECT_FALSE(E2Lsh().Build(&empty).ok());
}

TEST(E2LshTest, FindsExactDuplicate) {
  const FloatMatrix data = EasyData(1500);
  E2Lsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(42), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST(E2LshTest, ReasonableRecallOnClusteredData) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(3000), 20, 91, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  E2Lsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  double recall = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    recall += eval::Recall(index.Query(queries.row(q), 10), gt[q]);
  }
  EXPECT_GT(recall / queries.rows(), 0.3);
}

TEST(E2LshTest, IndexSizeGrowsWithLevels) {
  // Table I's point: E2LSH pays levels * L * n entries.
  const FloatMatrix data = EasyData(500);
  E2LshParams small_params, big_params;
  small_params.levels = 2;
  big_params.levels = 10;
  E2Lsh small(small_params), big(big_params);
  ASSERT_TRUE(small.Build(&data).ok());
  ASSERT_TRUE(big.Build(&data).ok());
  EXPECT_EQ(small.IndexEntries(), 2u * small_params.l * data.rows());
  EXPECT_EQ(big.IndexEntries(), 10u * big_params.l * data.rows());
}

TEST(E2LshTest, HashBoundaryHurtsVsDbLsh) {
  // The motivating comparison (paper Fig. 2): same budget, query-oblivious
  // grid cells vs query-centric windows. Aggregated over queries, DB-LSH
  // must reach at least E2LSH's recall.
  FloatMatrix data, queries;
  SplitQueries(
      GenerateClustered(
          {.n = 4000, .dim = 32, .clusters = 24,
           .center_spread = 20.0, .cluster_stddev = 2.0, .seed = 92}),
      30, 93, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  E2LshParams e2_params;
  e2_params.beta = 0.02;
  E2Lsh e2(e2_params);
  DbLshParams db_params;
  db_params.t = 8;  // ~budget parity: 2*8*5 = 80 = beta*n
  DbLsh db(db_params);
  ASSERT_TRUE(e2.Build(&data).ok());
  ASSERT_TRUE(db.Build(&data).ok());
  double e2_recall = 0.0, db_recall = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    e2_recall += eval::Recall(e2.Query(queries.row(q), 10), gt[q]);
    db_recall += eval::Recall(db.Query(queries.row(q), 10), gt[q]);
  }
  EXPECT_GE(db_recall, e2_recall - 0.5);
}

// ------------------------------------------------------------ Persistence --

TEST(PersistenceTest, RoundTripProducesIdenticalResults) {
  FloatMatrix data = EasyData(2000);
  DbLsh original;
  ASSERT_TRUE(original.Build(&data).ok());
  const std::string path = TempPath("dblsh_roundtrip.idx");
  ASSERT_TRUE(original.Save(path).ok());

  auto loaded = DbLsh::Load(path, &data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().params().k, original.params().k);
  EXPECT_EQ(loaded.value().params().l, original.params().l);
  EXPECT_EQ(loaded.value().IndexEntries(), original.IndexEntries());

  for (uint32_t q : {1u, 500u, 1999u}) {
    const auto a = original.Query(data.row(q), 10);
    const auto b = loaded.value().Query(data.row(q), 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "query " << q << " rank " << i;
      EXPECT_FLOAT_EQ(a[i].dist, b[i].dist);
    }
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, SaveRequiresBuiltIndex) {
  DbLsh index;
  EXPECT_FALSE(index.Save(TempPath("dblsh_unbuilt.idx")).ok());
}

TEST(PersistenceTest, LoadRejectsWrongDataset) {
  const FloatMatrix data = EasyData(1000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const std::string path = TempPath("dblsh_wrongdata.idx");
  ASSERT_TRUE(index.Save(path).ok());
  FloatMatrix other = EasyData(999);
  auto r = DbLsh::Load(path, &other);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsGarbageFile) {
  const std::string path = TempPath("dblsh_garbage.idx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an index";
  }
  FloatMatrix data = EasyData(100);
  auto r = DbLsh::Load(path, &data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsTruncatedFile) {
  FloatMatrix data = EasyData(1000);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const std::string path = TempPath("dblsh_truncated.idx");
  ASSERT_TRUE(index.Save(path).ok());
  // Truncate to 60% of the file.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 3 / 5);
  auto r = DbLsh::Load(path, &data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsMissingFile) {
  FloatMatrix data = EasyData(100);
  auto r = DbLsh::Load("/nonexistent/missing.idx", &data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(PersistenceTest, FbLshModeSurvivesRoundTrip) {
  FloatMatrix data = EasyData(1000);
  DbLshParams params;
  params.bucketing = BucketingMode::kFixedGrid;
  params.k = 5;
  params.l = 6;
  DbLsh original(params);
  ASSERT_TRUE(original.Build(&data).ok());
  const std::string path = TempPath("dblsh_fb.idx");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = DbLsh::Load(path, &data);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Name(), "FB-LSH");
  const auto a = original.Query(data.row(7), 5);
  const auto b = loaded.value().Query(data.row(7), 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  std::remove(path.c_str());
}

// ------------------------------------------------------- Multi-Probe LSH --

TEST(MultiProbeTest, RejectsBadParams) {
  const FloatMatrix data = EasyData(200);
  MultiProbeParams params;
  params.probes = 0;
  EXPECT_FALSE(MultiProbeLsh(params).Build(&data).ok());
  FloatMatrix empty(0, 8);
  EXPECT_FALSE(MultiProbeLsh().Build(&empty).ok());
}

TEST(MultiProbeTest, FindsExactDuplicate) {
  const FloatMatrix data = EasyData(1500);
  MultiProbeLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const auto result = index.Query(data.row(21), 1);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST(MultiProbeTest, MoreProbesImproveRecall) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(3000), 20, 97, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  MultiProbeParams lo_params, hi_params;
  lo_params.probes = 1;  // degenerate: plain E2LSH probing
  hi_params.probes = 64;
  MultiProbeLsh lo(lo_params), hi(hi_params);
  ASSERT_TRUE(lo.Build(&data).ok());
  ASSERT_TRUE(hi.Build(&data).ok());
  double lo_recall = 0.0, hi_recall = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    lo_recall += eval::Recall(lo.Query(queries.row(q), 10), gt[q]);
    hi_recall += eval::Recall(hi.Query(queries.row(q), 10), gt[q]);
  }
  EXPECT_GE(hi_recall, lo_recall - 0.02);
  EXPECT_GT(hi_recall / queries.rows(), 0.3);
}

TEST(MultiProbeTest, FewerTablesThanE2Lsh) {
  // The method's purpose: comparable reach with fewer tables. Structural
  // check that the default uses fewer hash functions than the E2LSH
  // default (which multiplies by radius levels).
  MultiProbeLsh mp;
  E2Lsh e2;
  EXPECT_LT(mp.NumHashFunctions(), e2.NumHashFunctions());
}

// ----------------------------------------------------------- kd backend --

TEST(BackendTest, KdTreeBackendMatchesRecall) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(3000), 20, 96, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  DbLshParams rstar_params;
  DbLshParams kd_params;
  kd_params.backend = IndexBackend::kKdTree;
  DbLsh rstar(rstar_params), kd(kd_params);
  ASSERT_TRUE(rstar.Build(&data).ok());
  ASSERT_TRUE(kd.Build(&data).ok());
  double rstar_recall = 0.0, kd_recall = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    rstar_recall += eval::Recall(rstar.Query(queries.row(q), 10), gt[q]);
    kd_recall += eval::Recall(kd.Query(queries.row(q), 10), gt[q]);
  }
  // Same projections, same buckets — only the retrieval order inside a
  // window differs, so aggregate recall must be close.
  EXPECT_NEAR(kd_recall / queries.rows(), rstar_recall / queries.rows(),
              0.15);
}

TEST(BackendTest, KdTreeBackendFindsExactDuplicate) {
  const FloatMatrix data = EasyData(1000);
  DbLshParams params;
  params.backend = IndexBackend::kKdTree;
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&data).ok());
  EXPECT_EQ(index.IndexEntries(), params.l * data.rows());
  const auto result = index.Query(data.row(3), 5);
  ASSERT_FALSE(result.empty());
  EXPECT_FLOAT_EQ(result[0].dist, 0.f);
}

TEST(BackendTest, KdTreeBackendSurvivesPersistence) {
  FloatMatrix data = EasyData(800);
  DbLshParams params;
  params.backend = IndexBackend::kKdTree;
  DbLsh original(params);
  ASSERT_TRUE(original.Build(&data).ok());
  const std::string path = TempPath("dblsh_kd.idx");
  ASSERT_TRUE(original.Save(path).ok());
  auto loaded = DbLsh::Load(path, &data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto a = original.Query(data.row(11), 5);
  const auto b = loaded.value().Query(data.row(11), 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  std::remove(path.c_str());
}

// --------------------------------------------------------- Early stopping --

TEST(EarlyStopTest, SlackBelowOneRejected) {
  const FloatMatrix data = EasyData(200);
  DbLshParams params;
  params.early_stop_slack = 0.5;
  DbLsh index(params);
  EXPECT_FALSE(index.Build(&data).ok());
}

TEST(EarlyStopTest, SlackReducesCandidatesVerified) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(4000), 20, 94, &data, &queries);
  DbLshParams exact_params;
  DbLshParams slack_params;
  slack_params.early_stop_slack = 2.0;
  DbLsh exact(exact_params), relaxed(slack_params);
  ASSERT_TRUE(exact.Build(&data).ok());
  ASSERT_TRUE(relaxed.Build(&data).ok());
  size_t exact_cand = 0, relaxed_cand = 0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    QueryStats s1, s2;
    exact.Query(queries.row(q), 10, &s1);
    relaxed.Query(queries.row(q), 10, &s2);
    exact_cand += s1.candidates_verified;
    relaxed_cand += s2.candidates_verified;
  }
  EXPECT_LE(relaxed_cand, exact_cand);
}

TEST(EarlyStopTest, SlackKeepsReasonableAccuracy) {
  FloatMatrix data, queries;
  SplitQueries(EasyData(3000), 20, 95, &data, &queries);
  const auto gt = ComputeGroundTruth(data, queries, 10);
  DbLshParams params;
  params.early_stop_slack = 1.5;
  DbLsh index(params);
  ASSERT_TRUE(index.Build(&data).ok());
  double ratio = 0.0;
  for (size_t q = 0; q < queries.rows(); ++q) {
    ratio += eval::OverallRatio(index.Query(queries.row(q), 10), gt[q]);
  }
  // The relaxed condition still bounds the returned distances by
  // slack * c^2 * r*, so the overall ratio stays moderate.
  EXPECT_LT(ratio / queries.rows(), 1.6);
}

}  // namespace
}  // namespace dblsh
