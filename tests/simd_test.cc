#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/index_factory.h"
#include "core/verify.h"
#include "dataset/synthetic.h"
#include "simd/simd.h"
#include "util/random.h"

namespace dblsh {
namespace {

using simd::KernelKind;

/// Every tier the CPU can run; kScalar is always present.
std::vector<KernelKind> SupportedKinds() {
  std::vector<KernelKind> kinds = {KernelKind::kScalar};
  if (simd::Supported(KernelKind::kAvx2)) kinds.push_back(KernelKind::kAvx2);
  if (simd::Supported(KernelKind::kAvx512)) {
    kinds.push_back(KernelKind::kAvx512);
  }
  return kinds;
}

/// Pins a kernel for the duration of one test and always restores auto
/// dispatch, so test order can't leak a forced tier.
class SimdKernelTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::UseAutoKernel(); }
};

double ReferenceL2Squared(const float* a, const float* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

double ReferenceDot(const float* a, const float* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

// Property test: every compiled-and-runnable dispatch tier agrees with a
// double-precision reference on odd dimensions (scalar tails, masked
// AVX-512 tails) and on unaligned pointers (all loads are loadu).
TEST_F(SimdKernelTest, AllTiersMatchDoubleReferenceAcrossDimsAndAlignment) {
  const size_t dims[] = {1, 3, 7, 17, 100, 960};
  Rng rng(20260731);
  for (const size_t dim : dims) {
    // Over-allocate so we can offset by one float to force misalignment.
    std::vector<float> a_buf(dim + 1), b_buf(dim + 1);
    for (auto& v : a_buf) v = static_cast<float>(rng.Gaussian());
    for (auto& v : b_buf) v = static_cast<float>(rng.Gaussian());
    for (const size_t offset : {size_t{0}, size_t{1}}) {
      const float* a = a_buf.data() + offset;
      const float* b = b_buf.data() + offset;
      const double ref_l2 = ReferenceL2Squared(a, b, dim);
      const double ref_dot = ReferenceDot(a, b, dim);
      // Relative tolerance scaled to float accumulation error over `dim`
      // terms of O(1) magnitude.
      const double tol = 1e-4 * std::max(1.0, static_cast<double>(dim));
      for (const KernelKind kind : SupportedKinds()) {
        SCOPED_TRACE(std::string(simd::KernelName(kind)) +
                     " dim=" + std::to_string(dim) +
                     " offset=" + std::to_string(offset));
        ASSERT_TRUE(simd::ForceKernel(kind).ok());
        const auto& kernels = simd::Active();
        EXPECT_EQ(kernels.kind, kind);
        EXPECT_NEAR(kernels.l2_squared(a, b, dim), ref_l2,
                    tol * std::max(1.0, std::abs(ref_l2)));
        EXPECT_NEAR(kernels.dot(a, b, dim), ref_dot,
                    tol * std::max(1.0, std::abs(ref_dot)));
      }
    }
  }
}

// The one-to-many batch entry point must agree bit-for-bit with n calls of
// the same tier's one-to-one kernel, for both an id list and the
// contiguous (ids == nullptr) form.
TEST_F(SimdKernelTest, BatchMatchesOneToOnePerTier) {
  const size_t dims[] = {1, 3, 7, 17, 100, 960};
  const size_t n = 57;  // not a multiple of any chunk size
  Rng rng(42);
  for (const size_t dim : dims) {
    std::vector<float> base(n * dim), query(dim);
    for (auto& v : base) v = static_cast<float>(rng.Gaussian());
    for (auto& v : query) v = static_cast<float>(rng.Gaussian());
    std::vector<uint32_t> ids(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<uint32_t>((i * 13) % n);  // shuffled, in-range
    }
    for (const KernelKind kind : SupportedKinds()) {
      SCOPED_TRACE(std::string(simd::KernelName(kind)) +
                   " dim=" + std::to_string(dim));
      ASSERT_TRUE(simd::ForceKernel(kind).ok());
      const auto& kernels = simd::Active();
      std::vector<float> out(n, -1.f);
      kernels.l2_squared_batch(query.data(), base.data(), dim, ids.data(), n,
                               out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], kernels.l2_squared(query.data(),
                                             base.data() + ids[i] * dim, dim))
            << "id " << ids[i];
      }
      kernels.l2_squared_batch(query.data(), base.data(), dim, nullptr, n,
                               out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], kernels.l2_squared(query.data(),
                                             base.data() + i * dim, dim))
            << "row " << i;
      }
    }
  }
}

double ReferenceSq8Score(const float* prep, const float* scale,
                         const uint8_t* code, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(prep[i]) -
                     static_cast<double>(scale[i]) * double(code[i]);
    acc += d * d;
  }
  return acc;
}

double ReferenceSq8L2Asym(const float* query, const float* offset,
                          const float* scale, const uint8_t* code,
                          size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d =
        static_cast<double>(query[i]) -
        (static_cast<double>(offset[i]) +
         static_cast<double>(scale[i]) * double(code[i]));
    acc += d * d;
  }
  return acc;
}

// The u8 asymmetric kernels across every runnable tier, odd dims (scalar
// tails, masked/partial vector tails) and unaligned inputs, against
// double-precision references.
TEST_F(SimdKernelTest, Sq8TiersMatchDoubleReferenceAcrossDimsAndAlignment) {
  const size_t dims[] = {1, 3, 7, 17, 31, 100, 960};
  Rng rng(20260808);
  for (const size_t dim : dims) {
    std::vector<float> prep_buf(dim + 1), scale_buf(dim + 1),
        offset_buf(dim + 1), query_buf(dim + 1);
    std::vector<uint8_t> code_buf(dim + 1);
    for (auto& v : prep_buf) v = static_cast<float>(rng.Gaussian());
    for (auto& v : scale_buf) {
      v = 0.01f + std::fabs(static_cast<float>(rng.Gaussian()));
    }
    for (auto& v : offset_buf) v = static_cast<float>(rng.Gaussian());
    for (auto& v : query_buf) v = static_cast<float>(rng.Gaussian());
    for (auto& v : code_buf) {
      v = static_cast<uint8_t>(rng.UniformInt(256));
    }
    for (const size_t offset : {size_t{0}, size_t{1}}) {
      const float* prep = prep_buf.data() + offset;
      const float* scale = scale_buf.data() + offset;
      const float* off = offset_buf.data() + offset;
      const float* query = query_buf.data() + offset;
      const uint8_t* code = code_buf.data() + offset;
      const double ref_score = ReferenceSq8Score(prep, scale, code, dim);
      const double ref_asym = ReferenceSq8L2Asym(query, off, scale, code, dim);
      // Codes reach 255, so per-term magnitudes are O(scale * 255);
      // scale the tolerance to the reference value.
      const double tol = 1e-4 * std::max(1.0, static_cast<double>(dim));
      for (const KernelKind kind : SupportedKinds()) {
        SCOPED_TRACE(std::string(simd::KernelName(kind)) +
                     " dim=" + std::to_string(dim) +
                     " offset=" + std::to_string(offset));
        ASSERT_TRUE(simd::ForceKernel(kind).ok());
        const auto& kernels = simd::Active();
        EXPECT_NEAR(kernels.sq8_score(prep, scale, code, dim), ref_score,
                    tol * std::max(1.0, ref_score));
        EXPECT_NEAR(kernels.sq8_l2_asym(query, off, scale, code, dim),
                    ref_asym, tol * std::max(1.0, ref_asym));
      }
    }
  }
}

// sq8_score_batch must agree bit-for-bit with n calls of the same tier's
// sq8_score, for both the id-list and the contiguous (ids == nullptr)
// forms.
TEST_F(SimdKernelTest, Sq8BatchMatchesOneToOnePerTier) {
  const size_t dims[] = {1, 3, 7, 17, 100, 960};
  const size_t n = 57;  // not a multiple of any chunk size
  Rng rng(4242);
  for (const size_t dim : dims) {
    std::vector<uint8_t> codes(n * dim);
    std::vector<float> prep(dim), scale(dim);
    for (auto& v : codes) v = static_cast<uint8_t>(rng.UniformInt(256));
    for (auto& v : prep) v = static_cast<float>(rng.Gaussian());
    for (auto& v : scale) {
      v = 0.01f + std::fabs(static_cast<float>(rng.Gaussian()));
    }
    std::vector<uint32_t> ids(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<uint32_t>((i * 13) % n);  // shuffled, in-range
    }
    for (const KernelKind kind : SupportedKinds()) {
      SCOPED_TRACE(std::string(simd::KernelName(kind)) +
                   " dim=" + std::to_string(dim));
      ASSERT_TRUE(simd::ForceKernel(kind).ok());
      const auto& kernels = simd::Active();
      std::vector<float> out(n, -1.f);
      kernels.sq8_score_batch(prep.data(), scale.data(), codes.data(), dim,
                              ids.data(), n, out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], kernels.sq8_score(prep.data(), scale.data(),
                                            codes.data() + ids[i] * dim, dim))
            << "id " << ids[i];
      }
      kernels.sq8_score_batch(prep.data(), scale.data(), codes.data(), dim,
                              nullptr, n, out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], kernels.sq8_score(prep.data(), scale.data(),
                                            codes.data() + i * dim, dim))
            << "row " << i;
      }
    }
  }
}

double ReferencePqAdc(const float* lut, const uint8_t* code, size_t m) {
  double acc = 0.0;
  for (size_t j = 0; j < m; ++j) {
    acc += static_cast<double>(lut[j * 256 + code[j]]);
  }
  return acc;
}

// The PQ ADC kernel across every runnable tier, odd subspace counts
// (scalar tails after the 8-wide gather loop) and unaligned LUT pointers,
// against a double-precision reference. Additionally every tier must
// return the *bit-identical* float: the three implementations share one
// canonical 8-bin summation order precisely so PQ search results cannot
// depend on the host's instruction set.
TEST_F(SimdKernelTest, PqAdcTiersMatchDoubleReferenceAndEachOther) {
  const size_t ms[] = {1, 3, 5, 7, 8, 9, 16, 17, 31, 64};
  Rng rng(20260809);
  for (const size_t m : ms) {
    std::vector<float> lut_buf(m * 256 + 1);
    std::vector<uint8_t> code_buf(m + 1);
    for (auto& v : lut_buf) v = static_cast<float>(rng.Gaussian());
    for (auto& v : code_buf) v = static_cast<uint8_t>(rng.UniformInt(256));
    for (const size_t offset : {size_t{0}, size_t{1}}) {
      const float* lut = lut_buf.data() + offset;
      const uint8_t* code = code_buf.data() + offset;
      const double ref = ReferencePqAdc(lut, code, m);
      const double tol = 1e-5 * std::max(1.0, static_cast<double>(m));
      float first = 0.f;
      bool have_first = false;
      for (const KernelKind kind : SupportedKinds()) {
        SCOPED_TRACE(std::string(simd::KernelName(kind)) +
                     " m=" + std::to_string(m) +
                     " offset=" + std::to_string(offset));
        ASSERT_TRUE(simd::ForceKernel(kind).ok());
        const float got = simd::Active().pq_adc(lut, code, m);
        EXPECT_NEAR(got, ref, tol * std::max(1.0, std::abs(ref)));
        if (!have_first) {
          first = got;
          have_first = true;
        } else {
          EXPECT_EQ(got, first);  // bit-identical across tiers
        }
      }
    }
  }
}

// pq_adc_batch must agree bit-for-bit with n calls of the same tier's
// pq_adc, for both the id-list and the contiguous (ids == nullptr) forms
// — including odd n (the AVX-512 batch processes rows in pairs).
TEST_F(SimdKernelTest, PqAdcBatchMatchesOneToOnePerTier) {
  const size_t ms[] = {1, 3, 8, 16, 17, 64};
  const size_t n = 57;  // odd: exercises the 2-row batch's tail
  Rng rng(424242);
  for (const size_t m : ms) {
    std::vector<float> lut(m * 256);
    std::vector<uint8_t> codes(n * m);
    for (auto& v : lut) v = static_cast<float>(rng.Gaussian());
    for (auto& v : codes) v = static_cast<uint8_t>(rng.UniformInt(256));
    std::vector<uint32_t> ids(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<uint32_t>((i * 13) % n);  // shuffled, in-range
    }
    for (const KernelKind kind : SupportedKinds()) {
      SCOPED_TRACE(std::string(simd::KernelName(kind)) +
                   " m=" + std::to_string(m));
      ASSERT_TRUE(simd::ForceKernel(kind).ok());
      const auto& kernels = simd::Active();
      std::vector<float> out(n, -1.f);
      kernels.pq_adc_batch(lut.data(), codes.data(), m, ids.data(), n,
                           out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i],
                  kernels.pq_adc(lut.data(), codes.data() + ids[i] * m, m))
            << "id " << ids[i];
      }
      kernels.pq_adc_batch(lut.data(), codes.data(), m, nullptr, n,
                           out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i],
                  kernels.pq_adc(lut.data(), codes.data() + i * m, m))
            << "row " << i;
      }
    }
  }
}

TEST_F(SimdKernelTest, ForceKernelRejectsUnavailableTiers) {
  EXPECT_TRUE(simd::ForceKernel(KernelKind::kScalar).ok());
  if (!simd::Supported(KernelKind::kAvx512)) {
    EXPECT_FALSE(simd::ForceKernel(KernelKind::kAvx512).ok());
  }
  simd::UseAutoKernel();
  EXPECT_TRUE(simd::Supported(simd::Active().kind));
}

// VerifyCandidates must honor per-candidate early exits: the budget stops
// the pass at exactly the budgeted push even mid-chunk.
TEST_F(SimdKernelTest, VerifyCandidatesHonorsBudgetMidChunk) {
  const size_t n = 100, dim = 8;
  FloatMatrix data(n, dim);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      data.at(i, j) = static_cast<float>(rng.Gaussian());
    }
  }
  TopKHeap heap(5);
  QueryStats stats;
  VerifyOptions options;
  options.budget = 37;  // inside the second chunk
  const VerifyResult result = VerifyCandidates(
      data.row(0), data, /*ids=*/nullptr, n, options, &heap, &stats);
  EXPECT_TRUE(result.exited);
  EXPECT_EQ(result.pushed, 37u);
  EXPECT_EQ(stats.candidates_verified, 37u);
}

// Cross-kernel equivalence: each of the 12 registered methods must return
// the same neighbor ids (and distances up to float accumulation error)
// regardless of the dispatch tier. Build and query are repeated per tier so
// index construction (r0 estimation etc.) also runs through the kernels.
TEST_F(SimdKernelTest, AllMethodsReturnSameResultsAcrossTiers) {
  const FloatMatrix data =
      GenerateClustered({.n = 1200, .dim = 32, .clusters = 10, .seed = 77});
  FloatMatrix queries;
  for (size_t i = 0; i < 6; ++i) {
    queries.AppendRow(data.row(i * 199), data.cols());
  }
  const size_t k = 8;
  for (const std::string& name : IndexFactory::ListMethods()) {
    SCOPED_TRACE(name);
    std::vector<std::vector<std::vector<Neighbor>>> per_kind;
    for (const KernelKind kind : SupportedKinds()) {
      ASSERT_TRUE(simd::ForceKernel(kind).ok());
      auto made = IndexFactory::Make(name);
      ASSERT_TRUE(made.ok()) << made.status().ToString();
      ASSERT_TRUE(made.value()->Build(&data).ok());
      std::vector<std::vector<Neighbor>> results;
      for (size_t q = 0; q < queries.rows(); ++q) {
        results.push_back(made.value()->Query(queries.row(q), k));
      }
      per_kind.push_back(std::move(results));
    }
    for (size_t v = 1; v < per_kind.size(); ++v) {
      SCOPED_TRACE(std::string("tier ") +
                   simd::KernelName(SupportedKinds()[v]));
      for (size_t q = 0; q < queries.rows(); ++q) {
        ASSERT_EQ(per_kind[v][q].size(), per_kind[0][q].size())
            << "query " << q;
        for (size_t r = 0; r < per_kind[v][q].size(); ++r) {
          EXPECT_EQ(per_kind[v][q][r].id, per_kind[0][q][r].id)
              << "query " << q << " rank " << r;
          EXPECT_NEAR(per_kind[v][q][r].dist, per_kind[0][q][r].dist, 1e-3)
              << "query " << q << " rank " << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dblsh
