// Tests for the dynamic-update subsystem: FloatMatrix tombstones and
// free-list recycling, the tombstone filter in the shared verification
// path (erased ids never surface from ANY method), native Insert/Erase on
// the tree-backed methods, persistence of mutations, and a randomized
// interleaved mutation/query property test against the exact scan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "baselines/linear_scan.h"
#include "core/db_lsh.h"
#include "core/index_factory.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "util/random.h"

namespace dblsh {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

FloatMatrix EasyData(size_t n = 1200, size_t dim = 16, uint64_t seed = 417) {
  return GenerateClustered(
      {.n = n, .dim = dim, .clusters = 10, .seed = seed});
}

// A vector far outside the clustered cloud (centers are in
// [0, 100)^dim), so it is unambiguously the 1-NN of a query at its spot.
std::vector<float> OutlierVector(size_t dim, float value = 500.f) {
  return std::vector<float>(dim, value);
}

bool ContainsId(const std::vector<Neighbor>& result, uint32_t id) {
  return std::any_of(result.begin(), result.end(),
                     [id](const Neighbor& n) { return n.id == id; });
}

// Small-parameter specs for all 12 registered methods, sized so each
// builds in milliseconds on the test datasets.
std::vector<std::string> AllMethodSpecs() {
  return {"DB-LSH,t=16", "FB-LSH,t=16", "E2LSH",      "LCCS-LSH",
          "LSB-Forest",  "LinearScan",  "MultiProbe", "PM-LSH",
          "QALSH,m=20",  "R2LSH,m=20",  "SRS",        "VHP,m=20"};
}

// ------------------------------------------------------- FloatMatrix ------

TEST(FloatMatrixUpdateTest, EraseRowTombstonesWithoutMovingBytes) {
  FloatMatrix m = EasyData(50);
  const float before = m.at(7, 3);
  ASSERT_TRUE(m.EraseRow(7).ok());
  EXPECT_TRUE(m.IsDeleted(7));
  EXPECT_TRUE(m.has_tombstones());
  EXPECT_EQ(m.live_rows(), 49u);
  EXPECT_EQ(m.rows(), 50u);                    // physical shape unchanged
  EXPECT_FLOAT_EQ(m.at(7, 3), before);         // bytes intact
  EXPECT_EQ(m.EraseRow(7).code(), StatusCode::kNotFound);    // double erase
  EXPECT_EQ(m.EraseRow(99).code(), StatusCode::kInvalidArgument);
}

TEST(FloatMatrixUpdateTest, InsertRowRecyclesMostRecentSlotThenAppends) {
  FloatMatrix m = EasyData(20, 4);
  ASSERT_TRUE(m.EraseRow(3).ok());
  ASSERT_TRUE(m.EraseRow(11).ok());
  const std::vector<float> v = OutlierVector(4);
  EXPECT_EQ(m.InsertRow(v.data(), 4), 11u);    // LIFO recycling
  EXPECT_FALSE(m.IsDeleted(11));
  EXPECT_FLOAT_EQ(m.at(11, 0), 500.f);
  EXPECT_EQ(m.InsertRow(v.data(), 4), 3u);
  EXPECT_EQ(m.InsertRow(v.data(), 4), 20u);    // free-list empty: append
  EXPECT_EQ(m.rows(), 21u);
  EXPECT_EQ(m.live_rows(), 21u);
  EXPECT_FALSE(m.has_tombstones());
}

TEST(FloatMatrixUpdateTest, PrefixCarriesTombstonesOfKeptRows) {
  FloatMatrix m = EasyData(30, 4);
  ASSERT_TRUE(m.EraseRow(2).ok());
  ASSERT_TRUE(m.EraseRow(25).ok());
  const FloatMatrix p = m.Prefix(10);
  EXPECT_TRUE(p.IsDeleted(2));
  EXPECT_EQ(p.live_rows(), 9u);
}

// ----------------------------------------- Erase across all 12 methods ----

TEST(TombstoneTest, ErasedIdsNeverReturnedByAnyMethod) {
  FloatMatrix data = EasyData(900, 16);
  // Erase a spread of ids, including ones certain to be near the probes.
  const std::vector<uint32_t> victims = {0, 17, 443, 560, 899};
  for (const std::string& spec : AllMethodSpecs()) {
    FloatMatrix local = data;  // fresh tombstone state per method
    auto made = IndexFactory::Make(spec);
    ASSERT_TRUE(made.ok()) << spec << ": " << made.status().ToString();
    std::unique_ptr<AnnIndex> index = std::move(made).value();
    ASSERT_TRUE(index->Build(&local).ok()) << spec;
    for (uint32_t id : victims) {
      ASSERT_TRUE(local.EraseRow(id).ok());
      if (index->SupportsUpdates()) {
        EXPECT_TRUE(index->Erase(id).ok()) << spec << " id " << id;
      }
    }
    // Query AT each erased point: its slot is the exact NN, so any leak
    // through the tombstone filter would surface immediately.
    for (uint32_t id : victims) {
      const auto result = index->Query(local.row(id), 10);
      for (uint32_t v : victims) {
        EXPECT_FALSE(ContainsId(result, v))
            << spec << " returned erased id " << v;
      }
    }
  }
}

TEST(TombstoneTest, NonUpdatableMethodsReportUnimplemented) {
  FloatMatrix data = EasyData(300, 16);
  for (const std::string& spec :
       {std::string("E2LSH"), std::string("PM-LSH"), std::string("LCCS-LSH"),
        std::string("LSB-Forest"), std::string("MultiProbe")}) {
    auto made = IndexFactory::Make(spec);
    ASSERT_TRUE(made.ok());
    std::unique_ptr<AnnIndex> index = std::move(made).value();
    ASSERT_TRUE(index->Build(&data).ok());
    EXPECT_FALSE(index->SupportsUpdates()) << spec;
    EXPECT_EQ(index->Insert(0).code(), StatusCode::kUnimplemented) << spec;
    EXPECT_EQ(index->Erase(0).code(), StatusCode::kUnimplemented) << spec;
  }
}

// ------------------------------------------------------- Insert paths -----

TEST(InsertTest, InsertThenFindOnEveryUpdatableMethod) {
  for (const std::string& spec : AllMethodSpecs()) {
    auto made = IndexFactory::Make(spec);
    ASSERT_TRUE(made.ok());
    std::unique_ptr<AnnIndex> index = std::move(made).value();
    FloatMatrix data = EasyData(800, 16);
    ASSERT_TRUE(index->Build(&data).ok()) << spec;
    if (!index->SupportsUpdates()) continue;
    const std::vector<float> outlier = OutlierVector(16);
    const uint32_t id = data.InsertRow(outlier.data(), 16);
    ASSERT_TRUE(index->Insert(id).ok()) << spec;
    const auto result = index->Query(outlier.data(), 1);
    ASSERT_FALSE(result.empty()) << spec;
    EXPECT_EQ(result[0].id, id) << spec << " should find the inserted "
                                           "outlier as its own 1-NN";
    EXPECT_FLOAT_EQ(result[0].dist, 0.f) << spec;
  }
}

TEST(InsertTest, EraseThenRecycleSlotServesNewVector) {
  FloatMatrix data = EasyData(700, 16);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  // Erase one point, recycle its slot for an outlier, and make sure the
  // recycled id answers for the NEW vector only.
  const uint32_t victim = 123;
  ASSERT_TRUE(data.EraseRow(victim).ok());
  ASSERT_TRUE(index.Erase(victim).ok());
  const std::vector<float> outlier = OutlierVector(16);
  const uint32_t id = data.InsertRow(outlier.data(), 16);
  ASSERT_EQ(id, victim);  // slot recycled
  ASSERT_TRUE(index.Insert(id).ok());
  const auto at_outlier = index.Query(outlier.data(), 1);
  ASSERT_FALSE(at_outlier.empty());
  EXPECT_EQ(at_outlier[0].id, id);
  EXPECT_FLOAT_EQ(at_outlier[0].dist, 0.f);
}

TEST(InsertTest, BuildOverTombstonedDataIndexesLiveRowsOnly) {
  // Building over a mutated dataset must leave tombstoned slots out of the
  // structures — otherwise recycling the slot later would strand a stale
  // duplicate entry under the slot's old projection.
  for (const std::string& spec : {std::string("DB-LSH,t=16"),
                                  std::string("QALSH,m=20"),
                                  std::string("R2LSH,m=20"),
                                  std::string("VHP,m=20")}) {
    FloatMatrix data = EasyData(500, 16);
    ASSERT_TRUE(data.EraseRow(7).ok());
    auto made = IndexFactory::Make(spec);
    ASSERT_TRUE(made.ok());
    std::unique_ptr<AnnIndex> index = std::move(made).value();
    ASSERT_TRUE(index->Build(&data).ok()) << spec;
    // The tombstoned slot is not structurally indexed.
    EXPECT_EQ(index->Erase(7).code(), StatusCode::kNotFound) << spec;
    // Recycling it serves the new vector cleanly.
    const std::vector<float> outlier = OutlierVector(16);
    const uint32_t id = data.InsertRow(outlier.data(), 16);
    ASSERT_EQ(id, 7u);
    ASSERT_TRUE(index->Insert(id).ok()) << spec;
    const auto got = index->Query(outlier.data(), 1);
    ASSERT_FALSE(got.empty()) << spec;
    EXPECT_EQ(got[0].id, id) << spec;
    EXPECT_FLOAT_EQ(got[0].dist, 0.f) << spec;
    // And erasing it once removes it everywhere; a second erase is NotFound.
    ASSERT_TRUE(data.EraseRow(id).ok());
    EXPECT_TRUE(index->Erase(id).ok()) << spec;
    EXPECT_EQ(index->Erase(id).code(), StatusCode::kNotFound) << spec;
  }
}

TEST(InsertTest, ProtocolViolationsAreRejected) {
  FloatMatrix data = EasyData(300, 16);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  // Not a live row yet.
  EXPECT_EQ(index.Insert(300).code(), StatusCode::kInvalidArgument);
  // Unbuilt index.
  DbLsh unbuilt;
  EXPECT_EQ(unbuilt.Insert(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(unbuilt.Erase(0).code(), StatusCode::kInvalidArgument);
  // Erase of an id the trees do not hold.
  EXPECT_EQ(index.Erase(9999).code(), StatusCode::kNotFound);
  // kd-tree backend is static.
  DbLshParams kd_params;
  kd_params.backend = IndexBackend::kKdTree;
  DbLsh kd(kd_params);
  ASSERT_TRUE(kd.Build(&data).ok());
  EXPECT_FALSE(kd.SupportsUpdates());
  EXPECT_EQ(kd.Insert(0).code(), StatusCode::kUnimplemented);
  EXPECT_EQ(kd.Erase(0).code(), StatusCode::kUnimplemented);
}

// ------------------------------------------------------- Persistence ------

TEST(UpdatePersistenceTest, SaveLoadRoundTripsMutations) {
  FloatMatrix data = EasyData(600, 16);
  DbLsh original;
  ASSERT_TRUE(original.Build(&data).ok());

  // Mutate: erase a few, insert an outlier (recycles one slot) and append.
  for (uint32_t id : {5u, 50u, 500u}) {
    ASSERT_TRUE(data.EraseRow(id).ok());
    ASSERT_TRUE(original.Erase(id).ok());
  }
  const std::vector<float> outlier = OutlierVector(16);
  const uint32_t recycled = data.InsertRow(outlier.data(), 16);
  EXPECT_EQ(recycled, 500u);  // LIFO: most recent tombstone first
  ASSERT_TRUE(original.Insert(recycled).ok());

  const std::string path = TempPath("dblsh_update_roundtrip.idx");
  ASSERT_TRUE(original.Save(path).ok());

  // Reload against a copy WITHOUT tombstone metadata (what a dataset
  // re-read from an fvecs file looks like): Load must restore it.
  FloatMatrix reread(data.rows(), data.cols(), data.data());
  auto loaded = DbLsh::Load(path, &reread);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(reread.live_rows(), data.live_rows());
  EXPECT_TRUE(reread.IsDeleted(5));
  EXPECT_TRUE(reread.IsDeleted(50));
  EXPECT_FALSE(reread.IsDeleted(500));  // recycled slot is live again

  // The loaded index bulk-loads the live set, so tree shapes (and thus
  // candidate order under a budget) can differ from the incrementally
  // mutated original — results are compared on order-insensitive
  // guarantees rather than bit-identity. Index content must match:
  EXPECT_EQ(loaded.value().IndexEntries(), original.IndexEntries());
  // Both serve the post-mutation reality: the inserted vector is its own
  // exact 1-NN, erased ids never appear.
  {
    const auto got = loaded.value().Query(reread.row(recycled), 1);
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got[0].id, recycled);
    EXPECT_FLOAT_EQ(got[0].dist, 0.f);
  }
  for (uint32_t q : {2u, 300u, 599u, recycled}) {
    const auto b = loaded.value().Query(reread.row(q), 10);
    EXPECT_FALSE(b.empty()) << "query " << q;
    EXPECT_FALSE(ContainsId(b, 5));
    EXPECT_FALSE(ContainsId(b, 50));
  }
  std::remove(path.c_str());
}

TEST(UpdatePersistenceTest, LoadRejectsTamperedDataByChecksum) {
  FloatMatrix data = EasyData(400, 16);
  DbLsh index;
  ASSERT_TRUE(index.Build(&data).ok());
  const std::string path = TempPath("dblsh_checksum.idx");
  ASSERT_TRUE(index.Save(path).ok());

  // Same shape, one float flipped: rows/dim checks pass, checksum must not.
  FloatMatrix tampered = data;
  tampered.at(123, 4) += 1.0f;
  auto r = DbLsh::Load(path, &tampered);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);

  // The untampered dataset still loads.
  auto ok = DbLsh::Load(path, &data);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  std::remove(path.c_str());
}

// ------------------------------------- Interleaved property test ----------

// Randomized interleaving of inserts, erases and queries, checked against
// a brute-force mirror of the live set. LinearScan (exact) must match the
// mirror exactly; DB-LSH (approximate) must only ever return live ids.
TEST(InterleavedUpdateTest, RandomizedMutationsAgreeWithBruteForce) {
  const size_t dim = 12;
  FloatMatrix data = EasyData(500, dim, 90210);
  const FloatMatrix pool = EasyData(400, dim, 90211);

  LinearScan scan_index;
  DbLsh dblsh_index;
  ASSERT_TRUE(scan_index.Build(&data).ok());
  ASSERT_TRUE(dblsh_index.Build(&data).ok());

  Rng rng(1234);
  size_t next_pool = 0;
  for (size_t step = 0; step < 600; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.15 && next_pool < pool.rows()) {
      const uint32_t id = data.InsertRow(pool.row(next_pool++), dim);
      ASSERT_TRUE(scan_index.Insert(id).ok());
      ASSERT_TRUE(dblsh_index.Insert(id).ok());
    } else if (dice < 0.30 && data.live_rows() > 50) {
      uint32_t id;
      do {
        id = static_cast<uint32_t>(rng.UniformInt(data.rows()));
      } while (data.IsDeleted(id));
      ASSERT_TRUE(data.EraseRow(id).ok());
      ASSERT_TRUE(scan_index.Erase(id).ok());
      ASSERT_TRUE(dblsh_index.Erase(id).ok());
    } else {
      // Probe near a random live point.
      uint32_t near;
      do {
        near = static_cast<uint32_t>(rng.UniformInt(data.rows()));
      } while (data.IsDeleted(near));
      std::vector<float> q(data.row(near), data.row(near) + dim);
      q[0] += 0.25f;

      // Brute-force 5-NN over the live rows only.
      std::vector<Neighbor> expected;
      for (uint32_t id = 0; id < data.rows(); ++id) {
        if (data.IsDeleted(id)) continue;
        double d2 = 0.0;
        for (size_t j = 0; j < dim; ++j) {
          const double diff = double(q[j]) - double(data.at(id, j));
          d2 += diff * diff;
        }
        expected.push_back({static_cast<float>(std::sqrt(d2)), id});
      }
      const size_t k = std::min<size_t>(5, expected.size());
      std::partial_sort(expected.begin(), expected.begin() + k,
                        expected.end(), [](const Neighbor& a,
                                           const Neighbor& b) {
                          if (a.dist != b.dist) return a.dist < b.dist;
                          return a.id < b.id;
                        });

      const auto exact = scan_index.Query(q.data(), 5);
      ASSERT_EQ(exact.size(), k);
      for (size_t i = 0; i < k; ++i) {
        // The scan computes float distances through the active SIMD tier
        // while the mirror uses doubles, so near-equal neighbors may swap
        // ranks; accept either the same id or a distance tie.
        EXPECT_TRUE(exact[i].id == expected[i].id ||
                    std::fabs(exact[i].dist - expected[i].dist) <=
                        1e-4f * (1.0f + expected[i].dist))
            << "step " << step << " rank " << i << ": got id "
            << exact[i].id << " dist " << exact[i].dist << ", expected id "
            << expected[i].id << " dist " << expected[i].dist;
        EXPECT_FALSE(data.IsDeleted(exact[i].id));
      }

      const auto approx = dblsh_index.Query(q.data(), 5);
      for (const Neighbor& nb : approx) {
        EXPECT_FALSE(data.IsDeleted(nb.id))
            << "DB-LSH returned erased id " << nb.id << " at step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace dblsh
