#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "dataset/synthetic.h"
#include "rtree/rect.h"
#include "rtree/rtree.h"
#include "util/random.h"

namespace dblsh::rtree {
namespace {

// Brute-force reference for window queries.
std::vector<uint32_t> BruteWindow(const FloatMatrix& points,
                                  const Rect& window) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < points.rows(); ++i) {
    if (window.ContainsPoint(points.row(i))) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

// ------------------------------------------------------------------ Rect --

TEST(RectTest, WindowConstruction) {
  const float center[] = {1.f, 2.f};
  const Rect r = Rect::Window(center, 2, 4.0);
  EXPECT_FLOAT_EQ(r.lo(0), -1.f);
  EXPECT_FLOAT_EQ(r.hi(0), 3.f);
  EXPECT_FLOAT_EQ(r.lo(1), 0.f);
  EXPECT_FLOAT_EQ(r.hi(1), 4.f);
}

TEST(RectTest, AreaMarginOverlap) {
  const float a_pt[] = {0.f, 0.f};
  Rect a = Rect::Window(a_pt, 2, 2.0);  // [-1,1]^2
  EXPECT_DOUBLE_EQ(a.Area(), 4.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 4.0);
  const float b_pt[] = {1.f, 1.f};
  Rect b = Rect::Window(b_pt, 2, 2.0);  // [0,2]^2
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 9.0 - 4.0);
}

TEST(RectTest, EmptyRectBehaviour) {
  Rect empty(3);
  const float p[] = {0.f, 0.f, 0.f};
  const Rect w = Rect::Window(p, 3, 100.0);
  EXPECT_FALSE(w.Intersects(empty));
  EXPECT_FALSE(empty.ContainsPoint(p));
  empty.ExtendPoint(p);
  EXPECT_TRUE(empty.ContainsPoint(p));
}

TEST(RectTest, ContainsIsInclusive) {
  const float c[] = {0.f};
  const Rect r = Rect::Window(c, 1, 2.0);  // [-1, 1]
  const float edge[] = {1.f};
  EXPECT_TRUE(r.ContainsPoint(edge));
  const float outside[] = {1.0001f};
  EXPECT_FALSE(r.ContainsPoint(outside));
}

// -------------------------------------------------------- Build variants --

class RTreeBuildTest : public ::testing::TestWithParam<bool> {};

TEST_P(RTreeBuildTest, WindowQueryMatchesBruteForce) {
  const bool bulk = GetParam();
  const FloatMatrix points = GenerateUniform(3000, 3, 100.0, 17);
  RStarTree tree(&points);
  if (bulk) {
    ASSERT_TRUE(tree.BulkLoadAll().ok());
  } else {
    for (uint32_t i = 0; i < points.rows(); ++i) {
      ASSERT_TRUE(tree.Insert(i).ok());
    }
  }
  EXPECT_EQ(tree.size(), points.rows());
  EXPECT_EQ(tree.CheckInvariants(), 0u);

  Rng rng(4);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<float> center(3);
    for (auto& v : center) v = static_cast<float>(rng.Uniform(0, 100));
    const double width = rng.Uniform(1.0, 60.0);
    const Rect window = Rect::Window(center.data(), 3, width);
    std::vector<uint32_t> got;
    tree.WindowQuery(window, &got);
    std::vector<uint32_t> expected = BruteWindow(points, window);
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST_P(RTreeBuildTest, CursorEnumeratesExactlyTheWindow) {
  const bool bulk = GetParam();
  const FloatMatrix points = GenerateClustered(
      {.n = 2000, .dim = 4, .clusters = 8, .seed = 5});
  RStarTree tree(&points);
  if (bulk) {
    ASSERT_TRUE(tree.BulkLoadAll().ok());
  } else {
    for (uint32_t i = 0; i < points.rows(); ++i) {
      ASSERT_TRUE(tree.Insert(i).ok());
    }
  }
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> center(4);
    for (auto& v : center) v = static_cast<float>(rng.Uniform(0, 100));
    const Rect window = Rect::Window(center.data(), 4,
                                     rng.Uniform(5.0, 80.0));
    std::set<uint32_t> got;
    RStarTree::WindowCursor cursor(&tree, window);
    uint32_t id;
    while (cursor.Next(&id)) {
      EXPECT_TRUE(got.insert(id).second) << "cursor yielded duplicate";
    }
    const auto expected = BruteWindow(points, window);
    EXPECT_EQ(got.size(), expected.size());
    for (uint32_t e : expected) EXPECT_TRUE(got.count(e));
  }
}

INSTANTIATE_TEST_SUITE_P(BulkAndInsert, RTreeBuildTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "BulkLoad" : "Insert";
                         });

// -------------------------------------------------------------- Specific --

TEST(RTreeTest, EmptyTreeQueriesNothing) {
  FloatMatrix points(0, 2);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  const float c[] = {0.f, 0.f};
  std::vector<uint32_t> out;
  tree.WindowQuery(Rect::Window(c, 2, 1000.0), &out);
  EXPECT_TRUE(out.empty());
  RStarTree::WindowCursor cursor(&tree, Rect::Window(c, 2, 1000.0));
  uint32_t id;
  EXPECT_FALSE(cursor.Next(&id));
}

TEST(RTreeTest, SinglePoint) {
  FloatMatrix points(1, 2);
  points.at(0, 0) = 5.f;
  points.at(0, 1) = 5.f;
  RStarTree tree(&points);
  ASSERT_TRUE(tree.Insert(0).ok());
  const float near[] = {5.f, 5.f};
  std::vector<uint32_t> out;
  tree.WindowQuery(Rect::Window(near, 2, 1.0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(RTreeTest, RejectsOutOfRangeIds) {
  FloatMatrix points(10, 2);
  RStarTree tree(&points);
  EXPECT_FALSE(tree.Insert(10).ok());
  EXPECT_FALSE(tree.BulkLoad({0, 1, 99}).ok());
}

TEST(RTreeTest, DuplicatePointsAllRetrieved) {
  FloatMatrix points(64, 2);  // all at the origin
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  const float c[] = {0.f, 0.f};
  std::vector<uint32_t> out;
  tree.WindowQuery(Rect::Window(c, 2, 0.5), &out);
  EXPECT_EQ(out.size(), 64u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
}

TEST(RTreeTest, BulkLoadSubsetOnly) {
  const FloatMatrix points = GenerateUniform(100, 2, 10.0, 8);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoad({1, 3, 5, 7, 9}).ok());
  EXPECT_EQ(tree.size(), 5u);
  const float c[] = {5.f, 5.f};
  std::vector<uint32_t> out;
  tree.WindowQuery(Rect::Window(c, 2, 100.0), &out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(RTreeTest, StatsReflectStructure) {
  const FloatMatrix points = GenerateUniform(5000, 2, 100.0, 10);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  const RTreeStats stats = tree.ComputeStats();
  EXPECT_EQ(stats.entry_count, 5000u);
  EXPECT_GT(stats.height, 1u);
  EXPECT_GT(stats.leaf_count, 5000u / 32);
  EXPECT_GE(stats.node_count, stats.leaf_count);
}

TEST(RTreeTest, InsertGrowsIncrementally) {
  const FloatMatrix points = GenerateUniform(500, 2, 100.0, 12);
  RStarTree tree(&points);
  for (uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(i).ok());
    if (i % 100 == 99) {
      EXPECT_EQ(tree.CheckInvariants(), 0u) << "at " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
}

TEST(RTreeTest, RemoveDeletesAndKeepsInvariants) {
  const FloatMatrix points = GenerateUniform(800, 2, 100.0, 13);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  Rng rng(14);
  std::set<uint32_t> removed;
  for (int i = 0; i < 400; ++i) {
    uint32_t id;
    do {
      id = static_cast<uint32_t>(rng.UniformInt(800));
    } while (removed.count(id));
    ASSERT_TRUE(tree.Remove(id).ok()) << "id " << id;
    removed.insert(id);
  }
  EXPECT_EQ(tree.size(), 400u);
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  // Removed points are gone; kept points remain findable.
  const float c[] = {50.f, 50.f};
  std::vector<uint32_t> out;
  tree.WindowQuery(Rect::Window(c, 2, 300.0), &out);
  EXPECT_EQ(out.size(), 400u);
  for (uint32_t id : out) EXPECT_FALSE(removed.count(id));
}

TEST(RTreeTest, RemoveMissingIsNotFound) {
  const FloatMatrix points = GenerateUniform(50, 2, 10.0, 15);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoad({0, 1, 2}).ok());
  EXPECT_EQ(tree.Remove(40).code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree.Remove(1).ok());
  EXPECT_EQ(tree.Remove(1).code(), StatusCode::kNotFound);
}

TEST(RTreeTest, CursorEarlyStopIsCheap) {
  // The cursor contract: callers can stop consuming at any point.
  const FloatMatrix points = GenerateUniform(10000, 2, 100.0, 16);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  const float c[] = {50.f, 50.f};
  RStarTree::WindowCursor cursor(&tree, Rect::Window(c, 2, 200.0));
  uint32_t id;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cursor.Next(&id));
  // Destroying the cursor early must be safe (checked by ASAN-free exit).
}

TEST(RTreeTest, HigherDimensionalWindows) {
  const FloatMatrix points = GenerateClustered(
      {.n = 1500, .dim = 10, .clusters = 10, .seed = 18});
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t anchor = static_cast<uint32_t>(rng.UniformInt(1500));
    const Rect window = Rect::Window(points.row(anchor), 10,
                                     rng.Uniform(1.0, 20.0));
    std::vector<uint32_t> got;
    tree.WindowQuery(window, &got);
    std::vector<uint32_t> expected = BruteWindow(points, window);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
    // The anchor itself is always inside its own window.
    EXPECT_TRUE(std::binary_search(got.begin(), got.end(), anchor));
  }
}

TEST(RTreeTest, MoveTransfersOwnership) {
  const FloatMatrix points = GenerateUniform(200, 2, 10.0, 20);
  RStarTree tree(&points);
  ASSERT_TRUE(tree.BulkLoadAll().ok());
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 200u);
  EXPECT_EQ(moved.CheckInvariants(), 0u);
}

TEST(RTreeTest, SmallFanoutStressesSplits) {
  RTreeOptions options;
  options.max_entries = 4;
  const FloatMatrix points = GenerateUniform(600, 2, 50.0, 21);
  RStarTree tree(&points, options);
  for (uint32_t i = 0; i < 600; ++i) ASSERT_TRUE(tree.Insert(i).ok());
  EXPECT_EQ(tree.CheckInvariants(), 0u);
  const float c[] = {25.f, 25.f};
  std::vector<uint32_t> out;
  tree.WindowQuery(Rect::Window(c, 2, 200.0), &out);
  EXPECT_EQ(out.size(), 600u);
}

}  // namespace
}  // namespace dblsh::rtree
