#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "durability/fail_point.h"
#include "durability/format.h"

namespace dblsh::durability {
namespace {

constexpr char kSnapMagic[8] = {'D', 'B', 'L', 'S', 'H', 'S', 'N', 'P'};
constexpr char kManifestMagic[8] = {'D', 'B', 'L', 'S', 'H', 'M', 'A', 'N'};
constexpr uint32_t kSnapVersion = 1;
constexpr uint32_t kManifestVersion = 1;

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Writes `bytes` to `path` via `.tmp` + rename + fsync. When the armed
/// fail point fires, only the armed prefix reaches the tmp file and the
/// rename never happens — the published file (if any) stays intact.
Status AtomicWrite(const std::string& path, const std::vector<uint8_t>& bytes,
                   const char* fail_point) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(Errno("snapshot: open", tmp));

  size_t keep = 0;
  const bool crash = FailPoints::Instance().Hit(fail_point, &keep);
  const size_t to_write = crash ? std::min(keep, bytes.size()) : bytes.size();
  size_t written = 0;
  while (written < to_write) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(Errno("snapshot: write", tmp));
    }
    written += static_cast<size_t>(n);
  }
  if (crash) {
    ::fsync(fd);
    ::close(fd);
    return Status::IoError("snapshot: injected crash writing " + tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError(Errno("snapshot: fsync", tmp));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError(Errno("snapshot: rename", path));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("durability: no file at " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("durability: read failed " + path);
  return bytes;
}

}  // namespace

std::string SnapshotPath(const std::string& dir, size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".snap";
}

std::string WalPath(const std::string& dir, size_t shard, uint64_t seq) {
  return dir + "/shard-" + std::to_string(shard) + ".wal." +
         std::to_string(seq);
}

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("durability: cannot create directory " + dir +
                           ": " + ec.message());
  }
  return Status::OK();
}

std::vector<uint64_t> ListWalSegments(const std::string& dir, size_t shard) {
  std::vector<uint64_t> seqs;
  const std::string prefix = "shard-" + std::to_string(shard) + ".wal.";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string suffix = name.substr(prefix.size());
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    seqs.push_back(std::strtoull(suffix.c_str(), nullptr, 10));
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

Status SaveShardSnapshot(const std::string& path, const ShardSnapshot& snap) {
  std::vector<uint8_t> body;
  const size_t cells = static_cast<size_t>(snap.rows) * snap.dim;
  if (snap.storage == kSnapshotSq8) {
    if (snap.scales.size() != snap.dim || snap.offsets.size() != snap.dim ||
        snap.codes.size() != cells) {
      return Status::InvalidArgument("snapshot: sq8 shape mismatch");
    }
    AppendBytes(&body, snap.scales.data(), snap.dim * sizeof(float));
    AppendBytes(&body, snap.offsets.data(), snap.dim * sizeof(float));
    AppendBytes(&body, snap.codes.data(), cells);
  } else if (snap.storage == kSnapshotPq) {
    // PQ body: [u32 m][256*dim codebook floats][rows*m codes]. The m
    // lives in the *body* (not the header) so the fixed header layout —
    // and kSnapVersion — stay unchanged for the other kinds.
    if (snap.pq_m == 0 || snap.pq_m > snap.dim ||
        snap.codebooks.size() != 256 * static_cast<size_t>(snap.dim) ||
        snap.codes.size() != static_cast<size_t>(snap.rows) * snap.pq_m) {
      return Status::InvalidArgument("snapshot: pq shape mismatch");
    }
    AppendPod(&body, snap.pq_m);
    AppendBytes(&body, snap.codebooks.data(),
                snap.codebooks.size() * sizeof(float));
    AppendBytes(&body, snap.codes.data(), snap.codes.size());
  } else {
    if (snap.fp32.size() != cells) {
      return Status::InvalidArgument("snapshot: fp32 shape mismatch");
    }
    AppendBytes(&body, snap.fp32.data(), cells * sizeof(float));
  }
  AppendBytes(&body, snap.free_slots.data(),
              snap.free_slots.size() * sizeof(uint32_t));

  std::vector<uint8_t> out;
  out.reserve(64 + body.size());
  AppendBytes(&out, kSnapMagic, sizeof(kSnapMagic));
  AppendPod(&out, kSnapVersion);
  AppendPod(&out, snap.storage);
  AppendPod(&out, snap.rows);
  AppendPod(&out, snap.dim);
  AppendPod(&out, snap.lsn);
  AppendPod(&out, static_cast<uint8_t>(snap.trained ? 1 : 0));
  AppendPod(&out, static_cast<uint64_t>(snap.free_slots.size()));
  AppendPod(&out, Fnv1a64(body.data(), body.size()));
  AppendBytes(&out, body.data(), body.size());
  return AtomicWrite(path, out, kFailSnapshotWrite);
}

Result<ShardSnapshot> LoadShardSnapshot(const std::string& path) {
  auto bytes_or = ReadFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t> bytes = std::move(bytes_or).value();

  PodReader reader(bytes.data(), bytes.size());
  char magic[8];
  uint32_t version = 0;
  ShardSnapshot snap;
  uint8_t trained = 0;
  uint64_t nfree = 0;
  uint64_t body_sum = 0;
  if (!reader.ReadBytes(magic, sizeof(magic)) || !reader.Read(&version) ||
      !reader.Read(&snap.storage) || !reader.Read(&snap.rows) ||
      !reader.Read(&snap.dim) || !reader.Read(&snap.lsn) ||
      !reader.Read(&trained) || !reader.Read(&nfree) ||
      !reader.Read(&body_sum)) {
    return Status::Corruption("snapshot: truncated header " + path);
  }
  if (std::memcmp(magic, kSnapMagic, sizeof(magic)) != 0) {
    return Status::Corruption("snapshot: bad magic " + path);
  }
  if (version != kSnapVersion) {
    return Status::Corruption("snapshot: unsupported version " +
                              std::to_string(version) + " " + path);
  }
  if (snap.storage != kSnapshotFp32 && snap.storage != kSnapshotSq8 &&
      snap.storage != kSnapshotPq) {
    return Status::Corruption("snapshot: unknown storage kind " + path);
  }
  snap.trained = trained != 0;

  const uint8_t* body = bytes.data() + reader.position();
  const size_t body_len = reader.remaining();
  if (body_sum != Fnv1a64(body, body_len)) {
    return Status::Corruption("snapshot: body checksum mismatch " + path);
  }

  const size_t cells = static_cast<size_t>(snap.rows) * snap.dim;
  size_t expect = nfree * sizeof(uint32_t);
  if (snap.storage == kSnapshotSq8) {
    expect += 2 * static_cast<size_t>(snap.dim) * sizeof(float) + cells;
  } else if (snap.storage == kSnapshotPq) {
    // The subspace count is the body's first field; read it before the
    // size check since the code block's length depends on it.
    if (!reader.Read(&snap.pq_m)) {
      return Status::Corruption("snapshot: truncated pq body " + path);
    }
    if (snap.pq_m == 0 || snap.pq_m > snap.dim) {
      return Status::Corruption("snapshot: pq m out of range " + path);
    }
    expect += sizeof(uint32_t) +
              256 * static_cast<size_t>(snap.dim) * sizeof(float) +
              static_cast<size_t>(snap.rows) * snap.pq_m;
  } else {
    expect += cells * sizeof(float);
  }
  if (body_len != expect || nfree > snap.rows) {
    return Status::Corruption("snapshot: body size mismatch " + path);
  }

  if (snap.storage == kSnapshotSq8) {
    snap.scales.resize(snap.dim);
    snap.offsets.resize(snap.dim);
    snap.codes.resize(cells);
    reader.ReadBytes(snap.scales.data(), snap.dim * sizeof(float));
    reader.ReadBytes(snap.offsets.data(), snap.dim * sizeof(float));
    reader.ReadBytes(snap.codes.data(), cells);
  } else if (snap.storage == kSnapshotPq) {
    snap.codebooks.resize(256 * static_cast<size_t>(snap.dim));
    snap.codes.resize(static_cast<size_t>(snap.rows) * snap.pq_m);
    reader.ReadBytes(snap.codebooks.data(),
                     snap.codebooks.size() * sizeof(float));
    reader.ReadBytes(snap.codes.data(), snap.codes.size());
  } else {
    snap.fp32.resize(cells);
    reader.ReadBytes(snap.fp32.data(), cells * sizeof(float));
  }
  snap.free_slots.resize(nfree);
  reader.ReadBytes(snap.free_slots.data(), nfree * sizeof(uint32_t));
  for (const uint32_t slot : snap.free_slots) {
    if (slot >= snap.rows) {
      return Status::Corruption("snapshot: free slot out of range " + path);
    }
  }
  return snap;
}

Status SaveManifest(const std::string& dir, const Manifest& manifest) {
  std::vector<uint8_t> out;
  AppendBytes(&out, kManifestMagic, sizeof(kManifestMagic));
  AppendPod(&out, kManifestVersion);
  AppendPod(&out, manifest.shards);
  AppendPod(&out, manifest.dim);
  AppendPod(&out, manifest.storage);
  AppendPod(&out, manifest.wal_seq);
  AppendPod(&out, manifest.checkpoint_lsn);
  AppendPod(&out, Fnv1a64(out.data(), out.size()));
  return AtomicWrite(ManifestPath(dir), out, kFailManifestWrite);
}

Result<Manifest> LoadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  auto bytes_or = ReadFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t> bytes = std::move(bytes_or).value();

  PodReader reader(bytes.data(), bytes.size());
  char magic[8];
  uint32_t version = 0;
  Manifest manifest;
  uint64_t sum = 0;
  if (!reader.ReadBytes(magic, sizeof(magic)) || !reader.Read(&version) ||
      !reader.Read(&manifest.shards) || !reader.Read(&manifest.dim) ||
      !reader.Read(&manifest.storage) || !reader.Read(&manifest.wal_seq) ||
      !reader.Read(&manifest.checkpoint_lsn) || !reader.Read(&sum)) {
    return Status::Corruption("manifest: truncated " + path);
  }
  if (std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
    return Status::Corruption("manifest: bad magic " + path);
  }
  if (sum != Fnv1a64(bytes.data(), bytes.size() - 8) ||
      reader.remaining() != 0) {
    return Status::Corruption("manifest: checksum mismatch " + path);
  }
  if (version != kManifestVersion) {
    return Status::Corruption("manifest: unsupported version " + path);
  }
  if (manifest.shards == 0 || manifest.dim == 0) {
    return Status::Corruption("manifest: invalid geometry " + path);
  }
  return manifest;
}

}  // namespace dblsh::durability
