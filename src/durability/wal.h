#ifndef DBLSH_DURABILITY_WAL_H_
#define DBLSH_DURABILITY_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace dblsh::durability {

/// Mutation kinds a WAL record can carry.
enum class WalOp : uint8_t {
  kUpsert = 1,  ///< body carries the vector payload
  kDelete = 2,  ///< body carries only the global id
  /// Compaction marker: the shard physically dropped its trailing
  /// tombstoned rows. `id` carries the number of rows trimmed; replay
  /// re-runs the (deterministic) trim and verifies the count, so logged
  /// mutations after a compaction land on the same geometry they were
  /// issued against.
  kTrim = 3,
  /// Quantizer retrain marker: the shard's store re-derived its
  /// quantization parameters from the rows live at this point in the log
  /// (sq8 staleness-triggered rebuilds). `id` is 0 and `lsn` repeats the
  /// LSN of the mutation that triggered the retrain; replay re-runs the
  /// (deterministic) retrain so recovered and replicated code bytes match
  /// the primary's exactly.
  kRetrain = 4,
};

/// One decoded WAL record. `lsn` is the Collection's global epoch value at
/// commit time; `id` is the global (pre-sharding) vector id (the trimmed
/// row count for kTrim).
struct WalRecord {
  uint64_t lsn = 0;
  WalOp op = WalOp::kUpsert;
  uint32_t id = 0;
  std::vector<float> vec;  ///< dim floats for kUpsert, otherwise empty
};

/// Result of scanning one WAL segment: the longest valid checksummed
/// prefix, plus a typed verdict on the bytes after it. A clean segment has
/// `tail.ok()`; a torn or corrupted one reports Corruption in `tail` while
/// `records` still holds everything before the damage.
struct WalReplay {
  std::vector<WalRecord> records;
  Status tail = Status::OK();
  size_t bytes_scanned = 0;  ///< valid bytes consumed (header + records)
};

/// Append-only writer for one shard's WAL segment.
///
/// Records are `[u64 checksum | u32 body_len | body]` with the checksum an
/// FNV-1a64 over the body; a reader accepts a record only when the
/// checksum verifies, so any torn write is detected at the exact record it
/// damaged. `sync_every` batches fsyncs (group commit): every Nth append
/// syncs, and callers needing a hard barrier call Sync() directly.
///
/// The writer consults FailPoints (kFailWalAppend, kFailWalSync) before
/// touching the file; when a trigger fires it persists only the armed byte
/// prefix and permanently poisons itself — every later call returns
/// IoError without writing, which is exactly the reachable-state set of a
/// process killed at that boundary.
class WalWriter {
 public:
  /// Creates/truncates the segment at `path` and writes the file header.
  static Result<std::unique_ptr<WalWriter>> Create(
      const std::string& path, uint32_t dim, uint32_t sync_every);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; `vec` must point at `dim` floats for kUpsert and
  /// is ignored for kDelete. Syncs when the group-commit quota is reached.
  Status Append(uint64_t lsn, WalOp op, uint32_t id, const float* vec);

  /// Forces an fsync of all appended records (the durability barrier an
  /// acknowledgement rides on).
  Status Sync();

  /// True once a fail point (or a real IO error) killed this writer; all
  /// further operations fail fast with IoError.
  bool poisoned() const { return poisoned_; }

  const std::string& path() const { return path_; }
  uint64_t appends() const { return appends_; }
  uint64_t syncs() const { return syncs_; }

 private:
  WalWriter(std::string path, int fd, uint32_t dim, uint32_t sync_every);

  /// Writes `data` honoring any armed fail point; on trigger keeps only
  /// the armed prefix, poisons the writer, and returns IoError.
  Status WriteChecked(const uint8_t* data, size_t len);

  std::string path_;
  int fd_ = -1;
  uint32_t dim_ = 0;
  uint32_t sync_every_ = 1;
  uint32_t unsynced_ = 0;
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
  bool poisoned_ = false;
};

/// Scans the segment at `path`, returning every record whose checksum and
/// shape (body length matching the op and `expected_dim`) verify, in file
/// order. Only a missing/unreadable file or a damaged *header* is an
/// error-level failure; damage after the header is reported via
/// `WalReplay::tail` so callers can distinguish "clean end" from "torn
/// tail" without losing the valid prefix.
Result<WalReplay> ReadWal(const std::string& path,
                                uint32_t expected_dim);

/// Incremental tail read: scans records starting at byte `offset` of the
/// segment (an earlier read's `bytes_scanned` — the file header when 0 is
/// passed is validated exactly like ReadWal). The returned
/// `bytes_scanned` is the new absolute cursor. A torn tail is not fatal
/// for a *live* segment: the writer may still be mid-append, so callers
/// poll again from the same cursor and the record becomes visible once
/// its checksum verifies. This is the primitive the replication feed
/// tails segments with.
Result<WalReplay> ReadWalFrom(const std::string& path, uint32_t expected_dim,
                              size_t offset);

}  // namespace dblsh::durability

#endif  // DBLSH_DURABILITY_WAL_H_
