#ifndef DBLSH_DURABILITY_SNAPSHOT_H_
#define DBLSH_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dblsh::durability {

/// Storage kinds a shard snapshot can encode (mirrors
/// dataset::StorageKind without importing the dataset layer).
inline constexpr uint32_t kSnapshotFp32 = 0;
inline constexpr uint32_t kSnapshotSq8 = 1;
inline constexpr uint32_t kSnapshotPq = 2;

/// A point-in-time, self-verifying image of one shard's vector store:
/// the physical row block (including tombstoned rows — the free list is
/// preserved verbatim so recovered id assignment replays identically),
/// plus the LSN the image is consistent up to.
struct ShardSnapshot {
  uint32_t storage = kSnapshotFp32;
  uint64_t rows = 0;
  uint64_t dim = 0;
  uint64_t lsn = 0;      ///< epoch value the snapshot is consistent up to
  bool trained = false;  ///< quantizer trained flag (sq8 / pq)
  uint32_t pq_m = 0;     ///< subspace count (pq only; stored in the body)
  std::vector<uint32_t> free_slots;  ///< tombstoned local ids, LIFO order
  std::vector<float> fp32;           ///< rows*dim floats (fp32 only)
  std::vector<float> scales;         ///< dim floats (sq8 only)
  std::vector<float> offsets;        ///< dim floats (sq8 only)
  std::vector<float> codebooks;      ///< 256*dim floats (pq only)
  std::vector<uint8_t> codes;  ///< rows*dim (sq8) / rows*pq_m (pq) codes
};

/// Checkpoint root record: which WAL generation is live and what the
/// snapshots cover. Written last — its atomic rename is the commit point
/// of a checkpoint.
struct Manifest {
  uint32_t shards = 0;
  uint32_t dim = 0;
  uint32_t storage = kSnapshotFp32;
  uint64_t wal_seq = 0;  ///< live segments are `shard-N.wal.<wal_seq>`
  uint64_t checkpoint_lsn = 0;
};

/// Layout helpers for a durability directory.
std::string SnapshotPath(const std::string& dir, size_t shard);
std::string WalPath(const std::string& dir, size_t shard, uint64_t seq);
std::string ManifestPath(const std::string& dir);

/// Creates `dir` (and parents) if missing.
Status EnsureDir(const std::string& dir);

/// Sequence numbers of every `shard-<shard>.wal.*` file in `dir`,
/// ascending. Missing directory yields an empty list.
std::vector<uint64_t> ListWalSegments(const std::string& dir, size_t shard);

/// Writes `snap` to `path` via tmp-file + atomic rename; the checksummed
/// header/body means a torn write is detected at load, never trusted.
/// Consults FailPoints (kFailSnapshotWrite).
Status SaveShardSnapshot(const std::string& path, const ShardSnapshot& snap);

/// Loads and verifies a snapshot. NotFound when the file is absent,
/// Corruption when any checksum or shape check fails.
Result<ShardSnapshot> LoadShardSnapshot(const std::string& path);

/// Writes the manifest via tmp-file + atomic rename (the checkpoint commit
/// point). Consults FailPoints (kFailManifestWrite).
Status SaveManifest(const std::string& dir, const Manifest& manifest);

/// Loads and verifies the manifest. NotFound when absent (fresh
/// directory), Corruption on damage.
Result<Manifest> LoadManifest(const std::string& dir);

}  // namespace dblsh::durability

#endif  // DBLSH_DURABILITY_SNAPSHOT_H_
