#ifndef DBLSH_DURABILITY_FAIL_POINT_H_
#define DBLSH_DURABILITY_FAIL_POINT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dblsh::durability {

/// Names of the fail points compiled into the durability write paths. Each
/// is evaluated once per write of the named artifact, so arming the Nth hit
/// of a point kills the Nth such write of the process deterministically.
inline constexpr char kFailWalAppend[] = "wal:append";
inline constexpr char kFailWalSync[] = "wal:sync";
inline constexpr char kFailSnapshotWrite[] = "snapshot:write";
inline constexpr char kFailManifestWrite[] = "manifest:write";
/// Replication paths: a primary sending one bootstrap snapshot chunk, and
/// a follower applying one streamed WAL record.
inline constexpr char kFailReplicationChunk[] = "replication:chunk";
inline constexpr char kFailReplicationApply[] = "replication:apply";

/// Deterministic crash-injection registry for the durability write paths.
///
/// The WAL and snapshot writers consult this registry before every write.
/// When the armed hit fires, the writer persists only the first
/// `keep_bytes` bytes of the in-flight write (any value, including 0 and
/// mid-record offsets), then poisons itself: no later byte ever reaches
/// disk and the operation reports Status::IoError without being
/// acknowledged. From the file system's point of view the outcome is
/// byte-for-byte what `kill -9` at that write boundary leaves behind,
/// while the test process stays alive (and sanitizer-observable) to
/// reopen and verify recovery.
///
/// Thread-safe; intended for tests — production code never arms a point.
class FailPoints {
 public:
  /// The process-wide registry the write paths consult.
  static FailPoints& Instance();

  /// Arms `point`: its `nth` future hit (1-based) triggers, keeping only
  /// the first `keep_bytes` bytes of that write. Re-arming replaces any
  /// previous trigger for the point.
  void Arm(const std::string& point, uint64_t nth, size_t keep_bytes);

  /// Disarms every point and zeroes all hit counters.
  void Reset();

  /// Write-path hook: records a hit of `point` and returns true when the
  /// armed trigger fires, in which case `*keep_bytes` receives the byte
  /// budget of the dying write. Cheap when nothing is armed.
  bool Hit(const char* point, size_t* keep_bytes);

  /// Hits recorded for `point` since the last Reset (armed or not) — lets
  /// tests enumerate how many kill candidates a workload exposes.
  uint64_t HitCount(const std::string& point) const;

 private:
  struct Trigger {
    uint64_t nth = 0;  ///< fires when the hit counter reaches this value
    size_t keep_bytes = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Trigger> armed_;
  std::map<std::string, uint64_t> hits_;
};

}  // namespace dblsh::durability

#endif  // DBLSH_DURABILITY_FAIL_POINT_H_
