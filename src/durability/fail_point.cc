#include "durability/fail_point.h"

namespace dblsh::durability {

FailPoints& FailPoints::Instance() {
  static FailPoints instance;
  return instance;
}

void FailPoints::Arm(const std::string& point, uint64_t nth,
                     size_t keep_bytes) {
  std::lock_guard lock(mutex_);
  armed_[point] = Trigger{nth, keep_bytes};
  hits_[point] = 0;
}

void FailPoints::Reset() {
  std::lock_guard lock(mutex_);
  armed_.clear();
  hits_.clear();
}

bool FailPoints::Hit(const char* point, size_t* keep_bytes) {
  std::lock_guard lock(mutex_);
  const uint64_t count = ++hits_[point];
  const auto it = armed_.find(point);
  if (it == armed_.end() || count != it->second.nth) return false;
  *keep_bytes = it->second.keep_bytes;
  return true;
}

uint64_t FailPoints::HitCount(const std::string& point) const {
  std::lock_guard lock(mutex_);
  const auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

}  // namespace dblsh::durability
