#ifndef DBLSH_DURABILITY_FORMAT_H_
#define DBLSH_DURABILITY_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dblsh::durability {

/// FNV-1a 64-bit — the same hash family the v3 index files
/// (core/db_lsh_io.cc) use for their payload checksums; every durable
/// artifact of this layer is checksummed with it.
inline uint64_t Fnv1a64(const uint8_t* data, size_t len,
                        uint64_t seed = 1469598103934665603ull) {
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Appends `v`'s bytes (host order; the formats are single-machine
/// artifacts like the v3 index files) to `out`.
template <typename T>
inline void AppendPod(std::vector<uint8_t>* out, const T& v) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

/// Appends a raw byte range to `out`. A zero-length range is a no-op
/// even with a null `data` (an empty shard's row region has no buffer).
inline void AppendBytes(std::vector<uint8_t>* out, const void* data,
                        size_t len) {
  if (len == 0) return;
  const auto* bytes = reinterpret_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + len);
}

/// Bounds-checked sequential POD reader over a byte buffer; every Read
/// returns false instead of running past the end, so truncated or lying
/// files can never drive an out-of-bounds read.
class PodReader {
 public:
  PodReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }

  template <typename T>
  bool Read(T* out) {
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t len) {
    if (remaining() < len) return false;
    if (len > 0) std::memcpy(out, data_ + pos_, len);  // null dst when empty
    pos_ += len;
    return true;
  }

  bool Skip(size_t len) {
    if (remaining() < len) return false;
    pos_ += len;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace dblsh::durability

#endif  // DBLSH_DURABILITY_FORMAT_H_
