#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "durability/fail_point.h"
#include "durability/format.h"

namespace dblsh::durability {
namespace {

constexpr char kWalMagic[8] = {'D', 'B', 'L', 'S', 'H', 'W', 'A', 'L'};
constexpr uint32_t kWalVersion = 1;
// magic + version + dim + checksum-over-the-first-16-bytes.
constexpr size_t kWalHeaderSize = 8 + 4 + 4 + 8;

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

std::vector<uint8_t> EncodeHeader(uint32_t dim) {
  std::vector<uint8_t> out;
  out.reserve(kWalHeaderSize);
  AppendBytes(&out, kWalMagic, sizeof(kWalMagic));
  AppendPod(&out, kWalVersion);
  AppendPod(&out, dim);
  AppendPod(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

size_t BodySize(WalOp op, uint32_t dim) {
  // u64 lsn + u8 op + u32 id [+ dim floats for upserts].
  size_t n = 8 + 1 + 4;
  if (op == WalOp::kUpsert) n += static_cast<size_t>(dim) * sizeof(float);
  return n;
}

bool WriteAll(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint32_t dim,
                                                     uint32_t sync_every) {
  if (dim == 0) return Status::InvalidArgument("wal: dim must be positive");
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(Errno("wal: open", path));
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, dim, std::max<uint32_t>(1, sync_every)));
  const std::vector<uint8_t> header = EncodeHeader(dim);
  DBLSH_RETURN_IF_ERROR(writer->WriteChecked(header.data(), header.size()));
  DBLSH_RETURN_IF_ERROR(writer->Sync());
  return writer;
}

WalWriter::WalWriter(std::string path, int fd, uint32_t dim,
                     uint32_t sync_every)
    : path_(std::move(path)), fd_(fd), dim_(dim), sync_every_(sync_every) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::WriteChecked(const uint8_t* data, size_t len) {
  if (poisoned_) return Status::IoError("wal: writer poisoned " + path_);
  size_t keep = 0;
  if (FailPoints::Instance().Hit(kFailWalAppend, &keep)) {
    const size_t partial = std::min(keep, len);
    if (partial > 0) WriteAll(fd_, data, partial);
    ::fsync(fd_);
    poisoned_ = true;
    return Status::IoError("wal: injected crash during append " + path_);
  }
  if (!WriteAll(fd_, data, len)) {
    poisoned_ = true;
    return Status::IoError(Errno("wal: write", path_));
  }
  return Status::OK();
}

Status WalWriter::Append(uint64_t lsn, WalOp op, uint32_t id,
                         const float* vec) {
  std::vector<uint8_t> body;
  body.reserve(BodySize(op, dim_));
  AppendPod(&body, lsn);
  AppendPod(&body, static_cast<uint8_t>(op));
  AppendPod(&body, id);
  if (op == WalOp::kUpsert) {
    AppendBytes(&body, vec, static_cast<size_t>(dim_) * sizeof(float));
  }

  std::vector<uint8_t> record;
  record.reserve(12 + body.size());
  AppendPod(&record, Fnv1a64(body.data(), body.size()));
  AppendPod(&record, static_cast<uint32_t>(body.size()));
  AppendBytes(&record, body.data(), body.size());

  DBLSH_RETURN_IF_ERROR(WriteChecked(record.data(), record.size()));
  ++appends_;
  if (++unsynced_ >= sync_every_) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (poisoned_) return Status::IoError("wal: writer poisoned " + path_);
  size_t keep = 0;
  if (FailPoints::Instance().Hit(kFailWalSync, &keep)) {
    // Crash before the fsync barrier: appended-but-unsynced records may or
    // may not survive; leaving them in the file models the "survived"
    // outcome (the recovery contract permits unacknowledged tails).
    poisoned_ = true;
    return Status::IoError("wal: injected crash during sync " + path_);
  }
  if (::fsync(fd_) != 0) {
    poisoned_ = true;
    return Status::IoError(Errno("wal: fsync", path_));
  }
  unsynced_ = 0;
  ++syncs_;
  return Status::OK();
}

Result<WalReplay> ReadWal(const std::string& path, uint32_t expected_dim) {
  return ReadWalFrom(path, expected_dim, 0);
}

Result<WalReplay> ReadWalFrom(const std::string& path, uint32_t expected_dim,
                              size_t offset) {
  if (offset != 0 && offset < kWalHeaderSize) {
    return Status::InvalidArgument("wal: cursor inside header " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("wal: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<size_t>(in.tellg());
  if (offset > file_size) {
    return Status::Corruption("wal: cursor " + std::to_string(offset) +
                              " past end of " + path);
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::vector<uint8_t> bytes(file_size - offset);
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  if (in.bad() || (!bytes.empty() &&
                   static_cast<size_t>(in.gcount()) != bytes.size())) {
    return Status::IoError("wal: read failed " + path);
  }

  PodReader reader(bytes.data(), bytes.size());
  if (offset == 0) {
    char magic[8];
    uint32_t version = 0;
    uint32_t dim = 0;
    uint64_t header_sum = 0;
    if (!reader.ReadBytes(magic, sizeof(magic)) || !reader.Read(&version) ||
        !reader.Read(&dim) || !reader.Read(&header_sum)) {
      return Status::Corruption("wal: truncated header " + path);
    }
    if (std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
      return Status::Corruption("wal: bad magic " + path);
    }
    if (header_sum != Fnv1a64(bytes.data(), kWalHeaderSize - 8)) {
      return Status::Corruption("wal: header checksum mismatch " + path);
    }
    if (version != kWalVersion) {
      return Status::Corruption("wal: unsupported version " +
                                std::to_string(version) + " " + path);
    }
    if (dim != expected_dim) {
      return Status::Corruption("wal: dim " + std::to_string(dim) +
                                " does not match collection dim " +
                                std::to_string(expected_dim) + " " + path);
    }
  }

  WalReplay replay;
  replay.bytes_scanned = offset + reader.position();
  while (reader.remaining() > 0) {
    uint64_t checksum = 0;
    uint32_t body_len = 0;
    if (!reader.Read(&checksum) || !reader.Read(&body_len) ||
        reader.remaining() < body_len) {
      replay.tail = Status::Corruption("wal: torn record at byte " +
                                       std::to_string(replay.bytes_scanned) +
                                       " " + path);
      return replay;
    }
    const uint8_t* body = bytes.data() + reader.position();
    if (checksum != Fnv1a64(body, body_len)) {
      replay.tail = Status::Corruption("wal: checksum mismatch at byte " +
                                       std::to_string(replay.bytes_scanned) +
                                       " " + path);
      return replay;
    }

    PodReader body_reader(body, body_len);
    WalRecord rec;
    uint8_t op = 0;
    if (!body_reader.Read(&rec.lsn) || !body_reader.Read(&op) ||
        !body_reader.Read(&rec.id) ||
        op < static_cast<uint8_t>(WalOp::kUpsert) ||
        op > static_cast<uint8_t>(WalOp::kRetrain)) {
      replay.tail = Status::Corruption("wal: malformed record at byte " +
                                       std::to_string(replay.bytes_scanned) +
                                       " " + path);
      return replay;
    }
    rec.op = static_cast<WalOp>(op);
    if (body_len != BodySize(rec.op, expected_dim)) {
      replay.tail = Status::Corruption("wal: record size mismatch at byte " +
                                       std::to_string(replay.bytes_scanned) +
                                       " " + path);
      return replay;
    }
    if (rec.op == WalOp::kUpsert) {
      rec.vec.resize(expected_dim);
      body_reader.ReadBytes(rec.vec.data(),
                            static_cast<size_t>(expected_dim) * sizeof(float));
    }
    reader.Skip(body_len);
    replay.bytes_scanned = offset + reader.position();
    replay.records.push_back(std::move(rec));
  }
  return replay;
}

}  // namespace dblsh::durability
