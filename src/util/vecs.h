#ifndef DBLSH_UTIL_VECS_H_
#define DBLSH_UTIL_VECS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

/// Standalone readers for the TEXMEX `.fvecs` / `.bvecs` / `.ivecs`
/// family (SIFT1M, GIST1M, DEEP1B ground truth, ...). Each vector on disk
/// is a little-endian `int32 d` followed by `d` components — float32 for
/// fvecs, uint8 for bvecs, int32 for ivecs — and every vector in a file
/// shares one dimensionality. The readers validate the header of every
/// vector (positive, consistent `d`; no truncated payloads), so a wrong
/// extension or a corrupt download fails with a typed Status instead of
/// garbage rows. No dependency on the dataset layer: benches and tools
/// can load raw files without pulling in FloatMatrix.
namespace dblsh::util {

/// Rows decoded from one `.fvecs` file, flattened row-major.
struct FvecsData {
  size_t dim = 0;
  std::vector<float> values;  ///< count() * dim components
  /// Number of vectors decoded.
  size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
};

/// Rows decoded from one `.bvecs` file, flattened row-major.
struct BvecsData {
  size_t dim = 0;
  std::vector<uint8_t> values;  ///< count() * dim components
  /// Number of vectors decoded.
  size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
};

/// Rows decoded from one `.ivecs` file (typically ground-truth neighbor
/// ids), flattened row-major.
struct IvecsData {
  size_t dim = 0;
  std::vector<int32_t> values;  ///< count() * dim components
  /// Number of vectors decoded.
  size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
};

/// Reads up to `max_vectors` vectors (0 = all) from an `.fvecs` file.
/// IoError when the file cannot be opened; Corruption on a non-positive
/// or inconsistent per-vector dimension or a truncated payload.
Result<FvecsData> ReadFvecs(const std::string& path, size_t max_vectors = 0);

/// Reads up to `max_vectors` vectors (0 = all) from a `.bvecs` file.
/// Same error contract as ReadFvecs.
Result<BvecsData> ReadBvecs(const std::string& path, size_t max_vectors = 0);

/// Reads up to `max_vectors` vectors (0 = all) from an `.ivecs` file.
/// Same error contract as ReadFvecs.
Result<IvecsData> ReadIvecs(const std::string& path, size_t max_vectors = 0);

/// Reads up to `max_vectors` vectors (0 = all) from a `.bvecs` file,
/// widening each u8 component to float32 — the form every fp32 consumer
/// (FloatMatrix seeding, Collection specs, the benches) wants SIFT-style
/// byte datasets in. Same error contract as ReadFvecs.
Result<FvecsData> ReadBvecsAsFloat(const std::string& path,
                                   size_t max_vectors = 0);

/// Per-row visitor for the streaming readers: `row` points at `dim`
/// floats valid only for the duration of the call; `index` is the
/// zero-based position of the row in the file.
using VecsRowVisitor =
    std::function<void(size_t index, const float* row, size_t dim)>;

/// Streams an `.fvecs` file row by row without materializing the whole
/// file: `visit` is called once per vector, in file order, for up to
/// `max_vectors` rows (0 = all). Returns the number of rows visited.
/// Constant memory (one row buffer); same error contract as ReadFvecs —
/// on Corruption mid-file the rows already visited stand.
Result<size_t> StreamFvecs(const std::string& path,
                           const VecsRowVisitor& visit,
                           size_t max_vectors = 0);

/// Streams a `.bvecs` file row by row, widening each u8 component to
/// float32 before the visit. Same contract as StreamFvecs.
Result<size_t> StreamBvecsAsFloat(const std::string& path,
                                  const VecsRowVisitor& visit,
                                  size_t max_vectors = 0);

}  // namespace dblsh::util

#endif  // DBLSH_UTIL_VECS_H_
