#ifndef DBLSH_UTIL_VECS_H_
#define DBLSH_UTIL_VECS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

/// Standalone readers for the TEXMEX `.fvecs` / `.bvecs` / `.ivecs`
/// family (SIFT1M, GIST1M, DEEP1B ground truth, ...). Each vector on disk
/// is a little-endian `int32 d` followed by `d` components — float32 for
/// fvecs, uint8 for bvecs, int32 for ivecs — and every vector in a file
/// shares one dimensionality. The readers validate the header of every
/// vector (positive, consistent `d`; no truncated payloads), so a wrong
/// extension or a corrupt download fails with a typed Status instead of
/// garbage rows. No dependency on the dataset layer: benches and tools
/// can load raw files without pulling in FloatMatrix.
namespace dblsh::util {

/// Rows decoded from one `.fvecs` file, flattened row-major.
struct FvecsData {
  size_t dim = 0;
  std::vector<float> values;  ///< count() * dim components
  /// Number of vectors decoded.
  size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
};

/// Rows decoded from one `.bvecs` file, flattened row-major.
struct BvecsData {
  size_t dim = 0;
  std::vector<uint8_t> values;  ///< count() * dim components
  /// Number of vectors decoded.
  size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
};

/// Rows decoded from one `.ivecs` file (typically ground-truth neighbor
/// ids), flattened row-major.
struct IvecsData {
  size_t dim = 0;
  std::vector<int32_t> values;  ///< count() * dim components
  /// Number of vectors decoded.
  size_t count() const { return dim == 0 ? 0 : values.size() / dim; }
};

/// Reads up to `max_vectors` vectors (0 = all) from an `.fvecs` file.
/// IoError when the file cannot be opened; Corruption on a non-positive
/// or inconsistent per-vector dimension or a truncated payload.
Result<FvecsData> ReadFvecs(const std::string& path, size_t max_vectors = 0);

/// Reads up to `max_vectors` vectors (0 = all) from a `.bvecs` file.
/// Same error contract as ReadFvecs.
Result<BvecsData> ReadBvecs(const std::string& path, size_t max_vectors = 0);

/// Reads up to `max_vectors` vectors (0 = all) from an `.ivecs` file.
/// Same error contract as ReadFvecs.
Result<IvecsData> ReadIvecs(const std::string& path, size_t max_vectors = 0);

}  // namespace dblsh::util

#endif  // DBLSH_UTIL_VECS_H_
