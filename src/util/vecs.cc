#include "util/vecs.h"

#include <fstream>

namespace dblsh::util {

namespace {

// Shared scan loop: every vecs flavor is `int32 d` + d components of
// sizeof(T) bytes, repeated to end of file.
template <typename T, typename Data>
Result<Data> ReadVecsFile(const std::string& path, size_t max_vectors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("vecs: cannot open " + path);
  Data data;
  size_t read_vectors = 0;
  while (max_vectors == 0 || read_vectors < max_vectors) {
    int32_t d = 0;
    if (!in.read(reinterpret_cast<char*>(&d), sizeof(d))) {
      if (in.eof() && in.gcount() == 0) break;  // clean end between vectors
      return Status::Corruption("vecs: truncated header in " + path);
    }
    if (d <= 0) {
      return Status::Corruption("vecs: non-positive dimension " +
                                std::to_string(d) + " in " + path);
    }
    if (data.dim == 0) {
      data.dim = static_cast<size_t>(d);
    } else if (static_cast<size_t>(d) != data.dim) {
      return Status::Corruption(
          "vecs: vector " + std::to_string(read_vectors) + " has dimension " +
          std::to_string(d) + ", expected " + std::to_string(data.dim) +
          " in " + path);
    }
    const size_t offset = data.values.size();
    data.values.resize(offset + data.dim);
    if (!in.read(reinterpret_cast<char*>(data.values.data() + offset),
                 static_cast<std::streamsize>(data.dim * sizeof(T)))) {
      return Status::Corruption("vecs: truncated vector " +
                                std::to_string(read_vectors) + " in " + path);
    }
    ++read_vectors;
  }
  return data;
}

// Shared streaming loop: identical header/truncation validation to
// ReadVecsFile, but holds only one row (as T, then widened to float for
// the visitor) instead of the whole file.
template <typename T>
Result<size_t> StreamVecsFile(const std::string& path,
                              const VecsRowVisitor& visit,
                              size_t max_vectors) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("vecs: cannot open " + path);
  std::vector<T> raw;
  std::vector<float> row;
  size_t dim = 0;
  size_t read_vectors = 0;
  while (max_vectors == 0 || read_vectors < max_vectors) {
    int32_t d = 0;
    if (!in.read(reinterpret_cast<char*>(&d), sizeof(d))) {
      if (in.eof() && in.gcount() == 0) break;  // clean end between vectors
      return Status::Corruption("vecs: truncated header in " + path);
    }
    if (d <= 0) {
      return Status::Corruption("vecs: non-positive dimension " +
                                std::to_string(d) + " in " + path);
    }
    if (dim == 0) {
      dim = static_cast<size_t>(d);
      raw.resize(dim);
      row.resize(dim);
    } else if (static_cast<size_t>(d) != dim) {
      return Status::Corruption(
          "vecs: vector " + std::to_string(read_vectors) + " has dimension " +
          std::to_string(d) + ", expected " + std::to_string(dim) + " in " +
          path);
    }
    if (!in.read(reinterpret_cast<char*>(raw.data()),
                 static_cast<std::streamsize>(dim * sizeof(T)))) {
      return Status::Corruption("vecs: truncated vector " +
                                std::to_string(read_vectors) + " in " + path);
    }
    for (size_t j = 0; j < dim; ++j) row[j] = static_cast<float>(raw[j]);
    visit(read_vectors, row.data(), dim);
    ++read_vectors;
  }
  return read_vectors;
}

}  // namespace

Result<FvecsData> ReadFvecs(const std::string& path, size_t max_vectors) {
  return ReadVecsFile<float, FvecsData>(path, max_vectors);
}

Result<BvecsData> ReadBvecs(const std::string& path, size_t max_vectors) {
  return ReadVecsFile<uint8_t, BvecsData>(path, max_vectors);
}

Result<IvecsData> ReadIvecs(const std::string& path, size_t max_vectors) {
  return ReadVecsFile<int32_t, IvecsData>(path, max_vectors);
}

Result<FvecsData> ReadBvecsAsFloat(const std::string& path,
                                   size_t max_vectors) {
  auto raw = ReadVecsFile<uint8_t, BvecsData>(path, max_vectors);
  if (!raw.ok()) return raw.status();
  FvecsData data;
  data.dim = raw.value().dim;
  data.values.assign(raw.value().values.begin(), raw.value().values.end());
  return data;
}

Result<size_t> StreamFvecs(const std::string& path,
                           const VecsRowVisitor& visit, size_t max_vectors) {
  return StreamVecsFile<float>(path, visit, max_vectors);
}

Result<size_t> StreamBvecsAsFloat(const std::string& path,
                                  const VecsRowVisitor& visit,
                                  size_t max_vectors) {
  return StreamVecsFile<uint8_t>(path, visit, max_vectors);
}

}  // namespace dblsh::util
