#ifndef DBLSH_UTIL_STATUS_H_
#define DBLSH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dblsh {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention of returning a `Status` from fallible operations instead of
/// throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
  kReadOnly,
};

/// Lightweight value-semantic status object. `Status::OK()` is cheap (no
/// allocation); error statuses carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Mutation refused because this node is a read-only replica; `msg`
  /// carries the primary's address so clients can redirect writes.
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for transient failures a client may retry after backing off
  /// (kUnavailable — e.g. a serving layer shedding load). Permanent errors
  /// and deadline rejections are not retryable as-is.
  bool retryable() const { return code_ == StatusCode::kUnavailable; }

  /// Human-readable rendering, e.g. "InvalidArgument: dim mismatch".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Minimal `StatusOr`-style holder: either an error status or a value.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define DBLSH_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::dblsh::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace dblsh

#endif  // DBLSH_UTIL_STATUS_H_
