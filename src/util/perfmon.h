#ifndef DBLSH_UTIL_PERFMON_H_
#define DBLSH_UTIL_PERFMON_H_

#include <cstddef>
#include <cstdio>

namespace dblsh {
namespace perfmon {

/// Process memory snapshot in bytes. Zeroes (not errors) when the platform
/// has no /proc — the bench JSON then reports 0 and the diff tooling skips
/// the memory bands.
struct MemoryUsage {
  size_t resident_bytes = 0;  ///< current RSS
  size_t peak_resident_bytes = 0;  ///< high-water RSS since process start
};

/// The system page size (statm's unit). 4 KiB everywhere this project's
/// CI runs; probing sysconf would drag in <unistd.h> for no observable
/// difference there.
constexpr size_t kPageSize() { return 4096; }

/// Samples the calling process's resident set from /proc/self/statm
/// (current) and /proc/self/status VmHWM (peak). Linux-only by design —
/// the benches that report memory run on the Linux CI; elsewhere this
/// degrades to zeroes instead of adding a dependency.
inline MemoryUsage SampleMemory() {
  MemoryUsage usage;
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    // statm fields are in pages: size resident shared text lib data dt.
    unsigned long long size_pages = 0, resident_pages = 0;
    if (std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages) == 2) {
      usage.resident_bytes =
          static_cast<size_t>(resident_pages) * kPageSize();
    }
    std::fclose(statm);
  }
  if (std::FILE* status = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      unsigned long long kib = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) {
        usage.peak_resident_bytes = static_cast<size_t>(kib) * 1024;
        break;
      }
    }
    std::fclose(status);
  }
  return usage;
}

}  // namespace perfmon
}  // namespace dblsh

#endif  // DBLSH_UTIL_PERFMON_H_
