#ifndef DBLSH_UTIL_DISTANCE_H_
#define DBLSH_UTIL_DISTANCE_H_

#include <cmath>
#include <cstddef>

#include "simd/scalar_kernels.h"
#include "simd/simd.h"

namespace dblsh {

// These wrappers forward to the runtime-dispatched kernel subsystem
// (src/simd/) so every existing call site picks up AVX2/AVX-512 without
// source changes. Batch verification should use the one-to-many entry
// points in core/verify.h instead of looping over these.
//
// Below kSimdDispatchMinDim the dispatch indirection (atomic load +
// non-inlinable function-pointer call) costs as much as the distance
// itself, so short vectors — the kd-tree/projected-space hot loops, whose
// configured dimensionality is m ~ 6-12 for every method here — keep the
// historical inline 4-way unrolled loop, which the scalar kernel tier
// reproduces bit-for-bit. From one full vector register (16 floats) up,
// the SIMD kernels win despite the call overhead.
inline constexpr size_t kSimdDispatchMinDim = 16;

/// Squared Euclidean distance between two length-`dim` float vectors.
inline float L2DistanceSquared(const float* a, const float* b, size_t dim) {
  if (dim >= kSimdDispatchMinDim) return simd::Active().l2_squared(a, b, dim);
  return simd::ScalarL2Squared(a, b, dim);
}

/// Euclidean distance.
inline float L2Distance(const float* a, const float* b, size_t dim) {
  return std::sqrt(L2DistanceSquared(a, b, dim));
}

/// Inner product <a, b>.
inline float DotProduct(const float* a, const float* b, size_t dim) {
  if (dim >= kSimdDispatchMinDim) return simd::Active().dot(a, b, dim);
  return simd::ScalarDot(a, b, dim);
}

/// Squared L2 norm of a vector.
inline float NormSquared(const float* a, size_t dim) {
  return DotProduct(a, a, dim);
}

}  // namespace dblsh

#endif  // DBLSH_UTIL_DISTANCE_H_
