#ifndef DBLSH_UTIL_DISTANCE_H_
#define DBLSH_UTIL_DISTANCE_H_

#include <cmath>
#include <cstddef>

namespace dblsh {

/// Squared Euclidean distance between two length-`dim` float vectors.
/// The 4-way unrolled accumulation lets the compiler vectorize without
/// requiring -ffast-math.
inline float L2DistanceSquared(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// Euclidean distance.
inline float L2Distance(const float* a, const float* b, size_t dim) {
  return std::sqrt(L2DistanceSquared(a, b, dim));
}

/// Inner product <a, b>.
inline float DotProduct(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) {
    acc0 += a[i] * b[i];
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

/// Squared L2 norm of a vector.
inline float NormSquared(const float* a, size_t dim) {
  return DotProduct(a, a, dim);
}

}  // namespace dblsh

#endif  // DBLSH_UTIL_DISTANCE_H_
