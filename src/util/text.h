#ifndef DBLSH_UTIL_TEXT_H_
#define DBLSH_UTIL_TEXT_H_

#include <algorithm>
#include <cctype>
#include <string>

namespace dblsh::text {

/// Copy of `s` with leading/trailing ASCII whitespace removed. Shared by
/// the factory and collection spec parsers so the two grammars trim
/// identically.
inline std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// ASCII lower-cased copy.
inline std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// True when `a` equals the NUL-terminated `b` ignoring ASCII case.
inline bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

}  // namespace dblsh::text

#endif  // DBLSH_UTIL_TEXT_H_
