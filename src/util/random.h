#ifndef DBLSH_UTIL_RANDOM_H_
#define DBLSH_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace dblsh {

/// Deterministic, fast pseudo-random generator (xoshiro256**) with helpers
/// for the distributions the library needs. All randomized components of the
/// library (hash function sampling, dataset generation, query selection) take
/// an explicit seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator. Uses SplitMix64 to expand the single seed into
  /// the full 256-bit state, per the xoshiro authors' recommendation.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
    has_spare_gaussian_ = false;
  }

  /// Uniform on the full uint64 range.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Standard normal via Marsaglia polar method (cached spare).
  double Gaussian() {
    if (has_spare_gaussian_) {
      has_spare_gaussian_ = false;
      return spare_gaussian_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_gaussian_ = v * factor;
    has_spare_gaussian_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dblsh

#endif  // DBLSH_UTIL_RANDOM_H_
