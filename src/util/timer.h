#ifndef DBLSH_UTIL_TIMER_H_
#define DBLSH_UTIL_TIMER_H_

#include <chrono>

namespace dblsh {

/// Wall-clock stopwatch used by the evaluation harness. Started on
/// construction; `ElapsedMs()`/`ElapsedSec()` read without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMs() const { return ElapsedSec() * 1e3; }
  double ElapsedUs() const { return ElapsedSec() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dblsh

#endif  // DBLSH_UTIL_TIMER_H_
