#ifndef DBLSH_UTIL_TOP_K_HEAP_H_
#define DBLSH_UTIL_TOP_K_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dblsh {

/// A (distance, id) candidate used throughout the query paths.
struct Neighbor {
  float dist = 0.f;
  uint32_t id = 0;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.dist == b.dist && a.id == b.id;
  }
};

/// Bounded max-heap keeping the k smallest-distance neighbors seen so far.
/// Used by every index's verification loop; `Threshold()` gives the current
/// k-th distance for early-termination tests.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  /// Offers a candidate; keeps it only if it is among the k best so far.
  /// Duplicate ids are the caller's responsibility to filter. Replacement
  /// at a full heap uses Neighbor's full ordering (distance, then id), so
  /// an equal-distance candidate with a smaller id evicts the current
  /// worst — equal-distance result sets are therefore identical across
  /// methods and candidate orderings.
  void Push(float dist, uint32_t id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({dist, id});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (Neighbor{dist, id} < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {dist, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Current k-th best distance, or +inf while fewer than k candidates held.
  float Threshold() const {
    if (heap_.size() < k_) return std::numeric_limits<float>::infinity();
    return heap_.front().dist;
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t Size() const { return heap_.size(); }

  /// Extracts the neighbors in ascending distance order; the heap is left
  /// empty.
  std::vector<Neighbor> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on dist
};

}  // namespace dblsh

#endif  // DBLSH_UTIL_TOP_K_HEAP_H_
