#ifndef DBLSH_BPTREE_BPLUS_TREE_H_
#define DBLSH_BPTREE_BPLUS_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dblsh::bptree {

/// In-memory B+-tree mapping float keys (projection values) to point ids,
/// with duplicate keys allowed. This is the one-dimensional index substrate
/// the collision-counting baselines (QALSH, R2LSH, VHP) use: one tree per
/// hash function, queried by walking outward from the query's projection in
/// both directions via the leaf-linked `Iterator`.
class BPlusTree {
 public:
  struct Entry {
    float key;
    uint32_t id;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.key != b.key) return a.key < b.key;
      return a.id < b.id;
    }
  };

  explicit BPlusTree(size_t fanout = 64);
  ~BPlusTree();

  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Replaces the content with `entries` (sorted internally), building all
  /// levels bottom-up.
  Status BulkLoad(std::vector<Entry> entries);

  /// Inserts a single (key, id) pair (top-down split insertion).
  void Insert(float key, uint32_t id);

  /// Removes the (key, id) entry; NotFound when absent. Underflow is
  /// handled B-tree style: a node that drops below fanout/4 entries either
  /// borrows one entry from an adjacent sibling or merges into it when the
  /// two fit in one node, cascading upward; an internal root with a single
  /// child collapses. `key` must be the exact key the id was inserted
  /// under (for the LSH baselines: the point's stored projection value).
  Status Erase(float key, uint32_t id);

  size_t size() const { return size_; }
  size_t height() const;

  /// Collects ids with key in [lo, hi].
  void RangeQuery(float lo, float hi, std::vector<uint32_t>* out) const;

  /// Position in the sorted key order; supports bidirectional stepping.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    float key() const;
    uint32_t id() const;
    void Next();
    void Prev();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // internal leaf node
    size_t idx_ = 0;
  };

  /// First entry with key >= `key`; invalid iterator if none.
  Iterator LowerBound(float key) const;
  /// Last entry with key < `key` (the left neighbor of LowerBound); invalid
  /// if none. Together these seed QALSH's two-directional expansion.
  Iterator UpperNeighborBelow(float key) const;
  Iterator Begin() const;

  /// Test hook: verifies key ordering, fill factors and leaf links; returns
  /// the number of violations.
  size_t CheckInvariants() const;

 private:
  struct Node;
  void FreeTree(Node* node);

  size_t fanout_;
  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace dblsh::bptree

#endif  // DBLSH_BPTREE_BPLUS_TREE_H_
