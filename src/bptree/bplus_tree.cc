#include "bptree/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dblsh::bptree {

/// Node layout: leaves hold sorted entries and sibling links; internal nodes
/// hold children and one router key per child (the smallest key in that
/// subtree).
struct BPlusTree::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;       // leaf payload
  std::vector<Entry> routers;       // internal: min entry of child i
                                    // (full (key, id) pairs so duplicate
                                    // keys route deterministically)
  std::vector<Node*> children;      // internal payload
  Node* prev = nullptr;             // leaf links
  Node* next = nullptr;

  Entry MinEntry() const {
    return is_leaf ? entries.front() : routers.front();
  }
  size_t count() const {
    return is_leaf ? entries.size() : children.size();
  }
};

BPlusTree::BPlusTree(size_t fanout) : fanout_(fanout) {
  assert(fanout_ >= 4);
}

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : fanout_(other.fanout_), root_(other.root_), size_(other.size_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    fanout_ = other.fanout_;
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void BPlusTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  for (Node* child : node->children) FreeTree(child);
  delete node;
}

Status BPlusTree::BulkLoad(std::vector<Entry> entries) {
  FreeTree(root_);
  root_ = nullptr;
  size_ = entries.size();
  std::sort(entries.begin(), entries.end());

  if (entries.empty()) {
    root_ = new Node();
    return Status::OK();
  }

  // Build leaves at ~90% fill so later inserts have headroom.
  const size_t leaf_cap = std::max<size_t>(2, fanout_ * 9 / 10);
  std::vector<Node*> level;
  Node* prev = nullptr;
  for (size_t i = 0; i < entries.size(); i += leaf_cap) {
    Node* leaf = new Node();
    const size_t end = std::min(i + leaf_cap, entries.size());
    leaf->entries.assign(entries.begin() + i, entries.begin() + end);
    leaf->prev = prev;
    if (prev != nullptr) prev->next = leaf;
    prev = leaf;
    level.push_back(leaf);
  }
  while (level.size() > 1) {
    std::vector<Node*> parents;
    for (size_t i = 0; i < level.size(); i += fanout_) {
      Node* parent = new Node();
      parent->is_leaf = false;
      const size_t end = std::min(i + fanout_, level.size());
      for (size_t j = i; j < end; ++j) {
        parent->children.push_back(level[j]);
        parent->routers.push_back(level[j]->MinEntry());
      }
      parents.push_back(parent);
    }
    level = std::move(parents);
  }
  root_ = level.front();
  return Status::OK();
}

size_t BPlusTree::height() const {
  size_t h = 0;
  for (const Node* n = root_; n != nullptr;
       n = n->is_leaf ? nullptr : n->children.front()) {
    ++h;
  }
  return h;
}

void BPlusTree::Insert(float key, uint32_t id) {
  if (root_ == nullptr) root_ = new Node();
  ++size_;

  // Descend, remembering the path; split full nodes on the way back up.
  std::vector<Node*> path;
  std::vector<size_t> slots;
  const Entry entry{key, id};
  Node* node = root_;
  while (!node->is_leaf) {
    // Last child whose minimum entry is <= the new entry.
    size_t i = static_cast<size_t>(
        std::upper_bound(node->routers.begin(), node->routers.end(), entry) -
        node->routers.begin());
    if (i > 0) --i;
    path.push_back(node);
    slots.push_back(i);
    node = node->children[i];
  }
  node->entries.insert(
      std::upper_bound(node->entries.begin(), node->entries.end(), entry),
      entry);
  // Keep routers exact for leftmost inserts.
  for (size_t d = path.size(); d-- > 0;) {
    path[d]->routers[slots[d]] = path[d]->children[slots[d]]->MinEntry();
  }

  // Split from the leaf upward while over capacity.
  Node* child = node;
  for (size_t d = path.size(); child->count() > fanout_; --d) {
    Node* right = new Node();
    right->is_leaf = child->is_leaf;
    const size_t half = child->count() / 2;
    if (child->is_leaf) {
      right->entries.assign(child->entries.begin() + half,
                            child->entries.end());
      child->entries.resize(half);
      right->next = child->next;
      right->prev = child;
      if (child->next != nullptr) child->next->prev = right;
      child->next = right;
    } else {
      right->children.assign(child->children.begin() + half,
                             child->children.end());
      right->routers.assign(child->routers.begin() + half,
                            child->routers.end());
      child->children.resize(half);
      child->routers.resize(half);
    }
    if (d == 0) {
      Node* new_root = new Node();
      new_root->is_leaf = false;
      new_root->children = {child, right};
      new_root->routers = {child->MinEntry(), right->MinEntry()};
      root_ = new_root;
      break;
    }
    Node* parent = path[d - 1];
    const size_t slot = slots[d - 1];
    parent->children.insert(parent->children.begin() + slot + 1, right);
    parent->routers.insert(parent->routers.begin() + slot + 1,
                           right->MinEntry());
    child = parent;
  }
}

Status BPlusTree::Erase(float key, uint32_t id) {
  const Entry target{key, id};
  if (root_ == nullptr || size_ == 0) {
    return Status::NotFound("BPlusTree::Erase: tree is empty");
  }

  // Descend along the router that can contain (key, id), tracking the path.
  std::vector<Node*> path;
  std::vector<size_t> slots;
  Node* node = root_;
  while (!node->is_leaf) {
    size_t i = static_cast<size_t>(
        std::upper_bound(node->routers.begin(), node->routers.end(), target) -
        node->routers.begin());
    if (i > 0) --i;
    path.push_back(node);
    slots.push_back(i);
    node = node->children[i];
  }
  const auto it =
      std::lower_bound(node->entries.begin(), node->entries.end(), target);
  if (it == node->entries.end() || it->key != key || it->id != id) {
    return Status::NotFound("BPlusTree::Erase: (key, id) not present");
  }
  node->entries.erase(it);
  --size_;

  // Walk back up repairing routers and resolving underflow: an underfull
  // child borrows from or merges with an adjacent sibling under the same
  // parent. Merging removes the child from the parent, which can in turn
  // underflow the parent — handled by the next loop iteration.
  const size_t min_fill = std::max<size_t>(1, fanout_ / 4);
  Node* child = node;
  for (size_t d = path.size(); d-- > 0;) {
    Node* parent = path[d];
    const size_t slot = slots[d];
    assert(parent->children[slot] == child);
    if (child->count() == 0) {
      // Only reachable for leaves (internal nodes merge before emptying):
      // unlink from the leaf chain and drop from the parent.
      if (child->is_leaf) {
        if (child->prev != nullptr) child->prev->next = child->next;
        if (child->next != nullptr) child->next->prev = child->prev;
      }
      parent->children.erase(parent->children.begin() +
                             static_cast<ptrdiff_t>(slot));
      parent->routers.erase(parent->routers.begin() +
                            static_cast<ptrdiff_t>(slot));
      delete child;
    } else if (child->count() < min_fill && parent->children.size() > 1) {
      const size_t sib_slot = slot > 0 ? slot - 1 : slot + 1;
      Node* sib = parent->children[sib_slot];
      const bool sib_left = sib_slot < slot;
      if (sib->count() + child->count() <= fanout_) {
        // Merge child into its sibling, preserving key order.
        if (child->is_leaf) {
          if (sib_left) {
            sib->entries.insert(sib->entries.end(), child->entries.begin(),
                                child->entries.end());
          } else {
            sib->entries.insert(sib->entries.begin(), child->entries.begin(),
                                child->entries.end());
          }
          if (child->prev != nullptr) child->prev->next = child->next;
          if (child->next != nullptr) child->next->prev = child->prev;
        } else {
          if (sib_left) {
            sib->children.insert(sib->children.end(), child->children.begin(),
                                 child->children.end());
            sib->routers.insert(sib->routers.end(), child->routers.begin(),
                                child->routers.end());
          } else {
            sib->children.insert(sib->children.begin(),
                                 child->children.begin(),
                                 child->children.end());
            sib->routers.insert(sib->routers.begin(), child->routers.begin(),
                                child->routers.end());
          }
          child->children.clear();  // now owned by sib; don't double-free
        }
        parent->children.erase(parent->children.begin() +
                               static_cast<ptrdiff_t>(slot));
        parent->routers.erase(parent->routers.begin() +
                              static_cast<ptrdiff_t>(slot));
        delete child;
        const size_t merged_slot = sib_left ? sib_slot : slot;
        parent->routers[merged_slot] = sib->MinEntry();
      } else {
        // Sibling is rich (> fanout - min_fill entries): borrow one.
        if (child->is_leaf) {
          if (sib_left) {
            child->entries.insert(child->entries.begin(),
                                  sib->entries.back());
            sib->entries.pop_back();
          } else {
            child->entries.push_back(sib->entries.front());
            sib->entries.erase(sib->entries.begin());
          }
        } else {
          if (sib_left) {
            child->children.insert(child->children.begin(),
                                   sib->children.back());
            child->routers.insert(child->routers.begin(),
                                  sib->routers.back());
            sib->children.pop_back();
            sib->routers.pop_back();
          } else {
            child->children.push_back(sib->children.front());
            child->routers.push_back(sib->routers.front());
            sib->children.erase(sib->children.begin());
            sib->routers.erase(sib->routers.begin());
          }
        }
        parent->routers[slot] = child->MinEntry();
        parent->routers[sib_slot] = sib->MinEntry();
      }
    } else {
      // No structural change at this level; keep the router exact (the
      // erased entry may have been the subtree minimum).
      parent->routers[slot] = child->MinEntry();
    }
    child = parent;
  }

  // Collapse a chain of single-child internal roots.
  while (!root_->is_leaf && root_->children.size() == 1) {
    Node* old_root = root_;
    root_ = root_->children.front();
    old_root->children.clear();
    delete old_root;
  }
  return Status::OK();
}

BPlusTree::Iterator BPlusTree::LowerBound(float key) const {
  Iterator it;
  if (root_ == nullptr || size_ == 0) return it;
  // Descend toward the first entry with entry.key >= key. Entry{key, 0} is
  // the smallest possible entry at this key, so ties on duplicate keys
  // resolve to the leftmost child that can contain a match.
  const Entry target{key, 0};
  const Node* node = root_;
  while (!node->is_leaf) {
    size_t i = static_cast<size_t>(
        std::lower_bound(node->routers.begin(), node->routers.end(),
                         target) -
        node->routers.begin());
    if (i > 0) --i;
    node = node->children[i];
  }
  // The target may be in a following leaf when key exceeds this leaf's max.
  while (node != nullptr) {
    const auto pos = std::lower_bound(
        node->entries.begin(), node->entries.end(), key,
        [](const Entry& e, float k) { return e.key < k; });
    if (pos != node->entries.end()) {
      it.leaf_ = node;
      it.idx_ = static_cast<size_t>(pos - node->entries.begin());
      return it;
    }
    node = node->next;
  }
  return it;
}

BPlusTree::Iterator BPlusTree::UpperNeighborBelow(float key) const {
  Iterator it = LowerBound(key);
  if (!it.Valid()) {
    // All keys are < key (or tree empty): the neighbor below is the last
    // entry, if any.
    if (root_ == nullptr || size_ == 0) return it;
    const Node* node = root_;
    while (!node->is_leaf) node = node->children.back();
    while (node != nullptr && node->entries.empty()) node = node->prev;
    if (node == nullptr) return it;
    it.leaf_ = node;
    it.idx_ = node->entries.size() - 1;
    return it;
  }
  it.Prev();
  return it;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  Iterator it;
  if (root_ == nullptr || size_ == 0) return it;
  const Node* node = root_;
  while (!node->is_leaf) node = node->children.front();
  while (node != nullptr && node->entries.empty()) node = node->next;
  if (node == nullptr) return it;
  it.leaf_ = node;
  it.idx_ = 0;
  return it;
}

float BPlusTree::Iterator::key() const {
  assert(Valid());
  return static_cast<const Node*>(leaf_)->entries[idx_].key;
}

uint32_t BPlusTree::Iterator::id() const {
  assert(Valid());
  return static_cast<const Node*>(leaf_)->entries[idx_].id;
}

void BPlusTree::Iterator::Next() {
  assert(Valid());
  const Node* node = static_cast<const Node*>(leaf_);
  if (idx_ + 1 < node->entries.size()) {
    ++idx_;
    return;
  }
  node = node->next;
  while (node != nullptr && node->entries.empty()) node = node->next;
  leaf_ = node;
  idx_ = 0;
}

void BPlusTree::Iterator::Prev() {
  assert(Valid());
  const Node* node = static_cast<const Node*>(leaf_);
  if (idx_ > 0) {
    --idx_;
    return;
  }
  node = node->prev;
  while (node != nullptr && node->entries.empty()) node = node->prev;
  leaf_ = node;
  idx_ = (node != nullptr) ? node->entries.size() - 1 : 0;
}

void BPlusTree::RangeQuery(float lo, float hi,
                           std::vector<uint32_t>* out) const {
  for (Iterator it = LowerBound(lo); it.Valid() && it.key() <= hi;
       it.Next()) {
    out->push_back(it.id());
  }
}

size_t BPlusTree::CheckInvariants() const {
  if (root_ == nullptr) return 0;
  size_t violations = 0;

  // Structure: routers match child minima, counts within fanout.
  std::vector<const Node*> stack = {root_};
  size_t total = 0;
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->count() > fanout_) ++violations;
    if (node->is_leaf) {
      total += node->entries.size();
      for (size_t i = 1; i < node->entries.size(); ++i) {
        if (node->entries[i] < node->entries[i - 1]) ++violations;
      }
    } else {
      if (node->children.size() != node->routers.size()) ++violations;
      for (size_t i = 0; i < node->children.size(); ++i) {
        const Entry min_entry = node->children[i]->MinEntry();
        if (node->routers[i].key != min_entry.key ||
            node->routers[i].id != min_entry.id) {
          ++violations;
        }
        if (i > 0 && node->routers[i] < node->routers[i - 1]) ++violations;
        stack.push_back(node->children[i]);
      }
    }
  }
  if (total != size_) ++violations;

  // Leaf chain is globally sorted and covers all entries.
  size_t seen = 0;
  float last = -std::numeric_limits<float>::infinity();
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    if (it.key() < last) ++violations;
    last = it.key();
    ++seen;
  }
  if (seen != size_) ++violations;
  return violations;
}

}  // namespace dblsh::bptree
