#include "kdtree/kd_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/distance.h"

namespace dblsh::kdtree {

KdTree::KdTree(const FloatMatrix* points, size_t leaf_size)
    : points_(points), leaf_size_(std::max<size_t>(1, leaf_size)) {
  assert(points_ != nullptr);
  ids_.resize(points_->rows());
  std::iota(ids_.begin(), ids_.end(), 0);
  if (!ids_.empty()) {
    root_ = Build(0, static_cast<uint32_t>(ids_.size()));
  }
}

int32_t KdTree::Build(uint32_t begin, uint32_t end) {
  const size_t dim = points_->cols();
  Node node;
  node.begin = begin;
  node.end = end;
  node.box_lo.assign(dim, std::numeric_limits<float>::max());
  node.box_hi.assign(dim, std::numeric_limits<float>::lowest());
  for (uint32_t i = begin; i < end; ++i) {
    const float* p = points_->row(ids_[i]);
    for (size_t j = 0; j < dim; ++j) {
      node.box_lo[j] = std::min(node.box_lo[j], p[j]);
      node.box_hi[j] = std::max(node.box_hi[j], p[j]);
    }
  }

  const auto index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);  // reserve the slot; children filled below

  if (end - begin <= leaf_size_) return index;

  // Split on the widest axis at the median.
  size_t axis = 0;
  float width = -1.f;
  for (size_t j = 0; j < dim; ++j) {
    const float w = node.box_hi[j] - node.box_lo[j];
    if (w > width) {
      width = w;
      axis = j;
    }
  }
  if (width <= 0.f) return index;  // all points identical: keep as leaf

  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](uint32_t a, uint32_t b) {
                     return points_->at(a, axis) < points_->at(b, axis);
                   });
  const float split = points_->at(ids_[mid], axis);

  const int32_t left = Build(begin, mid);
  const int32_t right = Build(mid, end);
  nodes_[index].left = left;
  nodes_[index].right = right;
  nodes_[index].axis = static_cast<uint16_t>(axis);
  nodes_[index].split = split;
  return index;
}

float KdTree::MinDistSquared(const Node& node, const float* query) const {
  float acc = 0.f;
  for (size_t j = 0; j < node.box_lo.size(); ++j) {
    float d = 0.f;
    if (query[j] < node.box_lo[j]) {
      d = node.box_lo[j] - query[j];
    } else if (query[j] > node.box_hi[j]) {
      d = query[j] - node.box_hi[j];
    }
    acc += d * d;
  }
  return acc;
}

std::vector<Neighbor> KdTree::Knn(const float* query, size_t k) const {
  TopKHeap heap(k);
  if (root_ < 0) return heap.TakeSorted();
  // Depth-first with pruning on the current k-th distance.
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    const float mind = MinDistSquared(node, query);
    const float thr = heap.Threshold();
    if (heap.Full() && mind >= thr * thr) continue;
    if (node.is_leaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = ids_[i];
        heap.Push(L2Distance(points_->row(id), query, points_->cols()), id);
      }
    } else {
      // Visit the nearer child first.
      const size_t axis = node.axis;
      if (query[axis] < node.split) {
        stack.push_back(node.right);
        stack.push_back(node.left);
      } else {
        stack.push_back(node.left);
        stack.push_back(node.right);
      }
    }
  }
  return heap.TakeSorted();
}

void KdTree::WindowQuery(const float* lo, const float* hi,
                         std::vector<uint32_t>* out) const {
  WindowCursor cursor(this, lo, hi);
  uint32_t id;
  while (cursor.Next(&id)) out->push_back(id);
}

KdTree::WindowCursor::WindowCursor(const KdTree* tree, const float* lo,
                                   const float* hi)
    : tree_(tree), lo_(lo), hi_(hi) {
  if (tree_->root_ >= 0) stack_.push_back({tree_->root_, 0});
}

bool KdTree::WindowCursor::BoxIntersects(const Node& node) const {
  for (size_t j = 0; j < node.box_lo.size(); ++j) {
    if (lo_[j] > node.box_hi[j] || hi_[j] < node.box_lo[j]) return false;
  }
  return true;
}

bool KdTree::WindowCursor::Next(uint32_t* id) {
  const size_t dim = tree_->points_->cols();
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const Node& node = tree_->nodes_[static_cast<size_t>(frame.node)];
    if (frame.idx == 0 && !BoxIntersects(node)) {
      stack_.pop_back();
      continue;
    }
    if (node.is_leaf()) {
      while (node.begin + frame.idx < node.end) {
        const uint32_t candidate = tree_->ids_[node.begin + frame.idx++];
        const float* p = tree_->points_->row(candidate);
        bool inside = true;
        for (size_t j = 0; j < dim; ++j) {
          if (p[j] < lo_[j] || p[j] > hi_[j]) {
            inside = false;
            break;
          }
        }
        if (inside) {
          *id = candidate;
          return true;
        }
      }
      stack_.pop_back();
    } else {
      // Two children; idx tracks which have been expanded.
      if (frame.idx == 0) {
        frame.idx = 1;
        stack_.push_back({node.left, 0});
      } else if (frame.idx == 1) {
        frame.idx = 2;
        stack_.push_back({node.right, 0});
      } else {
        stack_.pop_back();
      }
    }
  }
  return false;
}

KdTree::NnCursor::NnCursor(const KdTree* tree, const float* query)
    : tree_(tree), query_(query) {
  if (tree_->root_ >= 0) {
    const Node& root = tree_->nodes_[static_cast<size_t>(tree_->root_)];
    queue_.push({tree_->MinDistSquared(root, query_), tree_->root_, 0});
  }
}

bool KdTree::NnCursor::Next(Neighbor* out) {
  while (!queue_.empty()) {
    const QueueItem item = queue_.top();
    queue_.pop();
    if (item.node < 0) {
      out->dist = std::sqrt(item.dist);
      out->id = item.id;
      return true;
    }
    const Node& node = tree_->nodes_[static_cast<size_t>(item.node)];
    if (node.is_leaf()) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = tree_->ids_[i];
        const float d2 = L2DistanceSquared(tree_->points_->row(id), query_,
                                           tree_->points_->cols());
        queue_.push({d2, -1, id});
      }
    } else {
      const Node& left = tree_->nodes_[static_cast<size_t>(node.left)];
      const Node& right = tree_->nodes_[static_cast<size_t>(node.right)];
      queue_.push({tree_->MinDistSquared(left, query_), node.left, 0});
      queue_.push({tree_->MinDistSquared(right, query_), node.right, 0});
    }
  }
  return false;
}

}  // namespace dblsh::kdtree
