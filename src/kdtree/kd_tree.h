#ifndef DBLSH_KDTREE_KD_TREE_H_
#define DBLSH_KDTREE_KD_TREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "dataset/float_matrix.h"
#include "util/top_k_heap.h"

namespace dblsh::kdtree {

/// Static kd-tree over the rows of an external low-dimensional
/// `FloatMatrix`. Built once by recursive median splits; supports exact k-NN
/// and *incremental* best-first NN enumeration, which is what the PM-LSH
/// baseline needs (it keeps pulling projected-space neighbors until its
/// candidate budget beta*n is exhausted).
///
/// This stands in for the paper's PM-tree (see DESIGN.md substitutions): in
/// a coordinate space of m ~ 15 dimensions, both structures provide exact
/// incremental NN; the PM-LSH algorithm above it is unchanged.
class KdTree {
 private:
  struct Node;  // defined below; forward-declared for the nested cursors

 public:
  /// Builds over all rows of `points`, which must outlive the tree.
  explicit KdTree(const FloatMatrix* points, size_t leaf_size = 16);

  size_t size() const { return points_->rows(); }
  size_t dim() const { return points_->cols(); }

  /// Exact k nearest rows to `query` (ascending distance).
  std::vector<Neighbor> Knn(const float* query, size_t k) const;

  /// Collects ids inside the axis-aligned box [lo, hi] (inclusive bounds,
  /// arrays of length dim()). Lets the kd-tree serve as an alternative
  /// window-query backend for DB-LSH (the paper notes any index answering
  /// low-dimensional window queries works).
  void WindowQuery(const float* lo, const float* hi,
                   std::vector<uint32_t>* out) const;

  /// Streaming window query matching RStarTree::WindowCursor's contract.
  class WindowCursor {
   public:
    WindowCursor(const KdTree* tree, const float* lo, const float* hi);

    /// Advances to the next id in the window; returns false when exhausted.
    bool Next(uint32_t* id);

   private:
    struct Frame {
      int32_t node;
      uint32_t idx;
    };
    bool BoxIntersects(const Node& node) const;
    const KdTree* tree_;
    const float* lo_;
    const float* hi_;
    std::vector<Frame> stack_;
  };

  /// Streams rows in ascending distance from `query`.
  class NnCursor {
   public:
    NnCursor(const KdTree* tree, const float* query);

    /// Advances to the next nearest point; returns false when exhausted.
    /// `out` receives (distance, id).
    bool Next(Neighbor* out);

   private:
    struct QueueItem {
      float dist;
      int32_t node;    // -1 when this item is a concrete point
      uint32_t id;     // valid when node == -1
      friend bool operator>(const QueueItem& a, const QueueItem& b) {
        return a.dist > b.dist;
      }
    };
    const KdTree* tree_;
    const float* query_;
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        queue_;
  };

 private:
  friend class NnCursor;

  struct Node {
    // Internal: split axis/value and children indices. Leaf: point range.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint16_t axis = 0;
    float split = 0.f;
    // Tight bounding box of the subtree, for mindist pruning.
    std::vector<float> box_lo;
    std::vector<float> box_hi;
    bool is_leaf() const { return left < 0; }
  };

  int32_t Build(uint32_t begin, uint32_t end);
  float MinDistSquared(const Node& node, const float* query) const;

  const FloatMatrix* points_;
  size_t leaf_size_;
  std::vector<uint32_t> ids_;   // permutation of row indices
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace dblsh::kdtree

#endif  // DBLSH_KDTREE_KD_TREE_H_
