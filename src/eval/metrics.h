#ifndef DBLSH_EVAL_METRICS_H_
#define DBLSH_EVAL_METRICS_H_

#include <vector>

#include "util/top_k_heap.h"

namespace dblsh::eval {

/// Overall ratio (paper Eq. 11): mean over ranks i of
/// ||q, o_i|| / ||q, o*_i||. 1.0 is exact; the paper reports ~1.001-1.02.
/// When the method returns fewer than k points, the missing ranks are
/// counted at the worst observed ratio of the query (a conservative
/// convention, documented in EXPERIMENTS.md).
double OverallRatio(const std::vector<Neighbor>& returned,
                    const std::vector<Neighbor>& ground_truth);

/// Recall (paper Eq. 12): |R intersect R*| / k. Matching is by distance
/// with a tolerance so ties with equal distance but different ids still
/// count (the standard convention for ANN benchmarks).
double Recall(const std::vector<Neighbor>& returned,
              const std::vector<Neighbor>& ground_truth);

}  // namespace dblsh::eval

#endif  // DBLSH_EVAL_METRICS_H_
