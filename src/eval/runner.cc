#include "eval/runner.h"

#include <cassert>
#include <utility>

#include "core/index_factory.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace dblsh::eval {

Workload MakeWorkload(std::string name, FloatMatrix raw, size_t num_queries,
                      size_t k, uint64_t seed) {
  Workload w;
  w.name = std::move(name);
  w.k = k;
  SplitQueries(raw, num_queries, seed, &w.data, &w.queries);
  w.ground_truth = ComputeGroundTruth(w.data, w.queries, k);
  return w;
}

Result<MethodResult> RunMethod(AnnIndex* index, const Workload& workload) {
  MethodResult result;
  result.method = index->Name();

  Timer build_timer;
  DBLSH_RETURN_IF_ERROR(index->Build(&workload.data));
  result.indexing_time_sec = build_timer.ElapsedSec();
  result.hash_functions = index->NumHashFunctions();

  const size_t q_count = workload.queries.rows();
  QueryRequest request;
  request.k = workload.k;
  Timer query_timer;
  const std::vector<QueryResponse> responses =
      index->QueryBatch(workload.queries, request, /*num_threads=*/1);
  const double total_ms = query_timer.ElapsedMs();

  double total_recall = 0.0;
  double total_ratio = 0.0;
  double total_candidates = 0.0;
  for (size_t q = 0; q < q_count; ++q) {
    const QueryResponse& response = responses[q];
    total_recall += Recall(response.neighbors, workload.ground_truth[q]);
    total_ratio += OverallRatio(response.neighbors, workload.ground_truth[q]);
    total_candidates +=
        static_cast<double>(response.stats.candidates_verified);
  }
  const auto denom = static_cast<double>(q_count ? q_count : 1);
  result.avg_query_ms = total_ms / denom;
  result.recall = total_recall / denom;
  result.overall_ratio = total_ratio / denom;
  result.avg_candidates = total_candidates / denom;
  return result;
}

Result<MethodResult> RunSpec(const std::string& spec,
                             const Workload& workload) {
  auto index = IndexFactory::Make(spec);
  if (!index.ok()) return index.status();
  return RunMethod(index.value().get(), workload);
}

std::vector<std::string> PaperMethodSpecs(size_t n, double c) {
  const std::string c_kv = ",c=" + std::to_string(c);
  return {
      "DB-LSH" + c_kv,
      "FB-LSH" + c_kv + ",n=" + std::to_string(n),
      "LCCS-LSH",
      "PM-LSH" + c_kv,
      "R2LSH" + c_kv,
      "VHP" + c_kv,
      "LSB-Forest",
      "QALSH" + c_kv,
  };
}

std::vector<std::unique_ptr<AnnIndex>> MakePaperMethods(size_t n, double c) {
  std::vector<std::unique_ptr<AnnIndex>> methods;
  for (const std::string& spec : PaperMethodSpecs(n, c)) {
    auto index = IndexFactory::Make(spec);
    assert(index.ok() && "paper-default specs must parse");
    if (index.ok()) methods.push_back(std::move(index).value());
  }
  return methods;
}

}  // namespace dblsh::eval
