#include "eval/runner.h"

#include <utility>

#include "baselines/fb_lsh.h"
#include "baselines/lccs_lsh.h"
#include "baselines/lsb_forest.h"
#include "baselines/pm_lsh.h"
#include "baselines/qalsh.h"
#include "baselines/r2lsh.h"
#include "baselines/vhp.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "eval/metrics.h"
#include "util/timer.h"

namespace dblsh::eval {

Workload MakeWorkload(std::string name, FloatMatrix raw, size_t num_queries,
                      size_t k, uint64_t seed) {
  Workload w;
  w.name = std::move(name);
  w.k = k;
  SplitQueries(raw, num_queries, seed, &w.data, &w.queries);
  w.ground_truth = ComputeGroundTruth(w.data, w.queries, k);
  return w;
}

Result<MethodResult> RunMethod(AnnIndex* index, const Workload& workload) {
  MethodResult result;
  result.method = index->Name();

  Timer build_timer;
  DBLSH_RETURN_IF_ERROR(index->Build(&workload.data));
  result.indexing_time_sec = build_timer.ElapsedSec();
  result.hash_functions = index->NumHashFunctions();

  const size_t q_count = workload.queries.rows();
  double total_ms = 0.0;
  double total_recall = 0.0;
  double total_ratio = 0.0;
  double total_candidates = 0.0;
  for (size_t q = 0; q < q_count; ++q) {
    QueryStats stats;
    Timer query_timer;
    const std::vector<Neighbor> answer =
        index->Query(workload.queries.row(q), workload.k, &stats);
    total_ms += query_timer.ElapsedMs();
    total_recall += Recall(answer, workload.ground_truth[q]);
    total_ratio += OverallRatio(answer, workload.ground_truth[q]);
    total_candidates += static_cast<double>(stats.candidates_verified);
  }
  const auto denom = static_cast<double>(q_count ? q_count : 1);
  result.avg_query_ms = total_ms / denom;
  result.recall = total_recall / denom;
  result.overall_ratio = total_ratio / denom;
  result.avg_candidates = total_candidates / denom;
  return result;
}

std::vector<std::unique_ptr<AnnIndex>> MakePaperMethods(size_t n, double c) {
  std::vector<std::unique_ptr<AnnIndex>> methods;

  DbLshParams db_params;
  db_params.c = c;
  methods.push_back(std::make_unique<DbLsh>(db_params));

  DbLshParams fb_params = FbLshDefaultParams(n);
  fb_params.c = c;
  methods.push_back(std::make_unique<DbLsh>(fb_params));

  LccsLshParams lccs;
  methods.push_back(std::make_unique<LccsLsh>(lccs));

  PmLshParams pm;
  pm.c = c;
  methods.push_back(std::make_unique<PmLsh>(pm));

  R2LshParams r2;
  r2.c = c;
  methods.push_back(std::make_unique<R2Lsh>(r2));

  VhpParams vhp;
  vhp.c = c;
  methods.push_back(std::make_unique<Vhp>(vhp));

  LsbForestParams lsb;
  methods.push_back(std::make_unique<LsbForest>(lsb));

  QalshParams qalsh;
  qalsh.c = c;
  methods.push_back(std::make_unique<Qalsh>(qalsh));

  return methods;
}

}  // namespace dblsh::eval
