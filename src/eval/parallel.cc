#include "eval/parallel.h"

#include <atomic>
#include <thread>

namespace dblsh::eval {

std::vector<std::vector<Neighbor>> ParallelQuery(const DbLsh& index,
                                                 const FloatMatrix& queries,
                                                 size_t k,
                                                 size_t num_threads) {
  const size_t q_count = queries.rows();
  std::vector<std::vector<Neighbor>> results(q_count);
  if (q_count == 0) return results;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, q_count);

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    DbLsh::QueryScratch scratch;  // one per thread: fully thread-safe path
    for (size_t q = next.fetch_add(1); q < q_count; q = next.fetch_add(1)) {
      results[q] = index.Query(queries.row(q), k, nullptr, &scratch);
    }
  };
  if (num_threads == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();
  return results;
}

}  // namespace dblsh::eval
