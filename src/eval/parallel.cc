#include "eval/parallel.h"

#include <utility>

namespace dblsh::eval {

std::vector<std::vector<Neighbor>> ParallelQuery(const DbLsh& index,
                                                 const FloatMatrix& queries,
                                                 size_t k,
                                                 size_t num_threads) {
  QueryRequest request;
  request.k = k;
  std::vector<QueryResponse> responses =
      index.QueryBatch(queries, request, num_threads);
  std::vector<std::vector<Neighbor>> results;
  results.reserve(responses.size());
  for (QueryResponse& response : responses) {
    results.push_back(std::move(response.neighbors));
  }
  return results;
}

}  // namespace dblsh::eval
