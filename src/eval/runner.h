#ifndef DBLSH_EVAL_RUNNER_H_
#define DBLSH_EVAL_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ann_index.h"
#include "dataset/float_matrix.h"
#include "util/status.h"

namespace dblsh::eval {

/// A ready-to-run experiment input: dataset, held-out queries, and exact
/// ground truth at the workload's k.
struct Workload {
  std::string name;
  FloatMatrix data;
  FloatMatrix queries;
  size_t k = 50;
  std::vector<std::vector<Neighbor>> ground_truth;
};

/// Builds a workload from raw data per the paper's protocol: hold out
/// `num_queries` random points as queries and compute exact k-NN.
Workload MakeWorkload(std::string name, FloatMatrix raw, size_t num_queries,
                      size_t k, uint64_t seed = 7);

/// Aggregated measurement of one method on one workload — one cell group of
/// the paper's Table IV.
struct MethodResult {
  std::string method;
  double indexing_time_sec = 0.0;
  double avg_query_ms = 0.0;
  double recall = 0.0;
  double overall_ratio = 1.0;
  double avg_candidates = 0.0;  ///< mean exact distance computations/query
  size_t hash_functions = 0;
};

/// Builds `index` on the workload's data and runs every query, averaging
/// metrics. On build failure the error is returned.
Result<MethodResult> RunMethod(AnnIndex* index, const Workload& workload);

/// The standard method lineup of the paper's evaluation (Table IV order),
/// constructed with the paper's default parameters for a dataset of size n.
/// `include_slow` adds methods the paper drops on large inputs.
std::vector<std::unique_ptr<AnnIndex>> MakePaperMethods(size_t n,
                                                        double c = 1.5);

}  // namespace dblsh::eval

#endif  // DBLSH_EVAL_RUNNER_H_
