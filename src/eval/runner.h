#ifndef DBLSH_EVAL_RUNNER_H_
#define DBLSH_EVAL_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ann_index.h"
#include "dataset/float_matrix.h"
#include "util/status.h"

namespace dblsh::eval {

/// A ready-to-run experiment input: dataset, held-out queries, and exact
/// ground truth at the workload's k.
struct Workload {
  std::string name;
  FloatMatrix data;
  FloatMatrix queries;
  size_t k = 50;
  std::vector<std::vector<Neighbor>> ground_truth;
};

/// Builds a workload from raw data per the paper's protocol: hold out
/// `num_queries` random points as queries and compute exact k-NN.
Workload MakeWorkload(std::string name, FloatMatrix raw, size_t num_queries,
                      size_t k, uint64_t seed = 7);

/// Aggregated measurement of one method on one workload — one cell group of
/// the paper's Table IV.
struct MethodResult {
  std::string method;
  double indexing_time_sec = 0.0;
  double avg_query_ms = 0.0;
  double recall = 0.0;
  double overall_ratio = 1.0;
  double avg_candidates = 0.0;  ///< mean exact distance computations/query
  size_t hash_functions = 0;
};

/// Builds `index` on the workload's data and runs every query through the
/// batched request/response API (single-threaded, so per-query latency
/// stays meaningful), averaging metrics. On build failure the error is
/// returned.
Result<MethodResult> RunMethod(AnnIndex* index, const Workload& workload);

/// Constructs the index from an IndexFactory spec string and runs it.
Result<MethodResult> RunSpec(const std::string& spec,
                             const Workload& workload);

/// IndexFactory specs of the paper's standard method lineup (Table IV
/// order) for a dataset of size n — the single source of the per-method
/// paper-default parameters the benches sweep.
std::vector<std::string> PaperMethodSpecs(size_t n, double c = 1.5);

/// The standard method lineup of the paper's evaluation (Table IV order),
/// built through IndexFactory from PaperMethodSpecs.
std::vector<std::unique_ptr<AnnIndex>> MakePaperMethods(size_t n,
                                                        double c = 1.5);

}  // namespace dblsh::eval

#endif  // DBLSH_EVAL_RUNNER_H_
