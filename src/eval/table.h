#ifndef DBLSH_EVAL_TABLE_H_
#define DBLSH_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace dblsh::eval {

/// Fixed-width console table used by every bench binary to print the same
/// rows the paper's tables/figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  std::string ToString() const;
  void Print() const;

  /// Comma-separated rendering (header row first) for plotting pipelines.
  /// Cells containing commas or quotes are quoted per RFC 4180.
  std::string ToCsv() const;

  /// Formatting helpers for numeric cells.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtMs(double ms);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dblsh::eval

#endif  // DBLSH_EVAL_TABLE_H_
