#ifndef DBLSH_EVAL_PARALLEL_H_
#define DBLSH_EVAL_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "core/db_lsh.h"
#include "dataset/float_matrix.h"
#include "util/top_k_heap.h"

namespace dblsh::eval {

/// Answers every row of `queries` against a built DB-LSH index at a
/// parallelism of `num_threads`, each participant with its own
/// QueryScratch (the index read path is immutable, so this is safe).
/// Results are in query order and bitwise identical to sequential
/// execution. `num_threads = 0` uses the hardware concurrency.
///
/// Thin forwarder over DbLsh::QueryBatch, kept for the eval runner's
/// historical call sites — since the executor refactor the fan-out runs
/// on exec::TaskExecutor::Default() (src/exec/), which owns every thread
/// in the process; this header adds no pool of its own.
std::vector<std::vector<Neighbor>> ParallelQuery(const DbLsh& index,
                                                 const FloatMatrix& queries,
                                                 size_t k,
                                                 size_t num_threads = 0);

}  // namespace dblsh::eval

#endif  // DBLSH_EVAL_PARALLEL_H_
