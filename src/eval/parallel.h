#ifndef DBLSH_EVAL_PARALLEL_H_
#define DBLSH_EVAL_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "core/db_lsh.h"
#include "dataset/float_matrix.h"
#include "util/top_k_heap.h"

namespace dblsh::eval {

/// Answers every row of `queries` against a built DB-LSH index using
/// `num_threads` worker threads, each with its own QueryScratch (the index
/// read path is immutable, so this is safe). Results are in query order and
/// bitwise identical to sequential execution. `num_threads = 0` uses the
/// hardware concurrency.
std::vector<std::vector<Neighbor>> ParallelQuery(const DbLsh& index,
                                                 const FloatMatrix& queries,
                                                 size_t k,
                                                 size_t num_threads = 0);

}  // namespace dblsh::eval

#endif  // DBLSH_EVAL_PARALLEL_H_
