#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace dblsh::eval {

namespace {
constexpr float kDistEps = 1e-4f;
}  // namespace

double OverallRatio(const std::vector<Neighbor>& returned,
                    const std::vector<Neighbor>& ground_truth) {
  if (ground_truth.empty()) return 1.0;
  double sum = 0.0;
  double worst = 1.0;
  size_t counted = 0;
  for (size_t i = 0; i < ground_truth.size(); ++i) {
    if (i >= returned.size()) break;
    const double exact = ground_truth[i].dist;
    double ratio = 1.0;
    if (exact > 0.0) {
      ratio = std::max(1.0, double(returned[i].dist) / exact);
    } else if (returned[i].dist > kDistEps) {
      ratio = 2.0;  // missed an exact duplicate entirely
    }
    sum += ratio;
    worst = std::max(worst, ratio);
    ++counted;
  }
  // Penalize missing ranks at the query's worst observed ratio.
  for (size_t i = counted; i < ground_truth.size(); ++i) sum += worst;
  return sum / static_cast<double>(ground_truth.size());
}

double Recall(const std::vector<Neighbor>& returned,
              const std::vector<Neighbor>& ground_truth) {
  if (ground_truth.empty()) return 1.0;
  // Two-pointer sweep over distance-sorted lists: a returned point matches
  // the ground truth when its distance is within tolerance of a true k-NN
  // distance not yet consumed.
  size_t matched = 0;
  size_t gi = 0;
  for (const Neighbor& r : returned) {
    while (gi < ground_truth.size() &&
           ground_truth[gi].dist < r.dist - kDistEps) {
      ++gi;
    }
    if (gi < ground_truth.size() &&
        std::fabs(ground_truth[gi].dist - r.dist) <= kDistEps) {
      ++matched;
      ++gi;
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(ground_truth.size());
}

}  // namespace dblsh::eval
