#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dblsh::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t j = 0; j < cells.size(); ++j) {
      out << "| " << cells[j];
      out << std::string(widths[j] - cells[j].size() + 1, ' ');
    }
    out << "|\n";
  };
  auto emit_rule = [&]() {
    for (size_t j = 0; j < widths.size(); ++j) {
      out << "+" << std::string(widths[j] + 2, '-');
    }
    out << "+\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t j = 0; j < cells.size(); ++j) {
      if (j > 0) out << ',';
      const std::string& cell = cells[j];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char c : cell) {
          if (c == '"') out << '"';
          out << c;
        }
        out << '"';
      } else {
        out << cell;
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::FmtMs(double ms) {
  char buf[64];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", ms);
  }
  return buf;
}

}  // namespace dblsh::eval
