#include "lsh/params.h"

#include <cmath>
#include <string>

#include "lsh/collision.h"

namespace dblsh::lsh {

Result<DerivedParams> DeriveParams(size_t n, double c, double w0, size_t t) {
  if (c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1, got " +
                                   std::to_string(c));
  }
  if (w0 <= 0.0) {
    return Status::InvalidArgument("initial bucket width w0 must be positive");
  }
  if (t < 1) return Status::InvalidArgument("candidate budget t must be >= 1");
  if (n <= t) {
    return Status::InvalidArgument("need n > t to derive (K, L)");
  }
  DerivedParams out;
  out.p1 = CollisionProbQueryCentric(1.0, w0);
  out.p2 = CollisionProbQueryCentric(c, w0);
  out.rho_star = std::log(1.0 / out.p1) / std::log(1.0 / out.p2);
  const double ratio = static_cast<double>(n) / static_cast<double>(t);
  out.k = static_cast<size_t>(
      std::ceil(std::log(ratio) / std::log(1.0 / out.p2)));
  out.k = std::max<size_t>(out.k, 1);
  out.l = static_cast<size_t>(std::ceil(std::pow(ratio, out.rho_star)));
  out.l = std::max<size_t>(out.l, 1);
  return out;
}

}  // namespace dblsh::lsh
