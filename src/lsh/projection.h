#ifndef DBLSH_LSH_PROJECTION_H_
#define DBLSH_LSH_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "dataset/float_matrix.h"

namespace dblsh::lsh {

/// A bank of `num_functions` independent 2-stable projections over
/// `dim`-dimensional input: the query-centric family h(o) = a.o of paper
/// Eq. 3. Each row of `directions()` is one vector a with i.i.d. N(0,1)
/// entries. DB-LSH uses L*K of these; the C2/MQ baselines reuse the same
/// bank with their own bucketing on top.
class ProjectionBank {
 public:
  /// Samples `num_functions` directions of dimensionality `dim`.
  ProjectionBank(size_t num_functions, size_t dim, uint64_t seed);

  /// Adopts pre-existing directions (one per row); used when loading a
  /// persisted index so queries reproduce the saved projections exactly.
  explicit ProjectionBank(FloatMatrix directions);

  size_t num_functions() const { return directions_.rows(); }
  size_t dim() const { return directions_.cols(); }

  /// Projects one point onto function `f`: returns a_f . o.
  float Project(size_t f, const float* point) const;

  /// Projects one point onto all functions; `out` must have length
  /// num_functions().
  void ProjectAll(const float* point, float* out) const;

  /// Projects an entire dataset: result is (data.rows() x num_functions()).
  FloatMatrix ProjectDataset(const FloatMatrix& data) const;

  const FloatMatrix& directions() const { return directions_; }

 private:
  FloatMatrix directions_;  // num_functions x dim
};

/// The static E2LSH family h(o) = floor((a.o + b) / w) of paper Eq. 1,
/// layered on a ProjectionBank with per-function uniform offsets b in [0, w).
class StaticHashFamily {
 public:
  StaticHashFamily(size_t num_functions, size_t dim, double w, uint64_t seed);

  size_t num_functions() const { return bank_.num_functions(); }
  double w() const { return w_; }
  const ProjectionBank& bank() const { return bank_; }

  /// Bucket index of `point` under function `f`.
  int64_t Hash(size_t f, const float* point) const;

  /// All bucket indices; `out` must have length num_functions().
  void HashAll(const float* point, int64_t* out) const;

 private:
  ProjectionBank bank_;
  std::vector<double> offsets_;
  double w_;
};

}  // namespace dblsh::lsh

#endif  // DBLSH_LSH_PROJECTION_H_
