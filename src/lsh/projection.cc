#include "lsh/projection.h"

#include <cassert>
#include <cmath>

#include "util/distance.h"
#include "util/random.h"

namespace dblsh::lsh {

ProjectionBank::ProjectionBank(FloatMatrix directions)
    : directions_(std::move(directions)) {
  assert(directions_.rows() > 0 && directions_.cols() > 0);
}

ProjectionBank::ProjectionBank(size_t num_functions, size_t dim,
                               uint64_t seed)
    : directions_(num_functions, dim) {
  assert(num_functions > 0 && dim > 0);
  Rng rng(seed);
  for (size_t f = 0; f < num_functions; ++f) {
    float* row = directions_.mutable_row(f);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(rng.Gaussian());
    }
  }
}

float ProjectionBank::Project(size_t f, const float* point) const {
  return DotProduct(directions_.row(f), point, directions_.cols());
}

void ProjectionBank::ProjectAll(const float* point, float* out) const {
  for (size_t f = 0; f < directions_.rows(); ++f) {
    out[f] = Project(f, point);
  }
}

FloatMatrix ProjectionBank::ProjectDataset(const FloatMatrix& data) const {
  assert(data.cols() == dim());
  FloatMatrix out(data.rows(), num_functions());
  for (size_t i = 0; i < data.rows(); ++i) {
    ProjectAll(data.row(i), out.mutable_row(i));
  }
  return out;
}

StaticHashFamily::StaticHashFamily(size_t num_functions, size_t dim, double w,
                                   uint64_t seed)
    : bank_(num_functions, dim, seed), w_(w) {
  assert(w > 0.0);
  Rng rng(seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  offsets_.resize(num_functions);
  for (auto& b : offsets_) b = rng.Uniform(0.0, w);
}

int64_t StaticHashFamily::Hash(size_t f, const float* point) const {
  const double v = (bank_.Project(f, point) + offsets_[f]) / w_;
  return static_cast<int64_t>(std::floor(v));
}

void StaticHashFamily::HashAll(const float* point, int64_t* out) const {
  for (size_t f = 0; f < bank_.num_functions(); ++f) {
    out[f] = Hash(f, point);
  }
}

}  // namespace dblsh::lsh
