#ifndef DBLSH_LSH_COLLISION_H_
#define DBLSH_LSH_COLLISION_H_

#include <cstddef>

namespace dblsh::lsh {

/// Collision probability of the *query-centric* hash family h(o) = a.o
/// (paper Eq. 4): two points at distance `tau` collide when their projections
/// differ by at most w/2, which happens with probability
/// 2*Phi(w/(2*tau)) - 1. `tau = 0` collides with probability 1.
double CollisionProbQueryCentric(double tau, double w);

/// Collision probability of the *static* E2LSH family
/// h(o) = floor((a.o + b)/w) (paper Eq. 2):
///   p(tau; w) = 2 * Integral_0^w (1/tau) f(t/tau) (1 - t/w) dt.
/// Evaluated in closed form via the normal cdf/pdf (equivalent to the
/// classic Datar et al. expression).
double CollisionProbStatic(double tau, double w);

/// rho = ln(1/p1) / ln(1/p2) for the query-centric family at distance pair
/// (r, c*r) and width w: the exponent governing L = n^rho (paper Lemma 1,
/// called rho* there when evaluated for the dynamic index).
double RhoQueryCentric(double r, double c, double w);

/// Same exponent for the static family (paper's rho).
double RhoStatic(double r, double c, double w);

/// alpha(gamma) = gamma * f(gamma) / Integral_gamma^inf f(x) dx
/// (paper Lemma 3): with bucket width w0 = 2*gamma*c^2, rho* is bounded by
/// 1/c^alpha. Monotonically increasing in gamma; alpha(2) = 4.746...
double AlphaForGamma(double gamma);

/// The paper's headline bound 1/c^alpha for width w0 = 2*gamma*c^2.
double RhoStarBound(double c, double gamma);

}  // namespace dblsh::lsh

#endif  // DBLSH_LSH_COLLISION_H_
