#ifndef DBLSH_LSH_GAUSSIAN_H_
#define DBLSH_LSH_GAUSSIAN_H_

#include <cmath>

namespace dblsh::lsh {

/// Standard normal pdf f(x) = exp(-x^2/2) / sqrt(2*pi).
inline double NormalPdf(double x) {
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

/// Standard normal cdf Phi(x).
inline double NormalCdf(double x) {
  return 0.5 * std::erfc(-x * 0.7071067811865476);  // 1/sqrt(2)
}

/// Upper tail integral of the standard normal pdf over [x, +inf).
inline double NormalUpperTail(double x) {
  return 0.5 * std::erfc(x * 0.7071067811865476);
}

}  // namespace dblsh::lsh

#endif  // DBLSH_LSH_GAUSSIAN_H_
