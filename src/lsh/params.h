#ifndef DBLSH_LSH_PARAMS_H_
#define DBLSH_LSH_PARAMS_H_

#include <cstddef>

#include "util/status.h"

namespace dblsh::lsh {

/// Theoretical (K, L) sizing for a query-centric dynamic (K,L)-index, per the
/// paper's Observation 1 and Lemma 1:
///   p1 = p(1; w0), p2 = p(c; w0),
///   rho* = ln(1/p1) / ln(1/p2),
///   K = ceil(log_{1/p2}(n/t)),  L = ceil((n/t)^{rho*}).
/// `t` is the per-index candidate budget constant of Remark 2 (the query
/// examines at most 2tL + 1 candidates).
struct DerivedParams {
  size_t k = 0;       ///< hash functions per compound hash G_i
  size_t l = 0;       ///< number of projected spaces / R*-trees
  double rho_star = 0.0;
  double p1 = 0.0;
  double p2 = 0.0;
};

/// Computes the theoretical parameters. Fails if c <= 1, w0 <= 0, t < 1 or
/// n <= t (the formulas need n/t > 1).
Result<DerivedParams> DeriveParams(size_t n, double c, double w0, size_t t);

}  // namespace dblsh::lsh

#endif  // DBLSH_LSH_PARAMS_H_
