#include "lsh/collision.h"

#include <cassert>
#include <cmath>

#include "lsh/gaussian.h"

namespace dblsh::lsh {

double CollisionProbQueryCentric(double tau, double w) {
  assert(w > 0.0);
  if (tau <= 0.0) return 1.0;
  return 2.0 * NormalCdf(w / (2.0 * tau)) - 1.0;
}

double CollisionProbStatic(double tau, double w) {
  assert(w > 0.0);
  if (tau <= 0.0) return 1.0;
  // Datar et al. closed form: with s = w / tau,
  //   p = 2*Phi(s) - 1 - (2/(sqrt(2*pi)*s)) * (1 - exp(-s^2/2)).
  const double s = w / tau;
  return 2.0 * NormalCdf(s) - 1.0 -
         2.0 / (std::sqrt(2.0 * M_PI) * s) * (1.0 - std::exp(-0.5 * s * s));
}

namespace {

double RhoFromProbs(double p1, double p2) {
  assert(p1 > 0.0 && p1 < 1.0 && p2 > 0.0 && p2 < 1.0);
  return std::log(1.0 / p1) / std::log(1.0 / p2);
}

}  // namespace

double RhoQueryCentric(double r, double c, double w) {
  // Computed via the complements q = 1 - p = 2 * tail(w / 2tau) so the
  // result stays finite when the collision probabilities approach 1 (large
  // widths such as the paper's w0 = 4c^2 with big c): ln(p) = log1p(-q).
  const double q1 = 2.0 * NormalUpperTail(w / (2.0 * r));
  const double q2 = 2.0 * NormalUpperTail(w / (2.0 * c * r));
  if (q2 <= 0.0) return 0.0;  // far probability indistinguishable from 1
  return std::log1p(-q1) / std::log1p(-q2);
}

double RhoStatic(double r, double c, double w) {
  return RhoFromProbs(CollisionProbStatic(r, w),
                      CollisionProbStatic(c * r, w));
}

double AlphaForGamma(double gamma) {
  assert(gamma > 0.0);
  return gamma * NormalPdf(gamma) / NormalUpperTail(gamma);
}

double RhoStarBound(double c, double gamma) {
  assert(c > 1.0);
  return std::pow(c, -AlphaForGamma(gamma));
}

}  // namespace dblsh::lsh
