#include "dataset/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace dblsh {

namespace {

/// Shared loop for fvecs/bvecs: both store `int32 dim` headers per record.
template <typename Component>
Result<FloatMatrix> LoadVecsFile(const std::string& path, size_t max_rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);

  FloatMatrix out;
  std::vector<Component> raw;
  std::vector<float> row;
  while (max_rows == 0 || out.rows() < max_rows) {
    int32_t dim = 0;
    if (!in.read(reinterpret_cast<char*>(&dim), sizeof(dim))) break;
    if (dim <= 0 || dim > (1 << 20)) {
      return Status::Corruption(path + ": bad record dimension " +
                                std::to_string(dim));
    }
    if (!out.empty() && static_cast<size_t>(dim) != out.cols()) {
      return Status::Corruption(path + ": inconsistent dimensions");
    }
    raw.resize(static_cast<size_t>(dim));
    if (!in.read(reinterpret_cast<char*>(raw.data()),
                 static_cast<std::streamsize>(raw.size() *
                                              sizeof(Component)))) {
      return Status::Corruption(path + ": truncated record");
    }
    row.assign(raw.begin(), raw.end());
    out.AppendRow(row.data(), row.size());
  }
  if (out.empty()) return Status::Corruption(path + ": no records");
  return out;
}

}  // namespace

Result<FloatMatrix> LoadFvecs(const std::string& path, size_t max_rows) {
  return LoadVecsFile<float>(path, max_rows);
}

Result<FloatMatrix> LoadBvecs(const std::string& path, size_t max_rows) {
  return LoadVecsFile<uint8_t>(path, max_rows);
}

Status SaveFvecs(const FloatMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const int32_t dim = static_cast<int32_t>(m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(m.row(i)),
              static_cast<std::streamsize>(m.cols() * sizeof(float)));
  }
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<FloatMatrix> LoadText(const std::string& path, size_t max_rows) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  FloatMatrix out;
  std::string line;
  std::vector<float> row;
  while ((max_rows == 0 || out.rows() < max_rows) && std::getline(in, line)) {
    if (line.empty()) continue;
    row.clear();
    std::istringstream ss(line);
    float v;
    while (ss >> v) row.push_back(v);
    if (row.empty()) continue;
    if (!out.empty() && row.size() != out.cols()) {
      return Status::Corruption(path + ": inconsistent dimensions");
    }
    out.AppendRow(row.data(), row.size());
  }
  if (out.empty()) return Status::Corruption(path + ": no records");
  return out;
}

}  // namespace dblsh
