#ifndef DBLSH_DATASET_IO_H_
#define DBLSH_DATASET_IO_H_

#include <string>

#include "dataset/float_matrix.h"
#include "util/status.h"

namespace dblsh {

/// Readers/writers for the interchange formats used by the public ANN
/// benchmark datasets (SIFT/GIST from corpus-texmex): `.fvecs` stores each
/// vector as `int32 dim` followed by `dim` little-endian floats; `.bvecs`
/// stores `int32 dim` followed by `dim` uint8 components (converted to float
/// on load). If the real datasets are available on disk they load through
/// these functions; otherwise the synthetic generators stand in.

/// Loads an .fvecs file. `max_rows = 0` means "all".
Result<FloatMatrix> LoadFvecs(const std::string& path, size_t max_rows = 0);

/// Writes a matrix as .fvecs.
Status SaveFvecs(const FloatMatrix& m, const std::string& path);

/// Loads a .bvecs file (uint8 components widened to float).
Result<FloatMatrix> LoadBvecs(const std::string& path, size_t max_rows = 0);

/// Loads whitespace-separated text, one vector per line.
Result<FloatMatrix> LoadText(const std::string& path, size_t max_rows = 0);

}  // namespace dblsh

#endif  // DBLSH_DATASET_IO_H_
