#include "dataset/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/random.h"

namespace dblsh {

FloatMatrix GenerateClustered(const ClusteredSpec& spec) {
  assert(spec.clusters > 0 && spec.n > 0 && spec.dim > 0);
  Rng rng(spec.seed);
  FloatMatrix centers(spec.clusters, spec.dim);
  for (size_t c = 0; c < spec.clusters; ++c) {
    float* row = centers.mutable_row(c);
    for (size_t j = 0; j < spec.dim; ++j) {
      row[j] = static_cast<float>(rng.Uniform(0.0, spec.center_spread));
    }
  }
  FloatMatrix out(spec.n, spec.dim);
  for (size_t i = 0; i < spec.n; ++i) {
    const float* center = centers.row(rng.UniformInt(spec.clusters));
    float* row = out.mutable_row(i);
    for (size_t j = 0; j < spec.dim; ++j) {
      row[j] = center[j] +
               static_cast<float>(rng.Gaussian(0.0, spec.cluster_stddev));
    }
  }
  return out;
}

FloatMatrix GenerateUniform(size_t n, size_t dim, double side, uint64_t seed) {
  Rng rng(seed);
  FloatMatrix out(n, dim);
  for (size_t i = 0; i < n; ++i) {
    float* row = out.mutable_row(i);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(rng.Uniform(0.0, side));
    }
  }
  return out;
}

FloatMatrix GenerateLowIntrinsicDim(size_t n, size_t dim, size_t intrinsic_dim,
                                    double noise, uint64_t seed) {
  assert(intrinsic_dim > 0 && intrinsic_dim <= dim);
  Rng rng(seed);
  // Random (not orthonormalized) basis: directions scaled so projected
  // coordinates have comparable magnitude to the clustered generator.
  FloatMatrix basis(intrinsic_dim, dim);
  for (size_t b = 0; b < intrinsic_dim; ++b) {
    float* row = basis.mutable_row(b);
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(rng.Gaussian() / std::sqrt(double(dim)));
    }
  }
  FloatMatrix out(n, dim);
  std::vector<double> coeff(intrinsic_dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t b = 0; b < intrinsic_dim; ++b) {
      coeff[b] = rng.Uniform(-50.0, 50.0);
    }
    float* row = out.mutable_row(i);
    for (size_t j = 0; j < dim; ++j) {
      double v = rng.Gaussian(0.0, noise);
      for (size_t b = 0; b < intrinsic_dim; ++b) {
        v += coeff[b] * basis.at(b, j);
      }
      row[j] = static_cast<float>(v);
    }
  }
  return out;
}

std::vector<DatasetProfile> PaperDatasetProfiles(double scale) {
  // Cardinalities are laptop-scale stand-ins preserving the *relative* sizes
  // of Table III (Audio smallest ... SIFT100M largest); dimensionalities are
  // the paper's. Cluster counts grow with n so density stays comparable.
  auto n = [scale](size_t base) {
    return std::max<size_t>(1000, static_cast<size_t>(base * scale));
  };
  // The center_spread column controls cluster overlap and therefore query
  // hardness (relative contrast / local intrinsic dimensionality): ~30
  // gives SIFT-like easy workloads (recall >= 0.9 at defaults), ~18-24
  // GIST/Deep-like middle ground, ~12 the NUS-like hard regime where the
  // paper reports all methods dropping to ~0.5 recall.
  return {
      {"Audio", n(5000), 192, 16, 30.0, 2.0},
      {"MNIST", n(6000), 784, 16, 24.0, 2.0},
      {"Cifar", n(6000), 1024, 16, 24.0, 2.0},
      {"Trevi", n(10000), 512, 24, 24.0, 2.0},  // paper: 4096-d; capped
      {"NUS", n(12000), 500, 24, 12.0, 2.0},    // hard: overlapping clusters
      {"Deep1M", n(40000), 256, 48, 20.0, 2.0},
      {"Gist", n(40000), 960, 48, 18.0, 2.0},
      {"SIFT10M", n(100000), 128, 64, 30.0, 2.0},
      {"TinyImages80M", n(150000), 384, 96, 22.0, 2.0},
      {"SIFT100M", n(200000), 128, 96, 30.0, 2.0},
  };
}

FloatMatrix GenerateProfile(const DatasetProfile& profile, uint64_t seed) {
  ClusteredSpec spec;
  spec.n = profile.n;
  spec.dim = profile.dim;
  spec.clusters = profile.clusters;
  spec.center_spread = profile.center_spread;
  spec.cluster_stddev = profile.cluster_stddev;
  spec.seed = seed;
  return GenerateClustered(spec);
}

void SplitQueries(const FloatMatrix& data, size_t num_queries, uint64_t seed,
                  FloatMatrix* dataset, FloatMatrix* queries) {
  assert(num_queries < data.rows());
  Rng rng(seed);
  std::vector<size_t> order(data.rows());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates over the head: only the first num_queries slots matter.
  for (size_t i = 0; i < num_queries; ++i) {
    const size_t j = i + rng.UniformInt(order.size() - i);
    std::swap(order[i], order[j]);
  }
  std::vector<bool> is_query(data.rows(), false);
  *queries = FloatMatrix(num_queries, data.cols());
  for (size_t i = 0; i < num_queries; ++i) {
    is_query[order[i]] = true;
    std::copy_n(data.row(order[i]), data.cols(), queries->mutable_row(i));
  }
  *dataset = FloatMatrix();
  for (size_t i = 0; i < data.rows(); ++i) {
    if (!is_query[i]) dataset->AppendRow(data.row(i), data.cols());
  }
}

}  // namespace dblsh
