#ifndef DBLSH_DATASET_SYNTHETIC_H_
#define DBLSH_DATASET_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/float_matrix.h"

namespace dblsh {

/// Synthetic workload generators standing in for the paper's public datasets
/// (SIFT, GIST, Audio, MNIST, ...). LSH behaviour is governed by the
/// distance distribution of the data — in particular relative contrast and
/// local intrinsic dimensionality — so the generators expose those knobs
/// directly: a Gaussian mixture with `clusters` components of spread
/// `cluster_stddev` embedded in a `dim`-dimensional space produces the
/// clustered, low-intrinsic-dimension geometry real descriptor datasets
/// exhibit, while `Uniform` produces the hard, high-contrast regime.

/// Parameters for the Gaussian-mixture ("clustered") generator.
struct ClusteredSpec {
  size_t n = 10000;           ///< number of points
  size_t dim = 64;            ///< ambient dimensionality
  size_t clusters = 20;       ///< mixture components
  double center_spread = 100.0;  ///< centers ~ U[0, center_spread)^dim
  double cluster_stddev = 2.0;   ///< per-coordinate point spread
  uint64_t seed = 7;
};

/// Gaussian-mixture cloud: the default stand-in for descriptor datasets.
FloatMatrix GenerateClustered(const ClusteredSpec& spec);

/// Points uniform in [0, side)^dim — worst-case "no structure" workload.
FloatMatrix GenerateUniform(size_t n, size_t dim, double side = 100.0,
                            uint64_t seed = 7);

/// Low intrinsic dimensionality: points live near a random
/// `intrinsic_dim`-dimensional affine subspace plus isotropic noise. Mimics
/// datasets like Trevi/NUS whose descriptors occupy a thin manifold.
FloatMatrix GenerateLowIntrinsicDim(size_t n, size_t dim,
                                    size_t intrinsic_dim, double noise = 0.5,
                                    uint64_t seed = 7);

/// A named stand-in profile for one of the paper's ten datasets (Table III),
/// with the cardinality scaled by `scale` (1.0 reproduces laptop-scale
/// defaults listed in DESIGN.md, not the paper's raw sizes).
struct DatasetProfile {
  std::string name;    ///< paper dataset name, e.g. "Gist"
  size_t n;            ///< stand-in cardinality
  size_t dim;          ///< true paper dimensionality
  size_t clusters;     ///< mixture components used for the stand-in
  double center_spread;  ///< hardness knob: smaller spread -> more cluster
                         ///< overlap -> lower relative contrast (NUS-like)
  double cluster_stddev;
};

/// The ten Table III profiles at laptop scale. `scale` multiplies n.
std::vector<DatasetProfile> PaperDatasetProfiles(double scale = 1.0);

/// Materializes the stand-in dataset for a profile.
FloatMatrix GenerateProfile(const DatasetProfile& profile, uint64_t seed = 7);

/// Splits `data` into (dataset, queries) by removing `num_queries` random
/// rows, matching the paper's protocol ("randomly select 100 points as
/// queries and remove them from the datasets").
void SplitQueries(const FloatMatrix& data, size_t num_queries, uint64_t seed,
                  FloatMatrix* dataset, FloatMatrix* queries);

}  // namespace dblsh

#endif  // DBLSH_DATASET_SYNTHETIC_H_
