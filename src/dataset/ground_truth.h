#ifndef DBLSH_DATASET_GROUND_TRUTH_H_
#define DBLSH_DATASET_GROUND_TRUTH_H_

#include <vector>

#include "dataset/float_matrix.h"
#include "util/top_k_heap.h"

namespace dblsh {

/// Exact k nearest neighbors of `query` in `data` by linear scan.
std::vector<Neighbor> ExactKnn(const FloatMatrix& data, const float* query,
                               size_t k);

/// Exact k-NN for a batch of queries; `out[i]` are the sorted neighbors of
/// query i. This is the ground truth for recall / overall-ratio metrics.
std::vector<std::vector<Neighbor>> ComputeGroundTruth(const FloatMatrix& data,
                                                      const FloatMatrix& queries,
                                                      size_t k);

/// Cheap estimate of the typical nearest-neighbor distance: median over
/// `probes` random points of the minimum distance to `scan` random others.
/// Slightly biased upward (the scan is a subsample), which is the safe
/// direction for radius-ladder initialization. Used by DB-LSH and several
/// baselines to auto-scale their radius ladders to the data.
double EstimateNnDistance(const FloatMatrix& data, uint64_t seed,
                          size_t probes = 24, size_t scan = 1024);

}  // namespace dblsh

#endif  // DBLSH_DATASET_GROUND_TRUTH_H_
