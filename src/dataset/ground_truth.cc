#include "dataset/ground_truth.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "core/verify.h"
#include "util/distance.h"
#include "util/random.h"

namespace dblsh {

std::vector<Neighbor> ExactKnn(const FloatMatrix& data, const float* query,
                               size_t k) {
  TopKHeap heap(k);
  VerifyCandidates(query, data, /*ids=*/nullptr, data.rows(), VerifyOptions(),
                   &heap, /*stats=*/nullptr);
  return heap.TakeSorted();
}

std::vector<std::vector<Neighbor>> ComputeGroundTruth(
    const FloatMatrix& data, const FloatMatrix& queries, size_t k) {
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = ExactKnn(data, queries.row(q), k);
  }
  return out;
}

double EstimateNnDistance(const FloatMatrix& data, uint64_t seed,
                          size_t probes, size_t scan) {
  const size_t n = data.rows();
  if (n < 2) return 1.0;
  Rng rng(seed);
  probes = std::min(probes, n);
  scan = std::min(scan, n);
  std::vector<double> nn_dists;
  nn_dists.reserve(probes);
  for (size_t p = 0; p < probes; ++p) {
    const size_t qi = rng.UniformInt(n);
    float best = std::numeric_limits<float>::max();
    for (size_t s = 0; s < scan; ++s) {
      const size_t oi = rng.UniformInt(n);
      if (oi == qi) continue;
      best = std::min(best,
                      L2Distance(data.row(qi), data.row(oi), data.cols()));
    }
    if (best < std::numeric_limits<float>::max()) nn_dists.push_back(best);
  }
  if (nn_dists.empty()) return 1.0;
  std::nth_element(nn_dists.begin(), nn_dists.begin() + nn_dists.size() / 2,
                   nn_dists.end());
  return std::max(1e-6, nn_dists[nn_dists.size() / 2]);
}

}  // namespace dblsh
