#ifndef DBLSH_DATASET_VECTOR_STORE_H_
#define DBLSH_DATASET_VECTOR_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/float_matrix.h"
#include "util/status.h"

namespace dblsh {

/// Storage backends a VectorStore can be built as (Collection spec key
/// `storage=fp32|sq8|pq`).
enum class StorageKind : int {
  kFp32 = 0,  ///< raw fp32 rows — byte-identical to the pre-store layout
  kSq8 = 1,   ///< per-dimension scalar-quantized u8 rows (~4x compression)
  kPq = 2,    ///< product-quantized m-byte rows (~16x at dim 128 / m 16)
};

/// Stable name of a storage backend ("fp32", "sq8", "pq"); serialized into
/// v3/v4 index files and reported by stats surfaces.
const char* StorageKindName(StorageKind kind);

/// Parses a `storage=` spec value ("fp32" | "sq8" | "pq") into a
/// StorageKind.
Result<StorageKind> ParseStorageKind(const std::string& name);

/// Owns one shard's row bytes behind the FloatMatrix that the rest of the
/// system keeps talking to. The matrix remains the source of truth for
/// *shape* — ids, tombstones, the LIFO free-list — while the store decides
/// how the payload is represented:
///
/// - **Fp32Store** keeps the payload inside the matrix, bit-identical to
///   the pre-store code: same bytes, same kernels, same results.
/// - **Sq8Store** scalar-quantizes each row to one byte per dimension
///   (per-dimension offset/scale trained on the seed rows) and *releases*
///   the matrix's fp32 payload — the matrix becomes a metadata shell
///   (FloatMatrix::payload_released()), which is what makes the ~4x memory
///   saving real instead of an extra copy.
///
/// Query-time integration is through the shared verification path
/// (core/verify.cc): the store binds itself to its matrix
/// (FloatMatrix::BindStore), and VerifyCandidates scores candidates via
/// PrepareQuery/ScoreBatch whenever the bound store is quantized() —
/// identical tombstone/filter/budget semantics, different bytes scanned.
/// Index builds (hashing, projections) keep reading fp32 through a decode
/// view (ScopedDecodeView) so every method works against either backend
/// with zero per-method code.
///
/// Thread-safety mirrors FloatMatrix: reads (ScoreBatch, ExactL2Squared,
/// DecodeRow, DecodedCopy, stats) may run concurrently; mutations
/// (InsertRow/EraseRow, Materialize/ReleaseDecodeView) must be externally
/// serialized against them (the Collection's per-shard writer lock).
class VectorStore {
 public:
  virtual ~VectorStore();

  VectorStore(const VectorStore&) = delete;
  VectorStore& operator=(const VectorStore&) = delete;

  /// Which backend this store is.
  virtual StorageKind storage_kind() const = 0;

  /// StorageKindName(storage_kind()).
  const char* kind_name() const { return StorageKindName(storage_kind()); }

  /// True when rows are stored quantized: verification scores through
  /// PrepareQuery/ScoreBatch and search results should be re-ranked with
  /// ExactL2Squared (Collection does both automatically).
  virtual bool quantized() const = 0;

  /// The logical matrix (ids, tombstones, free-list; payload too for
  /// fp32). Address-stable for the life of the store — indexes keep raw
  /// pointers to it across rebinds.
  FloatMatrix& matrix() { return *matrix_; }
  const FloatMatrix& matrix() const { return *matrix_; }

  /// Payload bytes per vector slot (fp32: 4*dim, sq8: dim).
  virtual size_t bytes_per_vector() const = 0;

  /// Heap bytes currently resident in this store: payload plus
  /// quantization parameters plus tombstone bookkeeping.
  virtual size_t resident_bytes() const = 0;

  /// Inserts one vector of matrix().cols() floats, recycling the most
  /// recently tombstoned slot like FloatMatrix::InsertRow (same LIFO
  /// contract), quantizing on write for quantized stores. Returns the id
  /// now holding the vector.
  virtual uint32_t InsertRow(const float* values, size_t len) = 0;

  /// Tombstones row `id` (exact FloatMatrix::EraseRow semantics).
  virtual Status EraseRow(size_t id) = 0;

  /// Physically drops every trailing tombstoned row, shrinking the payload
  /// to match (FloatMatrix::TrimTombstonedTail plus the backend's own code
  /// array for quantized stores). Mutation: caller holds the writer lock
  /// and must swap/rebuild indexes in the same critical section. Returns
  /// rows removed.
  virtual size_t TrimTombstonedTail() = 0;

  /// Reconstructs row `id` as fp32 into out[0..matrix().cols()). Exact for
  /// fp32; the quantized reconstruction for sq8.
  virtual void DecodeRow(uint32_t id, float* out) const = 0;

  /// Exact squared L2 distance between the raw fp32 `query` and row `id`'s
  /// stored representation (decoded on the fly for sq8) — the re-rank
  /// scorer. No query quantization error.
  virtual float ExactL2Squared(const float* query, uint32_t id) const = 0;

  /// Prepares `query` once per query for repeated ScoreBatch calls,
  /// resizing `*prep` as needed. For sq8 this quantizes the query and
  /// premultiplies by the per-dimension scales; for fp32 it is a plain
  /// copy (ScoreBatch ignores the distinction).
  virtual void PrepareQuery(const float* query,
                            std::vector<float>* prep) const = 0;

  /// out[i] = squared distance between the prepared query and candidate i,
  /// where candidates are rows ids[0..n) when `ids != nullptr` and the
  /// contiguous rows [start, start + n) otherwise. For fp32 this is the
  /// exact L2; for sq8 the symmetric quantized score (both sides in code
  /// space), which is what the hot path scans.
  virtual void ScoreBatch(const float* prep, size_t start,
                          const uint32_t* ids, size_t n,
                          float* out) const = 0;

  /// Materializes decoded fp32 rows into the matrix so index builds can
  /// read matrix().row() (no-op for fp32). Mutation: caller holds the
  /// writer lock. Balanced by ReleaseDecodeView(); use ScopedDecodeView.
  virtual void MaterializeDecodeView() = 0;
  /// Releases a MaterializeDecodeView() payload (no-op for fp32).
  virtual void ReleaseDecodeView() = 0;

  /// A standalone fp32 matrix with this store's decoded rows and exact
  /// tombstone state (free-list replayed in erasure order). The basis for
  /// background-rebuild snapshots and Collection::Snapshot. The returned
  /// matrix carries no store binding.
  virtual FloatMatrix DecodedCopy() const = 0;

  /// Re-derives the quantization parameters from the rows currently live
  /// and re-encodes every physical row, so a drifting insert stream stops
  /// degrading into clamped codes. Deterministic: the new codes are a pure
  /// function of the old codes + params, which is what lets WAL replay
  /// (WalOp::kRetrain) and replication reproduce them byte-identically.
  /// Returns true when the parameters changed (no-op for fp32 and for
  /// stores with no live rows). Mutation: caller holds the writer lock and
  /// rebuilds indexes afterwards.
  virtual bool RetrainQuantizer() { return false; }

 protected:
  /// Adopts `matrix` (never null) and binds this store to it.
  explicit VectorStore(std::unique_ptr<FloatMatrix> matrix);

  std::unique_ptr<FloatMatrix> matrix_;
};

/// RAII pairing of MaterializeDecodeView/ReleaseDecodeView around an index
/// build. Caller holds the shard's writer lock for the whole scope.
class ScopedDecodeView {
 public:
  explicit ScopedDecodeView(VectorStore* store) : store_(store) {
    store_->MaterializeDecodeView();
  }
  ~ScopedDecodeView() { store_->ReleaseDecodeView(); }

  ScopedDecodeView(const ScopedDecodeView&) = delete;
  ScopedDecodeView& operator=(const ScopedDecodeView&) = delete;

 private:
  VectorStore* store_;
};

/// The identity backend: payload stays in the FloatMatrix, every operation
/// forwards to it, and verification takes the exact pre-store fp32 path —
/// `storage=fp32` is bit-identical to the historical collection.
class Fp32Store final : public VectorStore {
 public:
  /// Adopts `data` without copying — the matrix address stays stable, so
  /// indexes built over it before the hand-off stay valid
  /// (Collection::AddPrebuiltIndex relies on this).
  explicit Fp32Store(std::unique_ptr<FloatMatrix> data);

  StorageKind storage_kind() const override { return StorageKind::kFp32; }
  bool quantized() const override { return false; }
  size_t bytes_per_vector() const override;
  size_t resident_bytes() const override;
  uint32_t InsertRow(const float* values, size_t len) override;
  Status EraseRow(size_t id) override;
  size_t TrimTombstonedTail() override;
  void DecodeRow(uint32_t id, float* out) const override;
  float ExactL2Squared(const float* query, uint32_t id) const override;
  void PrepareQuery(const float* query,
                    std::vector<float>* prep) const override;
  void ScoreBatch(const float* prep, size_t start, const uint32_t* ids,
                  size_t n, float* out) const override;
  void MaterializeDecodeView() override {}
  void ReleaseDecodeView() override {}
  FloatMatrix DecodedCopy() const override;
};

/// Scalar-quantized backend: row bytes live in a dim-byte-per-row code
/// array; the adopted matrix keeps only metadata (payload released).
///
/// Quantization: per-dimension affine codes trained on the seed rows —
/// offset[d] = min over rows, scale[d] = (max - min) / 255 (1.0 when the
/// dimension is constant), code = round((v - offset) / scale) clamped to
/// [0, 255]. Reconstruction error is at most scale[d]/2 per dimension for
/// in-range values; vectors inserted later that fall outside the trained
/// range clamp (their error can exceed the bound — re-rank still orders
/// whatever the codes admit as candidates). A store constructed over an
/// empty matrix trains on its first InsertRow (degenerate single-point
/// range: scale 1.0 around that vector) — seed a representative sample
/// when possible.
///
/// Updates: in-place index maintenance (AnnIndex::Insert reading fp32
/// rows) is unavailable over a released payload; the Collection treats
/// every slot as static under sq8 and relies on staleness-triggered
/// rebuilds through the decode view.
class Sq8Store final : public VectorStore {
 public:
  /// Trains on `seed`'s rows, encodes them, and releases the seed's fp32
  /// payload. The seed's tombstone state is preserved as-is.
  explicit Sq8Store(std::unique_ptr<FloatMatrix> seed);

  /// Restores a store from persisted quantization parameters (v3 index
  /// load): re-encodes `data`'s rows with the *saved* scale/offset instead
  /// of re-training, then releases the payload. `scale`/`offset` must have
  /// data->cols() entries.
  Sq8Store(std::unique_ptr<FloatMatrix> data, std::vector<float> scale,
           std::vector<float> offset);

  /// Adopts persisted code bytes directly (durability snapshot restore):
  /// `shell` is a payload-released metadata matrix (ids, tombstones,
  /// free-list) whose fp32 bytes were never materialized, and `codes` are
  /// its shell->rows() * shell->cols() quantized bytes verbatim — no
  /// re-encoding, so the restored store is byte-identical to the one that
  /// was snapshotted. `trained` round-trips the empty-seeded flag.
  Sq8Store(std::unique_ptr<FloatMatrix> shell, std::vector<float> scale,
           std::vector<float> offset, std::vector<uint8_t> codes,
           bool trained);

  StorageKind storage_kind() const override { return StorageKind::kSq8; }
  bool quantized() const override { return true; }
  size_t bytes_per_vector() const override;
  size_t resident_bytes() const override;
  uint32_t InsertRow(const float* values, size_t len) override;
  Status EraseRow(size_t id) override;
  size_t TrimTombstonedTail() override;
  void DecodeRow(uint32_t id, float* out) const override;
  float ExactL2Squared(const float* query, uint32_t id) const override;
  void PrepareQuery(const float* query,
                    std::vector<float>* prep) const override;
  void ScoreBatch(const float* prep, size_t start, const uint32_t* ids,
                  size_t n, float* out) const override;
  void MaterializeDecodeView() override;
  void ReleaseDecodeView() override;
  FloatMatrix DecodedCopy() const override;
  bool RetrainQuantizer() override;

  /// Per-dimension quantization parameters (persisted in v3 index files).
  const std::vector<float>& scales() const { return scale_; }
  const std::vector<float>& offsets() const { return offset_; }
  /// Raw code bytes, row r at codes()[r * dim .. r * dim + dim) — the v3
  /// checksum basis.
  const std::vector<uint8_t>& codes() const { return codes_; }
  /// False until the first row trains the scale/offset (empty-seeded
  /// stores only).
  bool trained() const { return trained_; }

 private:
  /// Derives scale_/offset_ from the per-dimension min/max of `m`'s rows.
  void Train(const FloatMatrix& m);
  /// Quantizes one fp32 row into codes_[id * dim ..).
  void EncodeRow(const float* values, uint32_t id);

  std::vector<uint8_t> codes_;  ///< rows x dim, tombstoned slots included
  std::vector<float> scale_;    ///< per-dimension, > 0
  std::vector<float> offset_;   ///< per-dimension
  bool trained_ = false;
};

/// Product-quantized backend: each row is split into `m` contiguous
/// subspaces and stored as one byte per subspace — the index of the
/// nearest centroid in that subspace's 256-entry codebook (nbits = 8).
/// The adopted matrix keeps only metadata (payload released), so memory
/// per vector drops from 4*dim bytes to m bytes (~16x at dim 128 / m 16).
///
/// Subspace split: balanced ragged — the first dim % m subspaces get
/// ceil(dim/m) dimensions, the rest floor(dim/m) — so any dim >= m works
/// without padding, and the concatenated codebooks always total 256 * dim
/// floats regardless of the split.
///
/// Training: deterministic per-subspace k-means (Lloyd) over the seed
/// rows, capped at a fixed-size deterministic sample. Initial centroids
/// are evenly strided over the sample; with fewer rows than centroids the
/// surplus centroids duplicate existing rows (every seed row then encodes
/// exactly). Empty clusters keep their previous centroid, and distance
/// ties assign to the lowest centroid index, so the codebooks are a pure
/// function of the training rows — the determinism WAL replay and
/// replication rely on (see RetrainQuantizer).
///
/// Scoring: PrepareQuery computes the ADC lookup table — m x 256 squared
/// sub-distances from the query to every centroid — once per query, in
/// plain scalar arithmetic so it is identical on every SIMD tier; the
/// ScoreBatch hot path is then pure table accumulation (simd pq_adc_scan
/// kernels, bit-identical across tiers). Unlike SQ8 the query side is
/// never quantized, so ADC scores are exact on the query side; re-rank
/// (ExactL2Squared) re-scores against the same reconstruction and exists
/// for ordering stability under the shared rerank=N machinery.
///
/// Updates mirror Sq8Store: in-place index maintenance is unavailable
/// over a released payload, slots are static, rebuilds read through the
/// decode view. An empty-seeded store trains on its first InsertRow
/// (degenerate single-point codebooks) — seed a representative sample
/// when possible.
class PqStore final : public VectorStore {
 public:
  /// Centroids per subspace (nbits = 8 — the one code width the 1-byte
  /// layout and the ADC kernels support).
  static constexpr size_t kCentroids = 256;
  /// Deterministic training-sample cap: k-means trains on the first
  /// kTrainSample qualifying rows (all seed rows when fewer).
  static constexpr size_t kTrainSample = 16384;

  /// Trains codebooks on `seed`'s rows (all physical rows, like SQ8's
  /// range), encodes them, and releases the seed's fp32 payload. `m` must
  /// be in [1, seed->cols()]. The seed's tombstone state is preserved.
  PqStore(std::unique_ptr<FloatMatrix> seed, size_t m);

  /// Restores a store from persisted codebooks (v4 index load):
  /// re-encodes `data`'s rows with the *saved* codebooks instead of
  /// re-training, then releases the payload. `codebooks` must have
  /// 256 * data->cols() floats.
  PqStore(std::unique_ptr<FloatMatrix> data, size_t m,
          std::vector<float> codebooks);

  /// Adopts persisted code bytes directly (durability snapshot restore):
  /// `shell` is a payload-released metadata matrix and `codes` are its
  /// shell->rows() * m code bytes verbatim — no re-encoding, so the
  /// restored store is byte-identical to the one that was snapshotted.
  PqStore(std::unique_ptr<FloatMatrix> shell, size_t m,
          std::vector<float> codebooks, std::vector<uint8_t> codes,
          bool trained);

  StorageKind storage_kind() const override { return StorageKind::kPq; }
  bool quantized() const override { return true; }
  size_t bytes_per_vector() const override;
  size_t resident_bytes() const override;
  uint32_t InsertRow(const float* values, size_t len) override;
  Status EraseRow(size_t id) override;
  size_t TrimTombstonedTail() override;
  void DecodeRow(uint32_t id, float* out) const override;
  float ExactL2Squared(const float* query, uint32_t id) const override;
  void PrepareQuery(const float* query,
                    std::vector<float>* prep) const override;
  void ScoreBatch(const float* prep, size_t start, const uint32_t* ids,
                  size_t n, float* out) const override;
  void MaterializeDecodeView() override;
  void ReleaseDecodeView() override;
  FloatMatrix DecodedCopy() const override;
  bool RetrainQuantizer() override;

  /// Number of subspaces (= code bytes per row).
  size_t m() const { return m_; }
  /// Concatenated sub-quantizer codebooks: subspace j's centroid c spans
  /// codebooks()[256 * sub_begin(j) + c * sub_dim(j) ..), totalling
  /// 256 * dim floats. The v4 persistence payload.
  const std::vector<float>& codebooks() const { return codebooks_; }
  /// Raw code bytes, row r at codes()[r * m .. r * m + m) — the v4
  /// checksum basis and the durability snapshot payload.
  const std::vector<uint8_t>& codes() const { return codes_; }
  /// False until the first row trains the codebooks (empty-seeded stores
  /// only).
  bool trained() const { return trained_; }
  /// First dimension of subspace j (j in [0, m]; sub_begin(m) == dim).
  size_t sub_begin(size_t j) const { return sub_begin_[j]; }
  /// Width of subspace j.
  size_t sub_dim(size_t j) const { return sub_begin_[j + 1] - sub_begin_[j]; }

 private:
  /// Derives codebooks_ by deterministic k-means over `rows` (row ids into
  /// `m`, pre-filtered and capped by the caller).
  void Train(const FloatMatrix& data, const std::vector<uint32_t>& rows);
  /// Encodes one fp32 row into codes_[id * m ..) (nearest centroid per
  /// subspace, lowest index on ties).
  void EncodeRow(const float* values, uint32_t id);
  /// Fills the balanced ragged subspace bounds for the matrix's dim.
  void InitSubspaces();

  std::vector<uint8_t> codes_;      ///< rows x m, tombstoned slots included
  std::vector<float> codebooks_;    ///< 256 * dim, per-subspace blocks
  std::vector<size_t> sub_begin_;   ///< m + 1 subspace dimension bounds
  size_t m_ = 0;
  bool trained_ = false;
};

/// Constructs the requested backend over `data` (see Fp32Store / Sq8Store
/// / PqStore for adoption semantics). `pq_m` is the PQ subspace count,
/// ignored by the other backends.
std::unique_ptr<VectorStore> MakeVectorStore(StorageKind kind,
                                             std::unique_ptr<FloatMatrix> data,
                                             size_t pq_m = 16);

}  // namespace dblsh

#endif  // DBLSH_DATASET_VECTOR_STORE_H_
