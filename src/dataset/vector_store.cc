#include "dataset/vector_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "simd/simd.h"

namespace dblsh {
namespace {

/// Tombstone bookkeeping bytes a matrix carries (approximate: the lazy
/// deleted_ bitmap is one byte per row once any tombstone exists, the
/// free-list four bytes per entry). Shared by both backends' stats.
size_t MatrixBookkeepingBytes(const FloatMatrix& m) {
  return (m.has_tombstones() ? m.rows() * sizeof(uint8_t) : 0) +
         m.free_slots().size() * sizeof(uint32_t);
}

}  // namespace

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kFp32:
      return "fp32";
    case StorageKind::kSq8:
      return "sq8";
    case StorageKind::kPq:
      return "pq";
  }
  return "unknown";
}

Result<StorageKind> ParseStorageKind(const std::string& name) {
  if (name == "fp32") return StorageKind::kFp32;
  if (name == "sq8") return StorageKind::kSq8;
  if (name == "pq") return StorageKind::kPq;
  return Status::InvalidArgument(
      "storage backend \"" + name + "\" is not recognized (expected fp32, "
      "sq8 or pq)");
}

VectorStore::VectorStore(std::unique_ptr<FloatMatrix> matrix)
    : matrix_(std::move(matrix)) {
  assert(matrix_ != nullptr);
  matrix_->BindStore(this);
}

VectorStore::~VectorStore() {
  // Unbind defensively: the matrix is destroyed with us, but a caller that
  // moved it out beforehand must not keep a dangling store pointer.
  if (matrix_ != nullptr) matrix_->BindStore(nullptr);
}

// ---------------------------------------------------------------- fp32 ----

Fp32Store::Fp32Store(std::unique_ptr<FloatMatrix> data)
    : VectorStore(std::move(data)) {}

size_t Fp32Store::bytes_per_vector() const {
  return matrix_->cols() * sizeof(float);
}

size_t Fp32Store::resident_bytes() const {
  return matrix_->data().capacity() * sizeof(float) +
         MatrixBookkeepingBytes(*matrix_);
}

uint32_t Fp32Store::InsertRow(const float* values, size_t len) {
  return matrix_->InsertRow(values, len);
}

Status Fp32Store::EraseRow(size_t id) { return matrix_->EraseRow(id); }

size_t Fp32Store::TrimTombstonedTail() {
  return matrix_->TrimTombstonedTail();
}

void Fp32Store::DecodeRow(uint32_t id, float* out) const {
  const float* row = matrix_->row(id);
  std::copy(row, row + matrix_->cols(), out);
}

float Fp32Store::ExactL2Squared(const float* query, uint32_t id) const {
  return simd::Active().l2_squared(query, matrix_->row(id), matrix_->cols());
}

void Fp32Store::PrepareQuery(const float* query,
                             std::vector<float>* prep) const {
  prep->assign(query, query + matrix_->cols());
}

void Fp32Store::ScoreBatch(const float* prep, size_t start,
                           const uint32_t* ids, size_t n, float* out) const {
  const size_t dim = matrix_->cols();
  const float* base = matrix_->data().data();
  if (ids != nullptr) {
    simd::Active().l2_squared_batch(prep, base, dim, ids, n, out);
  } else {
    simd::Active().l2_squared_batch(prep, base + start * dim, dim, nullptr,
                                    n, out);
  }
}

FloatMatrix Fp32Store::DecodedCopy() const {
  return *matrix_;  // the copy drops the store binding by construction
}

// ----------------------------------------------------------------- sq8 ----

Sq8Store::Sq8Store(std::unique_ptr<FloatMatrix> seed)
    : VectorStore(std::move(seed)) {
  const size_t dim = matrix_->cols();
  scale_.assign(dim, 1.0f);
  offset_.assign(dim, 0.0f);
  if (matrix_->rows() > 0) {
    Train(*matrix_);
    codes_.resize(matrix_->rows() * dim);
    for (size_t r = 0; r < matrix_->rows(); ++r) {
      EncodeRow(matrix_->row(r), static_cast<uint32_t>(r));
    }
  }
  matrix_->ReleasePayload();
}

Sq8Store::Sq8Store(std::unique_ptr<FloatMatrix> data,
                   std::vector<float> scale, std::vector<float> offset)
    : VectorStore(std::move(data)),
      scale_(std::move(scale)),
      offset_(std::move(offset)) {
  const size_t dim = matrix_->cols();
  assert(scale_.size() == dim && offset_.size() == dim);
  trained_ = true;
  codes_.resize(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    EncodeRow(matrix_->row(r), static_cast<uint32_t>(r));
  }
  matrix_->ReleasePayload();
}

Sq8Store::Sq8Store(std::unique_ptr<FloatMatrix> shell,
                   std::vector<float> scale, std::vector<float> offset,
                   std::vector<uint8_t> codes, bool trained)
    : VectorStore(std::move(shell)),
      codes_(std::move(codes)),
      scale_(std::move(scale)),
      offset_(std::move(offset)),
      trained_(trained) {
  assert(matrix_->payload_released());
  assert(scale_.size() == matrix_->cols() &&
         offset_.size() == matrix_->cols());
  assert(codes_.size() == matrix_->rows() * matrix_->cols());
}

void Sq8Store::Train(const FloatMatrix& m) {
  const size_t dim = m.cols();
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  // Min/max over every physical row — tombstoned slots included, so the
  // parameters do not depend on erasure timing.
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    offset_[d] = lo[d];
    const float range = hi[d] - lo[d];
    scale_[d] = range > 0.0f ? range / 255.0f : 1.0f;
  }
  trained_ = true;
}

void Sq8Store::EncodeRow(const float* values, uint32_t id) {
  const size_t dim = matrix_->cols();
  uint8_t* out = codes_.data() + static_cast<size_t>(id) * dim;
  for (size_t d = 0; d < dim; ++d) {
    const float level = (values[d] - offset_[d]) / scale_[d];
    const float clamped = std::min(255.0f, std::max(0.0f, level));
    out[d] = static_cast<uint8_t>(std::lround(clamped));
  }
}

size_t Sq8Store::bytes_per_vector() const { return matrix_->cols(); }

size_t Sq8Store::resident_bytes() const {
  return codes_.capacity() * sizeof(uint8_t) +
         (scale_.capacity() + offset_.capacity()) * sizeof(float) +
         matrix_->data().capacity() * sizeof(float) +  // 0 unless view held
         MatrixBookkeepingBytes(*matrix_);
}

uint32_t Sq8Store::InsertRow(const float* values, size_t len) {
  const size_t dim = matrix_->cols() > 0 ? matrix_->cols() : len;
  if (!trained_) {
    // Empty-seeded store: degenerate single-point training on the first
    // vector (scale 1.0, offset at the vector) — documented limitation.
    scale_.assign(dim, 1.0f);
    offset_.assign(values, values + len);
    trained_ = true;
  }
  const uint32_t id = matrix_->InsertRow(values, len);
  const size_t needed = (static_cast<size_t>(id) + 1) * dim;
  if (codes_.size() < needed) codes_.resize(needed);
  EncodeRow(values, id);
  return id;
}

Status Sq8Store::EraseRow(size_t id) {
  // Codes stay in place, exactly like the fp32 bytes under a tombstone —
  // the verification path filters the id out, and InsertRow re-encodes
  // over the slot on recycle.
  return matrix_->EraseRow(id);
}

size_t Sq8Store::TrimTombstonedTail() {
  const size_t trimmed = matrix_->TrimTombstonedTail();
  if (trimmed > 0) {
    codes_.resize(matrix_->rows() * matrix_->cols());
    codes_.shrink_to_fit();
  }
  return trimmed;
}

bool Sq8Store::RetrainQuantizer() {
  const size_t dim = matrix_->cols();
  const size_t rows = matrix_->rows();
  if (!trained_ || dim == 0 || rows == 0) return false;

  // Decode every physical row with the *current* params first: the new
  // codes must be a pure function of the old codes so replay/replication
  // reproduce them exactly.
  std::vector<float> decoded(rows * dim);
  for (size_t r = 0; r < rows; ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }

  // New range from live rows only — tombstoned slots no longer widen it.
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  bool any_live = false;
  for (size_t r = 0; r < rows; ++r) {
    if (matrix_->IsDeleted(r)) continue;
    any_live = true;
    const float* row = decoded.data() + r * dim;
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  if (!any_live) return false;
  for (size_t d = 0; d < dim; ++d) {
    offset_[d] = lo[d];
    const float range = hi[d] - lo[d];
    scale_[d] = range > 0.0f ? range / 255.0f : 1.0f;
  }

  // Re-encode every physical row (tombstoned included) so the whole code
  // array stays a deterministic function of its prior state.
  for (size_t r = 0; r < rows; ++r) {
    EncodeRow(decoded.data() + r * dim, static_cast<uint32_t>(r));
  }
  return true;
}

void Sq8Store::DecodeRow(uint32_t id, float* out) const {
  const size_t dim = matrix_->cols();
  const uint8_t* code = codes_.data() + static_cast<size_t>(id) * dim;
  for (size_t d = 0; d < dim; ++d) {
    out[d] = offset_[d] + scale_[d] * static_cast<float>(code[d]);
  }
}

float Sq8Store::ExactL2Squared(const float* query, uint32_t id) const {
  const size_t dim = matrix_->cols();
  return simd::Active().sq8_l2_asym(
      query, offset_.data(), scale_.data(),
      codes_.data() + static_cast<size_t>(id) * dim, dim);
}

void Sq8Store::PrepareQuery(const float* query,
                            std::vector<float>* prep) const {
  // Quantize the query into code space and premultiply by the scales:
  // prep[d] = scale[d] * round(clamp((q[d] - offset[d]) / scale[d])).
  // ScoreBatch then computes sum (prep - scale*code)^2 =
  // sum scale^2 (q_code - code)^2 — the offsets cancel, and the row side
  // needs only the u8 codes.
  const size_t dim = matrix_->cols();
  prep->resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    const float level = (query[d] - offset_[d]) / scale_[d];
    const float clamped = std::min(255.0f, std::max(0.0f, level));
    (*prep)[d] =
        scale_[d] * static_cast<float>(std::lround(clamped));
  }
}

void Sq8Store::ScoreBatch(const float* prep, size_t start,
                          const uint32_t* ids, size_t n, float* out) const {
  const size_t dim = matrix_->cols();
  if (ids != nullptr) {
    simd::Active().sq8_score_batch(prep, scale_.data(), codes_.data(), dim,
                                   ids, n, out);
  } else {
    simd::Active().sq8_score_batch(prep, scale_.data(),
                                   codes_.data() + start * dim, dim, nullptr,
                                   n, out);
  }
}

void Sq8Store::MaterializeDecodeView() {
  const size_t dim = matrix_->cols();
  std::vector<float> decoded(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }
  matrix_->SetPayload(std::move(decoded));
}

void Sq8Store::ReleaseDecodeView() { matrix_->ReleasePayload(); }

FloatMatrix Sq8Store::DecodedCopy() const {
  const size_t dim = matrix_->cols();
  std::vector<float> decoded(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }
  FloatMatrix out(matrix_->rows(), dim, std::move(decoded));
  // Replay tombstones in erasure order so the copy's LIFO free-list
  // recycles exactly like the live store would.
  for (const uint32_t slot : matrix_->free_slots()) {
    Status erased = out.EraseRow(slot);
    assert(erased.ok());
    (void)erased;
  }
  return out;
}

// ------------------------------------------------------------------ pq ----

PqStore::PqStore(std::unique_ptr<FloatMatrix> seed, size_t m)
    : VectorStore(std::move(seed)), m_(m) {
  assert(m_ >= 1 && (matrix_->cols() == 0 || m_ <= matrix_->cols()));
  InitSubspaces();
  if (matrix_->rows() > 0) {
    // Train on every physical row (tombstoned slots included, like SQ8's
    // range) up to the deterministic sample cap.
    std::vector<uint32_t> sample;
    sample.reserve(std::min(matrix_->rows(), kTrainSample));
    for (size_t r = 0; r < matrix_->rows() && sample.size() < kTrainSample;
         ++r) {
      sample.push_back(static_cast<uint32_t>(r));
    }
    Train(*matrix_, sample);
    codes_.resize(matrix_->rows() * m_);
    for (size_t r = 0; r < matrix_->rows(); ++r) {
      EncodeRow(matrix_->row(r), static_cast<uint32_t>(r));
    }
  }
  matrix_->ReleasePayload();
}

PqStore::PqStore(std::unique_ptr<FloatMatrix> data, size_t m,
                 std::vector<float> codebooks)
    : VectorStore(std::move(data)),
      codebooks_(std::move(codebooks)),
      m_(m) {
  assert(m_ >= 1 && m_ <= matrix_->cols());
  assert(codebooks_.size() == kCentroids * matrix_->cols());
  InitSubspaces();
  trained_ = true;
  codes_.resize(matrix_->rows() * m_);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    EncodeRow(matrix_->row(r), static_cast<uint32_t>(r));
  }
  matrix_->ReleasePayload();
}

PqStore::PqStore(std::unique_ptr<FloatMatrix> shell, size_t m,
                 std::vector<float> codebooks, std::vector<uint8_t> codes,
                 bool trained)
    : VectorStore(std::move(shell)),
      codes_(std::move(codes)),
      codebooks_(std::move(codebooks)),
      m_(m),
      trained_(trained) {
  assert(matrix_->payload_released());
  assert(m_ >= 1 && m_ <= matrix_->cols());
  assert(codebooks_.size() == kCentroids * matrix_->cols());
  assert(codes_.size() == matrix_->rows() * m_);
  InitSubspaces();
}

void PqStore::InitSubspaces() {
  // Balanced ragged split: the first dim % m subspaces take one extra
  // dimension, so sum of widths == dim for any dim >= m.
  const size_t dim = matrix_->cols();
  sub_begin_.assign(m_ + 1, 0);
  const size_t base = dim / m_;
  const size_t extra = dim % m_;
  for (size_t j = 0; j < m_; ++j) {
    sub_begin_[j + 1] = sub_begin_[j] + base + (j < extra ? 1 : 0);
  }
  if (codebooks_.empty()) codebooks_.assign(kCentroids * dim, 0.0f);
}

void PqStore::Train(const FloatMatrix& data,
                    const std::vector<uint32_t>& rows) {
  const size_t npoints = rows.size();
  if (npoints == 0) return;
  constexpr size_t kLloydIters = 8;
  std::vector<uint8_t> assign(npoints);
  for (size_t j = 0; j < m_; ++j) {
    const size_t begin = sub_begin_[j];
    const size_t dsub = sub_begin_[j + 1] - begin;
    float* cb = codebooks_.data() + kCentroids * begin;
    // Initial centroids: evenly strided over the sample; with fewer rows
    // than centroids the surplus duplicates wrap around (every training
    // row then owns its own centroid and encodes exactly).
    for (size_t c = 0; c < kCentroids; ++c) {
      const uint32_t r = npoints >= kCentroids
                             ? rows[c * npoints / kCentroids]
                             : rows[c % npoints];
      const float* src = data.row(r) + begin;
      std::copy(src, src + dsub, cb + c * dsub);
    }
    // Lloyd iterations: ties and empty clusters are resolved
    // deterministically (lowest index wins; empties keep their centroid),
    // so the codebooks are a pure function of the training rows.
    std::vector<double> sums(kCentroids * dsub);
    std::vector<size_t> counts(kCentroids);
    for (size_t iter = 0; iter < kLloydIters; ++iter) {
      bool moved = false;
      for (size_t p = 0; p < npoints; ++p) {
        const float* v = data.row(rows[p]) + begin;
        float best = std::numeric_limits<float>::max();
        size_t best_c = 0;
        for (size_t c = 0; c < kCentroids; ++c) {
          const float* cent = cb + c * dsub;
          float dist = 0.0f;
          for (size_t d = 0; d < dsub; ++d) {
            const float diff = v[d] - cent[d];
            dist += diff * diff;
          }
          if (dist < best) {
            best = dist;
            best_c = c;
          }
        }
        if (assign[p] != best_c) moved = true;
        assign[p] = static_cast<uint8_t>(best_c);
      }
      if (iter > 0 && !moved) break;  // converged; further passes no-op
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      for (size_t p = 0; p < npoints; ++p) {
        const float* v = data.row(rows[p]) + begin;
        double* sum = sums.data() + static_cast<size_t>(assign[p]) * dsub;
        for (size_t d = 0; d < dsub; ++d) sum[d] += v[d];
        ++counts[assign[p]];
      }
      for (size_t c = 0; c < kCentroids; ++c) {
        if (counts[c] == 0) continue;  // empty cluster: keep the centroid
        float* cent = cb + c * dsub;
        for (size_t d = 0; d < dsub; ++d) {
          cent[d] = static_cast<float>(sums[c * dsub + d] /
                                       static_cast<double>(counts[c]));
        }
      }
    }
  }
  trained_ = true;
}

void PqStore::EncodeRow(const float* values, uint32_t id) {
  uint8_t* out = codes_.data() + static_cast<size_t>(id) * m_;
  for (size_t j = 0; j < m_; ++j) {
    const size_t begin = sub_begin_[j];
    const size_t dsub = sub_begin_[j + 1] - begin;
    const float* v = values + begin;
    const float* cb = codebooks_.data() + kCentroids * begin;
    float best = std::numeric_limits<float>::max();
    size_t best_c = 0;
    for (size_t c = 0; c < kCentroids; ++c) {
      const float* cent = cb + c * dsub;
      float dist = 0.0f;
      for (size_t d = 0; d < dsub; ++d) {
        const float diff = v[d] - cent[d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    out[j] = static_cast<uint8_t>(best_c);
  }
}

size_t PqStore::bytes_per_vector() const { return m_; }

size_t PqStore::resident_bytes() const {
  return codes_.capacity() * sizeof(uint8_t) +
         codebooks_.capacity() * sizeof(float) +
         sub_begin_.capacity() * sizeof(size_t) +
         matrix_->data().capacity() * sizeof(float) +  // 0 unless view held
         MatrixBookkeepingBytes(*matrix_);
}

uint32_t PqStore::InsertRow(const float* values, size_t len) {
  if (!trained_) {
    // Empty-seeded store: degenerate single-point training on the first
    // vector (every centroid duplicates its subvector) — documented
    // limitation, mirroring Sq8Store.
    for (size_t j = 0; j < m_; ++j) {
      const size_t begin = sub_begin_[j];
      const size_t dsub = sub_begin_[j + 1] - begin;
      float* cb = codebooks_.data() + kCentroids * begin;
      for (size_t c = 0; c < kCentroids; ++c) {
        std::copy(values + begin, values + begin + dsub, cb + c * dsub);
      }
    }
    trained_ = true;
  }
  const uint32_t id = matrix_->InsertRow(values, len);
  const size_t needed = (static_cast<size_t>(id) + 1) * m_;
  if (codes_.size() < needed) codes_.resize(needed);
  EncodeRow(values, id);
  return id;
}

Status PqStore::EraseRow(size_t id) {
  // Codes stay in place under the tombstone, exactly like Sq8Store —
  // verification filters the id out, InsertRow re-encodes on recycle.
  return matrix_->EraseRow(id);
}

size_t PqStore::TrimTombstonedTail() {
  const size_t trimmed = matrix_->TrimTombstonedTail();
  if (trimmed > 0) {
    codes_.resize(matrix_->rows() * m_);
    codes_.shrink_to_fit();
  }
  return trimmed;
}

bool PqStore::RetrainQuantizer() {
  const size_t dim = matrix_->cols();
  const size_t rows = matrix_->rows();
  if (!trained_ || dim == 0 || rows == 0) return false;

  // Decode every physical row with the *current* codebooks first: the new
  // codebooks and codes must be a pure function of the old codes so WAL
  // replay and replication reproduce them byte-identically.
  auto decoded = std::make_unique<FloatMatrix>(rows, dim);
  for (size_t r = 0; r < rows; ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded->mutable_row(r));
  }

  // New codebooks from live rows only (capped deterministically) —
  // tombstoned slots no longer pull centroids toward stale data.
  std::vector<uint32_t> live;
  live.reserve(std::min(rows, kTrainSample));
  for (size_t r = 0; r < rows && live.size() < kTrainSample; ++r) {
    if (!matrix_->IsDeleted(r)) live.push_back(static_cast<uint32_t>(r));
  }
  if (live.empty()) return false;
  Train(*decoded, live);

  // Re-encode every physical row (tombstoned included) so the whole code
  // array stays a deterministic function of its prior state.
  for (size_t r = 0; r < rows; ++r) {
    EncodeRow(decoded->row(r), static_cast<uint32_t>(r));
  }
  return true;
}

void PqStore::DecodeRow(uint32_t id, float* out) const {
  const uint8_t* code = codes_.data() + static_cast<size_t>(id) * m_;
  for (size_t j = 0; j < m_; ++j) {
    const size_t begin = sub_begin_[j];
    const size_t dsub = sub_begin_[j + 1] - begin;
    const float* cent =
        codebooks_.data() + kCentroids * begin + code[j] * dsub;
    std::copy(cent, cent + dsub, out + begin);
  }
}

float PqStore::ExactL2Squared(const float* query, uint32_t id) const {
  // Plain scalar accumulation on purpose: the re-rank ordering must be
  // identical on every SIMD tier (the ADC hot path already is), keeping
  // whole-search results tier-independent under PQ.
  const uint8_t* code = codes_.data() + static_cast<size_t>(id) * m_;
  float total = 0.0f;
  for (size_t j = 0; j < m_; ++j) {
    const size_t begin = sub_begin_[j];
    const size_t dsub = sub_begin_[j + 1] - begin;
    const float* cent =
        codebooks_.data() + kCentroids * begin + code[j] * dsub;
    for (size_t d = 0; d < dsub; ++d) {
      const float diff = query[begin + d] - cent[d];
      total += diff * diff;
    }
  }
  return total;
}

void PqStore::PrepareQuery(const float* query,
                           std::vector<float>* prep) const {
  // The ADC lookup table: prep[j * 256 + c] = ||q_sub(j) - centroid(j,c)||^2,
  // so ScoreBatch is pure table accumulation. Built with plain scalar
  // arithmetic — never through simd::Active() — so the table (and thus
  // every downstream score) is identical on every tier.
  prep->resize(m_ * kCentroids);
  for (size_t j = 0; j < m_; ++j) {
    const size_t begin = sub_begin_[j];
    const size_t dsub = sub_begin_[j + 1] - begin;
    const float* q = query + begin;
    const float* cb = codebooks_.data() + kCentroids * begin;
    float* row = prep->data() + j * kCentroids;
    for (size_t c = 0; c < kCentroids; ++c) {
      const float* cent = cb + c * dsub;
      float dist = 0.0f;
      for (size_t d = 0; d < dsub; ++d) {
        const float diff = q[d] - cent[d];
        dist += diff * diff;
      }
      row[c] = dist;
    }
  }
}

void PqStore::ScoreBatch(const float* prep, size_t start,
                         const uint32_t* ids, size_t n, float* out) const {
  if (ids != nullptr) {
    simd::Active().pq_adc_batch(prep, codes_.data(), m_, ids, n, out);
  } else {
    simd::Active().pq_adc_batch(prep, codes_.data() + start * m_, m_,
                                nullptr, n, out);
  }
}

void PqStore::MaterializeDecodeView() {
  const size_t dim = matrix_->cols();
  std::vector<float> decoded(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }
  matrix_->SetPayload(std::move(decoded));
}

void PqStore::ReleaseDecodeView() { matrix_->ReleasePayload(); }

FloatMatrix PqStore::DecodedCopy() const {
  const size_t dim = matrix_->cols();
  std::vector<float> decoded(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }
  FloatMatrix out(matrix_->rows(), dim, std::move(decoded));
  // Replay tombstones in erasure order so the copy's LIFO free-list
  // recycles exactly like the live store would.
  for (const uint32_t slot : matrix_->free_slots()) {
    Status erased = out.EraseRow(slot);
    assert(erased.ok());
    (void)erased;
  }
  return out;
}

std::unique_ptr<VectorStore> MakeVectorStore(
    StorageKind kind, std::unique_ptr<FloatMatrix> data, size_t pq_m) {
  switch (kind) {
    case StorageKind::kSq8:
      return std::make_unique<Sq8Store>(std::move(data));
    case StorageKind::kPq:
      return std::make_unique<PqStore>(std::move(data), pq_m);
    case StorageKind::kFp32:
      break;
  }
  return std::make_unique<Fp32Store>(std::move(data));
}

}  // namespace dblsh
