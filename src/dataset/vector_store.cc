#include "dataset/vector_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "simd/simd.h"

namespace dblsh {
namespace {

/// Tombstone bookkeeping bytes a matrix carries (approximate: the lazy
/// deleted_ bitmap is one byte per row once any tombstone exists, the
/// free-list four bytes per entry). Shared by both backends' stats.
size_t MatrixBookkeepingBytes(const FloatMatrix& m) {
  return (m.has_tombstones() ? m.rows() * sizeof(uint8_t) : 0) +
         m.free_slots().size() * sizeof(uint32_t);
}

}  // namespace

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kFp32:
      return "fp32";
    case StorageKind::kSq8:
      return "sq8";
  }
  return "unknown";
}

Result<StorageKind> ParseStorageKind(const std::string& name) {
  if (name == "fp32") return StorageKind::kFp32;
  if (name == "sq8") return StorageKind::kSq8;
  return Status::InvalidArgument(
      "storage backend \"" + name + "\" is not recognized (expected fp32 "
      "or sq8)");
}

VectorStore::VectorStore(std::unique_ptr<FloatMatrix> matrix)
    : matrix_(std::move(matrix)) {
  assert(matrix_ != nullptr);
  matrix_->BindStore(this);
}

VectorStore::~VectorStore() {
  // Unbind defensively: the matrix is destroyed with us, but a caller that
  // moved it out beforehand must not keep a dangling store pointer.
  if (matrix_ != nullptr) matrix_->BindStore(nullptr);
}

// ---------------------------------------------------------------- fp32 ----

Fp32Store::Fp32Store(std::unique_ptr<FloatMatrix> data)
    : VectorStore(std::move(data)) {}

size_t Fp32Store::bytes_per_vector() const {
  return matrix_->cols() * sizeof(float);
}

size_t Fp32Store::resident_bytes() const {
  return matrix_->data().capacity() * sizeof(float) +
         MatrixBookkeepingBytes(*matrix_);
}

uint32_t Fp32Store::InsertRow(const float* values, size_t len) {
  return matrix_->InsertRow(values, len);
}

Status Fp32Store::EraseRow(size_t id) { return matrix_->EraseRow(id); }

size_t Fp32Store::TrimTombstonedTail() {
  return matrix_->TrimTombstonedTail();
}

void Fp32Store::DecodeRow(uint32_t id, float* out) const {
  const float* row = matrix_->row(id);
  std::copy(row, row + matrix_->cols(), out);
}

float Fp32Store::ExactL2Squared(const float* query, uint32_t id) const {
  return simd::Active().l2_squared(query, matrix_->row(id), matrix_->cols());
}

void Fp32Store::PrepareQuery(const float* query,
                             std::vector<float>* prep) const {
  prep->assign(query, query + matrix_->cols());
}

void Fp32Store::ScoreBatch(const float* prep, size_t start,
                           const uint32_t* ids, size_t n, float* out) const {
  const size_t dim = matrix_->cols();
  const float* base = matrix_->data().data();
  if (ids != nullptr) {
    simd::Active().l2_squared_batch(prep, base, dim, ids, n, out);
  } else {
    simd::Active().l2_squared_batch(prep, base + start * dim, dim, nullptr,
                                    n, out);
  }
}

FloatMatrix Fp32Store::DecodedCopy() const {
  return *matrix_;  // the copy drops the store binding by construction
}

// ----------------------------------------------------------------- sq8 ----

Sq8Store::Sq8Store(std::unique_ptr<FloatMatrix> seed)
    : VectorStore(std::move(seed)) {
  const size_t dim = matrix_->cols();
  scale_.assign(dim, 1.0f);
  offset_.assign(dim, 0.0f);
  if (matrix_->rows() > 0) {
    Train(*matrix_);
    codes_.resize(matrix_->rows() * dim);
    for (size_t r = 0; r < matrix_->rows(); ++r) {
      EncodeRow(matrix_->row(r), static_cast<uint32_t>(r));
    }
  }
  matrix_->ReleasePayload();
}

Sq8Store::Sq8Store(std::unique_ptr<FloatMatrix> data,
                   std::vector<float> scale, std::vector<float> offset)
    : VectorStore(std::move(data)),
      scale_(std::move(scale)),
      offset_(std::move(offset)) {
  const size_t dim = matrix_->cols();
  assert(scale_.size() == dim && offset_.size() == dim);
  trained_ = true;
  codes_.resize(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    EncodeRow(matrix_->row(r), static_cast<uint32_t>(r));
  }
  matrix_->ReleasePayload();
}

Sq8Store::Sq8Store(std::unique_ptr<FloatMatrix> shell,
                   std::vector<float> scale, std::vector<float> offset,
                   std::vector<uint8_t> codes, bool trained)
    : VectorStore(std::move(shell)),
      codes_(std::move(codes)),
      scale_(std::move(scale)),
      offset_(std::move(offset)),
      trained_(trained) {
  assert(matrix_->payload_released());
  assert(scale_.size() == matrix_->cols() &&
         offset_.size() == matrix_->cols());
  assert(codes_.size() == matrix_->rows() * matrix_->cols());
}

void Sq8Store::Train(const FloatMatrix& m) {
  const size_t dim = m.cols();
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  // Min/max over every physical row — tombstoned slots included, so the
  // parameters do not depend on erasure timing.
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.row(r);
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    offset_[d] = lo[d];
    const float range = hi[d] - lo[d];
    scale_[d] = range > 0.0f ? range / 255.0f : 1.0f;
  }
  trained_ = true;
}

void Sq8Store::EncodeRow(const float* values, uint32_t id) {
  const size_t dim = matrix_->cols();
  uint8_t* out = codes_.data() + static_cast<size_t>(id) * dim;
  for (size_t d = 0; d < dim; ++d) {
    const float level = (values[d] - offset_[d]) / scale_[d];
    const float clamped = std::min(255.0f, std::max(0.0f, level));
    out[d] = static_cast<uint8_t>(std::lround(clamped));
  }
}

size_t Sq8Store::bytes_per_vector() const { return matrix_->cols(); }

size_t Sq8Store::resident_bytes() const {
  return codes_.capacity() * sizeof(uint8_t) +
         (scale_.capacity() + offset_.capacity()) * sizeof(float) +
         matrix_->data().capacity() * sizeof(float) +  // 0 unless view held
         MatrixBookkeepingBytes(*matrix_);
}

uint32_t Sq8Store::InsertRow(const float* values, size_t len) {
  const size_t dim = matrix_->cols() > 0 ? matrix_->cols() : len;
  if (!trained_) {
    // Empty-seeded store: degenerate single-point training on the first
    // vector (scale 1.0, offset at the vector) — documented limitation.
    scale_.assign(dim, 1.0f);
    offset_.assign(values, values + len);
    trained_ = true;
  }
  const uint32_t id = matrix_->InsertRow(values, len);
  const size_t needed = (static_cast<size_t>(id) + 1) * dim;
  if (codes_.size() < needed) codes_.resize(needed);
  EncodeRow(values, id);
  return id;
}

Status Sq8Store::EraseRow(size_t id) {
  // Codes stay in place, exactly like the fp32 bytes under a tombstone —
  // the verification path filters the id out, and InsertRow re-encodes
  // over the slot on recycle.
  return matrix_->EraseRow(id);
}

size_t Sq8Store::TrimTombstonedTail() {
  const size_t trimmed = matrix_->TrimTombstonedTail();
  if (trimmed > 0) {
    codes_.resize(matrix_->rows() * matrix_->cols());
    codes_.shrink_to_fit();
  }
  return trimmed;
}

bool Sq8Store::RetrainQuantizer() {
  const size_t dim = matrix_->cols();
  const size_t rows = matrix_->rows();
  if (!trained_ || dim == 0 || rows == 0) return false;

  // Decode every physical row with the *current* params first: the new
  // codes must be a pure function of the old codes so replay/replication
  // reproduce them exactly.
  std::vector<float> decoded(rows * dim);
  for (size_t r = 0; r < rows; ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }

  // New range from live rows only — tombstoned slots no longer widen it.
  std::vector<float> lo(dim, std::numeric_limits<float>::max());
  std::vector<float> hi(dim, std::numeric_limits<float>::lowest());
  bool any_live = false;
  for (size_t r = 0; r < rows; ++r) {
    if (matrix_->IsDeleted(r)) continue;
    any_live = true;
    const float* row = decoded.data() + r * dim;
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], row[d]);
      hi[d] = std::max(hi[d], row[d]);
    }
  }
  if (!any_live) return false;
  for (size_t d = 0; d < dim; ++d) {
    offset_[d] = lo[d];
    const float range = hi[d] - lo[d];
    scale_[d] = range > 0.0f ? range / 255.0f : 1.0f;
  }

  // Re-encode every physical row (tombstoned included) so the whole code
  // array stays a deterministic function of its prior state.
  for (size_t r = 0; r < rows; ++r) {
    EncodeRow(decoded.data() + r * dim, static_cast<uint32_t>(r));
  }
  return true;
}

void Sq8Store::DecodeRow(uint32_t id, float* out) const {
  const size_t dim = matrix_->cols();
  const uint8_t* code = codes_.data() + static_cast<size_t>(id) * dim;
  for (size_t d = 0; d < dim; ++d) {
    out[d] = offset_[d] + scale_[d] * static_cast<float>(code[d]);
  }
}

float Sq8Store::ExactL2Squared(const float* query, uint32_t id) const {
  const size_t dim = matrix_->cols();
  return simd::Active().sq8_l2_asym(
      query, offset_.data(), scale_.data(),
      codes_.data() + static_cast<size_t>(id) * dim, dim);
}

void Sq8Store::PrepareQuery(const float* query,
                            std::vector<float>* prep) const {
  // Quantize the query into code space and premultiply by the scales:
  // prep[d] = scale[d] * round(clamp((q[d] - offset[d]) / scale[d])).
  // ScoreBatch then computes sum (prep - scale*code)^2 =
  // sum scale^2 (q_code - code)^2 — the offsets cancel, and the row side
  // needs only the u8 codes.
  const size_t dim = matrix_->cols();
  prep->resize(dim);
  for (size_t d = 0; d < dim; ++d) {
    const float level = (query[d] - offset_[d]) / scale_[d];
    const float clamped = std::min(255.0f, std::max(0.0f, level));
    (*prep)[d] =
        scale_[d] * static_cast<float>(std::lround(clamped));
  }
}

void Sq8Store::ScoreBatch(const float* prep, size_t start,
                          const uint32_t* ids, size_t n, float* out) const {
  const size_t dim = matrix_->cols();
  if (ids != nullptr) {
    simd::Active().sq8_score_batch(prep, scale_.data(), codes_.data(), dim,
                                   ids, n, out);
  } else {
    simd::Active().sq8_score_batch(prep, scale_.data(),
                                   codes_.data() + start * dim, dim, nullptr,
                                   n, out);
  }
}

void Sq8Store::MaterializeDecodeView() {
  const size_t dim = matrix_->cols();
  std::vector<float> decoded(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }
  matrix_->SetPayload(std::move(decoded));
}

void Sq8Store::ReleaseDecodeView() { matrix_->ReleasePayload(); }

FloatMatrix Sq8Store::DecodedCopy() const {
  const size_t dim = matrix_->cols();
  std::vector<float> decoded(matrix_->rows() * dim);
  for (size_t r = 0; r < matrix_->rows(); ++r) {
    DecodeRow(static_cast<uint32_t>(r), decoded.data() + r * dim);
  }
  FloatMatrix out(matrix_->rows(), dim, std::move(decoded));
  // Replay tombstones in erasure order so the copy's LIFO free-list
  // recycles exactly like the live store would.
  for (const uint32_t slot : matrix_->free_slots()) {
    Status erased = out.EraseRow(slot);
    assert(erased.ok());
    (void)erased;
  }
  return out;
}

std::unique_ptr<VectorStore> MakeVectorStore(
    StorageKind kind, std::unique_ptr<FloatMatrix> data) {
  switch (kind) {
    case StorageKind::kSq8:
      return std::make_unique<Sq8Store>(std::move(data));
    case StorageKind::kFp32:
      break;
  }
  return std::make_unique<Fp32Store>(std::move(data));
}

}  // namespace dblsh
