#ifndef DBLSH_DATASET_STATS_H_
#define DBLSH_DATASET_STATS_H_

#include <cstdint>

#include "dataset/float_matrix.h"

namespace dblsh {

/// Hardness statistics of an ANN workload. The paper (Sec. VI-B) explains
/// per-dataset accuracy differences via *relative contrast* and *local
/// intrinsic dimensionality* (He et al. 2012, Li et al. 2020); these
/// estimators let the benches report the same quantities for the synthetic
/// stand-ins so hardness is auditable.
struct DatasetStats {
  /// Relative contrast RC = mean distance / mean 1-NN distance. Close to 1
  /// means queries are hard (everything is equally far); large means easy.
  double relative_contrast = 0.0;
  /// Local intrinsic dimensionality (MLE of Levina-Bickel over the k-NN
  /// radii), averaged over sampled points. Higher = harder.
  double lid = 0.0;
  double mean_distance = 0.0;
  double mean_nn_distance = 0.0;
};

/// Estimates the statistics from `samples` random anchor points, each
/// scanned against the full dataset (exact), using `k` neighbors for the
/// LID estimator.
DatasetStats EstimateStats(const FloatMatrix& data, size_t samples = 50,
                           size_t k = 20, uint64_t seed = 7);

}  // namespace dblsh

#endif  // DBLSH_DATASET_STATS_H_
