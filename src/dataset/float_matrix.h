#ifndef DBLSH_DATASET_FLOAT_MATRIX_H_
#define DBLSH_DATASET_FLOAT_MATRIX_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dblsh {

class VectorStore;  // dataset/vector_store.h

/// Row-major dense matrix of floats: `rows` points of dimensionality `cols`.
/// This is the canonical in-memory representation of a dataset and of
/// projected spaces. Copyable and movable; rows are contiguous so a row
/// pointer can be handed to the distance kernels directly.
///
/// Dynamic workloads mutate the matrix through two extra pieces of state:
///
/// - a **tombstone set**: EraseRow(i) marks row i deleted without moving any
///   bytes, so every id handed out earlier stays stable. The shared
///   verification path (core/verify.h) consults IsDeleted() and never
///   surfaces a tombstoned row, which makes erasure effective for *every*
///   index built over the matrix — including ones whose internal structures
///   still reference the id.
/// - a **free-list / append region**: InsertRow() recycles the most recently
///   tombstoned slot when one exists (so id space does not grow under
///   churn) and appends a fresh row otherwise.
///
/// Thread-safety: mutations are not synchronized with readers; callers must
/// not run InsertRow/EraseRow/AppendRow concurrently with queries over the
/// same matrix.
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.f) {}
  FloatMatrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  // Copies and moves never carry the store binding: a snapshot (background
  // rebuilds, Collection::Snapshot, Prefix) is plain fp32 data again, and
  // only the VectorStore that owns a matrix may bind itself to it.
  FloatMatrix(const FloatMatrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(other.data_),
        deleted_(other.deleted_),
        free_slots_(other.free_slots_),
        deleted_count_(other.deleted_count_),
        payload_released_(other.payload_released_) {}
  FloatMatrix& operator=(const FloatMatrix& other) {
    if (this == &other) return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    deleted_ = other.deleted_;
    free_slots_ = other.free_slots_;
    deleted_count_ = other.deleted_count_;
    payload_released_ = other.payload_released_;
    store_ = nullptr;
    return *this;
  }
  FloatMatrix(FloatMatrix&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(std::move(other.data_)),
        deleted_(std::move(other.deleted_)),
        free_slots_(std::move(other.free_slots_)),
        deleted_count_(other.deleted_count_),
        payload_released_(other.payload_released_) {}
  FloatMatrix& operator=(FloatMatrix&& other) noexcept {
    if (this == &other) return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    deleted_ = std::move(other.deleted_);
    free_slots_ = std::move(other.free_slots_);
    deleted_count_ = other.deleted_count_;
    payload_released_ = other.payload_released_;
    store_ = nullptr;
    return *this;
  }

  /// Physical row count, including tombstoned slots.
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Rows that are not tombstoned (the logical dataset size).
  size_t live_rows() const { return rows_ - deleted_count_; }
  /// True when at least one row is tombstoned (fast static-path check).
  bool has_tombstones() const { return deleted_count_ > 0; }
  /// True when row `i` has been erased and its slot not yet recycled.
  bool IsDeleted(size_t i) const {
    return deleted_count_ > 0 && i < deleted_.size() && deleted_[i] != 0;
  }

  const float* row(size_t i) const {
    assert(i < rows_ && !payload_released_);
    return data_.data() + i * cols_;
  }
  float* mutable_row(size_t i) {
    assert(i < rows_ && !payload_released_);
    return data_.data() + i * cols_;
  }

  float at(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  float& at(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }

  /// Appends one row; `values` must have length `cols()` (or define the
  /// matrix's width when it is still empty). Does not consult the
  /// free-list — use InsertRow() for churn-friendly insertion.
  void AppendRow(const float* values, size_t len) {
    if (rows_ == 0 && cols_ == 0) cols_ = len;
    assert(len == cols_);
    if (!payload_released_) data_.insert(data_.end(), values, values + len);
    ++rows_;
    if (!deleted_.empty()) deleted_.push_back(0);
  }

  /// Inserts one vector of length `cols()`, recycling the most recently
  /// tombstoned slot if any (its id is reassigned to the new vector) and
  /// appending otherwise. Returns the id now holding the vector. Callers
  /// keeping index structures over this matrix must Erase() the recycled id
  /// from them *before* the slot is reused (see AnnIndex::Erase).
  uint32_t InsertRow(const float* values, size_t len) {
    if (!free_slots_.empty()) {
      const uint32_t id = free_slots_.back();
      free_slots_.pop_back();
      assert(len == cols_ && deleted_[id] != 0);
      if (!payload_released_) {
        std::copy(values, values + len, data_.data() + id * cols_);
      }
      deleted_[id] = 0;
      --deleted_count_;
      return id;
    }
    AppendRow(values, len);
    return static_cast<uint32_t>(rows_ - 1);
  }

  /// Tombstones row `i`: the id keeps its slot (bytes are left intact so
  /// persisted checksums stay stable) but IsDeleted(i) turns true and the
  /// slot joins the free-list for InsertRow() reuse. Returns NotFound when
  /// the row is already tombstoned, InvalidArgument when out of range.
  Status EraseRow(size_t i) {
    if (i >= rows_) {
      return Status::InvalidArgument("EraseRow: row " + std::to_string(i) +
                                     " out of range (rows = " +
                                     std::to_string(rows_) + ")");
    }
    if (deleted_.empty()) deleted_.assign(rows_, 0);
    if (deleted_[i] != 0) {
      return Status::NotFound("EraseRow: row " + std::to_string(i) +
                              " is already erased");
    }
    deleted_[i] = 1;
    ++deleted_count_;
    free_slots_.push_back(static_cast<uint32_t>(i));
    return Status::OK();
  }

  /// Tombstoned slots in erasure order (the InsertRow() reuse stack, most
  /// recent last). Exposed so persistence layers can round-trip the
  /// tombstone set exactly (see DbLsh::Save).
  const std::vector<uint32_t>& free_slots() const { return free_slots_; }

  /// Physically drops every trailing tombstoned row (compaction): rows_
  /// shrinks past each deleted tail slot, those slots leave the free-list,
  /// and the payload (when resident) is truncated to match. Interior
  /// tombstones are untouched — ids of live rows never move. Returns the
  /// number of rows removed. Callers holding index structures over this
  /// matrix must drop/rebuild them in the same critical section: a stale
  /// index could hand back a trimmed id, which after the trim no longer
  /// reads as deleted.
  size_t TrimTombstonedTail() {
    size_t trimmed = 0;
    while (rows_ > 0 && IsDeleted(rows_ - 1)) {
      --rows_;
      deleted_[rows_] = 0;
      --deleted_count_;
      ++trimmed;
    }
    if (trimmed == 0) return 0;
    if (deleted_.size() > rows_) deleted_.resize(rows_);
    free_slots_.erase(
        std::remove_if(free_slots_.begin(), free_slots_.end(),
                       [&](uint32_t id) { return id >= rows_; }),
        free_slots_.end());
    if (!payload_released_) {
      data_.resize(rows_ * cols_);
      data_.shrink_to_fit();
    }
    return trimmed;
  }

  /// The VectorStore managing this matrix's payload, or nullptr for a plain
  /// fp32 matrix (see dataset/vector_store.h). The shared verification path
  /// consults this to score candidates through the store's quantized
  /// representation. Bound by the owning store itself — copies and moves of
  /// the matrix never carry the binding.
  const VectorStore* store() const { return store_; }
  /// Installs `store` as this matrix's payload manager (store-internal;
  /// only the VectorStore that owns this matrix may bind itself).
  void BindStore(const VectorStore* store) { store_ = store; }

  /// True while the fp32 payload is dropped: a quantized store keeps the
  /// bytes elsewhere and this matrix is a metadata shell (ids, tombstones,
  /// free-list stay live; row()/at()/data() must not be read). Inserts and
  /// appends still maintain the metadata, skipping the payload copy.
  bool payload_released() const { return payload_released_; }
  /// Drops the fp32 payload (quantized-store shell). The logical shape is
  /// unchanged; only the bytes go away.
  void ReleasePayload() {
    data_.clear();
    data_.shrink_to_fit();
    payload_released_ = true;
  }
  /// Restores a payload previously released — the decode view quantized
  /// stores materialize so index builds can read fp32 rows. `values` must
  /// cover every current row.
  void SetPayload(std::vector<float> values) {
    assert(values.size() == rows_ * cols_);
    data_ = std::move(values);
    payload_released_ = false;
  }

  /// Returns a copy containing only the first `n` rows (used by the vary-n
  /// experiment sweeps). Tombstone state carries over for the kept rows.
  FloatMatrix Prefix(size_t n) const {
    assert(n <= rows_ && !payload_released_);
    FloatMatrix out(
        n, cols_,
        std::vector<float>(data_.begin(),
                           data_.begin() + static_cast<ptrdiff_t>(n * cols_)));
    if (deleted_count_ > 0) {
      for (uint32_t slot : free_slots_) {
        if (slot < n) {
          Status s = out.EraseRow(slot);
          (void)s;  // fresh copy: the slot cannot already be erased
        }
      }
    }
    return out;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
  // Tombstone state. `deleted_` is sized lazily on the first EraseRow so the
  // (common) static case carries no per-row overhead.
  std::vector<uint8_t> deleted_;
  std::vector<uint32_t> free_slots_;
  size_t deleted_count_ = 0;
  // Storage-layer state (see store() / payload_released() above).
  const VectorStore* store_ = nullptr;
  bool payload_released_ = false;
};

}  // namespace dblsh

#endif  // DBLSH_DATASET_FLOAT_MATRIX_H_
