#ifndef DBLSH_DATASET_FLOAT_MATRIX_H_
#define DBLSH_DATASET_FLOAT_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dblsh {

/// Row-major dense matrix of floats: `rows` points of dimensionality `cols`.
/// This is the canonical in-memory representation of a dataset and of
/// projected spaces. Copyable and movable; rows are contiguous so a row
/// pointer can be handed to the distance kernels directly.
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.f) {}
  FloatMatrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  const float* row(size_t i) const {
    assert(i < rows_);
    return data_.data() + i * cols_;
  }
  float* mutable_row(size_t i) {
    assert(i < rows_);
    return data_.data() + i * cols_;
  }

  float at(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  float& at(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }

  /// Appends one row; `values` must have length `cols()` (or define the
  /// matrix's width when it is still empty).
  void AppendRow(const float* values, size_t len) {
    if (rows_ == 0 && cols_ == 0) cols_ = len;
    assert(len == cols_);
    data_.insert(data_.end(), values, values + len);
    ++rows_;
  }

  /// Returns a copy containing only the first `n` rows (used by the vary-n
  /// experiment sweeps).
  FloatMatrix Prefix(size_t n) const {
    assert(n <= rows_);
    return FloatMatrix(
        n, cols_,
        std::vector<float>(data_.begin(),
                           data_.begin() + static_cast<ptrdiff_t>(n * cols_)));
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace dblsh

#endif  // DBLSH_DATASET_FLOAT_MATRIX_H_
