#include "dataset/stats.h"

#include <algorithm>
#include <cmath>

#include "dataset/ground_truth.h"
#include "util/distance.h"
#include "util/random.h"

namespace dblsh {

DatasetStats EstimateStats(const FloatMatrix& data, size_t samples, size_t k,
                           uint64_t seed) {
  DatasetStats stats;
  const size_t n = data.rows();
  if (n < 3) return stats;
  Rng rng(seed);
  samples = std::min(samples, n);
  k = std::min(k, n - 1);

  double sum_mean_dist = 0.0;
  double sum_nn_dist = 0.0;
  double sum_lid = 0.0;
  size_t lid_count = 0;
  for (size_t s = 0; s < samples; ++s) {
    const size_t anchor = rng.UniformInt(n);
    // Exact k+1 NN (the anchor itself is rank 0 at distance 0).
    const auto knn = ExactKnn(data, data.row(anchor), k + 1);
    // Mean distance to a random subsample (for relative contrast).
    double mean_dist = 0.0;
    const size_t scan = std::min<size_t>(512, n);
    size_t counted = 0;
    for (size_t i = 0; i < scan; ++i) {
      const size_t other = rng.UniformInt(n);
      if (other == anchor) continue;
      mean_dist += L2Distance(data.row(anchor), data.row(other), data.cols());
      ++counted;
    }
    if (counted > 0) sum_mean_dist += mean_dist / double(counted);
    if (knn.size() > 1) sum_nn_dist += knn[1].dist;

    // Levina-Bickel MLE: LID = -[ (1/k) * sum_i ln(r_i / r_k) ]^-1 over the
    // k nearest non-self neighbors.
    if (knn.size() >= 3) {
      const double rk = knn.back().dist;
      if (rk > 0.0) {
        double acc = 0.0;
        size_t m = 0;
        for (size_t i = 1; i + 1 < knn.size(); ++i) {
          if (knn[i].dist > 0.0) {
            acc += std::log(knn[i].dist / rk);
            ++m;
          }
        }
        if (m > 0 && acc < 0.0) {
          sum_lid += -static_cast<double>(m) / acc;
          ++lid_count;
        }
      }
    }
  }
  stats.mean_distance = sum_mean_dist / double(samples);
  stats.mean_nn_distance = sum_nn_dist / double(samples);
  if (stats.mean_nn_distance > 0.0) {
    stats.relative_contrast = stats.mean_distance / stats.mean_nn_distance;
  }
  if (lid_count > 0) stats.lid = sum_lid / double(lid_count);
  return stats;
}

}  // namespace dblsh
