#ifndef DBLSH_SERVE_NET_H_
#define DBLSH_SERVE_NET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

/// Thin POSIX socket helpers shared by the server and the client. Three
/// hardening rules live here so no call site can forget them:
///
///  - every read/write loop restarts on EINTR (a signal mid-syscall never
///    truncates a frame);
///  - every send uses MSG_NOSIGNAL, and InstallSigpipeGuard() additionally
///    ignores SIGPIPE process-wide, so a client vanishing mid-response
///    surfaces as an EPIPE Status instead of killing the process;
///  - blocking reads are poll()-sliced against an optional stop flag, so a
///    thread parked on a quiet connection notices shutdown within
///    `poll_interval_ms` instead of blocking forever.
namespace dblsh::serve {

/// Ignores SIGPIPE for the process (idempotent, thread-safe). Called by
/// Server::Start and Client::Connect; safe to call from tests too.
void InstallSigpipeGuard();

/// Creates a TCP listening socket bound to host:port (port 0 picks an
/// ephemeral port) with SO_REUSEADDR. On success returns the fd and
/// writes the actually-bound port to *bound_port.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Connects to host:port; returns the connected fd. `timeout_ms` bounds
/// the connect attempt (<= 0 means the OS default).
Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms = 5000);

/// Accepts one pending connection from `listen_fd`, waiting at most
/// `timeout_ms`. Returns the connection fd, or NotFound when the timeout
/// elapsed with nothing pending (the caller's poll loop re-checks its
/// stop flag and calls again), or an error Status on a real failure.
Result<int> AcceptWithTimeout(int listen_fd, int timeout_ms);

/// Reads exactly `len` bytes into `buf`, restarting on EINTR and slicing
/// the wait into `poll_interval_ms` poll() rounds. Returns:
///  - OK when `len` bytes arrived;
///  - NotFound("connection closed") on clean EOF at a frame boundary
///    (no bytes read yet);
///  - Corruption("mid-frame disconnect") on EOF after a partial read;
///  - Unavailable("stopped") when *stop became true before completion;
///  - IoError on any other socket failure.
Status ReadFull(int fd, uint8_t* buf, size_t len,
                const std::atomic<bool>* stop = nullptr,
                int poll_interval_ms = 50);

/// Writes exactly `len` bytes, restarting on EINTR and short writes, with
/// MSG_NOSIGNAL so a dead peer yields IoError (EPIPE) instead of SIGPIPE.
Status WriteFull(int fd, const uint8_t* buf, size_t len);

/// Closes `fd` ignoring EINTR (Linux releases the descriptor either way).
void CloseFd(int fd);

}  // namespace dblsh::serve

#endif  // DBLSH_SERVE_NET_H_
