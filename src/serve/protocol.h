#ifndef DBLSH_SERVE_PROTOCOL_H_
#define DBLSH_SERVE_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

/// Wire format of the framed-TCP serving protocol (src/serve/).
///
/// Every message — request or response — is one *frame*: a fixed 24-byte
/// header followed by `payload_len` payload bytes. All multi-byte fields
/// are little-endian with fixed widths; floats travel as their IEEE-754
/// bit patterns. The header carries an FNV-1a checksum of the payload so
/// a corrupted or desynchronized stream is detected before any field is
/// trusted.
///
///   offset  size  field
///        0     4  magic            0x48534C44 ("DLSH")
///        4     1  version          kProtocolVersion
///        5     1  op               OpCode (a response echoes its request's)
///        6     2  reserved         must be 0
///        8     8  request_id       echoed verbatim in the response
///       16     4  payload_len      <= ServerOptions::max_payload_bytes
///       20     4  payload_checksum FNV-1a32 over the payload bytes
///
/// Responses start their payload with `u8 status` (WireStatus) and a
/// length-prefixed error message (empty on success); op-specific fields
/// follow only when status == kOk. Per-op payload layouts are documented
/// in docs/API.md; the Encode*/Decode* helpers below are the single
/// source of truth both sides compile against.
namespace dblsh::serve {

/// Frame magic ("DLSH" read as a little-endian u32).
inline constexpr uint32_t kMagic = 0x48534C44u;

/// Protocol version this build speaks; a frame with any other version is
/// rejected with kProtocolError. Version 2 added the kCheckpoint op and
/// the per-collection durability block in the kStats response. Version 3
/// added the replication ops (kSubscribe / kSnapshotChunk / kWalRecords /
/// kReplicaStatus) and the kReadOnly status.
inline constexpr uint8_t kProtocolVersion = 3;

/// Size of the fixed frame header on the wire.
inline constexpr size_t kHeaderBytes = 24;

/// Default cap on payload_len (16 MiB): an oversize length prefix — the
/// classic way a desynchronized or hostile stream makes a server allocate
/// unboundedly — is rejected before any allocation.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/// Operation selector of a frame. Responses reuse the request's op.
enum class OpCode : uint8_t {
  kPing = 0,         ///< liveness probe; empty payload both ways
  kSearch = 1,       ///< one k-NN query (coalesced server-side)
  kSearchBatch = 2,  ///< pre-formed query batch, dispatched as-is
  kUpsert = 3,       ///< insert or replace one vector
  kDelete = 4,       ///< tombstone one id
  kStats = 5,        ///< server + per-collection counters
  kCheckpoint = 6,   ///< durable snapshot + WAL rotation of one collection
  kSubscribe = 7,    ///< follower attaches to one shard's WAL stream
  kSnapshotChunk = 8,  ///< bootstrap: one chunk of a shard snapshot file
  kWalRecords = 9,     ///< a batch of WAL records + primary high watermark
  kReplicaStatus = 10,  ///< replication role + per-shard LSN/lag report
};

/// Typed status of a response frame. kOverloaded and kShuttingDown are
/// *retryable*: the request was shed without side effects and may be
/// resent after backoff. kDeadlineExceeded means the request's budget
/// elapsed before execution started — the index was never touched.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kDeadlineExceeded = 3,
  kOverloaded = 4,
  kShuttingDown = 5,
  kProtocolError = 6,
  kInternal = 7,
  kReadOnly = 8,  ///< write refused by a replica; message = primary address
};

/// FNV-1a 32-bit over `len` bytes — the frame payload checksum (same hash
/// family DbLsh::Save uses for dataset checksums).
inline uint32_t Fnv1a32(const uint8_t* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

/// Decoded form of the fixed frame header.
struct FrameHeader {
  uint32_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  OpCode op = OpCode::kPing;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint32_t payload_checksum = 0;
};

namespace wire {

/// Appends `v` to `out` in little-endian byte order.
inline void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }
/// Appends a little-endian u16.
inline void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
/// Appends a little-endian u32.
inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
/// Appends a little-endian u64.
inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
/// Appends an IEEE-754 float as its little-endian bit pattern.
inline void PutF32(std::vector<uint8_t>* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}
/// Appends an IEEE-754 double as its little-endian bit pattern.
inline void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}
/// Appends a u16 length prefix followed by the string bytes; `s` must fit
/// in 65535 bytes (collection names and error messages — the encoder
/// truncates rather than overflow the prefix).
inline void PutString(std::vector<uint8_t>* out, const std::string& s) {
  const size_t n = s.size() > 0xFFFF ? 0xFFFF : s.size();
  PutU16(out, static_cast<uint16_t>(n));
  out->insert(out->end(), s.begin(), s.begin() + static_cast<ptrdiff_t>(n));
}

/// Bounds-checked sequential reader over a payload. Every Get* returns
/// false instead of reading past the end, so a truncated or lying payload
/// can never drive an out-of-bounds read.
class Reader {
 public:
  /// Wraps (data, len); the buffer must outlive the reader.
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return len_ - pos_; }

  /// Reads one u8; false at end of payload.
  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  /// Reads a little-endian u16; false on underrun.
  bool GetU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  /// Reads a little-endian u32; false on underrun.
  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = out;
    return true;
  }
  /// Reads a little-endian u64; false on underrun.
  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = out;
    return true;
  }
  /// Reads a float bit pattern; false on underrun.
  bool GetF32(float* v) {
    uint32_t bits;
    if (!GetU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Reads a double bit pattern; false on underrun.
  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Reads a u16-length-prefixed string; false on underrun.
  bool GetString(std::string* s) {
    uint16_t n;
    if (!GetU16(&n) || remaining() < n) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  /// Reads `count` packed f32 values; false on underrun. The bound is
  /// checked as `count > remaining() / 4` so an attacker-controlled count
  /// near SIZE_MAX cannot overflow `count * 4` into a passing check (and
  /// a length_error-throwing resize).
  bool GetF32Array(size_t count, std::vector<float>* out) {
    if (count > remaining() / 4) return false;
    out->resize(count);
    // Packed little-endian floats: on every supported target this is a
    // straight copy of the bit patterns.
    std::memcpy(out->data(), data_ + pos_, count * 4);
    pos_ += count * 4;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace wire

/// Serializes a frame (header computed from `payload`) into one
/// contiguous buffer ready for a single write.
inline std::vector<uint8_t> EncodeFrame(OpCode op, uint64_t request_id,
                                        const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  wire::PutU32(&out, kMagic);
  wire::PutU8(&out, kProtocolVersion);
  wire::PutU8(&out, static_cast<uint8_t>(op));
  wire::PutU16(&out, 0);  // reserved
  wire::PutU64(&out, request_id);
  wire::PutU32(&out, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&out, Fnv1a32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Parses the 24 header bytes. Returns false when the magic, version or
/// reserved field is wrong — the stream is not speaking this protocol
/// (or lost sync) and must be dropped, not answered.
inline bool DecodeHeader(const uint8_t* buf, FrameHeader* header) {
  wire::Reader r{buf, kHeaderBytes};
  uint8_t op, version;
  uint16_t reserved;
  if (!r.GetU32(&header->magic) || !r.GetU8(&version) || !r.GetU8(&op) ||
      !r.GetU16(&reserved) || !r.GetU64(&header->request_id) ||
      !r.GetU32(&header->payload_len) || !r.GetU32(&header->payload_checksum)) {
    return false;
  }
  header->version = version;
  header->op = static_cast<OpCode>(op);
  return header->magic == kMagic && version == kProtocolVersion &&
         reserved == 0;
}

/// True for the shed statuses a client may retry after backoff.
inline bool IsRetryable(WireStatus status) {
  return status == WireStatus::kOverloaded ||
         status == WireStatus::kShuttingDown;
}

/// Maps a wire status (+ message) onto the library's Status vocabulary:
/// kOverloaded / kShuttingDown become Status::Unavailable (retryable()),
/// kDeadlineExceeded keeps its typed code.
inline Status ToStatus(WireStatus status, const std::string& message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case WireStatus::kOverloaded:
      return Status::Unavailable("overloaded: " + message);
    case WireStatus::kShuttingDown:
      return Status::Unavailable("shutting down: " + message);
    case WireStatus::kProtocolError:
      return Status::Corruption("protocol error: " + message);
    case WireStatus::kInternal:
      return Status::Internal(message);
    case WireStatus::kReadOnly:
      return Status::ReadOnly(message);
  }
  return Status::Internal("unknown wire status");
}

/// Maps a library Status onto the wire vocabulary (inverse of ToStatus
/// for the codes the serving layer emits).
inline WireStatus FromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireStatus::kOverloaded;
    case StatusCode::kCorruption:
      return WireStatus::kProtocolError;
    case StatusCode::kReadOnly:
      return WireStatus::kReadOnly;
    default:
      return WireStatus::kInternal;
  }
}

}  // namespace dblsh::serve

#endif  // DBLSH_SERVE_PROTOCOL_H_
