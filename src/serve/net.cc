#include "serve/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>

namespace dblsh::serve {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

// Parses a dotted-quad host into a sockaddr_in (the serving layer binds
// loopback or explicit addresses; name resolution is out of scope).
bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

void InstallSigpipeGuard() {
  static std::once_flag once;
  std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseFd(fd);
    return Errno("bind");
  }
  if (::listen(fd, 128) != 0) {
    CloseFd(fd);
    return Errno("listen");
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    CloseFd(fd);
    return Errno("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port,
                       int timeout_ms) {
  sockaddr_in addr;
  if (!FillAddr(host.empty() ? "127.0.0.1" : host, port, &addr)) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Nonblocking connect + poll gives the timeout; the fd goes back to
  // blocking mode afterwards (frame I/O is blocking with poll slices).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      // A failed poll says nothing about the connect; SO_ERROR could
      // still read 0 and hand back an unconnected fd as success.
      CloseFd(fd);
      return Errno("poll");
    }
    if (rc == 0) {
      CloseFd(fd);
      return Status::IoError("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseFd(fd);
      errno = err;
      return Errno("connect");
    }
  } else if (rc != 0) {
    CloseFd(fd);
    return Errno("connect");
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  if (rc == 0) return Status::NotFound("accept timeout");
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status ReadFull(int fd, uint8_t* buf, size_t len,
                const std::atomic<bool>* stop, int poll_interval_ms) {
  size_t got = 0;
  while (got < len) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return Status::Unavailable("stopped");
    }
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) continue;  // timeout slice: re-check the stop flag
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return got == 0 ? Status::NotFound("connection closed")
                      : Status::Corruption("mid-frame disconnect after " +
                                           std::to_string(got) + " of " +
                                           std::to_string(len) + " bytes");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFull(int fd, const uint8_t* buf, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace dblsh::serve
