#include "serve/server.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "replication/feed.h"
#include "serve/net.h"

namespace dblsh::serve {

namespace {

using Clock = Coalescer::Clock;

// Response payload prefix shared by every op: status + message.
std::vector<uint8_t> StatusPayload(WireStatus status,
                                   const std::string& message) {
  std::vector<uint8_t> payload;
  wire::PutU8(&payload, static_cast<uint8_t>(status));
  wire::PutString(&payload, message);
  return payload;
}

// Appends one QueryResponse body (neighbors + stats) to `payload`.
void AppendResponseBody(std::vector<uint8_t>* payload,
                        const QueryResponse& response) {
  wire::PutU32(payload, static_cast<uint32_t>(response.neighbors.size()));
  for (const auto& nb : response.neighbors) {
    wire::PutU32(payload, nb.id);
    wire::PutF32(payload, nb.dist);
  }
  wire::PutU64(payload, response.stats.candidates_verified);
}

// Decoded common head of Search / SearchBatch requests.
struct SearchHead {
  std::string name;
  QueryRequest request;
  uint32_t deadline_us = 0;
};

bool DecodeSearchHead(wire::Reader* r, SearchHead* head) {
  uint32_t k, budget;
  double r0;
  if (!r->GetString(&head->name) || !r->GetU32(&k) ||
      !r->GetU32(&head->deadline_us) || !r->GetU32(&budget) ||
      !r->GetF64(&r0)) {
    return false;
  }
  head->request.k = k;
  head->request.candidate_budget = budget;
  head->request.r0 = r0;
  return true;
}

Clock::time_point DeadlineFrom(uint32_t deadline_us) {
  return deadline_us == 0
             ? Clock::time_point::max()
             : Clock::now() + std::chrono::microseconds(deadline_us);
}

}  // namespace

Server::Connection::~Connection() {
  CloseFd(fd);
  server->OnConnectionClosed();
}

Status Server::Connection::WriteFrame(const std::vector<uint8_t>& frame) {
  std::lock_guard lock(write_mutex);
  if (!alive) return Status::Unavailable("connection closed");
  Status s = WriteFull(fd, frame.data(), frame.size());
  if (!s.ok()) alive = false;  // dead peer: later responses become no-ops
  return s;
}

Server::Server(std::vector<ServedCollection> collections,
               const ServerOptions& options)
    : options_(options) {
  for (const auto& served : collections) {
    collections_[served.name] = served.collection;
  }
}

Result<std::unique_ptr<Server>> Server::Start(
    std::vector<ServedCollection> collections, const ServerOptions& options) {
  if (collections.empty()) {
    return Status::InvalidArgument("Start: no collections to serve");
  }
  for (const auto& served : collections) {
    if (served.name.empty() || served.collection == nullptr) {
      return Status::InvalidArgument(
          "Start: collection entries need a non-empty name and a non-null "
          "collection");
    }
  }
  const size_t named = collections.size();
  std::unique_ptr<Server> server(
      new Server(std::move(collections), options));
  if (server->collections_.size() != named) {
    return Status::InvalidArgument("Start: duplicate collection name");
  }
  InstallSigpipeGuard();
  auto listening =
      ListenTcp(options.host, options.port, &server->port_);
  if (!listening.ok()) return listening.status();
  server->listen_fd_ = listening.value();

  // One worker per long-lived task: acceptor + coalescer flusher + one
  // reader per admitted connection.
  server->io_pool_ = std::make_unique<exec::TaskExecutor>(
      options.max_connections + 2);
  exec::TaskExecutor* query_pool = options.query_executor != nullptr
                                       ? options.query_executor
                                       : &exec::TaskExecutor::Default();
  server->coalescer_ = std::make_unique<Coalescer>(
      server->io_pool_.get(), query_pool, options.coalescer);
  Server* raw = server.get();
  server->io_pool_->Schedule([raw] { raw->AcceptLoop(); });
  return server;
}

Server::~Server() {
  Shutdown();
  // Destruction order below (coalescer before io_pool) drains the
  // flusher task before its executor joins.
}

void Server::Shutdown() {
  std::lock_guard shutdown_lock(shutdown_mutex_);
  // A server whose Start failed before serving began has nothing to drain.
  if (shutdown_done_.load() || coalescer_ == nullptr) return;
  stopping_.store(true, std::memory_order_release);
  // Held searches flush and their responses are written while the
  // connection objects are still alive (callbacks hold references).
  coalescer_->Drain();
  // Reader loops observe stopping_ within poll_interval_ms and exit;
  // the last reference to each connection closes its socket.
  {
    std::unique_lock lock(conn_mutex_);
    conn_cv_.wait(lock, [&] { return active_connections_ == 0; });
  }
  shutdown_done_.store(true);
}

ServerStats Server::Stats() const {
  const CoalescerStats c = coalescer_->stats();
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_rejected = connections_rejected_.load();
  {
    std::lock_guard lock(conn_mutex_);
    s.connections_active = active_connections_;
  }
  s.requests = requests_.load();
  s.searches = searches_.load();
  s.upserts = upserts_.load();
  s.deletes = deletes_.load();
  s.protocol_errors = protocol_errors_.load();
  s.shed_overload = c.shed_overload;
  s.rejected_deadline = c.rejected_deadline;
  s.batches_dispatched = c.batches_dispatched;
  s.batched_queries = c.batched_queries;
  s.max_batch_size = c.max_batch_size;
  s.mean_batch_size =
      c.batches_dispatched > 0
          ? static_cast<double>(c.batched_queries) /
                static_cast<double>(c.batches_dispatched)
          : 0.0;
  s.replication_subscriptions = replication_subscriptions_.load();
  s.replication_records_shipped = replication_records_shipped_.load();
  return s;
}

Collection* Server::Find(const std::string& name) const {
  const auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second;
}

void Server::OnConnectionClosed() {
  std::lock_guard lock(conn_mutex_);
  --active_connections_;
  conn_cv_.notify_all();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto accepted = AcceptWithTimeout(listen_fd_, options_.poll_interval_ms);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kNotFound) continue;
      break;  // listen socket failed; the server stops admitting
    }
    const int fd = accepted.value();
    timeval tv{options_.send_timeout_s, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    bool at_capacity;
    {
      std::lock_guard lock(conn_mutex_);
      at_capacity = active_connections_ >= options_.max_connections;
      if (!at_capacity) ++active_connections_;
    }
    if (at_capacity) {
      // Shed with a retryable status frame (request_id 0 = connection
      // level) instead of an opaque RST.
      connections_rejected_.fetch_add(1);
      const auto frame = EncodeFrame(
          OpCode::kPing, 0,
          StatusPayload(WireStatus::kOverloaded, "connection limit reached"));
      (void)WriteFull(fd, frame.data(), frame.size());
      CloseFd(fd);
      continue;
    }
    connections_accepted_.fetch_add(1);
    auto conn = std::make_shared<Connection>(this, fd);
    io_pool_->Schedule([this, conn] { ConnectionLoop(conn); });
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void Server::ConnectionLoop(std::shared_ptr<Connection> conn) {
  std::vector<uint8_t> header_buf(kHeaderBytes);
  std::vector<uint8_t> payload;
  while (true) {
    Status s = ReadFull(conn->fd, header_buf.data(), kHeaderBytes,
                        &stopping_, options_.poll_interval_ms);
    if (!s.ok()) {
      // Clean EOF / shutdown are quiet; a mid-header disconnect counts
      // as a protocol error but still only tears down this connection.
      if (s.code() == StatusCode::kCorruption) {
        protocol_errors_.fetch_add(1);
      }
      break;
    }
    FrameHeader header;
    if (!DecodeHeader(header_buf.data(), &header)) {
      // Wrong magic/version: the stream is not speaking our protocol (or
      // lost sync); answering could feed a desynchronized peer garbage.
      protocol_errors_.fetch_add(1);
      break;
    }
    if (header.payload_len > options_.max_payload_bytes) {
      // Oversize length prefix: reject BEFORE allocating, then drop the
      // connection (the unread payload bytes would desynchronize it).
      protocol_errors_.fetch_add(1);
      SendError(conn, header.op, header.request_id,
                WireStatus::kProtocolError,
                "payload length " + std::to_string(header.payload_len) +
                    " exceeds limit");
      break;
    }
    payload.resize(header.payload_len);
    if (header.payload_len > 0) {
      s = ReadFull(conn->fd, payload.data(), payload.size(), &stopping_,
                   options_.poll_interval_ms);
      if (!s.ok()) {
        if (s.code() == StatusCode::kCorruption) {
          protocol_errors_.fetch_add(1);
        }
        break;
      }
    }
    if (Fnv1a32(payload.data(), payload.size()) != header.payload_checksum) {
      // Frame boundary is intact, so the connection may continue; the
      // request itself is untrustworthy.
      protocol_errors_.fetch_add(1);
      SendError(conn, header.op, header.request_id,
                WireStatus::kProtocolError, "payload checksum mismatch");
      continue;
    }
    if (!HandleFrame(conn, header, payload)) break;
  }
  // Reader exits; in-flight response callbacks still hold references and
  // finish writing, then the last reference closes the socket.
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const FrameHeader& header,
                         const std::vector<uint8_t>& payload) {
  requests_.fetch_add(1);
  switch (header.op) {
    case OpCode::kPing:
      SendError(conn, OpCode::kPing, header.request_id, WireStatus::kOk, "");
      return true;
    case OpCode::kSearch:
      HandleSearch(conn, header.request_id, payload);
      return true;
    case OpCode::kSearchBatch:
      HandleSearchBatch(conn, header.request_id, payload);
      return true;
    case OpCode::kUpsert:
      HandleUpsert(conn, header.request_id, payload);
      return true;
    case OpCode::kDelete:
      HandleDelete(conn, header.request_id, payload);
      return true;
    case OpCode::kStats:
      HandleStats(conn, header.request_id);
      return true;
    case OpCode::kCheckpoint:
      HandleCheckpoint(conn, header.request_id, payload);
      return true;
    case OpCode::kSubscribe:
      return HandleSubscribe(conn, header.request_id, payload);
    case OpCode::kReplicaStatus:
      HandleReplicaStatus(conn, header.request_id, payload);
      return true;
    case OpCode::kSnapshotChunk:
    case OpCode::kWalRecords:
      // Server-to-client stream frames; a client must never send them.
      break;
  }
  protocol_errors_.fetch_add(1);
  SendError(conn, header.op, header.request_id, WireStatus::kProtocolError,
            "unknown op code " +
                std::to_string(static_cast<unsigned>(header.op)));
  return true;  // framing stayed sound; the connection may continue
}

void Server::SendError(const std::shared_ptr<Connection>& conn, OpCode op,
                       uint64_t request_id, WireStatus status,
                       const std::string& message) {
  (void)conn->WriteFrame(
      EncodeFrame(op, request_id, StatusPayload(status, message)));
}

void Server::HandleSearch(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id,
                          const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  SearchHead head;
  uint32_t dim;
  std::vector<float> query;
  if (!DecodeSearchHead(&reader, &head) || !reader.GetU32(&dim) ||
      !reader.GetF32Array(dim, &query)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kSearch, request_id, WireStatus::kProtocolError,
              "malformed Search payload");
    return;
  }
  Collection* collection = Find(head.name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kSearch, request_id, WireStatus::kNotFound,
              "no collection named \"" + head.name + "\"");
    return;
  }
  if (dim != collection->dim()) {
    SendError(conn, OpCode::kSearch, request_id,
              WireStatus::kInvalidArgument,
              "query has " + std::to_string(dim) + " dims, collection \"" +
                  head.name + "\" serves " +
                  std::to_string(collection->dim()));
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, OpCode::kSearch, request_id, WireStatus::kShuttingDown,
              "server draining");
    return;
  }
  searches_.fetch_add(1);
  Status admitted = coalescer_->Submit(
      collection, std::move(query), head.request,
      DeadlineFrom(head.deadline_us),
      [conn, request_id](const Status& status, QueryResponse response,
                         uint32_t batch_size) {
        if (!status.ok()) {
          (void)conn->WriteFrame(EncodeFrame(
              OpCode::kSearch, request_id,
              StatusPayload(FromStatus(status), status.message())));
          return;
        }
        std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
        AppendResponseBody(&body, response);
        wire::PutU32(&body, batch_size);
        (void)conn->WriteFrame(EncodeFrame(OpCode::kSearch, request_id, body));
      });
  if (!admitted.ok()) {
    WireStatus status = FromStatus(admitted);
    if (admitted.code() == StatusCode::kUnavailable &&
        stopping_.load(std::memory_order_acquire)) {
      status = WireStatus::kShuttingDown;
    }
    SendError(conn, OpCode::kSearch, request_id, status, admitted.message());
  }
}

void Server::HandleSearchBatch(const std::shared_ptr<Connection>& conn,
                               uint64_t request_id,
                               const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  SearchHead head;
  uint32_t num, dim;
  std::vector<float> flat;
  if (!DecodeSearchHead(&reader, &head) || !reader.GetU32(&num) ||
      !reader.GetU32(&dim) ||
      !reader.GetF32Array(static_cast<size_t>(num) * dim, &flat)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kSearchBatch, request_id,
              WireStatus::kProtocolError, "malformed SearchBatch payload");
    return;
  }
  Collection* collection = Find(head.name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kSearchBatch, request_id, WireStatus::kNotFound,
              "no collection named \"" + head.name + "\"");
    return;
  }
  if (num == 0 || dim != collection->dim()) {
    SendError(conn, OpCode::kSearchBatch, request_id,
              WireStatus::kInvalidArgument,
              "batch of " + std::to_string(num) + " queries with " +
                  std::to_string(dim) + " dims cannot be served");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, OpCode::kSearchBatch, request_id,
              WireStatus::kShuttingDown, "server draining");
    return;
  }
  searches_.fetch_add(num);
  FloatMatrix queries(num, dim, std::move(flat));
  Status admitted = coalescer_->SubmitBatch(
      collection, std::move(queries), head.request,
      DeadlineFrom(head.deadline_us),
      [conn, request_id](const Status& status,
                         std::vector<QueryResponse> responses) {
        if (!status.ok()) {
          (void)conn->WriteFrame(EncodeFrame(
              OpCode::kSearchBatch, request_id,
              StatusPayload(FromStatus(status), status.message())));
          return;
        }
        std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
        wire::PutU32(&body, static_cast<uint32_t>(responses.size()));
        for (const QueryResponse& response : responses) {
          AppendResponseBody(&body, response);
        }
        (void)conn->WriteFrame(
            EncodeFrame(OpCode::kSearchBatch, request_id, body));
      });
  if (!admitted.ok()) {
    WireStatus status = FromStatus(admitted);
    if (admitted.code() == StatusCode::kUnavailable &&
        stopping_.load(std::memory_order_acquire)) {
      status = WireStatus::kShuttingDown;
    }
    SendError(conn, OpCode::kSearchBatch, request_id, status,
              admitted.message());
  }
}

void Server::HandleUpsert(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id,
                          const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  std::string name;
  uint8_t has_id;
  uint32_t id, dim;
  std::vector<float> vec;
  if (!reader.GetString(&name) || !reader.GetU8(&has_id) ||
      !reader.GetU32(&id) || !reader.GetU32(&dim) ||
      !reader.GetF32Array(dim, &vec)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kUpsert, request_id, WireStatus::kProtocolError,
              "malformed Upsert payload");
    return;
  }
  Collection* collection = Find(name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kUpsert, request_id, WireStatus::kNotFound,
              "no collection named \"" + name + "\"");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, OpCode::kUpsert, request_id, WireStatus::kShuttingDown,
              "server draining");
    return;
  }
  upserts_.fetch_add(1);
  // Mutations run inline on the reader: the Collection's writer-priority
  // lock serializes them against searches transactionally.
  auto result = has_id != 0 ? collection->Upsert(id, vec.data(), vec.size())
                            : collection->Upsert(vec.data(), vec.size());
  if (!result.ok()) {
    SendError(conn, OpCode::kUpsert, request_id, FromStatus(result.status()),
              result.status().message());
    return;
  }
  std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
  wire::PutU32(&body, result.value());
  (void)conn->WriteFrame(EncodeFrame(OpCode::kUpsert, request_id, body));
}

void Server::HandleDelete(const std::shared_ptr<Connection>& conn,
                          uint64_t request_id,
                          const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  std::string name;
  uint32_t id;
  if (!reader.GetString(&name) || !reader.GetU32(&id)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kDelete, request_id, WireStatus::kProtocolError,
              "malformed Delete payload");
    return;
  }
  Collection* collection = Find(name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kDelete, request_id, WireStatus::kNotFound,
              "no collection named \"" + name + "\"");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, OpCode::kDelete, request_id, WireStatus::kShuttingDown,
              "server draining");
    return;
  }
  deletes_.fetch_add(1);
  Status s = collection->Delete(id);
  if (!s.ok()) {
    SendError(conn, OpCode::kDelete, request_id, FromStatus(s), s.message());
    return;
  }
  (void)conn->WriteFrame(EncodeFrame(OpCode::kDelete, request_id,
                                     StatusPayload(WireStatus::kOk, "")));
}

void Server::HandleCheckpoint(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id,
                              const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  std::string name;
  if (!reader.GetString(&name)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kCheckpoint, request_id,
              WireStatus::kProtocolError, "malformed Checkpoint payload");
    return;
  }
  Collection* collection = Find(name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kCheckpoint, request_id, WireStatus::kNotFound,
              "no collection named \"" + name + "\"");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, OpCode::kCheckpoint, request_id,
              WireStatus::kShuttingDown, "server draining");
    return;
  }
  Status s = collection->Checkpoint();
  if (!s.ok()) {
    SendError(conn, OpCode::kCheckpoint, request_id, FromStatus(s),
              s.message());
    return;
  }
  (void)conn->WriteFrame(EncodeFrame(OpCode::kCheckpoint, request_id,
                                     StatusPayload(WireStatus::kOk, "")));
}

bool Server::HandleSubscribe(const std::shared_ptr<Connection>& conn,
                             uint64_t request_id,
                             const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  std::string name;
  uint32_t shard;
  uint64_t from_lsn;
  uint8_t need_snapshot;
  if (!reader.GetString(&name) || !reader.GetU32(&shard) ||
      !reader.GetU64(&from_lsn) || !reader.GetU8(&need_snapshot)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kSubscribe, request_id,
              WireStatus::kProtocolError, "malformed Subscribe payload");
    return true;
  }
  Collection* collection = Find(name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kSubscribe, request_id, WireStatus::kNotFound,
              "no collection named \"" + name + "\"");
    return true;
  }
  const CollectionDurabilityInfo durable = collection->Durability();
  if (!durable.enabled) {
    SendError(conn, OpCode::kSubscribe, request_id,
              WireStatus::kInvalidArgument,
              "collection \"" + name + "\" has no durability directory");
    return true;
  }
  if (shard >= collection->shards()) {
    SendError(conn, OpCode::kSubscribe, request_id,
              WireStatus::kInvalidArgument,
              "shard " + std::to_string(shard) + " out of range");
    return true;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    SendError(conn, OpCode::kSubscribe, request_id,
              WireStatus::kShuttingDown, "server draining");
    return true;
  }
  replication_subscriptions_.fetch_add(1);

  // The reader task now belongs to this stream: the feed runs inline and
  // every stream frame echoes the Subscribe's request_id.
  bool snapshot_mode = false;
  bool ack_sent = false;
  replication::FeedOptions feed;
  feed.collection = collection;
  feed.dir = durable.dir;
  feed.shard = shard;
  feed.from_lsn = from_lsn;
  feed.need_snapshot = need_snapshot != 0;
  feed.cancelled = [this] {
    return stopping_.load(std::memory_order_acquire);
  };
  feed.on_subscribed = [&](const durability::Manifest& manifest,
                           uint8_t mode, uint64_t snapshot_lsn,
                           uint64_t shard_lsn) {
    snapshot_mode = mode == replication::kFeedModeSnapshot;
    ack_sent = true;
    std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
    wire::PutU32(&body, manifest.shards);
    wire::PutU32(&body, manifest.dim);
    wire::PutU8(&body, static_cast<uint8_t>(manifest.storage));
    wire::PutU8(&body, mode);
    wire::PutU64(&body, snapshot_lsn);
    wire::PutU64(&body, shard_lsn);
    return conn->WriteFrame(EncodeFrame(OpCode::kSubscribe, request_id, body))
        .ok();
  };
  feed.on_chunk = [&](uint64_t total, uint64_t offset, bool last,
                      const uint8_t* data, size_t len) {
    std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
    wire::PutU32(&body, shard);
    wire::PutU64(&body, total);
    wire::PutU64(&body, offset);
    wire::PutU8(&body, last ? 1 : 0);
    wire::PutU32(&body, static_cast<uint32_t>(len));
    body.insert(body.end(), data, data + len);
    return conn->WriteFrame(
                   EncodeFrame(OpCode::kSnapshotChunk, request_id, body))
        .ok();
  };
  feed.on_records = [&](uint64_t watermark,
                        const std::vector<durability::WalRecord>& records) {
    std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
    wire::PutU32(&body, shard);
    wire::PutU64(&body, watermark);
    wire::PutU32(&body, static_cast<uint32_t>(records.size()));
    for (const durability::WalRecord& rec : records) {
      wire::PutU64(&body, rec.lsn);
      wire::PutU8(&body, static_cast<uint8_t>(rec.op));
      wire::PutU32(&body, rec.id);
      if (rec.op == durability::WalOp::kUpsert) {
        for (float v : rec.vec) wire::PutF32(&body, v);
      }
    }
    if (!conn->WriteFrame(EncodeFrame(OpCode::kWalRecords, request_id, body))
             .ok()) {
      return false;
    }
    replication_records_shipped_.fetch_add(records.size());
    return true;
  };

  Status s = replication::RunShardFeed(feed);
  if (!s.ok() && !ack_sent) {
    SendError(conn, OpCode::kSubscribe, request_id, FromStatus(s),
              s.message());
    return true;
  }
  // After the ack the stream has no in-band error channel: a feed failure
  // simply ends the stream and the follower treats it as a disconnect.
  // A completed snapshot stream hands the connection back to request mode
  // (the follower re-subscribes for the tail); a tail stream only ends
  // with the connection.
  return s.ok() && ack_sent && snapshot_mode;
}

void Server::HandleReplicaStatus(const std::shared_ptr<Connection>& conn,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload) {
  wire::Reader reader(payload.data(), payload.size());
  std::string name;
  if (!reader.GetString(&name)) {
    protocol_errors_.fetch_add(1);
    SendError(conn, OpCode::kReplicaStatus, request_id,
              WireStatus::kProtocolError, "malformed ReplicaStatus payload");
    return;
  }
  Collection* collection = Find(name);
  if (collection == nullptr) {
    SendError(conn, OpCode::kReplicaStatus, request_id, WireStatus::kNotFound,
              "no collection named \"" + name + "\"");
    return;
  }
  std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
  if (options_.replication_report) {
    const ReplicationReport report = options_.replication_report();
    wire::PutU8(&body, 1);  // role: replica
    wire::PutString(&body, report.primary);
    wire::PutU64(&body, replication_records_shipped_.load());
    wire::PutU64(&body, report.records_applied);
    wire::PutU32(&body, static_cast<uint32_t>(report.shards.size()));
    for (const ReplicationShardReport& s : report.shards) {
      wire::PutU64(&body, s.applied_lsn);
      wire::PutU64(&body, s.primary_lsn);
    }
  } else {
    // Primary: its own applied LSNs are both sides of the lag equation.
    const std::vector<uint64_t> lsns = collection->ShardAppliedLsns();
    wire::PutU8(&body, 0);  // role: primary
    wire::PutString(&body, "");
    wire::PutU64(&body, replication_records_shipped_.load());
    wire::PutU64(&body, 0);
    wire::PutU32(&body, static_cast<uint32_t>(lsns.size()));
    for (uint64_t lsn : lsns) {
      wire::PutU64(&body, lsn);
      wire::PutU64(&body, lsn);
    }
  }
  (void)conn->WriteFrame(EncodeFrame(OpCode::kReplicaStatus, request_id, body));
}

void Server::HandleStats(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id) {
  const ServerStats s = Stats();
  std::vector<uint8_t> body = StatusPayload(WireStatus::kOk, "");
  wire::PutU32(&body, static_cast<uint32_t>(collections_.size()));
  for (const auto& [name, collection] : collections_) {
    const CollectionStorageInfo storage = collection->Storage();
    const CollectionDurabilityInfo durable = collection->Durability();
    wire::PutString(&body, name);
    wire::PutU64(&body, collection->size());
    wire::PutU64(&body, collection->epoch());
    wire::PutU32(&body, static_cast<uint32_t>(collection->shards()));
    wire::PutString(&body, storage.kind);
    wire::PutU64(&body, storage.bytes_per_vector);
    wire::PutU64(&body, storage.resident_bytes);
    wire::PutU32(&body, static_cast<uint32_t>(storage.rerank));
    wire::PutU8(&body, durable.enabled ? 1 : 0);
    wire::PutU64(&body, durable.checkpoints);
    wire::PutU64(&body, durable.compactions);
    wire::PutU64(&body, durable.wal_appends);
    wire::PutU64(&body, durable.replayed_records);
    wire::PutF64(&body, durable.recovery_ms);
  }
  wire::PutU64(&body, s.connections_accepted);
  wire::PutU64(&body, s.connections_rejected);
  wire::PutU64(&body, s.connections_active);
  wire::PutU64(&body, s.requests);
  wire::PutU64(&body, s.searches);
  wire::PutU64(&body, s.upserts);
  wire::PutU64(&body, s.deletes);
  wire::PutU64(&body, s.protocol_errors);
  wire::PutU64(&body, s.shed_overload);
  wire::PutU64(&body, s.rejected_deadline);
  wire::PutU64(&body, s.batches_dispatched);
  wire::PutU64(&body, s.batched_queries);
  wire::PutU64(&body, s.max_batch_size);
  wire::PutF64(&body, s.mean_batch_size);
  wire::PutU64(&body, s.replication_subscriptions);
  wire::PutU64(&body, s.replication_records_shipped);
  (void)conn->WriteFrame(EncodeFrame(OpCode::kStats, request_id, body));
}

}  // namespace dblsh::serve
