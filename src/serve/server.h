#ifndef DBLSH_SERVE_SERVER_H_
#define DBLSH_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/collection.h"
#include "exec/task_executor.h"
#include "serve/coalescer.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace dblsh::serve {

/// One collection the server exposes, under its wire name. The Collection
/// stays owned by the caller and must outlive the server.
struct ServedCollection {
  std::string name;
  Collection* collection = nullptr;
};

/// One shard's replication position, as reported by kReplicaStatus.
struct ReplicationShardReport {
  uint64_t applied_lsn = 0;  ///< last LSN applied locally
  uint64_t primary_lsn = 0;  ///< primary's watermark (lag = difference)
  uint64_t records_applied = 0;  ///< records applied to this shard
};

/// A replica's self-report, produced by the ServerOptions hook below.
/// Defined here (not in src/replication/) so the serve layer needs no
/// replication header to answer kReplicaStatus.
struct ReplicationReport {
  std::string primary;  ///< "host:port" this replica follows
  std::vector<ReplicationShardReport> shards;
  uint64_t records_applied = 0;  ///< total records applied since start
};

/// Server construction knobs.
struct ServerOptions {
  /// IPv4 address to bind (dotted quad; "127.0.0.1" default).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, reported by Server::port().
  uint16_t port = 0;
  /// Concurrent connection cap. A client connecting beyond it receives a
  /// single kOverloaded response frame and is closed (retryable shed).
  size_t max_connections = 32;
  /// Frames whose payload_len exceeds this are rejected with
  /// kProtocolError before any allocation.
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Granularity at which blocked reads re-check the shutdown flag.
  int poll_interval_ms = 50;
  /// Send timeout (seconds) on accepted sockets: a peer that stops
  /// draining its responses errors out instead of wedging a writer.
  int send_timeout_s = 5;
  /// Micro-batching admission knobs (window, batch cap, backpressure).
  CoalescerOptions coalescer;
  /// Executor running coalesced SearchBatch dispatches; nullptr uses
  /// exec::TaskExecutor::Default(). Must outlive the server.
  exec::TaskExecutor* query_executor = nullptr;
  /// Replica self-report hook: non-null marks this server a replica and
  /// answers kReplicaStatus from it (a Replica wires its Report() in
  /// here). Null (default) answers as a primary from the collections'
  /// own applied LSNs.
  std::function<ReplicationReport()> replication_report;
};

/// Monotonic server counters (Server::Stats, also served over the wire by
/// OpCode::kStats). Batch counters come from the coalescer:
/// `batched_queries / batches_dispatched` is the mean achieved batch size.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< shed at max_connections
  uint64_t connections_active = 0;
  uint64_t requests = 0;          ///< well-formed frames handled
  uint64_t searches = 0;          ///< kSearch + kSearchBatch queries seen
  uint64_t upserts = 0;
  uint64_t deletes = 0;
  uint64_t protocol_errors = 0;   ///< malformed frames / payloads
  uint64_t shed_overload = 0;     ///< queries refused at max_inflight
  uint64_t rejected_deadline = 0; ///< queries expired before execution
  uint64_t batches_dispatched = 0;
  uint64_t batched_queries = 0;
  uint64_t max_batch_size = 0;
  /// batched_queries / batches_dispatched (0 when nothing dispatched).
  double mean_batch_size = 0.0;
  uint64_t replication_subscriptions = 0;  ///< kSubscribe streams served
  uint64_t replication_records_shipped = 0;  ///< WAL records streamed out
};

/// Framed-TCP serving front-end over a set of named Collections — the
/// process boundary that turns the executor's batched fan-out into
/// multi-client throughput:
///
///   auto server = serve::Server::Start(
///       {{"main", &collection}}, options).value();
///   // ... clients connect to ("127.0.0.1", server->port()) ...
///   server->Shutdown();   // graceful drain
///
/// Request flow: the acceptor task admits up to `max_connections`
/// connections (each served by a long-lived reader task on a dedicated
/// executor owned by the server — no raw threads). A reader decodes
/// frames (magic/version/length/checksum gates, all failures answered
/// with kProtocolError or dropped without trusting the stream), then:
/// Search requests go through the micro-batching Coalescer — held up to
/// `window_us` for companions, dispatched as one Collection::SearchBatch
/// on the query executor, fanned back per connection; Upsert/Delete run
/// inline on the reader (the Collection's writer lock serializes them);
/// Ping/Stats answer immediately.
///
/// Robustness contract:
///  - deadline propagation: a request whose client-supplied budget
///    (deadline_us) elapsed is answered kDeadlineExceeded without
///    touching the index — checked at admission and again at dispatch;
///  - backpressure: past `coalescer.max_inflight` queued queries (or
///    `max_connections` peers) requests shed with retryable kOverloaded
///    instead of growing queues unboundedly;
///  - client death: SIGPIPE is ignored process-wide and every send uses
///    MSG_NOSIGNAL, so a client vanishing mid-response tears down only
///    its own connection — in-flight batch peers are unaffected;
///  - shutdown: Shutdown() stops intake, drains the coalescer (held
///    queries complete and their responses are written), then closes
///    connections and joins every serving task.
///
/// Thread-safety: all public members are safe to call concurrently.
class Server {
 public:
  /// Binds, spins up the acceptor and coalescer, and starts serving the
  /// given collections. Fails with InvalidArgument on duplicate or empty
  /// names / null collections, IoError when the bind fails.
  static Result<std::unique_ptr<Server>> Start(
      std::vector<ServedCollection> collections,
      const ServerOptions& options = {});

  /// Graceful Shutdown(), then joins every serving task.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The TCP port actually bound (the ephemeral one when options.port
  /// was 0).
  uint16_t port() const { return port_; }

  /// Snapshot of the serving counters.
  ServerStats Stats() const;

  /// Graceful drain: stop accepting, refuse new requests with
  /// kShuttingDown, flush the coalescer window (admitted requests
  /// complete and their responses are written), close connections.
  /// Idempotent; blocks until quiesced.
  void Shutdown();

 private:
  /// One accepted connection: its socket, write serialization, and
  /// liveness. Held by shared_ptr from the reader task and every
  /// in-flight response callback; the destructor (last reference,
  /// wherever it lands) closes the fd and deregisters from the server.
  struct Connection {
    Connection(Server* server, int fd) : server(server), fd(fd) {}
    ~Connection();
    /// Serialized, liveness-checked frame write; a failed send marks the
    /// connection dead (later writes become no-ops).
    Status WriteFrame(const std::vector<uint8_t>& frame);
    Server* server;
    int fd;
    std::mutex write_mutex;
    bool alive = true;  ///< guarded by write_mutex
  };

  Server(std::vector<ServedCollection> collections,
         const ServerOptions& options);

  /// Long-lived acceptor task: poll-accept with shed-at-capacity.
  void AcceptLoop();
  /// Long-lived per-connection reader task: frame decode + dispatch.
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  /// Decodes and serves one well-framed request; returns false when the
  /// connection must be dropped (unrecoverable stream state).
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header,
                   const std::vector<uint8_t>& payload);
  /// Op handler (payload already checksum-verified): coalesced search.
  void HandleSearch(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, const std::vector<uint8_t>& payload);
  /// Op handler: pre-formed batch, dispatched without a window hold.
  void HandleSearchBatch(const std::shared_ptr<Connection>& conn,
                         uint64_t request_id,
                         const std::vector<uint8_t>& payload);
  /// Op handler: transactional insert/replace, inline on the reader.
  void HandleUpsert(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, const std::vector<uint8_t>& payload);
  /// Op handler: tombstone one id, inline on the reader.
  void HandleDelete(const std::shared_ptr<Connection>& conn,
                    uint64_t request_id, const std::vector<uint8_t>& payload);
  /// Op handler: collection + counter snapshot.
  void HandleStats(const std::shared_ptr<Connection>& conn,
                   uint64_t request_id);
  /// Op handler: durable checkpoint of one collection, inline on the
  /// reader (checkpointing takes the shard write locks briefly, then does
  /// its file IO off-lock).
  void HandleCheckpoint(const std::shared_ptr<Connection>& conn,
                        uint64_t request_id,
                        const std::vector<uint8_t>& payload);
  /// Op handler: dedicates this connection's reader to one shard's
  /// replication feed (ack + snapshot chunks or WAL-record stream).
  /// Returns false when the connection must drop afterwards (a tail
  /// stream only ends by disconnect); a completed snapshot stream returns
  /// true and the connection resumes request mode.
  bool HandleSubscribe(const std::shared_ptr<Connection>& conn,
                       uint64_t request_id,
                       const std::vector<uint8_t>& payload);
  /// Op handler: replication role + per-shard LSN report.
  void HandleReplicaStatus(const std::shared_ptr<Connection>& conn,
                           uint64_t request_id,
                           const std::vector<uint8_t>& payload);
  /// Sends a status-only response frame.
  void SendError(const std::shared_ptr<Connection>& conn, OpCode op,
                 uint64_t request_id, WireStatus status,
                 const std::string& message);
  /// Collection registered under `name`, or nullptr.
  Collection* Find(const std::string& name) const;
  /// Deregistration hook called by ~Connection.
  void OnConnectionClosed();

  const ServerOptions options_;
  std::map<std::string, Collection*> collections_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_done_{false};
  std::mutex shutdown_mutex_;  ///< serializes Shutdown callers

  // Declared before io_pool_ so destruction joins the acceptor/reader
  // tasks while the connection-tracking state they touch is still alive
  // (members destroy in reverse order; a connection admitted in the
  // window after Shutdown()'s wait returns must not lock a dead mutex).
  mutable std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  size_t active_connections_ = 0;  ///< guarded by conn_mutex_

  // Dedicated IO executor: 1 acceptor + 1 coalescer flusher + one worker
  // per admitted connection (all long-lived tasks; sized accordingly).
  std::unique_ptr<exec::TaskExecutor> io_pool_;
  std::unique_ptr<Coalescer> coalescer_;

  // Counters (see ServerStats).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> searches_{0};
  std::atomic<uint64_t> upserts_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> replication_subscriptions_{0};
  std::atomic<uint64_t> replication_records_shipped_{0};
};

}  // namespace dblsh::serve

#endif  // DBLSH_SERVE_SERVER_H_
