#ifndef DBLSH_SERVE_CLIENT_H_
#define DBLSH_SERVE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/query.h"
#include "dataset/float_matrix.h"
#include "durability/wal.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/status.h"

namespace dblsh::serve {

/// Client construction knobs.
struct ClientOptions {
  /// TCP connect timeout.
  int connect_timeout_ms = 5000;
  /// Response frames whose payload_len exceeds this are rejected as a
  /// protocol error before any allocation — mirrors the server's gate so
  /// a misbehaving or spoofed server cannot force a multi-GiB buffer.
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

/// One Search answer: the neighbors plus the size of the server-side
/// batch the query was coalesced into (≥2 means it shared a
/// SearchBatch with concurrent peers).
struct SearchReply {
  QueryResponse response;
  uint32_t batch_size = 0;
};

/// Per-collection counters reported by Stats.
struct RemoteCollectionStats {
  std::string name;
  uint64_t live_vectors = 0;
  uint64_t epoch = 0;
  uint32_t shards = 0;
  std::string storage;           ///< storage backend ("fp32" | "sq8")
  uint64_t bytes_per_vector = 0; ///< payload bytes per vector slot
  uint64_t resident_bytes = 0;   ///< store heap bytes, summed over shards
  uint32_t rerank = 0;           ///< re-rank multiplier (0 when fp32)
  bool durable = false;          ///< collection has a durability directory
  uint64_t checkpoints = 0;      ///< completed checkpoints since open
  uint64_t compactions = 0;      ///< completed tombstone compactions
  uint64_t wal_appends = 0;      ///< WAL records appended since open
  uint64_t replayed_records = 0; ///< WAL records replayed at last open
  double recovery_ms = 0.0;      ///< wall time of the last recovery
};

/// Full Stats answer: per-collection state + the server counters.
struct RemoteStats {
  std::vector<RemoteCollectionStats> collections;
  ServerStats server;
};

/// The Subscribe acknowledgement: the primary's collection geometry (a
/// follower validates its local spec against it) plus the stream mode the
/// feed decided.
struct SubscribeAck {
  uint32_t shards = 0;
  uint32_t dim = 0;
  uint8_t storage = 0;  ///< durability::kSnapshotFp32 / kSnapshotSq8 /
                        ///< kSnapshotPq
  uint8_t mode = 0;     ///< replication::kFeedModeTail / kFeedModeSnapshot
  uint64_t snapshot_lsn = 0;  ///< the shard snapshot's LSN
  uint64_t shard_lsn = 0;     ///< primary's applied LSN for the shard
};

/// One frame of a replication stream (after a Subscribe ack): either a
/// snapshot chunk (bootstrap) or a WAL-record batch with the primary's
/// watermark (tail; an empty batch is an idle heartbeat).
struct ReplicationEvent {
  enum class Kind { kSnapshotChunk, kWalRecords };
  Kind kind = Kind::kWalRecords;
  uint32_t shard = 0;
  // kSnapshotChunk fields.
  uint64_t total_bytes = 0;
  uint64_t offset = 0;
  bool last = false;
  std::vector<uint8_t> bytes;
  // kWalRecords fields.
  uint64_t watermark_lsn = 0;
  std::vector<durability::WalRecord> records;
};

/// Blocking client for the framed-TCP serving protocol. One instance owns
/// one connection:
///
///   auto client = serve::Client::Connect("127.0.0.1", port).value();
///   auto reply = client->Search("main", query, dim, request);
///
/// Errors mirror the wire statuses through protocol.h's ToStatus mapping:
/// a shed request surfaces as Status::Unavailable (retryable()), an
/// expired budget as Status::DeadlineExceeded.
///
/// Thread-safety: the RPC methods serialize internally, so the client may
/// be shared — but responses are read in request order, so sharing one
/// connection serializes the callers' round-trips. For concurrency use
/// one client per thread, or the pipelined SendSearch/ReceiveSearchReply
/// pair (one sender thread + one receiver thread; the two directions of
/// the socket are independent).
class Client {
 public:
  /// Connects (IPv4 dotted quad; empty host = loopback). A server at its
  /// connection cap answers the connect with a retryable
  /// Status::Unavailable here or on the first RPC.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port, const ClientOptions& = {});

  /// Closes the connection.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Liveness round-trip.
  Status Ping();

  /// One k-NN query against the named collection. `deadline_us` is the
  /// request's server-side budget in microseconds (0 = none): the server
  /// answers DeadlineExceeded without executing once it elapses.
  Result<SearchReply> Search(const std::string& collection,
                             const float* query, size_t dim,
                             const QueryRequest& request,
                             uint32_t deadline_us = 0);

  /// Pre-formed batch of queries, dispatched server-side as one
  /// SearchBatch (no coalescing window).
  Result<std::vector<QueryResponse>> SearchBatch(
      const std::string& collection, const FloatMatrix& queries,
      const QueryRequest& request, uint32_t deadline_us = 0);

  /// Inserts a new vector; returns its assigned id.
  Result<uint32_t> Upsert(const std::string& collection, const float* vec,
                          size_t dim);

  /// Inserts or replaces the vector under `id`; returns the id.
  Result<uint32_t> Upsert(const std::string& collection, uint32_t id,
                          const float* vec, size_t dim);

  /// Tombstones one id.
  Status Delete(const std::string& collection, uint32_t id);

  /// Server + per-collection counters.
  Result<RemoteStats> Stats();

  /// Forces a durable checkpoint (snapshot + WAL rotation) of the named
  /// collection. Fails with InvalidArgument when the collection was not
  /// opened with a durability directory.
  Status Checkpoint(const std::string& collection);

  /// Attaches this connection to one shard's replication feed. After an
  /// OK ack the connection becomes a one-way stream read with
  /// ReceiveReplicationEvent: snapshot mode (`ack->mode`) delivers
  /// kSnapshotChunk frames until the `last` chunk, then the connection
  /// returns to request mode; tail mode delivers kWalRecords frames until
  /// disconnect. `need_snapshot` forces snapshot mode (a follower with no
  /// local state); otherwise the feed compares `from_lsn` against its
  /// snapshot LSN. Use a dedicated Client per subscription.
  Status Subscribe(const std::string& collection, uint32_t shard,
                   uint64_t from_lsn, bool need_snapshot, SubscribeAck* ack);

  /// Blocks for the next stream frame after a Subscribe. `dim` is the
  /// collection dimensionality (from the ack) used to decode upsert
  /// payloads; `stop` (optional) aborts the wait with
  /// Status::Unavailable("stopped") when set, so a replica can shut down
  /// a quiet tail without closing the socket from another thread.
  Status ReceiveReplicationEvent(uint32_t dim, ReplicationEvent* event,
                                 const std::atomic<bool>* stop = nullptr);

  /// Replication role + per-shard LSN report of the named collection.
  /// The reply mirrors serve::ReplicationReport, plus the peer's role and
  /// its shipped/applied record counters.
  struct ReplicaStatusReply {
    uint8_t role = 0;  ///< 0 = primary, 1 = replica
    std::string primary;  ///< "host:port" a replica follows (empty: primary)
    uint64_t records_shipped = 0;
    uint64_t records_applied = 0;
    std::vector<ReplicationShardReport> shards;
  };
  /// Fetches the replication report (see ReplicaStatusReply).
  Result<ReplicaStatusReply> ReplicaStatus(const std::string& collection);

  /// Pipelined send half: writes one Search request WITHOUT waiting for
  /// the response and returns its request_id. Pair with
  /// ReceiveSearchReply from a receiver thread (open-loop load
  /// generation: keeps many requests in flight on one connection, which
  /// is what gives the server's coalescer companions to batch).
  Result<uint64_t> SendSearch(const std::string& collection,
                              const float* query, size_t dim,
                              const QueryRequest& request,
                              uint32_t deadline_us = 0);

  /// Pipelined receive half: blocks for the next response frame and
  /// returns (request_id, reply). A typed per-request rejection
  /// (deadline, shed) is reported in `status` with the id still valid;
  /// a connection-level failure returns a failed Result.
  struct PipelinedReply {
    uint64_t request_id = 0;
    Status status;  ///< the request's outcome
    SearchReply reply;
  };
  /// Blocks for the next pipelined response frame (see PipelinedReply).
  Result<PipelinedReply> ReceiveSearchReply();

 private:
  Client(int fd, uint32_t max_payload_bytes)
      : fd_(fd), max_payload_bytes_(max_payload_bytes) {}

  /// Writes one frame (serialized by send_mutex_).
  Status SendFrame(OpCode op, uint64_t request_id,
                   const std::vector<uint8_t>& payload);
  /// Reads one frame (serialized by recv_mutex_), validating header and
  /// checksum. `stop` aborts the blocking read (replication tails).
  Status ReceiveFrame(FrameHeader* header, std::vector<uint8_t>* payload,
                      const std::atomic<bool>* stop = nullptr);
  /// One blocking round-trip; fails on a connection-shed frame
  /// (request_id 0) or an id mismatch.
  Status Call(OpCode op, const std::vector<uint8_t>& request,
              std::vector<uint8_t>* response);

  int fd_;
  const uint32_t max_payload_bytes_;
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  uint64_t next_id_ = 1;  ///< guarded by send_mutex_
};

}  // namespace dblsh::serve

#endif  // DBLSH_SERVE_CLIENT_H_
