#include "serve/coalescer.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <utility>

namespace dblsh::serve {

namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

bool Coalescer::Key::operator<(const Key& other) const {
  return std::tie(collection, k, candidate_budget, r0_bits) <
         std::tie(other.collection, other.k, other.candidate_budget,
                  other.r0_bits);
}

Coalescer::Coalescer(exec::TaskExecutor* flush_pool,
                     exec::TaskExecutor* query_pool,
                     const CoalescerOptions& options)
    : flush_pool_(flush_pool), query_pool_(query_pool), options_(options) {
  flush_pool_->Schedule([this] { FlusherLoop(); });
}

Coalescer::~Coalescer() {
  Drain();
  // Drain stopped intake and flushed; now wait for the flusher task to
  // observe draining_ and exit, so it cannot touch a destroyed *this.
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [&] { return flusher_exited_; });
}

Status Coalescer::Submit(Collection* collection, std::vector<float> query,
                         const QueryRequest& request,
                         Clock::time_point deadline, Callback callback) {
  if (collection == nullptr) {
    return Status::InvalidArgument("Submit: null collection");
  }
  if (query.size() != collection->dim()) {
    return Status::InvalidArgument(
        "Submit: query has " + std::to_string(query.size()) +
        " dims, collection serves " + std::to_string(collection->dim()));
  }
  const Clock::time_point now = Clock::now();
  if (deadline <= now) {
    std::lock_guard lock(mutex_);
    ++stats_.rejected_deadline;
    return Status::DeadlineExceeded("deadline expired before admission");
  }

  Pending pending{std::move(query), request, deadline, std::move(callback)};
  const bool bypass = !request.filter.empty();
  Batch full;  // dispatched outside the lock when the cap is hit
  Key key{collection, request.k, request.candidate_budget,
          BitsOf(request.r0)};
  {
    std::lock_guard lock(mutex_);
    if (draining_) return Status::Unavailable("coalescer draining");
    if (inflight_ >= options_.max_inflight) {
      ++stats_.shed_overload;
      return Status::Unavailable(
          "queue full (" + std::to_string(inflight_) + " in flight); retry");
    }
    ++inflight_;
    ++stats_.admitted;
    if (bypass) {
      // A filtered request cannot share the batch-wide QueryRequest:
      // dispatch it alone, no window hold.
      full.entries.push_back(std::move(pending));
    } else {
      Batch& batch = batches_[key];
      if (batch.entries.empty()) {
        batch.flush_at = now + std::chrono::microseconds(options_.window_us);
      }
      // Flushing early at a near deadline gives the query a chance to
      // execute inside its budget instead of expiring in the window.
      batch.flush_at = std::min(batch.flush_at, deadline);
      batch.entries.push_back(std::move(pending));
      if (batch.entries.size() >= options_.max_batch) {
        full = std::move(batch);
        batches_.erase(key);
      } else {
        flusher_cv_.notify_one();  // re-arm the flusher's wait deadline
      }
    }
  }
  if (!full.entries.empty()) DispatchBatch(collection, std::move(full));
  return Status::OK();
}

Status Coalescer::SubmitBatch(
    Collection* collection, FloatMatrix queries, const QueryRequest& request,
    Clock::time_point deadline,
    std::function<void(const Status&, std::vector<QueryResponse>)> callback) {
  if (collection == nullptr) {
    return Status::InvalidArgument("SubmitBatch: null collection");
  }
  if (queries.rows() == 0) {
    return Status::InvalidArgument("SubmitBatch: empty batch");
  }
  if (queries.cols() != collection->dim()) {
    return Status::InvalidArgument(
        "SubmitBatch: queries have " + std::to_string(queries.cols()) +
        " dims, collection serves " + std::to_string(collection->dim()));
  }
  const uint64_t n = queries.rows();
  if (deadline <= Clock::now()) {
    std::lock_guard lock(mutex_);
    stats_.rejected_deadline += n;
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  {
    std::lock_guard lock(mutex_);
    if (draining_) return Status::Unavailable("coalescer draining");
    if (inflight_ + n > options_.max_inflight) {
      stats_.shed_overload += n;
      return Status::Unavailable(
          "queue full (" + std::to_string(inflight_) + " in flight); retry");
    }
    inflight_ += n;
    stats_.admitted += n;
  }
  auto cb = std::make_shared<
      std::function<void(const Status&, std::vector<QueryResponse>)>>(
      std::move(callback));
  query_pool_->Schedule([this, collection, queries = std::move(queries),
                         request, deadline, cb, n]() mutable {
    if (Clock::now() >= deadline) {
      {
        std::lock_guard lock(mutex_);
        stats_.rejected_deadline += n;
      }
      (*cb)(Status::DeadlineExceeded("deadline expired before execution"),
            {});
      FinishQueries(n);
      return;
    }
    auto got = collection->SearchBatch(queries, request);
    {
      std::lock_guard lock(mutex_);
      ++stats_.batches_dispatched;
      stats_.batched_queries += n;
      stats_.max_batch_size = std::max<uint64_t>(stats_.max_batch_size, n);
    }
    if (got.ok()) {
      (*cb)(Status::OK(), std::move(got).value());
    } else {
      (*cb)(got.status(), {});
    }
    FinishQueries(n);
  });
  return Status::OK();
}

void Coalescer::FlusherLoop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (draining_ && batches_.empty()) break;
    // Earliest flush obligation across forming batches.
    Clock::time_point next = Clock::time_point::max();
    for (const auto& [key, batch] : batches_) {
      next = std::min(next, batch.flush_at);
    }
    if (next == Clock::time_point::max()) {
      flusher_cv_.wait(lock,
                       [&] { return draining_ || !batches_.empty(); });
      continue;
    }
    if (Clock::now() < next && !draining_) {
      flusher_cv_.wait_until(lock, next);
      continue;
    }
    // Collect everything due (everything, when draining).
    std::vector<std::pair<Collection*, Batch>> due;
    const Clock::time_point now = Clock::now();
    for (auto it = batches_.begin(); it != batches_.end();) {
      if (draining_ || it->second.flush_at <= now) {
        due.emplace_back(it->first.collection, std::move(it->second));
        it = batches_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    for (auto& [collection, batch] : due) {
      DispatchBatch(collection, std::move(batch));
    }
    lock.lock();
  }
  flusher_exited_ = true;
  drain_cv_.notify_all();
}

void Coalescer::DispatchBatch(Collection* collection, Batch batch) {
  auto shared = std::make_shared<Batch>(std::move(batch));
  query_pool_->Schedule([this, collection, shared]() mutable {
    ExecuteBatch(collection, std::move(*shared));
  });
}

void Coalescer::ExecuteBatch(Collection* collection, Batch batch) {
  // Deadline gate: expired entries complete with the typed rejection and
  // never touch the index; their batch peers execute normally.
  const Clock::time_point now = Clock::now();
  std::vector<Pending> live;
  live.reserve(batch.entries.size());
  uint64_t expired = 0;
  for (Pending& entry : batch.entries) {
    if (entry.deadline <= now) {
      ++expired;
      entry.callback(
          Status::DeadlineExceeded("deadline expired before execution"),
          QueryResponse{}, 0);
    } else {
      live.push_back(std::move(entry));
    }
  }
  if (expired > 0) {
    std::lock_guard lock(mutex_);
    stats_.rejected_deadline += expired;
  }
  if (live.empty()) {
    FinishQueries(batch.entries.size());
    return;
  }

  const auto batch_size = static_cast<uint32_t>(live.size());
  {
    std::lock_guard lock(mutex_);
    ++stats_.batches_dispatched;
    stats_.batched_queries += batch_size;
    stats_.max_batch_size =
        std::max<uint64_t>(stats_.max_batch_size, batch_size);
  }

  if (live.size() == 1) {
    Pending& entry = live.front();
    auto got = collection->Search(entry.query.data(), entry.request);
    if (got.ok()) {
      entry.callback(Status::OK(), std::move(got).value(), 1);
    } else {
      entry.callback(got.status(), QueryResponse{}, 1);
    }
  } else {
    FloatMatrix queries(live.size(), live.front().query.size());
    for (size_t i = 0; i < live.size(); ++i) {
      std::copy(live[i].query.begin(), live[i].query.end(),
                queries.mutable_row(i));
    }
    // Entries in one batch share (k, budget, r0) by construction and
    // carry no filter, so the first request speaks for all of them.
    auto got = collection->SearchBatch(queries, live.front().request);
    if (got.ok()) {
      std::vector<QueryResponse>& responses = got.value();
      for (size_t i = 0; i < live.size(); ++i) {
        live[i].callback(Status::OK(), std::move(responses[i]), batch_size);
      }
    } else {
      for (Pending& entry : live) {
        entry.callback(got.status(), QueryResponse{}, batch_size);
      }
    }
  }
  FinishQueries(batch.entries.size());
}

void Coalescer::FinishQueries(uint64_t n) {
  std::lock_guard lock(mutex_);
  inflight_ -= n;
  if (inflight_ == 0) drain_cv_.notify_all();
}

void Coalescer::Drain() {
  {
    std::lock_guard lock(mutex_);
    draining_ = true;
    flusher_cv_.notify_all();
  }
  // Wait for every admitted query to complete, lending this thread to the
  // query pool so a saturated (or width-1) pool cannot starve the very
  // batches being awaited.
  std::unique_lock lock(mutex_);
  while (inflight_ > 0 || !batches_.empty()) {
    lock.unlock();
    if (!query_pool_->RunOnePendingTask()) {
      lock.lock();
      drain_cv_.wait_for(lock, std::chrono::milliseconds(1));
      lock.unlock();
    }
    lock.lock();
  }
}

CoalescerStats Coalescer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

size_t Coalescer::inflight() const {
  std::lock_guard lock(mutex_);
  return inflight_;
}

}  // namespace dblsh::serve
