#ifndef DBLSH_SERVE_COALESCER_H_
#define DBLSH_SERVE_COALESCER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/collection.h"
#include "core/query.h"
#include "exec/task_executor.h"
#include "util/status.h"

namespace dblsh::serve {

/// Knobs of the micro-batching admission layer.
struct CoalescerOptions {
  /// Longest time a query is held waiting for companions before its batch
  /// dispatches (the micro-batching window). The latency cost of
  /// coalescing is bounded by this value.
  uint32_t window_us = 1000;

  /// A batch that reaches this many queries dispatches immediately
  /// instead of waiting out the window.
  size_t max_batch = 32;

  /// Backpressure limit: queries admitted but not yet completed. At the
  /// limit Submit sheds with a retryable Unavailable instead of queueing
  /// unboundedly.
  size_t max_inflight = 1024;
};

/// Monotonic counters of the coalescer (snapshot via Coalescer::stats).
/// `batched_queries / batches_dispatched` is the mean achieved batch
/// size — the number the serving bench and the acceptance tests watch.
struct CoalescerStats {
  uint64_t admitted = 0;           ///< queries accepted by Submit
  uint64_t batches_dispatched = 0; ///< SearchBatch calls issued
  uint64_t batched_queries = 0;    ///< queries executed inside those calls
  uint64_t shed_overload = 0;      ///< Submits refused at max_inflight
  uint64_t rejected_deadline = 0;  ///< queries expired before execution
  uint64_t max_batch_size = 0;     ///< largest single dispatched batch
};

/// Micro-batching request coalescer: holds concurrent single-query Search
/// submissions in a bounded wait window, grouped by (collection, k,
/// candidate budget, r0), and dispatches each group as ONE
/// Collection::SearchBatch task on the query executor — converting many
/// independent 1-query requests into the batched shape the executor's
/// fan-out machinery turns into throughput. Responses fan back through
/// per-query callbacks.
///
/// Admission contract (all enforced before the index is touched):
///  - a query whose deadline already passed is rejected synchronously
///    with DeadlineExceeded and never executed;
///  - at `max_inflight` admitted-but-unfinished queries, Submit sheds
///    with a retryable Unavailable;
///  - after Drain() begins, Submit refuses with Unavailable("draining").
///
/// A query admitted OK gets its callback invoked exactly once, from an
/// executor thread (never from inside Submit, never under the coalescer
/// lock). Queries still held when their deadline expires complete with
/// DeadlineExceeded without executing; batch peers are unaffected.
///
/// Thread-safety: all public members are safe to call concurrently.
class Coalescer {
 public:
  /// Clock deadlines are expressed in.
  using Clock = std::chrono::steady_clock;

  /// Per-query completion hook: status, the response (empty unless OK),
  /// and the size of the dispatched batch the query rode in (1 for a
  /// bypass dispatch, 0 when it never executed).
  using Callback =
      std::function<void(const Status&, QueryResponse, uint32_t batch_size)>;

  /// `flush_pool` runs the long-lived window-flusher task (one worker is
  /// occupied for the coalescer's lifetime); `query_pool` runs the
  /// dispatched SearchBatch tasks. Both must outlive the coalescer.
  Coalescer(exec::TaskExecutor* flush_pool, exec::TaskExecutor* query_pool,
            const CoalescerOptions& options);

  /// Drains (flushing held queries) and stops the flusher.
  ~Coalescer();

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Admits one single-query search against `collection` (which must
  /// outlive the callback). `deadline` = Clock::time_point::max() means
  /// no deadline. Returns OK when admitted — the callback will fire
  /// exactly once, later — or the typed rejection (DeadlineExceeded /
  /// Unavailable / InvalidArgument), in which case the callback is NOT
  /// invoked. Requests carrying a non-empty filter cannot share a batch
  /// request and dispatch as their own batch of one.
  Status Submit(Collection* collection, std::vector<float> query,
                const QueryRequest& request, Clock::time_point deadline,
                Callback callback);

  /// Admits a pre-formed batch: same admission checks (each query counts
  /// against max_inflight), but no window hold — the batch dispatches
  /// as-is. `callback` fires once with all responses.
  Status SubmitBatch(
      Collection* collection, FloatMatrix queries, const QueryRequest& request,
      Clock::time_point deadline,
      std::function<void(const Status&, std::vector<QueryResponse>)> callback);

  /// Stops intake, flushes every held query (expired ones complete with
  /// DeadlineExceeded, live ones execute) and blocks until all admitted
  /// queries completed. Lends the calling thread to the query pool while
  /// waiting, so a saturated pool cannot deadlock the drain. Idempotent.
  void Drain();

  /// Consistent snapshot of the counters.
  CoalescerStats stats() const;

  /// Queries admitted and not yet completed (test/introspection hook).
  size_t inflight() const;

 private:
  /// One held query.
  struct Pending {
    std::vector<float> query;
    QueryRequest request;
    Clock::time_point deadline;
    Callback callback;
  };

  /// Batching key: only queries that can share one QueryRequest coalesce.
  /// r0 is keyed by bit pattern (exact match, no float tolerance).
  struct Key {
    Collection* collection;
    size_t k;
    size_t candidate_budget;
    uint64_t r0_bits;
    bool operator<(const Key& other) const;
  };

  /// One forming batch and its flush schedule.
  struct Batch {
    std::vector<Pending> entries;
    Clock::time_point flush_at;  ///< window expiry or earliest deadline
  };

  /// Long-lived flusher: waits for the earliest flush_at (or a notify),
  /// moves due batches out and dispatches them.
  void FlusherLoop();

  /// Schedules `batch` (already removed from the map) for execution on
  /// the query pool.
  void DispatchBatch(Collection* collection, Batch batch);

  /// Runs one batch: drops expired entries with DeadlineExceeded, then
  /// executes the survivors via Search/SearchBatch and fans callbacks
  /// back. Runs on a query-pool worker.
  void ExecuteBatch(Collection* collection, Batch batch);

  /// Marks `n` queries finished and wakes Drain waiters.
  void FinishQueries(uint64_t n);

  exec::TaskExecutor* flush_pool_;
  exec::TaskExecutor* query_pool_;
  const CoalescerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable flusher_cv_;  ///< wakes the flusher
  std::condition_variable drain_cv_;    ///< wakes Drain / the destructor
  // Forming batches keyed by compatibility; Collection* owned by caller.
  std::map<Key, Batch> batches_;
  uint64_t inflight_ = 0;  ///< admitted - completed
  bool draining_ = false;
  bool flusher_exited_ = false;
  CoalescerStats stats_;
};

}  // namespace dblsh::serve

#endif  // DBLSH_SERVE_COALESCER_H_
