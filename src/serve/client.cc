#include "serve/client.h"

#include <utility>

#include "serve/net.h"

namespace dblsh::serve {

namespace {

// Decodes the status + message prefix every response payload begins with.
bool ReadStatusPrefix(wire::Reader* r, WireStatus* status,
                      std::string* message) {
  uint8_t code;
  if (!r->GetU8(&code) || !r->GetString(message)) return false;
  *status = static_cast<WireStatus>(code);
  return true;
}

// Decodes one QueryResponse body (neighbors + stats) as the server wrote
// it in AppendResponseBody.
bool ReadResponseBody(wire::Reader* r, QueryResponse* response) {
  uint32_t nn;
  if (!r->GetU32(&nn)) return false;
  response->neighbors.resize(nn);
  for (uint32_t i = 0; i < nn; ++i) {
    if (!r->GetU32(&response->neighbors[i].id) ||
        !r->GetF32(&response->neighbors[i].dist)) {
      return false;
    }
  }
  uint64_t candidates;
  if (!r->GetU64(&candidates)) return false;
  response->stats.candidates_verified = candidates;
  return true;
}

// Encodes the shared (name, k, deadline, budget, r0) head of Search /
// SearchBatch requests.
void PutSearchHead(std::vector<uint8_t>* out, const std::string& collection,
                   const QueryRequest& request, uint32_t deadline_us) {
  wire::PutString(out, collection);
  wire::PutU32(out, static_cast<uint32_t>(request.k));
  wire::PutU32(out, deadline_us);
  wire::PutU32(out, static_cast<uint32_t>(request.candidate_budget));
  wire::PutF64(out, request.r0);
}

Status ProtocolError(const std::string& what) {
  return Status::Corruption("protocol error: " + what);
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                const ClientOptions& options) {
  InstallSigpipeGuard();
  auto fd = ConnectTcp(host, port, options.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<Client>(
      new Client(fd.value(), options.max_payload_bytes));
}

Client::~Client() { CloseFd(fd_); }

Status Client::SendFrame(OpCode op, uint64_t request_id,
                         const std::vector<uint8_t>& payload) {
  const auto frame = EncodeFrame(op, request_id, payload);
  std::lock_guard lock(send_mutex_);
  return WriteFull(fd_, frame.data(), frame.size());
}

Status Client::ReceiveFrame(FrameHeader* header,
                            std::vector<uint8_t>* payload,
                            const std::atomic<bool>* stop) {
  std::lock_guard lock(recv_mutex_);
  uint8_t header_buf[kHeaderBytes];
  Status s = ReadFull(fd_, header_buf, kHeaderBytes, stop);
  if (!s.ok()) return s;
  if (!DecodeHeader(header_buf, header)) {
    return ProtocolError("bad response header");
  }
  if (header->payload_len > max_payload_bytes_) {
    // Mirror the server's oversize-length gate: reject before allocating
    // so a misbehaving peer cannot force a multi-GiB buffer.
    return ProtocolError("response payload length " +
                         std::to_string(header->payload_len) +
                         " exceeds limit");
  }
  payload->resize(header->payload_len);
  if (header->payload_len > 0) {
    s = ReadFull(fd_, payload->data(), payload->size(), stop);
    if (!s.ok()) return s;
  }
  if (Fnv1a32(payload->data(), payload->size()) != header->payload_checksum) {
    return ProtocolError("response checksum mismatch");
  }
  return Status::OK();
}

Status Client::Call(OpCode op, const std::vector<uint8_t>& request,
                    std::vector<uint8_t>* response) {
  uint64_t id;
  {
    std::lock_guard lock(send_mutex_);
    id = next_id_++;
    const auto frame = EncodeFrame(op, id, request);
    Status s = WriteFull(fd_, frame.data(), frame.size());
    if (!s.ok()) return s;
  }
  FrameHeader header;
  Status s = ReceiveFrame(&header, response);
  if (!s.ok()) return s;
  if (header.request_id == 0) {
    // Connection-level frame: the server shed this connection at its
    // capacity limit before any request was served.
    wire::Reader r(response->data(), response->size());
    WireStatus status;
    std::string message;
    if (ReadStatusPrefix(&r, &status, &message)) {
      return ToStatus(status, message);
    }
    return ProtocolError("unparseable connection-level frame");
  }
  if (header.request_id != id || header.op != op) {
    return ProtocolError("response does not match request");
  }
  return Status::OK();
}

Status Client::Ping() {
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kPing, {}, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Ping response");
  }
  return ToStatus(status, message);
}

Result<SearchReply> Client::Search(const std::string& collection,
                                   const float* query, size_t dim,
                                   const QueryRequest& request,
                                   uint32_t deadline_us) {
  std::vector<uint8_t> payload;
  PutSearchHead(&payload, collection, request, deadline_us);
  wire::PutU32(&payload, static_cast<uint32_t>(dim));
  for (size_t i = 0; i < dim; ++i) wire::PutF32(&payload, query[i]);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kSearch, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Search response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  SearchReply reply;
  if (!ReadResponseBody(&r, &reply.response) || !r.GetU32(&reply.batch_size)) {
    return ProtocolError("malformed Search response body");
  }
  return reply;
}

Result<std::vector<QueryResponse>> Client::SearchBatch(
    const std::string& collection, const FloatMatrix& queries,
    const QueryRequest& request, uint32_t deadline_us) {
  std::vector<uint8_t> payload;
  PutSearchHead(&payload, collection, request, deadline_us);
  wire::PutU32(&payload, static_cast<uint32_t>(queries.rows()));
  wire::PutU32(&payload, static_cast<uint32_t>(queries.cols()));
  for (size_t i = 0; i < queries.rows(); ++i) {
    const float* row = queries.row(i);
    for (size_t j = 0; j < queries.cols(); ++j) wire::PutF32(&payload, row[j]);
  }
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kSearchBatch, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed SearchBatch response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  uint32_t count;
  if (!r.GetU32(&count)) {
    return ProtocolError("malformed SearchBatch response body");
  }
  std::vector<QueryResponse> responses(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!ReadResponseBody(&r, &responses[i])) {
      return ProtocolError("malformed SearchBatch response body");
    }
  }
  return responses;
}

Result<uint32_t> Client::Upsert(const std::string& collection,
                                const float* vec, size_t dim) {
  std::vector<uint8_t> payload;
  wire::PutString(&payload, collection);
  wire::PutU8(&payload, 0);   // no explicit id
  wire::PutU32(&payload, 0);  // id slot (ignored)
  wire::PutU32(&payload, static_cast<uint32_t>(dim));
  for (size_t i = 0; i < dim; ++i) wire::PutF32(&payload, vec[i]);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kUpsert, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  uint32_t id;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Upsert response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  if (!r.GetU32(&id)) return ProtocolError("malformed Upsert response body");
  return id;
}

Result<uint32_t> Client::Upsert(const std::string& collection, uint32_t id,
                                const float* vec, size_t dim) {
  std::vector<uint8_t> payload;
  wire::PutString(&payload, collection);
  wire::PutU8(&payload, 1);  // explicit id
  wire::PutU32(&payload, id);
  wire::PutU32(&payload, static_cast<uint32_t>(dim));
  for (size_t i = 0; i < dim; ++i) wire::PutF32(&payload, vec[i]);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kUpsert, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  uint32_t assigned;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Upsert response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  if (!r.GetU32(&assigned)) {
    return ProtocolError("malformed Upsert response body");
  }
  return assigned;
}

Status Client::Delete(const std::string& collection, uint32_t id) {
  std::vector<uint8_t> payload;
  wire::PutString(&payload, collection);
  wire::PutU32(&payload, id);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kDelete, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Delete response");
  }
  return ToStatus(status, message);
}

Result<RemoteStats> Client::Stats() {
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kStats, {}, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Stats response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  RemoteStats stats;
  uint32_t num_collections;
  if (!r.GetU32(&num_collections)) {
    return ProtocolError("malformed Stats response body");
  }
  stats.collections.resize(num_collections);
  for (uint32_t i = 0; i < num_collections; ++i) {
    RemoteCollectionStats& c = stats.collections[i];
    uint8_t durable = 0;
    if (!r.GetString(&c.name) || !r.GetU64(&c.live_vectors) ||
        !r.GetU64(&c.epoch) || !r.GetU32(&c.shards) ||
        !r.GetString(&c.storage) || !r.GetU64(&c.bytes_per_vector) ||
        !r.GetU64(&c.resident_bytes) || !r.GetU32(&c.rerank) ||
        !r.GetU8(&durable) || !r.GetU64(&c.checkpoints) ||
        !r.GetU64(&c.compactions) || !r.GetU64(&c.wal_appends) ||
        !r.GetU64(&c.replayed_records) || !r.GetF64(&c.recovery_ms)) {
      return ProtocolError("malformed Stats response body");
    }
    c.durable = durable != 0;
  }
  ServerStats& sv = stats.server;
  if (!r.GetU64(&sv.connections_accepted) ||
      !r.GetU64(&sv.connections_rejected) ||
      !r.GetU64(&sv.connections_active) || !r.GetU64(&sv.requests) ||
      !r.GetU64(&sv.searches) || !r.GetU64(&sv.upserts) ||
      !r.GetU64(&sv.deletes) || !r.GetU64(&sv.protocol_errors) ||
      !r.GetU64(&sv.shed_overload) || !r.GetU64(&sv.rejected_deadline) ||
      !r.GetU64(&sv.batches_dispatched) || !r.GetU64(&sv.batched_queries) ||
      !r.GetU64(&sv.max_batch_size) || !r.GetF64(&sv.mean_batch_size) ||
      !r.GetU64(&sv.replication_subscriptions) ||
      !r.GetU64(&sv.replication_records_shipped)) {
    return ProtocolError("malformed Stats response body");
  }
  return stats;
}

Status Client::Checkpoint(const std::string& collection) {
  std::vector<uint8_t> payload;
  wire::PutString(&payload, collection);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kCheckpoint, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Checkpoint response");
  }
  return ToStatus(status, message);
}

Status Client::Subscribe(const std::string& collection, uint32_t shard,
                         uint64_t from_lsn, bool need_snapshot,
                         SubscribeAck* ack) {
  std::vector<uint8_t> payload;
  wire::PutString(&payload, collection);
  wire::PutU32(&payload, shard);
  wire::PutU64(&payload, from_lsn);
  wire::PutU8(&payload, need_snapshot ? 1 : 0);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kSubscribe, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed Subscribe response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  if (!r.GetU32(&ack->shards) || !r.GetU32(&ack->dim) ||
      !r.GetU8(&ack->storage) || !r.GetU8(&ack->mode) ||
      !r.GetU64(&ack->snapshot_lsn) || !r.GetU64(&ack->shard_lsn)) {
    return ProtocolError("malformed Subscribe response body");
  }
  return Status::OK();
}

Status Client::ReceiveReplicationEvent(uint32_t dim, ReplicationEvent* event,
                                       const std::atomic<bool>* stop) {
  FrameHeader header;
  std::vector<uint8_t> payload;
  Status s = ReceiveFrame(&header, &payload, stop);
  if (!s.ok()) return s;
  wire::Reader r(payload.data(), payload.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed replication stream frame");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  if (header.op == OpCode::kSnapshotChunk) {
    event->kind = ReplicationEvent::Kind::kSnapshotChunk;
    uint8_t last;
    uint32_t len;
    if (!r.GetU32(&event->shard) || !r.GetU64(&event->total_bytes) ||
        !r.GetU64(&event->offset) || !r.GetU8(&last) || !r.GetU32(&len) ||
        len > r.remaining()) {
      return ProtocolError("malformed SnapshotChunk frame");
    }
    event->last = last != 0;
    event->bytes.resize(len);
    for (uint32_t i = 0; i < len; ++i) (void)r.GetU8(&event->bytes[i]);
    return Status::OK();
  }
  if (header.op == OpCode::kWalRecords) {
    event->kind = ReplicationEvent::Kind::kWalRecords;
    uint32_t count;
    if (!r.GetU32(&event->shard) || !r.GetU64(&event->watermark_lsn) ||
        !r.GetU32(&count)) {
      return ProtocolError("malformed WalRecords frame");
    }
    event->records.clear();
    event->records.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      durability::WalRecord rec;
      uint8_t op;
      if (!r.GetU64(&rec.lsn) || !r.GetU8(&op) || !r.GetU32(&rec.id)) {
        return ProtocolError("malformed WalRecords frame");
      }
      rec.op = static_cast<durability::WalOp>(op);
      if (rec.op == durability::WalOp::kUpsert &&
          !r.GetF32Array(dim, &rec.vec)) {
        return ProtocolError("malformed WalRecords frame");
      }
      event->records.push_back(std::move(rec));
    }
    return Status::OK();
  }
  return ProtocolError("unexpected op " +
                       std::to_string(static_cast<unsigned>(header.op)) +
                       " on replication stream");
}

Result<Client::ReplicaStatusReply> Client::ReplicaStatus(
    const std::string& collection) {
  std::vector<uint8_t> payload;
  wire::PutString(&payload, collection);
  std::vector<uint8_t> response;
  Status s = Call(OpCode::kReplicaStatus, payload, &response);
  if (!s.ok()) return s;
  wire::Reader r(response.data(), response.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed ReplicaStatus response");
  }
  if (status != WireStatus::kOk) return ToStatus(status, message);
  ReplicaStatusReply reply;
  uint32_t nshards;
  if (!r.GetU8(&reply.role) || !r.GetString(&reply.primary) ||
      !r.GetU64(&reply.records_shipped) ||
      !r.GetU64(&reply.records_applied) || !r.GetU32(&nshards)) {
    return ProtocolError("malformed ReplicaStatus response body");
  }
  reply.shards.resize(nshards);
  for (uint32_t i = 0; i < nshards; ++i) {
    if (!r.GetU64(&reply.shards[i].applied_lsn) ||
        !r.GetU64(&reply.shards[i].primary_lsn)) {
      return ProtocolError("malformed ReplicaStatus response body");
    }
  }
  return reply;
}

Result<uint64_t> Client::SendSearch(const std::string& collection,
                                    const float* query, size_t dim,
                                    const QueryRequest& request,
                                    uint32_t deadline_us) {
  std::vector<uint8_t> payload;
  PutSearchHead(&payload, collection, request, deadline_us);
  wire::PutU32(&payload, static_cast<uint32_t>(dim));
  for (size_t i = 0; i < dim; ++i) wire::PutF32(&payload, query[i]);
  std::lock_guard lock(send_mutex_);
  const uint64_t id = next_id_++;
  const auto frame = EncodeFrame(OpCode::kSearch, id, payload);
  Status s = WriteFull(fd_, frame.data(), frame.size());
  if (!s.ok()) return s;
  return id;
}

Result<Client::PipelinedReply> Client::ReceiveSearchReply() {
  FrameHeader header;
  std::vector<uint8_t> payload;
  Status s = ReceiveFrame(&header, &payload);
  if (!s.ok()) return s;
  wire::Reader r(payload.data(), payload.size());
  WireStatus status;
  std::string message;
  if (!ReadStatusPrefix(&r, &status, &message)) {
    return ProtocolError("malformed pipelined response");
  }
  if (header.request_id == 0) {
    // Connection-level shed frame: surface as a connection failure.
    return ToStatus(status, message);
  }
  PipelinedReply reply;
  reply.request_id = header.request_id;
  reply.status = ToStatus(status, message);
  if (status == WireStatus::kOk &&
      (!ReadResponseBody(&r, &reply.reply.response) ||
       !r.GetU32(&reply.reply.batch_size))) {
    return ProtocolError("malformed pipelined response body");
  }
  return reply;
}

}  // namespace dblsh::serve
