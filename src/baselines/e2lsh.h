#ifndef DBLSH_BASELINES_E2LSH_H_
#define DBLSH_BASELINES_E2LSH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for classic E2LSH (Datar et al. 2004 / Andoni-Indyk 2016),
/// the static (K,L)-index reference the paper contrasts DB-LSH against in
/// Table I and Fig. 2.
struct E2LshParams {
  double c = 1.5;
  size_t k = 8;           ///< hash functions per compound hash
  size_t l = 5;           ///< tables per radius level
  /// Radius levels r = r0, c*r0, ..., c^(levels-1)*r0 for which bucket
  /// tables are materialized ahead of time — this is exactly the
  /// "prepare a (K,L)-index for each (r,c)-NN" space cost the paper
  /// criticizes (index size multiplies by `levels`).
  size_t levels = 12;
  double w0 = 0.0;        ///< base bucket width; 0 = auto (4c^2, paper-style)
  double beta = 0.02;     ///< verification budget fraction of n
  uint64_t seed = 42;
};

/// E2LSH: static query-oblivious bucketing. For each radius level j it
/// keeps L hash tables mapping the K-dimensional compound bucket id of
/// every point (grid cells of width w0 * c^j * r0 in projection space) to
/// the point list. A c-ANN query walks the levels in order, probing the
/// single bucket containing the query in each table, until a point within
/// c*r certifies the answer or the budget runs out. Near-boundary
/// neighbors land in different cells — the hash boundary problem that
/// motivates DB-LSH's query-centric buckets.
class E2Lsh : public AnnIndex {
 public:
  explicit E2Lsh(E2LshParams params = E2LshParams());

  std::string Name() const override { return "E2LSH"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override {
    return params_.k * params_.l * params_.levels;
  }

  /// Total bucket entries across all levels (index size accounting — grows
  /// as levels * L * n, the cost Table I attributes to E2LSH).
  size_t IndexEntries() const;

 private:
  using Bucket = std::vector<uint32_t>;
  using Table = std::unordered_map<uint64_t, Bucket>;

  /// Compound bucket id of `point` in table `table` at radius level
  /// `level`, mixed into one 64-bit key.
  uint64_t BucketKey(size_t level, size_t table, const float* point) const;

  E2LshParams params_;
  double r0_ = 1.0;
  const FloatMatrix* data_ = nullptr;
  /// One projection bank + offsets shared by all levels (levels differ only
  /// in cell width, like virtual rehashing).
  std::unique_ptr<lsh::ProjectionBank> bank_;  // l*k directions
  std::vector<double> offsets_;                // l*k uniform offsets in [0,w)
  /// tables_[level * l + table]
  std::vector<Table> tables_;
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_E2LSH_H_
