#include "baselines/lccs_lsh.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/verify.h"
#include "dataset/ground_truth.h"
#include "util/distance.h"

namespace dblsh {

namespace {

uint64_t RotL(uint64_t x, unsigned s) {
  return s == 0 ? x : (x << s) | (x >> (64 - s));
}

}  // namespace

LccsLsh::LccsLsh(LccsLshParams params) : params_(params) {}

uint64_t LccsLsh::CodeOf(const float* point) const {
  // One 4-bit symbol per hash function, MSB-first so a longer common prefix
  // of the rotated code means more consecutive hash collisions.
  uint64_t code = 0;
  for (size_t f = 0; f < num_symbols_; ++f) {
    const auto symbol =
        static_cast<uint64_t>(family_->Hash(f, point)) & 0xFULL;
    code = (code << 4) | symbol;
  }
  return code;
}

Status LccsLsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument(
        "LccsLsh::Build requires a non-empty dataset");
  }
  if (params_.m < 4 || params_.m > 64) {
    return Status::InvalidArgument("code length m must be in [4, 64]");
  }
  data_ = data;
  const size_t n = data->rows();
  num_symbols_ = params_.m / 4;
  if (params_.scan_per_shift == 0) {
    params_.scan_per_shift = params_.probes / num_symbols_ + 1;
  }

  const double w =
      params_.w_scale * EstimateNnDistance(*data, params_.seed ^ 0x1CC5ULL);
  family_ = std::make_unique<lsh::StaticHashFamily>(num_symbols_,
                                                    data->cols(), w,
                                                    params_.seed);
  codes_.resize(n);
  for (size_t i = 0; i < n; ++i) codes_[i] = CodeOf(data->row(i));

  shift_order_.assign(num_symbols_, {});
  for (size_t s = 0; s < num_symbols_; ++s) {
    auto& order = shift_order_[s];
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    const auto rot = static_cast<unsigned>(4 * s);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const uint64_t ra = RotL(codes_[a], rot);
      const uint64_t rb = RotL(codes_[b], rot);
      if (ra != rb) return ra < rb;
      return a < b;
    });
  }

  verified_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

std::vector<Neighbor> LccsLsh::Query(const float* query, size_t k,
                                     QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();
  if (++epoch_ == 0) {
    std::fill(verified_epoch_.begin(), verified_epoch_.end(), 0);
    epoch_ = 1;
  }

  const uint64_t qcode = CodeOf(query);
  const size_t budget = params_.probes + k;
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);

  auto verify = [&](uint32_t id) -> bool {
    if (stats != nullptr) ++stats->points_accessed;
    if (verified_epoch_[id] == epoch_) return false;
    verified_epoch_[id] = epoch_;
    return verifier.Offer(id);
  };

  for (size_t s = 0; s < num_symbols_ && !verifier.done(); ++s) {
    if (stats != nullptr) ++stats->window_queries;
    const auto rot = static_cast<unsigned>(4 * s);
    const uint64_t rq = RotL(qcode, rot);
    const auto& order = shift_order_[s];
    // Binary search the rotated code in this shift's sorted order.
    const auto pos = std::lower_bound(
        order.begin(), order.end(), rq, [&](uint32_t id, uint64_t key) {
          return RotL(codes_[id], rot) < key;
        });
    ptrdiff_t upper = pos - order.begin();
    ptrdiff_t lower = upper - 1;
    // Neighbors in this order share the longest common prefix of the
    // rotated code, i.e. the longest co-substring starting at symbol s.
    for (size_t step = 0; step < params_.scan_per_shift; ++step) {
      if (upper < static_cast<ptrdiff_t>(n)) {
        if (verify(order[static_cast<size_t>(upper)])) break;
        ++upper;
      }
      if (lower >= 0) {
        if (verify(order[static_cast<size_t>(lower)])) break;
        --lower;
      }
      if (upper >= static_cast<ptrdiff_t>(n) && lower < 0) break;
    }
    verifier.Flush();  // shift boundary: settle the budget exit
  }
  verifier.Flush();
  if (stats != nullptr) stats->rounds = 1;
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterLccsLsh, "LCCS-LSH",
    "LCCS-LSH (Lei et al., SIGMOD 2020): circular shift array over "
    "packed E2LSH symbol codes",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      LccsLshParams params;
      SpecReader reader(spec);
      reader.Key("m", &params.m);
      reader.Key("probes", &params.probes);
      reader.Key("scan_per_shift", &params.scan_per_shift);
      reader.Key("w_scale", &params.w_scale);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<LccsLsh>(params);
      return index;
    });


Status LccsLsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
