#include "baselines/e2lsh.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/verify.h"
#include "dataset/ground_truth.h"
#include "util/distance.h"
#include "util/random.h"

namespace dblsh {

namespace {

/// SplitMix64-style mixing to fold one bucket coordinate into the key.
uint64_t MixInto(uint64_t key, int64_t coordinate) {
  uint64_t z = key ^ (static_cast<uint64_t>(coordinate) +
                      0x9E3779B97F4A7C15ULL + (key << 6) + (key >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

E2Lsh::E2Lsh(E2LshParams params) : params_(params) {}

uint64_t E2Lsh::BucketKey(size_t level, size_t table,
                          const float* point) const {
  const double width =
      params_.w0 * r0_ * std::pow(params_.c, static_cast<double>(level));
  uint64_t key = level * 0x100000001B3ULL + table;
  for (size_t j = 0; j < params_.k; ++j) {
    const size_t f = table * params_.k + j;
    const double projected = bank_->Project(f, point) + offsets_[f];
    key = MixInto(key, static_cast<int64_t>(std::floor(projected / width)));
  }
  return key;
}

Status E2Lsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("E2Lsh::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.k == 0 || params_.l == 0 || params_.levels == 0) {
    return Status::InvalidArgument("k, l and levels must all be >= 1");
  }
  data_ = data;
  const size_t n = data->rows();
  if (params_.w0 <= 0.0) params_.w0 = 4.0 * params_.c * params_.c;
  r0_ = EstimateNnDistance(*data, params_.seed ^ 0xE215ULL) /
        (params_.c * params_.c);

  bank_ = std::make_unique<lsh::ProjectionBank>(params_.l * params_.k,
                                                data->cols(), params_.seed);
  Rng rng(params_.seed ^ 0x0FF5ULL);
  offsets_.resize(params_.l * params_.k);
  // Offsets are drawn for the *largest* cell width and reused at every
  // level; since offsets only need to be uniform modulo the width, drawing
  // once per function suffices.
  const double max_width =
      params_.w0 * r0_ *
      std::pow(params_.c, static_cast<double>(params_.levels - 1));
  for (auto& b : offsets_) b = rng.Uniform(0.0, max_width);

  tables_.assign(params_.levels * params_.l, Table());
  for (size_t level = 0; level < params_.levels; ++level) {
    for (size_t table = 0; table < params_.l; ++table) {
      Table& t = tables_[level * params_.l + table];
      t.reserve(n / 4);
      for (uint32_t id = 0; id < n; ++id) {
        t[BucketKey(level, table, data->row(id))].push_back(id);
      }
    }
  }

  verified_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

size_t E2Lsh::IndexEntries() const {
  size_t total = 0;
  for (const Table& t : tables_) {
    for (const auto& [key, bucket] : t) total += bucket.size();
  }
  return total;
}

std::vector<Neighbor> E2Lsh::Query(const float* query, size_t k,
                                   QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();
  if (++epoch_ == 0) {
    std::fill(verified_epoch_.begin(), verified_epoch_.end(), 0);
    epoch_ = 1;
  }

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  double r = r0_;
  for (size_t level = 0; level < params_.levels; ++level, r *= params_.c) {
    if (stats != nullptr) ++stats->rounds;
    verifier.set_dist_bound(params_.c * r);
    bool done = false;
    for (size_t table = 0; table < params_.l && !done; ++table) {
      if (stats != nullptr) ++stats->window_queries;
      const auto it = tables_[level * params_.l + table].find(
          BucketKey(level, table, query));
      if (it == tables_[level * params_.l + table].end()) continue;
      for (const uint32_t id : it->second) {
        if (stats != nullptr) ++stats->points_accessed;
        if (verified_epoch_[id] == epoch_) continue;
        verified_epoch_[id] = epoch_;
        if (verifier.Offer(id)) {
          done = true;
          break;
        }
      }
      if (!done && verifier.Flush()) done = true;
    }
    if (done || verifier.verified() >= n) break;
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterE2Lsh, "E2LSH",
    "E2LSH (Datar et al. 2004): static query-oblivious (K,L)-index with "
    "one bucket table suite per radius level",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      E2LshParams params;
      SpecReader reader(spec);
      reader.Key("c", &params.c);
      reader.Key("k", &params.k);
      reader.Key("l", &params.l);
      reader.Key("levels", &params.levels);
      reader.Key("w0", &params.w0);
      reader.Key("beta", &params.beta);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<E2Lsh>(params);
      return index;
    });


Status E2Lsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
