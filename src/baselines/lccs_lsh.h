#ifndef DBLSH_BASELINES_LCCS_LSH_H_
#define DBLSH_BASELINES_LCCS_LSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for LCCS-LSH (Lei et al., SIGMOD 2020). Paper settings:
/// m = 64, #probes in {256, 512}.
struct LccsLshParams {
  size_t m = 64;         ///< code length in bits; consumed 4 bits per hash
                         ///< function (16 E2LSH symbols in one machine word)
  size_t probes = 2048;  ///< candidate verification budget (the paper's
                         ///< 256-512 are per-64-symbol codes; 16-symbol
                         ///< codes need proportionally more probes)
  /// Entries examined per circular shift in each direction around the
  /// query's position before moving to the next shift.
  size_t scan_per_shift = 0;  ///< 0 = auto (probes / #symbols + 1)
  /// E2LSH bucket width for the per-symbol hashes, in units of the sampled
  /// NN distance. Narrow buckets discriminate best here because the
  /// co-substring ranking only counts exact symbol matches.
  double w_scale = 2.0;
  uint64_t seed = 42;
};

/// LCCS-LSH: query-oblivious indexing with a dynamic *concatenating* search.
/// Every point receives a code of m/4 E2LSH symbols (bucket ids of
/// floor((a.o + b)/w) taken mod 16, packed 4 bits each into one 64-bit
/// word; the circular co-substring machinery is agnostic to the symbol
/// source — see DESIGN.md). The index is a Circular Shift Array: one sorted
/// order of the dataset per symbol rotation. A query binary-searches each
/// order and scans outward; entries adjacent to the query in order s share
/// a long common substring of the code starting at symbol s, so the union
/// over shifts enumerates points by decreasing longest circular
/// co-substring length, which is the paper's candidate ranking.
class LccsLsh : public AnnIndex {
 public:
  explicit LccsLsh(LccsLshParams params = LccsLshParams());

  std::string Name() const override { return "LCCS-LSH"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return num_symbols_; }

 private:
  uint64_t CodeOf(const float* point) const;

  LccsLshParams params_;
  size_t num_symbols_ = 16;  ///< m / 4 hash functions
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::StaticHashFamily> family_;
  std::vector<uint64_t> codes_;  // per point
  /// shift_order_[s] = point ids sorted by the code rotated left by s
  /// symbols (4s bits).
  std::vector<std::vector<uint32_t>> shift_order_;
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_LCCS_LSH_H_
