#include "baselines/fb_lsh.h"

#include "core/index_factory.h"

namespace dblsh {

// FB-LSH is a DbLsh configured for fixed-grid bucketing, so its factory
// entry layers the spec on top of FbLshDefaultParams. The optional `n` key
// is the dataset-size hint driving the paper's L = 10 vs 12 rule — kept
// here so no caller needs to replicate that default logic.
DBLSH_REGISTER_INDEX(
    kRegisterFbLsh, "FB-LSH",
    "FB-LSH (paper Sec. VI-A ablation): DB-LSH's (K,L)-index with fixed "
    "grid bucketing; accepts n=<dataset size> to pick the paper's L",
    [](const IndexFactory::Spec& spec) -> Result<std::unique_ptr<AnnIndex>> {
      size_t n = 0;
      {
        SpecReader reader(spec);
        reader.Key("n", &n);
        // Remaining keys are validated by DbLshParamsFromSpec below; an
        // unparsable n surfaces through this reader.
        if (Status s = reader.Finish();
            !s.ok() && spec.values().count("n") > 0 &&
            s.message().find("\"n\"") != std::string::npos) {
          return s;
        }
      }
      auto params =
          DbLshParamsFromSpec(spec.WithoutKey("n"), FbLshDefaultParams(n));
      if (!params.ok()) return params.status();
      if (params.value().bucketing != BucketingMode::kFixedGrid) {
        return Status::InvalidArgument(
            "FB-LSH is the fixed-grid ablation; use DB-LSH for "
            "bucketing=dynamic");
      }
      std::unique_ptr<AnnIndex> index =
          std::make_unique<DbLsh>(params.value());
      return index;
    });

}  // namespace dblsh
