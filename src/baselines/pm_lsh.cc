#include "baselines/pm_lsh.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/verify.h"
#include "util/distance.h"

namespace dblsh {

PmLsh::PmLsh(PmLshParams params) : params_(params) {}

Status PmLsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("PmLsh::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.m == 0) {
    return Status::InvalidArgument("PM-LSH needs at least one projection");
  }
  data_ = data;
  bank_ = std::make_unique<lsh::ProjectionBank>(params_.m, data->cols(),
                                                params_.seed);
  projected_ = bank_->ProjectDataset(*data);
  tree_ = std::make_unique<kdtree::KdTree>(&projected_);
  return Status::OK();
}

std::vector<Neighbor> PmLsh::Query(const float* query, size_t k,
                                   QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();

  std::vector<float> proj_q(params_.m);
  bank_->ProjectAll(query, proj_q.data());

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  const double stop_scale = params_.t_factor * std::sqrt(double(params_.m));

  TopKHeap heap(k);
  // The projected-distance stop test below reads the heap threshold before
  // every candidate, so verification is immediate (batch of one) — the
  // shared helper still supplies the SIMD one-to-one kernel.
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  kdtree::KdTree::NnCursor cursor(tree_.get(), proj_q.data());
  if (stats != nullptr) {
    ++stats->window_queries;
    ++stats->rounds;
  }
  Neighbor projected_neighbor;
  while (cursor.Next(&projected_neighbor)) {
    if (stats != nullptr) ++stats->points_accessed;
    // Early stop: the projected radius already certifies the current top-k
    // (projected distances concentrate around sqrt(m) * true distance).
    if (heap.Full() &&
        projected_neighbor.dist > stop_scale * heap.Threshold()) {
      break;
    }
    if (verifier.VerifyNow(projected_neighbor.id)) break;
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterPmLsh, "PM-LSH",
    "PM-LSH (Zheng et al., PVLDB 2020): 2-stable projection to m dims + "
    "exact NN search in the projected space",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      PmLshParams params;
      SpecReader reader(spec);
      reader.Key("c", &params.c);
      reader.Key("m", &params.m);
      reader.Key("beta", &params.beta);
      reader.Key("t_factor", &params.t_factor);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<PmLsh>(params);
      return index;
    });


Status PmLsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
