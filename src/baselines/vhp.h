#ifndef DBLSH_BASELINES_VHP_H_
#define DBLSH_BASELINES_VHP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bptree/bplus_tree.h"
#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for VHP (Lu et al., PVLDB 2020). Paper settings: t0 = 1.4,
/// m = 60 (80 for very high-dimensional datasets).
struct VhpParams {
  double c = 1.5;
  size_t m = 60;       ///< projections / B+-trees
  double t0 = 1.4;     ///< hypersphere-to-hyperplane slack factor
  double collision_fraction = 0.0;  ///< 0 = auto
  double beta = 0.01;  ///< verification budget fraction of n
  uint64_t seed = 42;
};

/// VHP: approximate nearest neighbor search via virtual hypersphere
/// partitioning. Like QALSH it keeps one B+-tree per projection, but a
/// point is admitted against a *virtual hypersphere*: the per-dimension
/// window is widened by the slack factor t0 (the hyperplane bucket
/// circumscribing the sphere) while the collision threshold is lowered
/// accordingly — fewer dimensions need to agree, because agreement in a
/// widened window is weaker evidence. This trades tighter space usage for
/// more verification work; on large datasets its cost approaches a linear
/// scan, which is the behaviour Table IV reports.
class Vhp : public AnnIndex {
 public:
  explicit Vhp(VhpParams params = VhpParams());

  std::string Name() const override { return "VHP"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.m; }

  /// B+-tree-backed like QALSH, so updates are plain tree insert/delete.
  bool SupportsUpdates() const override { return true; }
  /// See AnnIndex::Insert for the dataset-first update protocol.
  Status Insert(uint32_t id) override;
  Status Erase(uint32_t id) override;

 private:
  VhpParams params_;
  size_t collision_threshold_ = 0;
  double w_ = 1.0;
  double r_unit_ = 1.0;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;
  FloatMatrix projected_;
  std::vector<bptree::BPlusTree> trees_;
  mutable std::vector<uint16_t> collision_count_;
  mutable std::vector<uint32_t> count_epoch_;
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_VHP_H_
