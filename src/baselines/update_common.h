#ifndef DBLSH_BASELINES_UPDATE_COMMON_H_
#define DBLSH_BASELINES_UPDATE_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "dataset/float_matrix.h"
#include "lsh/projection.h"
#include "util/status.h"

namespace dblsh {

/// Shared front half of Insert(id) for the projected-matrix LSH baselines
/// (QALSH, R2LSH, VHP, SRS): validates the dataset-first update protocol,
/// projects row `id` with `bank` into `proj` (resized to the bank's
/// function count), and appends or overwrites row `id` of `projected`.
/// Keeping this in one place keeps the precondition semantics identical
/// across the methods; each caller then feeds `proj`/`projected` into its
/// own tree structures.
inline Status ProjectRowForInsert(const FloatMatrix* data,
                                  lsh::ProjectionBank* bank, uint32_t id,
                                  FloatMatrix* projected,
                                  std::vector<float>* proj) {
  if (data == nullptr) {
    return Status::InvalidArgument("Insert() requires a built index");
  }
  if (id >= data->rows() || data->IsDeleted(id)) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): not a live row of the backing dataset (insert the vector with "
        "FloatMatrix::InsertRow first)");
  }
  if (id > projected->rows()) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): appended ids must arrive densely (next expected id is " +
        std::to_string(projected->rows()) + ")");
  }
  proj->resize(projected->cols());
  bank->ProjectAll(data->row(id), proj->data());
  if (id == projected->rows()) {
    projected->AppendRow(proj->data(), proj->size());
  } else {
    // Recycled slot: the caller Erase()d it from its structures earlier
    // (or, for structures that cannot erase, documented the degradation),
    // so overwriting the stored projection is safe.
    std::copy(proj->begin(), proj->end(), projected->mutable_row(id));
  }
  return Status::OK();
}

/// Shared Erase(id) precondition check for the same baselines.
inline Status CheckEraseTarget(const FloatMatrix* data,
                               const FloatMatrix& projected, uint32_t id) {
  if (data == nullptr) {
    return Status::InvalidArgument("Erase() requires a built index");
  }
  if (id >= projected.rows()) {
    return Status::NotFound("Erase(" + std::to_string(id) +
                            "): id was never indexed");
  }
  return Status::OK();
}

/// Grows the collision-counting methods' id-indexed per-query scratch
/// (epoch-stamped, so new entries start unstamped at 0) to cover `rows`.
inline void EnsureEpochScratch(size_t rows, std::vector<uint16_t>* counts,
                               std::vector<uint32_t>* count_epoch,
                               std::vector<uint32_t>* verified_epoch) {
  if (counts->size() < rows) {
    counts->resize(rows, 0);
    count_epoch->resize(rows, 0);
    verified_epoch->resize(rows, 0);
  }
}

}  // namespace dblsh

#endif  // DBLSH_BASELINES_UPDATE_COMMON_H_
