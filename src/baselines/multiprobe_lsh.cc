#include "baselines/multiprobe_lsh.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "core/verify.h"
#include "dataset/ground_truth.h"
#include "util/distance.h"
#include "util/random.h"

namespace dblsh {

namespace {

uint64_t MixInto(uint64_t key, int64_t coordinate) {
  uint64_t z = key ^ (static_cast<uint64_t>(coordinate) +
                      0x9E3779B97F4A7C15ULL + (key << 6) + (key >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

MultiProbeLsh::MultiProbeLsh(MultiProbeParams params) : params_(params) {}

uint64_t MultiProbeLsh::KeyFromCells(size_t table,
                                     const int64_t* cells) const {
  uint64_t key = table * 0x100000001B3ULL + 17;
  for (size_t j = 0; j < params_.k; ++j) key = MixInto(key, cells[j]);
  return key;
}

Status MultiProbeLsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument(
        "MultiProbeLsh::Build requires a non-empty dataset");
  }
  if (params_.k == 0 || params_.l == 0 || params_.probes == 0) {
    return Status::InvalidArgument("k, l and probes must all be >= 1");
  }
  data_ = data;
  const size_t n = data->rows();
  if (params_.w0 <= 0.0) {
    // Bucket width ~ a few NN radii so the home bucket holds the local
    // neighborhood and perturbations cover boundary spillover.
    params_.w0 = 4.0 * EstimateNnDistance(*data, params_.seed ^ 0x3B0BULL);
  }
  w_ = params_.w0;

  bank_ = std::make_unique<lsh::ProjectionBank>(params_.l * params_.k,
                                                data->cols(), params_.seed);
  Rng rng(params_.seed ^ 0x0F25ULL);
  offsets_.resize(params_.l * params_.k);
  for (auto& b : offsets_) b = rng.Uniform(0.0, w_);

  tables_.assign(params_.l, Table());
  std::vector<int64_t> cells(params_.k);
  for (size_t table = 0; table < params_.l; ++table) {
    Table& t = tables_[table];
    t.reserve(n / 4);
    for (uint32_t id = 0; id < n; ++id) {
      for (size_t j = 0; j < params_.k; ++j) {
        const size_t f = table * params_.k + j;
        cells[j] = static_cast<int64_t>(
            std::floor((bank_->Project(f, data->row(id)) + offsets_[f]) /
                       w_));
      }
      t[KeyFromCells(table, cells.data())].push_back(id);
    }
  }

  verified_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

std::vector<Neighbor> MultiProbeLsh::Query(const float* query, size_t k,
                                           QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();
  if (++epoch_ == 0) {
    std::fill(verified_epoch_.begin(), verified_epoch_.end(), 0);
    epoch_ = 1;
  }

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);

  auto verify_bucket = [&](const Table& table, uint64_t key) -> bool {
    const auto it = table.find(key);
    if (it == table.end()) return false;
    for (const uint32_t id : it->second) {
      if (stats != nullptr) ++stats->points_accessed;
      if (verified_epoch_[id] == epoch_) continue;
      verified_epoch_[id] = epoch_;
      if (verifier.Offer(id)) return true;
    }
    return false;
  };

  // Per-table probing: home bucket first, then single-coordinate
  // perturbations ordered by the query's distance to that cell boundary
  // (the first-order probing sequence), then pairs, greedily by score.
  std::vector<int64_t> home(params_.k);
  struct Perturbation {
    double score;  // squared distance to the perturbed cell
    uint32_t mask_lo;  // coordinate index of the (last) perturbed dim
    int8_t dir;
  };
  for (size_t table = 0; table < params_.l; ++table) {
    if (stats != nullptr) ++stats->window_queries;
    std::vector<double> frac(params_.k);  // position within the cell [0,1)
    for (size_t j = 0; j < params_.k; ++j) {
      const size_t f = table * params_.k + j;
      const double v = (bank_->Project(f, query) + offsets_[f]) / w_;
      home[j] = static_cast<int64_t>(std::floor(v));
      frac[j] = v - std::floor(v);
    }
    if (verify_bucket(tables_[table], KeyFromCells(table, home.data()))) {
      break;
    }
    // Rank single-coordinate perturbations: moving to the cell below costs
    // frac^2, above costs (1-frac)^2 (in units of w^2).
    std::vector<Perturbation> moves;
    moves.reserve(2 * params_.k);
    for (size_t j = 0; j < params_.k; ++j) {
      moves.push_back({frac[j] * frac[j], static_cast<uint32_t>(j), -1});
      moves.push_back(
          {(1.0 - frac[j]) * (1.0 - frac[j]), static_cast<uint32_t>(j), 1});
    }
    std::sort(moves.begin(), moves.end(),
              [](const Perturbation& a, const Perturbation& b) {
                return a.score < b.score;
              });
    bool done = false;
    size_t probes_used = 1;
    std::vector<int64_t> cells = home;
    // Single perturbations in score order, then cheapest pairs.
    for (size_t i = 0; i < moves.size() && probes_used < params_.probes;
         ++i) {
      cells = home;
      cells[moves[i].mask_lo] += moves[i].dir;
      ++probes_used;
      if (verify_bucket(tables_[table], KeyFromCells(table, cells.data()))) {
        done = true;
        break;
      }
    }
    for (size_t i = 0; !done && i < moves.size(); ++i) {
      for (size_t j = i + 1;
           !done && j < moves.size() && probes_used < params_.probes; ++j) {
        if (moves[i].mask_lo == moves[j].mask_lo) continue;
        cells = home;
        cells[moves[i].mask_lo] += moves[i].dir;
        cells[moves[j].mask_lo] += moves[j].dir;
        ++probes_used;
        if (verify_bucket(tables_[table],
                          KeyFromCells(table, cells.data()))) {
          done = true;
        }
      }
      if (probes_used >= params_.probes) break;
    }
    if (done) break;
    if (verifier.Flush()) break;  // table boundary: settle the budget exit
  }
  verifier.Flush();
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterMultiProbeLsh, "MultiProbe",
    "Multi-Probe LSH (Lv et al., VLDB 2007): single (K,L) table suite "
    "probing nearby buckets per table",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      MultiProbeParams params;
      SpecReader reader(spec);
      reader.Key("k", &params.k);
      reader.Key("l", &params.l);
      reader.Key("probes", &params.probes);
      reader.Key("w0", &params.w0);
      reader.Key("beta", &params.beta);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<MultiProbeLsh>(params);
      return index;
    });


Status MultiProbeLsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
