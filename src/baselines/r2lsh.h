#ifndef DBLSH_BASELINES_R2LSH_H_
#define DBLSH_BASELINES_R2LSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bptree/bplus_tree.h"
#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for R2LSH (Lu & Kudo, ICDE 2020). The paper's settings:
/// m = 40 projections grouped into 20 two-dimensional spaces.
struct R2LshParams {
  double c = 1.5;
  size_t m = 40;            ///< total projections (2 per projected space)
  double collision_fraction = 0.0;  ///< 0 = auto, fraction of spaces
  double beta = 0.01;       ///< verification budget fraction of n
  uint64_t seed = 42;
};

/// R2LSH: collision counting over *two-dimensional* projected spaces rather
/// than QALSH's one-dimensional ones. Each space keeps a B+-tree on its
/// first coordinate; at radius R the query fetches points whose first
/// coordinate falls in a query-centric slab and admits those whose 2D
/// projected distance is within the disc of radius wR/2 (the paper's
/// query-centric ball). Points colliding in enough spaces are verified.
class R2Lsh : public AnnIndex {
 public:
  explicit R2Lsh(R2LshParams params = R2LshParams());

  std::string Name() const override { return "R2LSH"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.m; }

  /// B+-tree-backed like QALSH, so updates are plain tree insert/delete on
  /// each 2D space's tree (keyed by the space's first coordinate).
  bool SupportsUpdates() const override { return true; }
  /// See AnnIndex::Insert for the dataset-first update protocol.
  Status Insert(uint32_t id) override;
  Status Erase(uint32_t id) override;

 private:
  R2LshParams params_;
  size_t num_spaces_ = 0;
  size_t collision_threshold_ = 0;
  double w_ = 1.0;       ///< disc diameter per unit radius, scaled to data
  double r_unit_ = 1.0;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;
  FloatMatrix projected_;  // n x m ; space s uses columns (2s, 2s+1)
  std::vector<bptree::BPlusTree> trees_;  // one per space, keyed on dim 2s
  mutable std::vector<uint16_t> collision_count_;
  mutable std::vector<uint32_t> count_epoch_;
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_R2LSH_H_
