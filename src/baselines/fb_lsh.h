#ifndef DBLSH_BASELINES_FB_LSH_H_
#define DBLSH_BASELINES_FB_LSH_H_

#include "core/db_lsh.h"

namespace dblsh {

/// FB-LSH: the paper's own ablation (Sec. VI-A) — the identical (K,L)-index
/// as DB-LSH but with *fixed* grid bucketing at query time, so near-boundary
/// neighbors can be missed. The paper's default parameters differ from
/// DB-LSH's (K = 5, L = 10..12) because fixed buckets need more independent
/// repetitions to compensate for boundary losses.
inline DbLshParams FbLshDefaultParams(size_t n) {
  DbLshParams params;
  params.bucketing = BucketingMode::kFixedGrid;
  params.k = 5;
  params.l = (n > 100000) ? 12 : 10;
  return params;
}

}  // namespace dblsh

#endif  // DBLSH_BASELINES_FB_LSH_H_
