#include "baselines/lsb_forest.h"

#include "core/index_factory.h"
#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <queue>

#include "core/verify.h"
#include "dataset/ground_truth.h"
#include "util/distance.h"

namespace dblsh {

LsbForest::LsbForest(LsbForestParams params) : params_(params) {}

uint64_t LsbForest::ZOrderCode(const float* hashed) const {
  // Interleave the `k` quantized components MSB-first so that a longer
  // common prefix means a smaller (finer) merged bucket.
  uint64_t code = 0;
  const uint64_t max_value = (uint64_t{1} << params_.bits) - 1;
  for (size_t b = params_.bits; b-- > 0;) {
    for (size_t j = 0; j < params_.k; ++j) {
      const auto v = static_cast<uint64_t>(
          std::clamp<double>(hashed[j], 0.0, double(max_value)));
      code = (code << 1) | ((v >> b) & 1);
    }
  }
  return code;
}

Status LsbForest::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument(
        "LsbForest::Build requires a non-empty dataset");
  }
  if (params_.k * params_.bits > 64) {
    return Status::InvalidArgument("k * bits must fit in a 64-bit Z-code");
  }
  data_ = data;
  const size_t n = data->rows();
  const double w =
      params_.w0 * EstimateNnDistance(*data, params_.seed ^ 0x15B0ULL);

  families_.clear();
  sorted_.clear();
  shifts_.clear();
  families_.reserve(params_.l);
  sorted_.resize(params_.l);
  shifts_.resize(params_.l);

  std::vector<int64_t> raw(params_.k);
  std::vector<float> shifted(params_.k);
  for (size_t tree = 0; tree < params_.l; ++tree) {
    families_.push_back(std::make_unique<lsh::StaticHashFamily>(
        params_.k, data->cols(), w, params_.seed + tree * 7919));
    // First pass: per-component minima so codes are non-negative.
    auto& shift = shifts_[tree];
    shift.assign(params_.k, std::numeric_limits<int64_t>::max());
    std::vector<int64_t> all_hashes(n * params_.k);
    for (size_t i = 0; i < n; ++i) {
      families_[tree]->HashAll(data->row(i), raw.data());
      for (size_t j = 0; j < params_.k; ++j) {
        all_hashes[i * params_.k + j] = raw[j];
        shift[j] = std::min(shift[j], raw[j]);
      }
    }
    auto& entries = sorted_[tree];
    entries.resize(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < params_.k; ++j) {
        shifted[j] = static_cast<float>(all_hashes[i * params_.k + j] -
                                        shift[j]);
      }
      entries[i] = {ZOrderCode(shifted.data()), static_cast<uint32_t>(i)};
    }
    std::sort(entries.begin(), entries.end());
  }

  verified_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

std::vector<Neighbor> LsbForest::Query(const float* query, size_t k,
                                       QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();
  if (++epoch_ == 0) {
    std::fill(verified_epoch_.begin(), verified_epoch_.end(), 0);
    epoch_ = 1;
  }

  // Query Z-code and a bidirectional cursor pair per tree.
  std::vector<uint64_t> qcodes(params_.l);
  std::vector<ptrdiff_t> up(params_.l), down(params_.l);
  std::vector<int64_t> raw(params_.k);
  std::vector<float> shifted(params_.k);
  for (size_t tree = 0; tree < params_.l; ++tree) {
    families_[tree]->HashAll(query, raw.data());
    for (size_t j = 0; j < params_.k; ++j) {
      shifted[j] = static_cast<float>(raw[j] - shifts_[tree][j]);
    }
    qcodes[tree] = ZOrderCode(shifted.data());
    const auto& entries = sorted_[tree];
    const auto pos = std::lower_bound(
        entries.begin(), entries.end(),
        std::make_pair(qcodes[tree], uint32_t{0}));
    up[tree] = pos - entries.begin();
    down[tree] = up[tree] - 1;
    if (stats != nullptr) ++stats->window_queries;
  }

  // Longest common Z-order prefix between query and entry codes; longer
  // means the entry shares a finer merged bucket with the query.
  auto llcp = [](uint64_t a, uint64_t b) -> int {
    return (a == b) ? 64 : std::countl_zero(a ^ b);
  };
  // Max-heap over cursor heads by LLCP: always expand the most promising
  // tree next, which realizes the paper's synchronized bucket-merging walk.
  struct Head {
    int prefix;
    uint32_t tree;
    bool upward;
  };
  struct HeadLess {
    bool operator()(const Head& a, const Head& b) const {
      return a.prefix < b.prefix;
    }
  };
  std::priority_queue<Head, std::vector<Head>, HeadLess> heads;
  auto push_head = [&](size_t tree, bool upward) {
    const auto& entries = sorted_[tree];
    const ptrdiff_t pos = upward ? up[tree] : down[tree];
    if (pos < 0 || pos >= static_cast<ptrdiff_t>(entries.size())) return;
    heads.push({llcp(qcodes[tree], entries[pos].first),
                static_cast<uint32_t>(tree), upward});
  };
  for (size_t tree = 0; tree < params_.l; ++tree) {
    push_head(tree, true);
    push_head(tree, false);
  }

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  while (!heads.empty() && !verifier.done()) {
    const Head head = heads.top();
    heads.pop();
    const auto& entries = sorted_[head.tree];
    const ptrdiff_t pos = head.upward ? up[head.tree] : down[head.tree];
    const uint32_t id = entries[pos].second;
    if (stats != nullptr) ++stats->points_accessed;
    if (verified_epoch_[id] != epoch_) {
      verified_epoch_[id] = epoch_;
      verifier.Offer(id);
    }
    if (head.upward) {
      ++up[head.tree];
    } else {
      --down[head.tree];
    }
    push_head(head.tree, head.upward);
  }
  verifier.Flush();
  if (stats != nullptr) stats->rounds = 1;
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterLsbForest, "LSB-Forest",
    "LSB-Forest (Tao et al., SIGMOD 2009): Z-order-coded LSB-trees with "
    "bucket-merging search",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      LsbForestParams params;
      SpecReader reader(spec);
      reader.Key("l", &params.l);
      reader.Key("k", &params.k);
      reader.Key("bits", &params.bits);
      reader.Key("w0", &params.w0);
      reader.Key("beta", &params.beta);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<LsbForest>(params);
      return index;
    });


Status LsbForest::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
