#include "baselines/srs.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/verify.h"
#include "util/distance.h"

namespace dblsh {

Srs::Srs(SrsParams params) : params_(params) {}

Status Srs::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("Srs::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.m == 0) {
    return Status::InvalidArgument("SRS needs at least one projection");
  }
  data_ = data;
  bank_ = std::make_unique<lsh::ProjectionBank>(params_.m, data->cols(),
                                                params_.seed);
  projected_ = bank_->ProjectDataset(*data);
  tree_ = std::make_unique<kdtree::KdTree>(&projected_);
  tree_rows_ = projected_.rows();
  delta_ids_.clear();
  in_delta_.clear();
  return Status::OK();
}

Status Srs::Insert(uint32_t id) {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Insert() requires a built index");
  }
  if (id >= data_->rows() || data_->IsDeleted(id)) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): not a live row of the backing dataset (insert the vector with "
        "FloatMatrix::InsertRow first)");
  }
  if (id > projected_.rows()) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): appended ids must arrive densely (next expected id is " +
        std::to_string(projected_.rows()) + ")");
  }
  std::vector<float> proj(params_.m);
  bank_->ProjectAll(data_->row(id), proj.data());
  if (id == projected_.rows()) {
    projected_.AppendRow(proj.data(), params_.m);
  } else {
    // Recycled slot. A slot below tree_rows_ stays tree-resident (the
    // cursor reads projections live, so it surfaces the new vector —
    // possibly later than a fresh tree would, but never dropped); a slot
    // at or above tree_rows_ was a delta point and rejoins the delta below.
    std::copy(proj.begin(), proj.end(), projected_.mutable_row(id));
  }
  if (id >= tree_rows_) {
    if (in_delta_.size() <= id) in_delta_.resize(id + 1, 0);
    if (in_delta_[id] == 0) {
      in_delta_[id] = 1;
      delta_ids_.push_back(id);
    }
  }
  return Status::OK();
}

Status Srs::Erase(uint32_t id) {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Erase() requires a built index");
  }
  if (id >= projected_.rows()) {
    return Status::NotFound("Erase(" + std::to_string(id) +
                            "): id was never indexed");
  }
  if (id < in_delta_.size() && in_delta_[id] != 0) {
    in_delta_[id] = 0;
    delta_ids_.erase(std::find(delta_ids_.begin(), delta_ids_.end(), id));
  }
  // Tree-resident ids cannot be cut out of the bulk-built kd-tree; the
  // dataset tombstone (EraseRow) keeps them out of every result.
  return Status::OK();
}

std::vector<Neighbor> Srs::Query(const float* query, size_t k,
                                 QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();

  std::vector<float> proj_q(params_.m);
  bank_->ProjectAll(query, proj_q.data());

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  const double stop_scale =
      std::sqrt(params_.threshold * static_cast<double>(params_.m));

  TopKHeap heap(k);
  // Per-candidate threshold reads, as in PM-LSH: verify immediately so the
  // stop test always sees an up-to-date k-th distance.
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  // The delta region (points inserted after Build) is tiny relative to the
  // tree and has no projected-space ordering, so it is verified up front —
  // the cursor below only ever emits tree-resident ids, so there is no
  // overlap to dedup.
  for (uint32_t id : delta_ids_) {
    if (stats != nullptr) ++stats->points_accessed;
    if (verifier.Offer(id)) return heap.TakeSorted();
  }
  if (verifier.Flush()) return heap.TakeSorted();
  kdtree::KdTree::NnCursor cursor(tree_.get(), proj_q.data());
  if (stats != nullptr) {
    ++stats->window_queries;
    ++stats->rounds;
  }
  Neighbor projected_neighbor;
  while (cursor.Next(&projected_neighbor)) {
    if (stats != nullptr) ++stats->points_accessed;
    if (heap.Full() &&
        projected_neighbor.dist > stop_scale * heap.Threshold()) {
      break;  // SRS early-stop test on the projected/true distance ratio
    }
    if (verifier.VerifyNow(projected_neighbor.id)) break;
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterSrs, "SRS",
    "SRS (Sun et al., PVLDB 2014): tiny-index incremental NN search in "
    "an m ~ 6 dim projection",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      SrsParams params;
      SpecReader reader(spec);
      reader.Key("c", &params.c);
      reader.Key("m", &params.m);
      reader.Key("beta", &params.beta);
      reader.Key("threshold", &params.threshold);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<Srs>(params);
      return index;
    });


Status Srs::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
