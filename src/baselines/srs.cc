#include "baselines/srs.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/verify.h"
#include "util/distance.h"

namespace dblsh {

Srs::Srs(SrsParams params) : params_(params) {}

Status Srs::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("Srs::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.m == 0) {
    return Status::InvalidArgument("SRS needs at least one projection");
  }
  data_ = data;
  bank_ = std::make_unique<lsh::ProjectionBank>(params_.m, data->cols(),
                                                params_.seed);
  projected_ = bank_->ProjectDataset(*data);
  tree_ = std::make_unique<kdtree::KdTree>(&projected_);
  return Status::OK();
}

std::vector<Neighbor> Srs::Query(const float* query, size_t k,
                                 QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();

  std::vector<float> proj_q(params_.m);
  bank_->ProjectAll(query, proj_q.data());

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  const double stop_scale =
      std::sqrt(params_.threshold * static_cast<double>(params_.m));

  TopKHeap heap(k);
  // Per-candidate threshold reads, as in PM-LSH: verify immediately so the
  // stop test always sees an up-to-date k-th distance.
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  kdtree::KdTree::NnCursor cursor(tree_.get(), proj_q.data());
  if (stats != nullptr) {
    ++stats->window_queries;
    ++stats->rounds;
  }
  Neighbor projected_neighbor;
  while (cursor.Next(&projected_neighbor)) {
    if (stats != nullptr) ++stats->points_accessed;
    if (heap.Full() &&
        projected_neighbor.dist > stop_scale * heap.Threshold()) {
      break;  // SRS early-stop test on the projected/true distance ratio
    }
    if (verifier.VerifyNow(projected_neighbor.id)) break;
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterSrs, "SRS",
    "SRS (Sun et al., PVLDB 2014): tiny-index incremental NN search in "
    "an m ~ 6 dim projection",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      SrsParams params;
      SpecReader reader(spec);
      reader.Key("c", &params.c);
      reader.Key("m", &params.m);
      reader.Key("beta", &params.beta);
      reader.Key("threshold", &params.threshold);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<Srs>(params);
      return index;
    });

}  // namespace dblsh
