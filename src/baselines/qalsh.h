#ifndef DBLSH_BASELINES_QALSH_H_
#define DBLSH_BASELINES_QALSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bptree/bplus_tree.h"
#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for QALSH (Huang et al., PVLDB 2015), the representative
/// collision-counting (C2) method with query-aware one-dimensional buckets.
struct QalshParams {
  double c = 1.5;          ///< approximation ratio
  double w = 0.0;          ///< base bucket width; 0 = auto (QALSH's w*,
                           ///< scaled to the data's sampled NN distance)
  size_t m = 60;           ///< number of hash functions / B+-trees
  /// Collision threshold as a fraction of m; a point becomes a candidate
  /// once it collides with the query in >= ceil(fraction * m) dimensions.
  /// QALSH sets this between p2 and p1; the midpoint is used by default.
  double collision_fraction = 0.0;  ///< 0 = auto ((p1 + p2) / 2)
  /// Verification budget as a fraction of n (QALSH checks beta*n + k
  /// candidates in the worst case).
  double beta = 0.01;
  uint64_t seed = 42;
};

/// QALSH: projects points with m independent 2-stable hash functions, keeps
/// one B+-tree per function, and at query time expands query-centric
/// one-dimensional windows [h_i(q) - wR/2, h_i(q) + wR/2] in lockstep over
/// all trees (virtual rehashing R = 1, c, c^2, ...). A point whose window
/// hits reach the collision threshold becomes a candidate and is verified
/// in the original space. Its search region is the cross-shaped union of
/// slabs the paper's Fig. 2 depicts — unbounded, which is why its cost can
/// approach a linear scan.
class Qalsh : public AnnIndex {
 public:
  explicit Qalsh(QalshParams params = QalshParams());

  std::string Name() const override { return "QALSH"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.m; }

  /// QALSH's B+-trees are ordinary secondary indexes, so updates are plain
  /// tree insert/delete — the updatability argument of its paper (Sec. 1).
  bool SupportsUpdates() const override { return true; }
  /// Projects row `id` and inserts (projection, id) into all m B+-trees.
  /// See AnnIndex::Insert for the dataset-first update protocol.
  Status Insert(uint32_t id) override;
  /// Deletes `id` from all m B+-trees (underflow-merging tree deletion).
  Status Erase(uint32_t id) override;

  const QalshParams& params() const { return params_; }

 private:
  QalshParams params_;
  size_t collision_threshold_ = 0;
  double r_unit_ = 1.0;  ///< radius-ladder unit (sampled NN distance / c)
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;
  FloatMatrix projected_;  // n x m
  std::vector<bptree::BPlusTree> trees_;
  // Per-query scratch (epoch-stamped collision counters).
  mutable std::vector<uint16_t> collision_count_;
  mutable std::vector<uint32_t> count_epoch_;
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_QALSH_H_
