#ifndef DBLSH_BASELINES_LSB_FOREST_H_
#define DBLSH_BASELINES_LSB_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for LSB-Forest (Tao et al., SIGMOD 2009).
struct LsbForestParams {
  size_t l = 8;        ///< number of LSB-trees
  size_t k = 8;        ///< hash functions (Z-order components) per tree
  size_t bits = 8;     ///< quantization bits per component (k*bits <= 64)
  double w0 = 16.0;    ///< bucket width in units of the sampled NN distance
                       ///< (the paper's setting for c = 2)
  /// Verification budget fraction of n (stands in for the paper's 4Bl/d
  /// leaf-entry budget, which the evaluation section scales up to 40Bl/d).
  double beta = 0.05;
  uint64_t seed = 42;
};

/// LSB-Forest: the static (K,L)-index method that supports multiple radii
/// with one index suite. Each LSB-tree hashes points with k E2LSH functions
/// floor((a.o + b)/w), interleaves the k bucket ids bit-by-bit into one
/// Z-order code, and keeps points sorted by that code (this repo keeps the
/// sorted array in memory instead of a disk B-tree — the paper itself
/// measures only CPU time for disk-based methods). A query walks outward
/// from its own code position in every tree simultaneously, always
/// expanding the tree whose next entry shares the longest Z-order prefix
/// with the query (longest common prefix = smallest merged bucket), which
/// is exactly the bucket-merging search of the paper.
class LsbForest : public AnnIndex {
 public:
  explicit LsbForest(LsbForestParams params = LsbForestParams());

  std::string Name() const override { return "LSB-Forest"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.l * params_.k; }

 private:
  uint64_t ZOrderCode(const float* hashed) const;

  LsbForestParams params_;
  const FloatMatrix* data_ = nullptr;
  std::vector<std::unique_ptr<lsh::StaticHashFamily>> families_;  // per tree
  /// Per tree: (zcode, id) sorted by zcode.
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> sorted_;
  /// Per tree and component: shift making all hash values non-negative.
  std::vector<std::vector<int64_t>> shifts_;
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_LSB_FOREST_H_
