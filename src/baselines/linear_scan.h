#ifndef DBLSH_BASELINES_LINEAR_SCAN_H_
#define DBLSH_BASELINES_LINEAR_SCAN_H_

#include "core/ann_index.h"

namespace dblsh {

/// Exact brute-force scan. Serves as the ground-truth oracle in tests and
/// as the "VHP degenerates to linear scan on large data" reference point in
/// the paper's discussion.
class LinearScan : public AnnIndex {
 public:
  std::string Name() const override { return "LinearScan"; }

  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  /// The scan keeps no per-query scratch, so the base-class QueryBatch may
  /// fan queries out over threads.
  bool SupportsConcurrentQueries() const override { return true; }

  /// The scan holds no structures: it reads the matrix's current rows on
  /// every query and the shared verification path filters tombstones, so
  /// Insert/Erase only validate their argument. This makes LinearScan the
  /// exact reference oracle for mutation/query interleavings in tests.
  bool SupportsUpdates() const override { return true; }
  Status Insert(uint32_t id) override;
  Status Erase(uint32_t id) override;

  size_t NumHashFunctions() const override { return 0; }

 private:
  const FloatMatrix* data_ = nullptr;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_LINEAR_SCAN_H_
