#ifndef DBLSH_BASELINES_PM_LSH_H_
#define DBLSH_BASELINES_PM_LSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ann_index.h"
#include "kdtree/kd_tree.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for PM-LSH (Zheng et al., PVLDB 2020). Paper settings:
/// c = 1.5, m = 15 projections, beta = 0.08.
struct PmLshParams {
  double c = 1.5;
  size_t m = 15;       ///< projected-space dimensionality
  double beta = 0.08;  ///< candidate budget fraction of n
  /// Confidence multiplier on the projected radius used for early stop: the
  /// search stops once the next projected distance exceeds
  /// `t_factor * sqrt(m) * (current k-th true distance)`. Plays the role of
  /// PM-LSH's chi-squared confidence bound.
  double t_factor = 1.2;
  uint64_t seed = 42;
};

/// PM-LSH: the representative dynamic metric-query (MQ) method. Indexing:
/// project to an m-dimensional space with 2-stable projections and index
/// the projected points with an exact low-dimensional NN structure (paper:
/// PM-tree; here: kd-tree with best-first incremental NN — see DESIGN.md).
/// Query: enumerate projected-space neighbors in ascending distance and
/// verify them in the original space, stopping after beta*n + k
/// verifications or once the projected radius certifies the current top-k.
/// Because projections are 2-stable, the projected distance concentrates
/// around sqrt(m) times the original distance, which is what makes the
/// projected ordering a faithful candidate ranking.
class PmLsh : public AnnIndex {
 public:
  explicit PmLsh(PmLshParams params = PmLshParams());

  std::string Name() const override { return "PM-LSH"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.m; }

 private:
  PmLshParams params_;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;
  FloatMatrix projected_;  // n x m
  std::unique_ptr<kdtree::KdTree> tree_;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_PM_LSH_H_
