#ifndef DBLSH_BASELINES_MULTIPROBE_LSH_H_
#define DBLSH_BASELINES_MULTIPROBE_LSH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/ann_index.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for Multi-Probe LSH (Lv et al., VLDB 2007), the related-work
/// method (paper Sec. II-B) that reduces E2LSH's table count by probing
/// *multiple* nearby buckets per table instead of one.
struct MultiProbeParams {
  size_t k = 8;          ///< hash functions per table
  size_t l = 4;          ///< tables (fewer than E2LSH needs)
  size_t probes = 32;    ///< buckets probed per table (incl. the home one)
  double w0 = 0.0;       ///< bucket width; 0 = auto (scaled to NN distance)
  double beta = 0.05;    ///< verification budget fraction of n
  uint64_t seed = 42;
};

/// Multi-Probe LSH: one static (K,L) hash-table index at a single bucket
/// width; a query probes its home bucket and then the neighboring buckets
/// most likely to hold near points, in the order of a query-derived probing
/// sequence (perturbing one coordinate at a time toward its nearer cell
/// boundary first — the first-order approximation of Lv et al.'s sequence).
/// Trades E2LSH's space for extra probes, at the cost of the formal
/// guarantee — exactly how the paper positions it.
class MultiProbeLsh : public AnnIndex {
 public:
  explicit MultiProbeLsh(MultiProbeParams params = MultiProbeParams());

  std::string Name() const override { return "MultiProbe"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.k * params_.l; }

 private:
  using Bucket = std::vector<uint32_t>;
  using Table = std::unordered_map<uint64_t, Bucket>;

  uint64_t KeyFromCells(size_t table, const int64_t* cells) const;

  MultiProbeParams params_;
  double w_ = 1.0;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;  // l*k directions
  std::vector<double> offsets_;                // l*k offsets in [0, w)
  std::vector<Table> tables_;                  // one per table
  mutable std::vector<uint32_t> verified_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_MULTIPROBE_LSH_H_
