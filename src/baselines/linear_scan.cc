#include "baselines/linear_scan.h"

#include "core/index_factory.h"
#include "core/verify.h"

namespace dblsh {

Status LinearScan::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("LinearScan requires a non-empty dataset");
  }
  data_ = data;
  return Status::OK();
}

Status LinearScan::Insert(uint32_t id) {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Insert() requires a built index");
  }
  if (id >= data_->rows() || data_->IsDeleted(id)) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): not a live row of the backing dataset (insert the vector with "
        "FloatMatrix::InsertRow first)");
  }
  return Status::OK();  // nothing to update: the scan reads rows live
}

Status LinearScan::Erase(uint32_t id) {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Erase() requires a built index");
  }
  if (id >= data_->rows()) {
    return Status::NotFound("Erase(" + std::to_string(id) +
                            "): id was never indexed");
  }
  return Status::OK();  // tombstone filtering happens in VerifyCandidates
}

std::vector<Neighbor> LinearScan::Query(const float* query, size_t k,
                                        QueryStats* stats) const {
  TopKHeap heap(k);
  // Contiguous scan over all rows through the batched SIMD kernel;
  // candidates_verified is counted per push by the helper.
  VerifyCandidates(query, *data_, /*ids=*/nullptr, data_->rows(),
                   VerifyOptions(), &heap, stats);
  if (stats != nullptr) {
    stats->points_accessed += data_->rows();
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterLinearScan, "LinearScan",
    "Exact brute-force scan: the ground-truth oracle and linear-cost "
    "reference point",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      SpecReader reader(spec);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<LinearScan>();
      return index;
    });


Status LinearScan::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
