#include "baselines/linear_scan.h"

#include "core/index_factory.h"
#include "util/distance.h"

namespace dblsh {

Status LinearScan::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("LinearScan requires a non-empty dataset");
  }
  data_ = data;
  return Status::OK();
}

std::vector<Neighbor> LinearScan::Query(const float* query, size_t k,
                                        QueryStats* stats) const {
  TopKHeap heap(k);
  for (size_t i = 0; i < data_->rows(); ++i) {
    heap.Push(L2Distance(data_->row(i), query, data_->cols()),
              static_cast<uint32_t>(i));
  }
  if (stats != nullptr) {
    stats->candidates_verified += data_->rows();
    stats->points_accessed += data_->rows();
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterLinearScan, "LinearScan",
    "Exact brute-force scan: the ground-truth oracle and linear-cost "
    "reference point",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      SpecReader reader(spec);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<LinearScan>();
      return index;
    });

}  // namespace dblsh
