#ifndef DBLSH_BASELINES_SRS_H_
#define DBLSH_BASELINES_SRS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ann_index.h"
#include "kdtree/kd_tree.h"
#include "lsh/projection.h"

namespace dblsh {

/// Parameters for SRS (Sun et al., PVLDB 2014), the original tiny-index
/// dynamic metric-query method (Table I's "MQ" row with m = 6).
struct SrsParams {
  double c = 1.5;
  size_t m = 6;        ///< projected dimensionality (SRS's headline: ~6)
  double beta = 0.08;  ///< candidate budget fraction of n (paper's T)
  /// Early-stop threshold on the chi-squared-style statistic: stop when
  /// (proj_dist / kth_true_dist)^2 exceeds `threshold * m` (the projected
  /// distance of a true k-NN concentrates around sqrt(m) * true distance).
  double threshold = 1.8;
  uint64_t seed = 42;
};

/// SRS: solve c-ANN with a tiny index — project to m ~ 6 dimensions and run
/// an incremental NN search in the projected space, verifying candidates in
/// the original space in projected order. Identical skeleton to PM-LSH
/// (which refined SRS) but with a much smaller m, so the projected ordering
/// is noisier and more verification is needed for the same recall: exactly
/// the trade Table I captures with its "beta*n" query cost.
class Srs : public AnnIndex {
 public:
  explicit Srs(SrsParams params = SrsParams());

  std::string Name() const override { return "SRS"; }
  Status Build(const FloatMatrix* data) override;
  /// Repoints dataset reads at an equal-content matrix (see
  /// AnnIndex::RebindData) -- Collection's background-rebuild swap hook.
  Status RebindData(const FloatMatrix* data) override;
  std::vector<Neighbor> Query(const float* query, size_t k,
                              QueryStats* stats = nullptr) const override;
  size_t NumHashFunctions() const override { return params_.m; }

  /// SRS's paper argues updatability from its tree-backed projected index;
  /// this reproduction's kd-tree is bulk-built, so inserts land in a small
  /// *delta region* that queries verify exhaustively before walking the
  /// tree (memtable-plus-static-index style). Erases of delta points drop
  /// them from the delta; erases of tree-resident points rely on the
  /// dataset tombstone filter in the shared verification path.
  bool SupportsUpdates() const override { return true; }
  /// See AnnIndex::Insert for the dataset-first update protocol.
  Status Insert(uint32_t id) override;
  Status Erase(uint32_t id) override;

 private:
  SrsParams params_;
  const FloatMatrix* data_ = nullptr;
  std::unique_ptr<lsh::ProjectionBank> bank_;
  FloatMatrix projected_;
  std::unique_ptr<kdtree::KdTree> tree_;
  // Rows covered by the bulk-built kd-tree (ids below this that are
  // recycled stay tree-resident; ids at/above it live in the delta).
  size_t tree_rows_ = 0;
  // Dynamic-update state: ids inserted after Build and not in the kd-tree.
  // `in_delta_` is an id-indexed membership flag (sized lazily) so the
  // query loop can dedup tree hits against the delta in O(1).
  std::vector<uint32_t> delta_ids_;
  std::vector<uint8_t> in_delta_;
};

}  // namespace dblsh

#endif  // DBLSH_BASELINES_SRS_H_
