#include "baselines/r2lsh.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "baselines/update_common.h"
#include "core/verify.h"
#include "dataset/ground_truth.h"
#include "lsh/collision.h"
#include "util/distance.h"

namespace dblsh {

R2Lsh::R2Lsh(R2LshParams params) : params_(params) {}

Status R2Lsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("R2Lsh::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.m < 2) {
    return Status::InvalidArgument("R2LSH needs at least one 2D space");
  }
  params_.m -= params_.m % 2;  // pair up projections
  num_spaces_ = params_.m / 2;
  data_ = data;
  const size_t n = data->rows();

  const double c = params_.c;
  const double w_norm =
      std::sqrt(8.0 * c * c * std::log(c) / (c * c - 1.0));
  r_unit_ = EstimateNnDistance(*data, params_.seed ^ 0x5252ULL) / c;
  w_ = w_norm * r_unit_;

  if (params_.collision_fraction <= 0.0) {
    // In a 2D projected space the projections of two points at distance tau
    // differ by a 2D Gaussian with per-axis variance tau^2, so the disc
    // collision probability is Rayleigh: P(||diff|| <= s) =
    // 1 - exp(-s^2 / (2 tau^2)). The threshold sits midway between the
    // near (tau = 1) and far (tau = c) cases, mirroring QALSH's rule.
    const double s = w_norm / 2.0;
    const double p1 = 1.0 - std::exp(-s * s / 2.0);
    const double p2 = 1.0 - std::exp(-s * s / (2.0 * c * c));
    params_.collision_fraction = 0.5 * (p1 + p2);
  }
  collision_threshold_ = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(params_.collision_fraction *
                                       static_cast<double>(num_spaces_))));

  bank_ = std::make_unique<lsh::ProjectionBank>(params_.m, data->cols(),
                                                params_.seed);
  projected_ = bank_->ProjectDataset(*data);

  trees_.clear();
  trees_.reserve(num_spaces_);
  std::vector<bptree::BPlusTree::Entry> entries;
  entries.reserve(data->live_rows());
  for (size_t s = 0; s < num_spaces_; ++s) {
    entries.clear();
    // Live rows only, so a recycled slot cannot leave a stale duplicate
    // tree entry under its old projection (see Qalsh::Build).
    for (size_t i = 0; i < n; ++i) {
      if (data->IsDeleted(i)) continue;
      entries.push_back({projected_.at(i, 2 * s), static_cast<uint32_t>(i)});
    }
    trees_.emplace_back();
    DBLSH_RETURN_IF_ERROR(trees_.back().BulkLoad(entries));
  }

  collision_count_.assign(n, 0);
  count_epoch_.assign(n, 0);
  verified_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

Status R2Lsh::Insert(uint32_t id) {
  std::vector<float> proj;
  DBLSH_RETURN_IF_ERROR(
      ProjectRowForInsert(data_, bank_.get(), id, &projected_, &proj));
  for (size_t s = 0; s < num_spaces_; ++s) {
    trees_[s].Insert(projected_.at(id, 2 * s), id);
  }
  EnsureEpochScratch(projected_.rows(), &collision_count_, &count_epoch_,
                     &verified_epoch_);
  return Status::OK();
}

Status R2Lsh::Erase(uint32_t id) {
  DBLSH_RETURN_IF_ERROR(CheckEraseTarget(data_, projected_, id));
  for (size_t s = 0; s < num_spaces_; ++s) {
    DBLSH_RETURN_IF_ERROR(trees_[s].Erase(projected_.at(id, 2 * s), id));
  }
  return Status::OK();
}

std::vector<Neighbor> R2Lsh::Query(const float* query, size_t k,
                                   QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();
  if (++epoch_ == 0) {
    std::fill(count_epoch_.begin(), count_epoch_.end(), 0);
    std::fill(verified_epoch_.begin(), verified_epoch_.end(), 0);
    epoch_ = 1;
  }

  std::vector<float> proj_q(params_.m);
  bank_->ProjectAll(query, proj_q.data());

  // Per space: a slab frontier on the first coordinate plus a min-heap of
  // fetched points keyed by their 2D projected distance, so disc admission
  // is incremental as the radius grows.
  struct Pending {
    float dist2d;
    uint32_t id;
  };
  struct PendingGreater {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.dist2d > b.dist2d;
    }
  };
  std::vector<bptree::BPlusTree::Iterator> right(num_spaces_),
      left(num_spaces_);
  std::vector<
      std::priority_queue<Pending, std::vector<Pending>, PendingGreater>>
      pending(num_spaces_);
  for (size_t s = 0; s < num_spaces_; ++s) {
    right[s] = trees_[s].LowerBound(proj_q[2 * s]);
    left[s] = trees_[s].UpperNeighborBelow(proj_q[2 * s]);
  }

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  double radius = 1.0;
  const double c = params_.c;

  auto verify = [&](uint32_t id) -> bool {
    if (count_epoch_[id] != epoch_) {
      count_epoch_[id] = epoch_;
      collision_count_[id] = 0;
    }
    if (++collision_count_[id] < collision_threshold_) return false;
    if (verified_epoch_[id] == epoch_) return false;
    verified_epoch_[id] = epoch_;
    return verifier.Offer(id);
  };

  for (size_t round = 0; round < 64; ++round) {
    if (stats != nullptr) ++stats->rounds;
    const auto half = static_cast<float>(w_ * radius / 2.0);
    bool budget_hit = false;
    for (size_t s = 0; s < num_spaces_ && !budget_hit; ++s) {
      if (stats != nullptr) ++stats->window_queries;
      const float qx = proj_q[2 * s];
      const float qy = proj_q[2 * s + 1];
      auto push_pending = [&](uint32_t id) {
        const float dx = projected_.at(id, 2 * s) - qx;
        const float dy = projected_.at(id, 2 * s + 1) - qy;
        pending[s].push({std::sqrt(dx * dx + dy * dy), id});
        if (stats != nullptr) ++stats->points_accessed;
      };
      auto& r_it = right[s];
      while (r_it.Valid() && r_it.key() <= qx + half) {
        push_pending(r_it.id());
        r_it.Next();
      }
      auto& l_it = left[s];
      while (l_it.Valid() && l_it.key() >= qx - half) {
        push_pending(l_it.id());
        l_it.Prev();
      }
      // Admit every fetched point whose 2D distance is inside the disc.
      while (!pending[s].empty() && pending[s].top().dist2d <= half) {
        const uint32_t id = pending[s].top().id;
        pending[s].pop();
        if (verify(id)) {
          budget_hit = true;
          break;
        }
      }
      if (!budget_hit && verifier.Flush()) budget_hit = true;
    }
    if (budget_hit) break;
    if (heap.Full() && heap.Threshold() <= c * radius * r_unit_) break;
    if (verifier.verified() >= data_->live_rows()) break;
    radius *= c;
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterR2Lsh, "R2LSH",
    "R2LSH (Lu & Kudo, ICDE 2020): collision counting over "
    "two-dimensional projected spaces",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      R2LshParams params;
      SpecReader reader(spec);
      reader.Key("c", &params.c);
      reader.Key("m", &params.m);
      reader.Key("collision_fraction", &params.collision_fraction);
      reader.Key("beta", &params.beta);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<R2Lsh>(params);
      return index;
    });


Status R2Lsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
