#include "baselines/qalsh.h"

#include "core/index_factory.h"
#include <algorithm>
#include <cassert>
#include <cmath>

#include "baselines/update_common.h"
#include "core/verify.h"
#include "dataset/ground_truth.h"
#include "lsh/collision.h"
#include "util/distance.h"

namespace dblsh {

Qalsh::Qalsh(QalshParams params) : params_(params) {}

Status Qalsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("Qalsh::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.m == 0) {
    return Status::InvalidArgument("QALSH needs at least one hash function");
  }
  data_ = data;
  const size_t n = data->rows();

  // Normalized base width per unit radius: QALSH's optimal
  // w* = sqrt(8 c^2 ln c / (c^2 - 1)), then scaled to the data's NN radius
  // so the virtual-rehashing ladder R = 1, c, c^2, ... operates in units of
  // the typical NN distance.
  const double c = params_.c;
  const double w_norm =
      std::sqrt(8.0 * c * c * std::log(c) / (c * c - 1.0));
  r_unit_ = EstimateNnDistance(*data, params_.seed ^ 0x5151ULL) / c;
  if (params_.w <= 0.0) params_.w = w_norm * r_unit_;

  if (params_.collision_fraction <= 0.0) {
    const double p1 = lsh::CollisionProbQueryCentric(1.0, w_norm);
    const double p2 = lsh::CollisionProbQueryCentric(c, w_norm);
    params_.collision_fraction = 0.5 * (p1 + p2);
  }
  collision_threshold_ = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(params_.collision_fraction *
                       static_cast<double>(params_.m))));

  bank_ = std::make_unique<lsh::ProjectionBank>(params_.m, data->cols(),
                                                params_.seed);
  projected_ = bank_->ProjectDataset(*data);

  trees_.clear();
  trees_.reserve(params_.m);
  std::vector<bptree::BPlusTree::Entry> entries;
  entries.reserve(data->live_rows());
  for (size_t f = 0; f < params_.m; ++f) {
    entries.clear();
    // Live rows only: a tombstoned slot must stay out of the trees so a
    // later InsertRow recycle + Insert(id) cannot create a stale duplicate
    // entry under the slot's old projection.
    for (size_t i = 0; i < n; ++i) {
      if (data->IsDeleted(i)) continue;
      entries.push_back({projected_.at(i, f), static_cast<uint32_t>(i)});
    }
    trees_.emplace_back();
    DBLSH_RETURN_IF_ERROR(trees_.back().BulkLoad(entries));
  }

  collision_count_.assign(n, 0);
  count_epoch_.assign(n, 0);
  verified_epoch_.assign(n, 0);
  epoch_ = 0;
  return Status::OK();
}

Status Qalsh::Insert(uint32_t id) {
  std::vector<float> proj;
  DBLSH_RETURN_IF_ERROR(
      ProjectRowForInsert(data_, bank_.get(), id, &projected_, &proj));
  for (size_t f = 0; f < params_.m; ++f) {
    trees_[f].Insert(projected_.at(id, f), id);
  }
  EnsureEpochScratch(projected_.rows(), &collision_count_, &count_epoch_,
                     &verified_epoch_);
  return Status::OK();
}

Status Qalsh::Erase(uint32_t id) {
  DBLSH_RETURN_IF_ERROR(CheckEraseTarget(data_, projected_, id));
  for (size_t f = 0; f < params_.m; ++f) {
    DBLSH_RETURN_IF_ERROR(trees_[f].Erase(projected_.at(id, f), id));
  }
  return Status::OK();
}

std::vector<Neighbor> Qalsh::Query(const float* query, size_t k,
                                   QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0) return {};
  const size_t n = data_->rows();
  if (++epoch_ == 0) {
    std::fill(count_epoch_.begin(), count_epoch_.end(), 0);
    std::fill(verified_epoch_.begin(), verified_epoch_.end(), 0);
    epoch_ = 1;
  }

  std::vector<float> proj_q(params_.m);
  bank_->ProjectAll(query, proj_q.data());

  // Two frontier iterators per tree, expanding outward from h_i(q).
  std::vector<bptree::BPlusTree::Iterator> right(params_.m), left(params_.m);
  for (size_t f = 0; f < params_.m; ++f) {
    right[f] = trees_[f].LowerBound(proj_q[f]);
    left[f] = trees_[f].UpperNeighborBelow(proj_q[f]);
  }

  const size_t budget =
      std::max<size_t>(100, static_cast<size_t>(params_.beta *
                                                static_cast<double>(n))) +
      k;
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  // Real-space radius ladder; the per-dimension window at radius R has
  // half-width w*R / (2 * r_unit-normalization already folded into w).
  double radius = 1.0;
  const double c = params_.c;

  auto process = [&](uint32_t id) -> bool {
    if (stats != nullptr) ++stats->points_accessed;
    if (count_epoch_[id] != epoch_) {
      count_epoch_[id] = epoch_;
      collision_count_[id] = 0;
    }
    if (++collision_count_[id] < collision_threshold_) return false;
    if (verified_epoch_[id] == epoch_) return false;
    verified_epoch_[id] = epoch_;
    return verifier.Offer(id);
  };

  for (size_t round = 0; round < 64; ++round) {
    if (stats != nullptr) ++stats->rounds;
    const double half = params_.w * radius / 2.0;
    bool budget_hit = false;
    for (size_t f = 0; f < params_.m && !budget_hit; ++f) {
      if (stats != nullptr) ++stats->window_queries;
      const double lo = proj_q[f] - half;
      const double hi = proj_q[f] + half;
      auto& r_it = right[f];
      while (r_it.Valid() && r_it.key() <= hi) {
        if (process(r_it.id())) {
          budget_hit = true;
          break;
        }
        r_it.Next();
      }
      auto& l_it = left[f];
      while (!budget_hit && l_it.Valid() && l_it.key() >= lo) {
        if (process(l_it.id())) {
          budget_hit = true;
          break;
        }
        l_it.Prev();
      }
      if (!budget_hit && verifier.Flush()) budget_hit = true;
    }
    if (budget_hit) break;
    if (heap.Full() && heap.Threshold() <= c * radius * r_unit_) break;
    if (verifier.verified() >= data_->live_rows()) break;
    radius *= c;
  }
  return heap.TakeSorted();
}

DBLSH_REGISTER_INDEX(
    kRegisterQalsh, "QALSH",
    "QALSH (Huang et al., PVLDB 2015): query-aware 1-d buckets with "
    "collision counting over m B+-trees",
    [](const IndexFactory::Spec& spec)
        -> Result<std::unique_ptr<AnnIndex>> {
      QalshParams params;
      SpecReader reader(spec);
      reader.Key("c", &params.c);
      reader.Key("w", &params.w);
      reader.Key("m", &params.m);
      reader.Key("collision_fraction", &params.collision_fraction);
      reader.Key("beta", &params.beta);
      reader.Key("seed", &params.seed);
      DBLSH_RETURN_IF_ERROR(reader.Finish());
      std::unique_ptr<AnnIndex> index = std::make_unique<Qalsh>(params);
      return index;
    });


Status Qalsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
