#include "replication/replica.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "durability/snapshot.h"
#include "replication/feed.h"

namespace dblsh::replication {

namespace {

std::string PrimaryAddress(const ReplicaOptions& options) {
  return options.primary_host + ":" + std::to_string(options.primary_port);
}

}  // namespace

Result<std::unique_ptr<Replica>> Replica::Start(const ReplicaOptions& options) {
  if (options.spec.empty() || options.dir.empty()) {
    return Status::InvalidArgument(
        "replica: spec and durability dir are required");
  }
  std::unique_ptr<Replica> replica(new Replica(options));

  // Local state first: a restarted replica recovers its own snapshots +
  // WAL exactly like a crashed primary would, then resumes the streams
  // from the recovered LSNs.
  {
    auto local = Collection::Open(options.spec, options.executor);
    if (local.ok()) {
      replica->collection_ = std::move(local.value());
    } else if (local.status().code() != StatusCode::kNotFound) {
      return local.status();
    }
  }

  for (int attempt = 0;; ++attempt) {
    if (replica->collection_ == nullptr) {
      Status s = replica->Bootstrap();
      if (!s.ok()) return s;
    }
    const size_t nshards = replica->collection_->shards();
    const std::vector<uint64_t> applied =
        replica->collection_->ShardAppliedLsns();
    replica->tails_.clear();
    bool stale = false;
    for (size_t shard = 0; shard < nshards && !stale; ++shard) {
      auto connected =
          serve::Client::Connect(options.primary_host, options.primary_port);
      if (!connected.ok()) return connected.status();
      auto tail = std::make_unique<ShardTail>();
      tail->client = std::move(connected.value());
      serve::SubscribeAck ack;
      Status s = tail->client->Subscribe(options.collection,
                                         static_cast<uint32_t>(shard),
                                         applied[shard], false, &ack);
      if (!s.ok()) return s;
      if (ack.shards != nshards || ack.dim != replica->collection_->dim()) {
        return Status::InvalidArgument(
            "replica: local spec geometry (" + std::to_string(nshards) +
            " shards, dim " + std::to_string(replica->collection_->dim()) +
            ") differs from primary (" + std::to_string(ack.shards) +
            " shards, dim " + std::to_string(ack.dim) + ")");
      }
      if (ack.mode == kFeedModeSnapshot) {
        stale = true;  // primary checkpointed past our position
        break;
      }
      tail->primary_lsn.store(ack.shard_lsn, std::memory_order_relaxed);
      replica->tails_.push_back(std::move(tail));
    }
    if (!stale) break;
    if (attempt + 1 >= options.bootstrap_attempts) {
      return Status::Unavailable(
          "replica: primary keeps checkpointing past the bootstrapped "
          "position");
    }
    // Too stale to tail: drop the local state and re-seed from scratch.
    replica->tails_.clear();
    replica->collection_.reset();
  }

  replica->collection_->SetReadOnly(PrimaryAddress(options));
  const size_t nshards = replica->collection_->shards();
  replica->tail_pool_ = std::make_unique<exec::TaskExecutor>(nshards);
  replica->tasks_running_ = nshards;
  Replica* raw = replica.get();
  for (size_t shard = 0; shard < nshards; ++shard) {
    replica->tail_pool_->Schedule([raw, shard] { raw->TailShard(shard); });
  }
  return replica;
}

Replica::~Replica() {
  Stop();
  // tail_pool_ destruction joins the (already finished) tasks.
}

void Replica::Stop() {
  stop_.store(true, std::memory_order_release);
  std::unique_lock lock(mutex_);
  tasks_cv_.wait(lock, [&] { return tasks_running_ == 0; });
}

serve::ReplicationReport Replica::Report() const {
  serve::ReplicationReport report;
  report.primary = PrimaryAddress(options_);
  report.records_applied = records_applied_.load(std::memory_order_relaxed);
  const std::vector<uint64_t> applied = collection_->ShardAppliedLsns();
  report.shards.resize(applied.size());
  for (size_t s = 0; s < applied.size(); ++s) {
    report.shards[s].applied_lsn = applied[s];
    const uint64_t watermark =
        s < tails_.size()
            ? tails_[s]->primary_lsn.load(std::memory_order_relaxed)
            : 0;
    // The watermark only moves on stream traffic; the local LSN can be
    // momentarily ahead of it, never meaningfully behind.
    report.shards[s].primary_lsn = std::max(watermark, applied[s]);
    report.shards[s].records_applied =
        s < tails_.size()
            ? tails_[s]->records_applied.load(std::memory_order_relaxed)
            : 0;
  }
  return report;
}

std::string Replica::FirstError() const {
  std::lock_guard lock(mutex_);
  for (const auto& tail : tails_) {
    if (!tail->error.empty()) return tail->error;
  }
  return "";
}

Status Replica::Bootstrap() {
  // The directory may hold stale or partial state from a previous life;
  // the snapshot stream replaces it wholesale.
  std::error_code ec;
  std::filesystem::remove_all(options_.dir, ec);
  Status s = durability::EnsureDir(options_.dir);
  if (!s.ok()) return s;

  auto connected =
      serve::Client::Connect(options_.primary_host, options_.primary_port);
  if (!connected.ok()) return connected.status();
  serve::Client* client = connected.value().get();

  uint32_t nshards = 0;
  uint32_t dim = 0;
  uint32_t storage = durability::kSnapshotFp32;
  uint64_t checkpoint_lsn = 0;
  // One connection streams every shard sequentially: each snapshot
  // stream ends at its last chunk and the connection returns to request
  // mode for the next Subscribe.
  for (uint32_t shard = 0;; ++shard) {
    serve::SubscribeAck ack;
    s = client->Subscribe(options_.collection, shard, 0,
                          /*need_snapshot=*/true, &ack);
    if (!s.ok()) return s;
    if (shard == 0) {
      if (ack.shards == 0) {
        return Status::Corruption("replica: primary reports zero shards");
      }
      nshards = ack.shards;
      dim = ack.dim;
      storage = ack.storage;
    }
    if (ack.mode != kFeedModeSnapshot) {
      return Status::Corruption(
          "replica: primary refused snapshot mode during bootstrap");
    }
    checkpoint_lsn = std::max(checkpoint_lsn, ack.snapshot_lsn);

    const std::string path = durability::SnapshotPath(options_.dir, shard);
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("replica: cannot write " + tmp);
    for (bool done = false; !done;) {
      serve::ReplicationEvent event;
      s = client->ReceiveReplicationEvent(dim, &event, &stop_);
      if (!s.ok()) return s;
      if (event.kind != serve::ReplicationEvent::Kind::kSnapshotChunk) {
        return Status::Corruption(
            "replica: unexpected frame inside a snapshot stream");
      }
      if (!event.bytes.empty()) {
        out.write(reinterpret_cast<const char*>(event.bytes.data()),
                  static_cast<std::streamsize>(event.bytes.size()));
        if (!out) return Status::IoError("replica: short write to " + tmp);
      }
      done = event.last;
    }
    out.close();
    if (!out) return Status::IoError("replica: cannot finish " + tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      return Status::IoError("replica: cannot rename " + tmp);
    }
    if (shard + 1 == nshards) break;
  }

  durability::Manifest manifest;
  manifest.shards = nshards;
  manifest.dim = dim;
  manifest.storage = storage;
  manifest.wal_seq = 1;  // no local segments yet; recovery replays nothing
  manifest.checkpoint_lsn = checkpoint_lsn;
  s = durability::SaveManifest(options_.dir, manifest);
  if (!s.ok()) return s;

  // The snapshot files were shipped verbatim and are self-checksummed:
  // opening through the normal recovery path both verifies them and
  // rebuilds exactly the state a crash-recovered primary would have.
  auto opened = Collection::Open(options_.spec, options_.executor);
  if (!opened.ok()) return opened.status();
  collection_ = std::move(opened.value());
  if (collection_->shards() != nshards || collection_->dim() != dim) {
    return Status::InvalidArgument(
        "replica: local spec geometry differs from the primary's (" +
        std::to_string(nshards) + " shards, dim " + std::to_string(dim) +
        ")");
  }
  return Status::OK();
}

bool Replica::BackoffSleep(int ms) {
  const auto slice = std::chrono::milliseconds(20);
  auto remaining = std::chrono::milliseconds(ms);
  while (remaining.count() > 0) {
    if (stop_.load(std::memory_order_acquire)) return false;
    std::this_thread::sleep_for(std::min<std::chrono::milliseconds>(
        slice, remaining));
    remaining -= slice;
  }
  return !stop_.load(std::memory_order_acquire);
}

void Replica::TailShard(size_t shard) {
  ShardTail& tail = *tails_[shard];
  const uint32_t dim = static_cast<uint32_t>(collection_->dim());
  std::string fatal;
  while (!stop_.load(std::memory_order_acquire) && fatal.empty()) {
    if (tail.client == nullptr) {
      // Reconnect and resume from whatever this shard has applied —
      // records already applied (and re-logged locally) are skipped by
      // LSN on redelivery.
      auto connected = serve::Client::Connect(options_.primary_host,
                                              options_.primary_port);
      if (!connected.ok()) {
        if (!BackoffSleep(options_.reconnect_backoff_ms)) break;
        continue;
      }
      serve::SubscribeAck ack;
      const uint64_t from = collection_->ShardAppliedLsns()[shard];
      Status s = connected.value()->Subscribe(options_.collection,
                                              static_cast<uint32_t>(shard),
                                              from, false, &ack);
      if (!s.ok()) {
        if (!BackoffSleep(options_.reconnect_backoff_ms)) break;
        continue;
      }
      if (ack.mode == kFeedModeSnapshot) {
        fatal =
            "shard " + std::to_string(shard) +
            ": primary checkpointed past this replica while it was "
            "disconnected; restart the replica to re-seed";
        break;
      }
      tail.client = std::move(connected.value());
      tail.primary_lsn.store(ack.shard_lsn, std::memory_order_relaxed);
    }

    serve::ReplicationEvent event;
    Status s = tail.client->ReceiveReplicationEvent(dim, &event, &stop_);
    if (!s.ok()) {
      if (stop_.load(std::memory_order_acquire)) break;
      tail.client.reset();  // disconnect (or stream error): resubscribe
      if (!BackoffSleep(options_.reconnect_backoff_ms)) break;
      continue;
    }
    if (event.kind != serve::ReplicationEvent::Kind::kWalRecords) {
      fatal = "shard " + std::to_string(shard) +
              ": unexpected snapshot chunk on a tail stream";
      break;
    }
    tail.primary_lsn.store(event.watermark_lsn, std::memory_order_relaxed);
    for (const durability::WalRecord& rec : event.records) {
      Status applied = collection_->ApplyReplicatedRecord(shard, rec);
      if (applied.ok()) {
        tail.records_applied.fetch_add(1, std::memory_order_relaxed);
        records_applied_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (applied.code() == StatusCode::kCorruption) {
        fatal = "shard " + std::to_string(shard) +
                " diverged: " + applied.ToString();
        break;
      }
      // Transient apply failure (e.g. an injected fault): the record was
      // neither applied nor logged, so drop the stream and resume from
      // the applied LSN — the primary redelivers it.
      tail.client.reset();
      (void)BackoffSleep(options_.reconnect_backoff_ms);
      break;
    }
  }
  std::lock_guard lock(mutex_);
  if (!fatal.empty() && tail.error.empty()) tail.error = fatal;
  --tasks_running_;
  tasks_cv_.notify_all();
}

}  // namespace dblsh::replication
