#ifndef DBLSH_REPLICATION_REPLICA_H_
#define DBLSH_REPLICATION_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/collection.h"
#include "exec/task_executor.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/status.h"

namespace dblsh::replication {

/// Replica construction knobs.
struct ReplicaOptions {
  /// Primary's serving address.
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// The collection's wire name on the primary.
  std::string collection = "main";
  /// Local collection spec; must carry `durability=PATH` (the replica's
  /// own directory) and the same shards/dim/storage geometry as the
  /// primary — validated against the Subscribe acknowledgement.
  std::string spec;
  /// The spec's durability directory (bootstrap snapshot files land
  /// here before the collection opens over them).
  std::string dir;
  /// Query executor handed to Collection::Open; nullptr = default pool.
  /// The per-shard tail tasks run on a dedicated pool the Replica owns.
  exec::TaskExecutor* executor = nullptr;
  /// Reconnect backoff after a lost tail connection.
  int reconnect_backoff_ms = 200;
  /// Bootstrap retries when a just-bootstrapped position is already
  /// checkpointed past (pathological churn window).
  int bootstrap_attempts = 3;
};

/// A WAL-shipping read replica of one served collection:
///
///   auto replica = replication::Replica::Start(options).value();
///   // serve reads from replica->collection(); writes return
///   // Status::ReadOnly carrying the primary's address
///
/// Start() recovers what it can locally (the replica's own durability
/// directory, written by earlier tailing) and re-subscribes each shard
/// from its applied LSN. With no usable local state — or local state the
/// primary has checkpointed past — it bootstraps: streams every shard's
/// checkpoint snapshot file over Subscribe(need_snapshot), writes them
/// (tmp + atomic rename) plus a manifest into its own directory, and
/// opens the collection through the exact crash-recovery path
/// Collection::Open uses, so replicated state is byte-identical to
/// crash-recovered state. Each shard then tails its WAL stream on a
/// dedicated connection, applying records through
/// Collection::ApplyReplicatedRecord (which re-logs them locally under
/// the primary's LSNs — a kill -9'd replica restarts from its own log
/// and catches up from where it stopped). Lost connections reconnect
/// with backoff and resume from the shard's applied LSN; duplicate
/// deliveries are skipped by LSN.
///
/// Limitation: a replica whose tailing position falls behind a primary
/// checkpoint *while running* (the subscription pin is released between
/// reconnects) records a shard error instead of re-seeding live; restart
/// the replica to re-bootstrap.
class Replica {
 public:
  /// Bootstraps or recovers, marks the collection read-only, and starts
  /// the per-shard tail tasks. On success the collection is ready to
  /// serve reads (it may still be catching up — see Report()).
  static Result<std::unique_ptr<Replica>> Start(const ReplicaOptions& options);

  /// Stop(), then joins the tail tasks.
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// The replicated collection (read-only; serve reads from it).
  Collection* collection() { return collection_.get(); }

  /// Stops tailing: aborts in-flight stream reads, joins every tail
  /// task. The collection stays open for reads. Idempotent.
  void Stop();

  /// Per-shard applied/primary LSNs and the applied-record counter — the
  /// payload a serving front-end returns for kReplicaStatus (wire it in
  /// via ServerOptions::replication_report).
  serve::ReplicationReport Report() const;

  /// First tailing error across shards ("" while healthy). A shard whose
  /// stream diverged or went stale stops tailing and parks its error
  /// here; the other shards keep following.
  std::string FirstError() const;

 private:
  /// One shard's tail: its connection, positions, and health.
  struct ShardTail {
    std::unique_ptr<serve::Client> client;
    std::atomic<uint64_t> primary_lsn{0};
    std::atomic<uint64_t> records_applied{0};
    std::string error;  ///< guarded by Replica::mutex_
  };

  Replica(const ReplicaOptions& options) : options_(options) {}

  /// Streams every shard's snapshot + a manifest into options_.dir
  /// (wiping it first), then opens the collection over them.
  Status Bootstrap();
  /// Long-lived executor task: subscribe, apply, reconnect with backoff.
  void TailShard(size_t shard);
  /// Sleeps `ms` in stop-checkable slices; false when stopping.
  bool BackoffSleep(int ms);

  const ReplicaOptions options_;
  std::unique_ptr<Collection> collection_;
  std::unique_ptr<exec::TaskExecutor> tail_pool_;
  std::vector<std::unique_ptr<ShardTail>> tails_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> records_applied_{0};

  mutable std::mutex mutex_;  ///< guards errors + task join bookkeeping
  std::condition_variable tasks_cv_;
  size_t tasks_running_ = 0;  ///< guarded by mutex_
};

}  // namespace dblsh::replication

#endif  // DBLSH_REPLICATION_REPLICA_H_
