#include "replication/feed.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>
#include <utility>

#include "durability/fail_point.h"

namespace dblsh::replication {

namespace {

// Reads the whole file at `path` (the shard snapshot to bootstrap from).
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("replication: cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("replication: cannot stat " + path);
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::IoError("replication: short read of " + path);
  }
  return Status::OK();
}

// Ships the shard snapshot file in chunks. The file is self-checksummed
// (SaveShardSnapshot), so the bytes travel verbatim and the follower
// verifies by loading what it wrote.
Status StreamSnapshot(const FeedOptions& options) {
  std::vector<uint8_t> bytes;
  Status s = ReadFileBytes(
      durability::SnapshotPath(options.dir, options.shard), &bytes);
  if (!s.ok()) return s;
  const uint64_t total = bytes.size();
  uint64_t offset = 0;
  do {
    if (options.cancelled && options.cancelled()) return Status::OK();
    size_t keep = 0;
    if (durability::FailPoints::Instance().Hit(
            durability::kFailReplicationChunk, &keep)) {
      return Status::IoError(
          "replication: injected failure sending snapshot chunk at offset " +
          std::to_string(offset));
    }
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(options.chunk_bytes, total - offset));
    const bool last = offset + len == total;
    if (!options.on_chunk(total, offset, last, bytes.data() + offset, len)) {
      return Status::OK();
    }
    offset += len;
  } while (offset < total);
  return Status::OK();
}

}  // namespace

Status RunShardFeed(const FeedOptions& options) {
  Collection* collection = options.collection;
  if (collection == nullptr || options.shard >= collection->shards()) {
    return Status::InvalidArgument("replication: bad feed target");
  }
  // Pin BEFORE reading the manifest: a checkpoint between the two could
  // otherwise collect the very segments the manifest points at.
  const uint64_t pin = collection->AcquireWalPin(0);
  struct PinRelease {
    Collection* c;
    uint64_t pin;
    ~PinRelease() { c->ReleaseWalPin(pin); }
  } release{collection, pin};

  auto manifest = durability::LoadManifest(options.dir);
  if (!manifest.ok()) return manifest.status();
  auto snapshot = durability::LoadShardSnapshot(
      durability::SnapshotPath(options.dir, options.shard));
  if (!snapshot.ok()) return snapshot.status();
  const uint64_t snapshot_lsn = snapshot.value().lsn;
  const uint32_t dim = manifest.value().dim;

  const bool want_snapshot =
      options.need_snapshot || options.from_lsn < snapshot_lsn;
  const uint64_t shard_lsn =
      collection->ShardAppliedLsns()[options.shard];
  if (!options.on_subscribed(manifest.value(),
                             want_snapshot ? kFeedModeSnapshot : kFeedModeTail,
                             snapshot_lsn, shard_lsn)) {
    return Status::OK();
  }
  if (want_snapshot) return StreamSnapshot(options);

  // Tail mode. Segments before the manifest's generation hold only
  // records at or below the snapshot LSN <= from_lsn, so the scan starts
  // at the manifest's live segment and follows rotations from there.
  uint64_t seq = manifest.value().wal_seq;
  size_t offset = 0;
  uint64_t cursor_lsn = options.from_lsn;
  // A retrain record rides at its triggering mutation's LSN, ordered
  // after it in the log. When a follower resumes exactly at that LSN the
  // mutation itself is applied but the retrain may not be, so a retrain
  // AT the cursor ships too — applying one twice is a no-op (the new
  // params are a fixed point of params-from-codes retraining).
  const auto ships = [&cursor_lsn](const durability::WalRecord& rec) {
    return rec.lsn > cursor_lsn ||
           (rec.lsn == cursor_lsn &&
            rec.op == durability::WalOp::kRetrain);
  };
  std::vector<durability::WalRecord> batch;
  int idle_polls = 0;
  while (true) {
    if (options.cancelled && options.cancelled()) return Status::OK();
    auto replay = durability::ReadWalFrom(
        durability::WalPath(options.dir, options.shard, seq), dim, offset);
    if (!replay.ok()) return replay.status();
    offset = replay.value().bytes_scanned;
    for (durability::WalRecord& rec : replay.value().records) {
      if (ships(rec)) {
        cursor_lsn = rec.lsn;
        batch.push_back(std::move(rec));
      }
    }
    const bool clean_tail = replay.value().tail.ok();
    // List AFTER the read: observing a successor proves this segment was
    // already rotated away from when the read ran.
    const std::vector<uint64_t> segments =
        durability::ListWalSegments(options.dir, options.shard);
    uint64_t next_seq = 0;
    for (uint64_t s : segments) {
      if (s > seq && (next_seq == 0 || s < next_seq)) next_seq = s;
    }

    if (!batch.empty()) {
      idle_polls = 0;
      const uint64_t watermark =
          collection->ShardAppliedLsns()[options.shard];
      for (size_t start = 0; start < batch.size();
           start += options.max_batch_records) {
        const size_t end =
            std::min(batch.size(), start + options.max_batch_records);
        std::vector<durability::WalRecord> slice(
            std::make_move_iterator(batch.begin() + start),
            std::make_move_iterator(batch.begin() + end));
        if (!options.on_records(watermark, slice)) return Status::OK();
      }
      batch.clear();
      continue;  // drain the segment before sleeping
    }

    if (!clean_tail) {
      if (next_seq != 0) {
        // A closed (rotated-away) segment can never grow another byte;
        // damage there is real.
        return Status::Corruption(
            "replication: torn record in superseded segment " +
            durability::WalPath(options.dir, options.shard, seq));
      }
      // Live segment: the writer may be mid-append; the record becomes
      // visible from this same cursor once its checksum lands.
    } else if (next_seq != 0) {
      // Clean end of a rotated segment — but the rotation may have raced
      // this read, so take one final catch-up pass before advancing.
      auto closing = durability::ReadWalFrom(
          durability::WalPath(options.dir, options.shard, seq), dim, offset);
      if (!closing.ok()) return closing.status();
      if (!closing.value().tail.ok()) {
        return Status::Corruption(
            "replication: torn record in superseded segment " +
            durability::WalPath(options.dir, options.shard, seq));
      }
      for (durability::WalRecord& rec : closing.value().records) {
        if (ships(rec)) {
          cursor_lsn = rec.lsn;
          batch.push_back(std::move(rec));
        }
      }
      if (!batch.empty()) {
        const uint64_t watermark =
            collection->ShardAppliedLsns()[options.shard];
        if (!options.on_records(watermark, batch)) return Status::OK();
        batch.clear();
      }
      seq = next_seq;
      offset = 0;
      collection->UpdateWalPin(pin, seq);
      continue;
    }

    // Idle: nothing new in the live segment.
    if (++idle_polls >= options.heartbeat_polls) {
      idle_polls = 0;
      const uint64_t watermark =
          collection->ShardAppliedLsns()[options.shard];
      if (!options.on_records(watermark, {})) return Status::OK();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }
}

}  // namespace dblsh::replication
