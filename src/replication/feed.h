#ifndef DBLSH_REPLICATION_FEED_H_
#define DBLSH_REPLICATION_FEED_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/collection.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "util/status.h"

namespace dblsh::replication {

/// Stream mode the feed decides for one subscription (the wire `mode`
/// byte of the Subscribe acknowledgement).
inline constexpr uint8_t kFeedModeTail = 0;
inline constexpr uint8_t kFeedModeSnapshot = 1;

/// One primary-side shard feed: everything RunShardFeed needs to serve a
/// follower's Subscribe, with the transport abstracted behind callbacks so
/// the serve layer owns all frame encoding. Each callback returns false to
/// stop the feed (peer gone, server draining); the feed then returns OK.
struct FeedOptions {
  /// The served collection; must outlive the feed. Used for the WAL pin
  /// that keeps segment GC off the follower's position, and for the
  /// per-shard applied-LSN watermark shipped with every record batch.
  Collection* collection = nullptr;
  /// The collection's durability directory (segments + snapshots live
  /// here; the feed only ever reads).
  std::string dir;
  /// Shard this feed streams.
  size_t shard = 0;
  /// The follower's resume position: records with LSN <= from_lsn are
  /// filtered out of the stream.
  uint64_t from_lsn = 0;
  /// True when the follower has no local state and needs the bootstrap
  /// snapshot regardless of LSN arithmetic (a fresh primary's snapshot
  /// LSN is 0, which from_lsn = 0 would otherwise classify as "caught
  /// up").
  bool need_snapshot = false;

  /// Max records per on_records delivery.
  size_t max_batch_records = 256;
  /// Snapshot-file bytes per on_chunk delivery.
  size_t chunk_bytes = 256 * 1024;
  /// Idle poll interval while tailing a quiet segment.
  int poll_ms = 20;
  /// Idle polls between watermark heartbeats (empty on_records calls that
  /// keep the follower's lag view fresh).
  int heartbeat_polls = 10;

  /// Checked each round; return true to cancel the feed (returns OK).
  std::function<bool()> cancelled;
  /// Called once, before any stream traffic, with the decided mode
  /// (kFeedModeSnapshot / kFeedModeTail), the manifest, the shard
  /// snapshot's LSN and the shard's current applied LSN — everything the
  /// Subscribe acknowledgement carries.
  std::function<bool(const durability::Manifest&, uint8_t mode,
                     uint64_t snapshot_lsn, uint64_t shard_lsn)>
      on_subscribed;
  /// Snapshot mode: one verbatim chunk of the shard snapshot file
  /// (`last` marks the final chunk; the file is self-checksummed, so the
  /// follower verifies by loading it).
  std::function<bool(uint64_t total_bytes, uint64_t offset, bool last,
                     const uint8_t* data, size_t len)>
      on_chunk;
  /// Tail mode: a batch of records after the follower's cursor plus the
  /// shard's applied-LSN watermark. Also called with an empty batch as an
  /// idle heartbeat.
  std::function<bool(uint64_t watermark_lsn,
                     const std::vector<durability::WalRecord>& records)>
      on_records;
};

/// Serves one Subscribe: pins the primary's WAL against checkpoint GC,
/// decides snapshot vs tail mode from the follower's position, then either
/// ships the shard snapshot file in chunks (and returns — the follower
/// re-subscribes for the tail once every shard is bootstrapped) or tails
/// the shard's WAL segments indefinitely — scanning each segment
/// incrementally with ReadWalFrom, treating a torn tail on the *newest*
/// segment as an in-flight append to poll again (on a superseded segment
/// it is Corruption), and following checkpoint rotations onto fresh
/// segments after a final catch-up read of the closed one. Returns when
/// cancelled, when a callback declines, or on error. The pin is always
/// released on exit.
Status RunShardFeed(const FeedOptions& options);

}  // namespace dblsh::replication

#endif  // DBLSH_REPLICATION_FEED_H_
