#ifndef DBLSH_RTREE_RTREE_H_
#define DBLSH_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dataset/float_matrix.h"
#include "rtree/rect.h"
#include "util/status.h"

namespace dblsh::rtree {

/// Tuning knobs. Defaults follow Beckmann et al.'s recommendations
/// (min fill 40%, reinsert 30% of the node on first overflow per level).
struct RTreeOptions {
  size_t max_entries = 32;
  double min_fill = 0.4;
  double reinsert_fraction = 0.3;

  size_t MinEntries() const {
    const auto m = static_cast<size_t>(max_entries * min_fill);
    return m < 1 ? 1 : m;
  }
};

/// Construction/query statistics, exposed for the benches and ablations.
struct RTreeStats {
  size_t height = 0;       ///< 1 for a single leaf root
  size_t node_count = 0;   ///< total nodes
  size_t leaf_count = 0;
  size_t entry_count = 0;  ///< indexed points
};

/// In-memory R*-tree over the rows of an external `FloatMatrix` (the
/// projected points of one DB-LSH compound hash G_i). The tree stores point
/// ids only; coordinates are read from the matrix, which must outlive the
/// tree and must not be reallocated while indexed.
///
/// Supports both one-by-one R* insertion (ChooseSubtree + forced reinsert +
/// R* topological split) and Sort-Tile-Recursive bulk loading — the paper
/// credits bulk loading for DB-LSH's small indexing time, and the ablation
/// bench compares the two.
class RStarTree {
 public:
  explicit RStarTree(const FloatMatrix* points,
                     RTreeOptions options = RTreeOptions());
  ~RStarTree();

  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Builds the tree over `ids` with STR bulk loading; replaces any existing
  /// content. Fails if an id is out of range for the backing matrix.
  Status BulkLoad(const std::vector<uint32_t>& ids);

  /// Convenience: bulk loads all rows of the backing matrix.
  Status BulkLoadAll();

  /// Inserts one point id (R* insertion with forced reinsertion).
  Status Insert(uint32_t id);

  /// Removes one point id; returns NotFound if absent.
  Status Remove(uint32_t id);

  /// Collects all point ids inside `window` (inclusive bounds).
  void WindowQuery(const Rect& window, std::vector<uint32_t>* out) const;

  /// Visits ids inside `window`; return false from the visitor to stop early.
  void WindowQueryVisit(const Rect& window,
                        const std::function<bool(uint32_t)>& visit) const;

  size_t size() const { return size_; }
  size_t dim() const { return points_->cols(); }
  RTreeStats ComputeStats() const;

  /// Invariant checker used by the test suite: verifies MBR containment,
  /// fill factors, and uniform leaf depth. Returns the number of violations.
  size_t CheckInvariants() const;

  /// Streaming window query: yields matching ids one at a time so callers
  /// (DB-LSH's Algorithm 1) can stop after a candidate budget without paying
  /// for the rest of the window.
  class WindowCursor {
   public:
    WindowCursor(const RStarTree* tree, Rect window);
    ~WindowCursor();
    WindowCursor(WindowCursor&&) noexcept;
    WindowCursor& operator=(WindowCursor&&) = delete;
    WindowCursor(const WindowCursor&) = delete;
    WindowCursor& operator=(const WindowCursor&) = delete;

    /// Advances to the next id in the window; returns false when exhausted.
    bool Next(uint32_t* id);

   private:
    struct Frame;
    const RStarTree* tree_;
    Rect window_;
    std::vector<Frame> stack_;
  };

 private:
  struct Node;
  friend class WindowCursor;

  Node* ChooseSubtree(const Rect& entry_rect, size_t target_level,
                      std::vector<Node*>* path) const;
  void InsertAtLevel(const Rect& rect, uint32_t id, Node* subtree,
                     size_t target_level, std::vector<bool>* reinserted);
  void HandleOverflow(Node* node, std::vector<Node*>& path,
                      std::vector<bool>* reinserted);
  void SplitNode(Node* node, std::vector<Node*>& path);
  void ReinsertEntries(Node* node, std::vector<Node*>& path,
                       std::vector<bool>* reinserted);
  Rect ComputeNodeRect(const Node* node) const;
  Rect EntryRect(const Node* node, size_t idx) const;
  void FreeTree(Node* node);
  Node* BulkLoadLevel(std::vector<Node*> nodes);

  const FloatMatrix* points_;
  RTreeOptions options_;
  Node* root_ = nullptr;
  size_t size_ = 0;
};

}  // namespace dblsh::rtree

#endif  // DBLSH_RTREE_RTREE_H_
