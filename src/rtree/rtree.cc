#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

namespace dblsh::rtree {

/// Tree node. Leaves (level 0) hold point ids; internal nodes hold children.
/// Every node caches its MBR; an internal entry's rect is its child's MBR.
struct RStarTree::Node {
  size_t level = 0;
  Rect mbr;
  std::vector<uint32_t> ids;      // leaf payload
  std::vector<Node*> children;    // internal payload

  bool is_leaf() const { return level == 0; }
  size_t count() const { return is_leaf() ? ids.size() : children.size(); }
};

RStarTree::RStarTree(const FloatMatrix* points, RTreeOptions options)
    : points_(points), options_(options) {
  assert(points_ != nullptr);
  assert(options_.max_entries >= 4);
}

RStarTree::~RStarTree() { FreeTree(root_); }

RStarTree::RStarTree(RStarTree&& other) noexcept
    : points_(other.points_),
      options_(other.options_),
      root_(other.root_),
      size_(other.size_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

RStarTree& RStarTree::operator=(RStarTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    points_ = other.points_;
    options_ = other.options_;
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void RStarTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  for (Node* child : node->children) FreeTree(child);
  delete node;
}

Rect RStarTree::EntryRect(const Node* node, size_t idx) const {
  if (node->is_leaf()) {
    return Rect(points_->row(node->ids[idx]), points_->cols());
  }
  return node->children[idx]->mbr;
}

Rect RStarTree::ComputeNodeRect(const Node* node) const {
  Rect r(points_->cols());
  for (size_t i = 0; i < node->count(); ++i) {
    r.Extend(EntryRect(node, i));
  }
  return r;
}

// ---------------------------------------------------------------------------
// STR bulk loading
// ---------------------------------------------------------------------------

namespace {

/// Recursively tiles `items` (already ordered arbitrarily) into groups of at
/// most `capacity`, sorting by successive dimensions (Sort-Tile-Recursive).
/// `coord(item, axis)` returns the sort key. Appends groups to `out`.
/// Splits [0, n) into `parts` contiguous chunks whose sizes differ by at
/// most one, so bulk loading never emits underfull tail nodes.
inline std::vector<std::pair<size_t, size_t>> EvenChunks(size_t begin,
                                                         size_t n,
                                                         size_t parts) {
  std::vector<std::pair<size_t, size_t>> chunks;
  chunks.reserve(parts);
  const size_t base = n / parts;
  const size_t extra = n % parts;
  size_t pos = begin;
  for (size_t p = 0; p < parts; ++p) {
    const size_t len = base + (p < extra ? 1 : 0);
    chunks.emplace_back(pos, pos + len);
    pos += len;
  }
  return chunks;
}

template <typename Item, typename CoordFn>
void StrPartition(std::vector<Item>& items, size_t begin, size_t end,
                  size_t axis, size_t num_axes, size_t capacity,
                  const CoordFn& coord,
                  std::vector<std::pair<size_t, size_t>>* out) {
  const size_t n = end - begin;
  if (n == 0) return;
  if (n <= capacity) {
    out->emplace_back(begin, end);
    return;
  }
  std::sort(items.begin() + begin, items.begin() + end,
            [&](const Item& a, const Item& b) {
              return coord(a, axis) < coord(b, axis);
            });
  const size_t num_groups = (n + capacity - 1) / capacity;
  if (axis + 1 == num_axes) {
    for (const auto& [b, e] : EvenChunks(begin, n, num_groups)) {
      out->emplace_back(b, e);
    }
    return;
  }
  const auto remaining = static_cast<double>(num_axes - axis);
  const auto slabs = std::min<size_t>(
      num_groups, static_cast<size_t>(std::ceil(
                      std::pow(double(num_groups), 1.0 / remaining))));
  for (const auto& [b, e] : EvenChunks(begin, n, slabs)) {
    StrPartition(items, b, e, axis + 1, num_axes, capacity, coord, out);
  }
}

}  // namespace

Status RStarTree::BulkLoad(const std::vector<uint32_t>& ids) {
  for (uint32_t id : ids) {
    if (id >= points_->rows()) {
      return Status::InvalidArgument("point id " + std::to_string(id) +
                                     " out of range");
    }
  }
  FreeTree(root_);
  root_ = nullptr;
  size_ = ids.size();
  if (ids.empty()) {
    root_ = new Node();
    root_->mbr = Rect(points_->cols());
    return Status::OK();
  }

  const size_t dim = points_->cols();
  std::vector<uint32_t> sorted = ids;
  std::vector<std::pair<size_t, size_t>> groups;
  StrPartition(
      sorted, 0, sorted.size(), 0, dim, options_.max_entries,
      [&](uint32_t id, size_t axis) { return points_->at(id, axis); },
      &groups);

  std::vector<Node*> leaves;
  leaves.reserve(groups.size());
  for (const auto& [b, e] : groups) {
    Node* leaf = new Node();
    leaf->ids.assign(sorted.begin() + b, sorted.begin() + e);
    leaf->mbr = ComputeNodeRect(leaf);
    leaves.push_back(leaf);
  }
  root_ = BulkLoadLevel(std::move(leaves));
  return Status::OK();
}

Status RStarTree::BulkLoadAll() {
  std::vector<uint32_t> ids(points_->rows());
  std::iota(ids.begin(), ids.end(), 0);
  return BulkLoad(ids);
}

RStarTree::Node* RStarTree::BulkLoadLevel(std::vector<Node*> nodes) {
  if (nodes.size() == 1) return nodes[0];
  const size_t dim = points_->cols();
  std::vector<std::pair<size_t, size_t>> groups;
  StrPartition(
      nodes, 0, nodes.size(), 0, dim, options_.max_entries,
      [](const Node* n, size_t axis) { return n->mbr.Center(axis); },
      &groups);
  std::vector<Node*> parents;
  parents.reserve(groups.size());
  for (const auto& [b, e] : groups) {
    Node* parent = new Node();
    parent->level = nodes[b]->level + 1;
    parent->children.assign(nodes.begin() + b, nodes.begin() + e);
    parent->mbr = ComputeNodeRect(parent);
    parents.push_back(parent);
  }
  return BulkLoadLevel(std::move(parents));
}

// ---------------------------------------------------------------------------
// R* insertion
// ---------------------------------------------------------------------------

RStarTree::Node* RStarTree::ChooseSubtree(const Rect& entry_rect,
                                          size_t target_level,
                                          std::vector<Node*>* path) const {
  Node* node = root_;
  path->push_back(node);
  while (node->level > target_level) {
    const bool children_are_leaves = (node->level == 1);
    size_t best = 0;
    double best_primary = std::numeric_limits<double>::max();
    double best_secondary = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Rect& child_rect = node->children[i]->mbr;
      const double area = child_rect.Area();
      const double enlargement = child_rect.Enlargement(entry_rect);
      double primary;
      if (children_are_leaves) {
        // R*: minimize overlap enlargement among siblings.
        Rect extended = child_rect;
        extended.Extend(entry_rect);
        double overlap_before = 0.0, overlap_after = 0.0;
        for (size_t j = 0; j < node->children.size(); ++j) {
          if (j == i) continue;
          overlap_before += child_rect.OverlapArea(node->children[j]->mbr);
          overlap_after += extended.OverlapArea(node->children[j]->mbr);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = enlargement;
      }
      if (primary < best_primary ||
          (primary == best_primary && enlargement < best_secondary) ||
          (primary == best_primary && enlargement == best_secondary &&
           area < best_area)) {
        best = i;
        best_primary = primary;
        best_secondary = enlargement;
        best_area = area;
      }
    }
    node = node->children[best];
    path->push_back(node);
  }
  return node;
}

void RStarTree::InsertAtLevel(const Rect& rect, uint32_t id, Node* subtree,
                              size_t target_level,
                              std::vector<bool>* reinserted) {
  std::vector<Node*> path;
  Node* node = ChooseSubtree(rect, target_level, &path);
  if (subtree == nullptr) {
    assert(node->is_leaf());
    node->ids.push_back(id);
  } else {
    node->children.push_back(subtree);
  }
  for (Node* n : path) n->mbr.Extend(rect);
  if (node->count() > options_.max_entries) {
    HandleOverflow(node, path, reinserted);
  }
}

void RStarTree::HandleOverflow(Node* node, std::vector<Node*>& path,
                               std::vector<bool>* reinserted) {
  const bool is_root = (node == root_);
  if (!is_root && reinserted != nullptr && node->level < reinserted->size() &&
      !(*reinserted)[node->level]) {
    (*reinserted)[node->level] = true;
    ReinsertEntries(node, path, reinserted);
  } else {
    SplitNode(node, path);
  }
}

void RStarTree::ReinsertEntries(Node* node, std::vector<Node*>& path,
                                std::vector<bool>* reinserted) {
  const size_t p = std::max<size_t>(
      1, static_cast<size_t>(options_.reinsert_fraction *
                             static_cast<double>(options_.max_entries)));
  const size_t count = node->count();
  assert(count > p);

  // Order entries by distance of their rect center from the node center,
  // farthest first; evict the first p.
  std::vector<std::pair<double, size_t>> by_dist(count);
  for (size_t i = 0; i < count; ++i) {
    by_dist[i] = {node->mbr.CenterDistanceSquared(EntryRect(node, i)), i};
  }
  std::sort(by_dist.begin(), by_dist.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<uint32_t> evicted_ids;
  std::vector<Node*> evicted_children;
  std::vector<bool> evict(count, false);
  for (size_t i = 0; i < p; ++i) evict[by_dist[i].second] = true;
  if (node->is_leaf()) {
    std::vector<uint32_t> kept;
    for (size_t i = 0; i < count; ++i) {
      (evict[i] ? evicted_ids : kept).push_back(node->ids[i]);
    }
    node->ids = std::move(kept);
  } else {
    std::vector<Node*> kept;
    for (size_t i = 0; i < count; ++i) {
      (evict[i] ? evicted_children : kept).push_back(node->children[i]);
    }
    node->children = std::move(kept);
  }

  // Tighten MBRs along the whole path after eviction.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    (*it)->mbr = ComputeNodeRect(*it);
  }

  // Re-insert closest-first (the R* "close reinsert" policy).
  for (auto it = evicted_ids.rbegin(); it != evicted_ids.rend(); ++it) {
    InsertAtLevel(Rect(points_->row(*it), points_->cols()), *it, nullptr,
                  node->level, reinserted);
  }
  for (auto it = evicted_children.rbegin(); it != evicted_children.rend();
       ++it) {
    InsertAtLevel((*it)->mbr, 0, *it, (*it)->level + 1, reinserted);
  }
}

void RStarTree::SplitNode(Node* node, std::vector<Node*>& path) {
  const size_t count = node->count();
  const size_t m = options_.MinEntries();
  assert(count >= 2 * m);
  const size_t dim = points_->cols();

  std::vector<Rect> rects(count);
  for (size_t i = 0; i < count; ++i) rects[i] = EntryRect(node, i);

  // R* ChooseSplitAxis: minimize total margin over all valid distributions.
  size_t best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::max();
  std::vector<size_t> order(count);
  std::vector<size_t> best_order;
  for (size_t axis = 0; axis < dim; ++axis) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (rects[a].lo(axis) != rects[b].lo(axis)) {
        return rects[a].lo(axis) < rects[b].lo(axis);
      }
      return rects[a].hi(axis) < rects[b].hi(axis);
    });
    // Prefix/suffix bounding boxes for O(count) margin evaluation.
    std::vector<Rect> prefix(count, Rect(dim)), suffix(count, Rect(dim));
    Rect acc(dim);
    for (size_t i = 0; i < count; ++i) {
      acc.Extend(rects[order[i]]);
      prefix[i] = acc;
    }
    acc = Rect(dim);
    for (size_t i = count; i-- > 0;) {
      acc.Extend(rects[order[i]]);
      suffix[i] = acc;
    }
    double margin_sum = 0.0;
    for (size_t k = m; k + m <= count; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
      best_order = order;
    }
  }
  (void)best_axis;

  // ChooseSplitIndex on the winning axis: minimize overlap, tie on area.
  order = best_order;
  std::vector<Rect> prefix(count, Rect(dim)), suffix(count, Rect(dim));
  Rect acc(dim);
  for (size_t i = 0; i < count; ++i) {
    acc.Extend(rects[order[i]]);
    prefix[i] = acc;
  }
  acc = Rect(dim);
  for (size_t i = count; i-- > 0;) {
    acc.Extend(rects[order[i]]);
    suffix[i] = acc;
  }
  size_t best_k = m;
  double best_overlap = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (size_t k = m; k + m <= count; ++k) {
    const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
    const double area = prefix[k - 1].Area() + suffix[k].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // Materialize the two groups.
  Node* sibling = new Node();
  sibling->level = node->level;
  if (node->is_leaf()) {
    std::vector<uint32_t> group1, group2;
    for (size_t i = 0; i < count; ++i) {
      (i < best_k ? group1 : group2).push_back(node->ids[order[i]]);
    }
    node->ids = std::move(group1);
    sibling->ids = std::move(group2);
  } else {
    std::vector<Node*> group1, group2;
    for (size_t i = 0; i < count; ++i) {
      (i < best_k ? group1 : group2).push_back(node->children[order[i]]);
    }
    node->children = std::move(group1);
    sibling->children = std::move(group2);
  }
  node->mbr = ComputeNodeRect(node);
  sibling->mbr = ComputeNodeRect(sibling);

  if (node == root_) {
    Node* new_root = new Node();
    new_root->level = node->level + 1;
    new_root->children = {node, sibling};
    new_root->mbr = ComputeNodeRect(new_root);
    root_ = new_root;
    return;
  }
  // Attach the sibling to the parent; parent may overflow in turn.
  assert(path.size() >= 2 && path.back() == node);
  path.pop_back();
  Node* parent = path.back();
  parent->children.push_back(sibling);
  parent->mbr.Extend(sibling->mbr);
  if (parent->count() > options_.max_entries) {
    // Deeper levels already handled reinsertion bookkeeping; split directly
    // up the path (standard overflow propagation).
    SplitNode(parent, path);
  }
}

Status RStarTree::Insert(uint32_t id) {
  if (id >= points_->rows()) {
    return Status::InvalidArgument("point id " + std::to_string(id) +
                                   " out of range");
  }
  if (root_ == nullptr) {
    root_ = new Node();
    root_->mbr = Rect(points_->cols());
  }
  if (size_ == 0 && root_->count() == 0) {
    root_->ids.push_back(id);
    root_->mbr = ComputeNodeRect(root_);
    size_ = 1;
    return Status::OK();
  }
  std::vector<bool> reinserted(root_->level + 1, false);
  InsertAtLevel(Rect(points_->row(id), points_->cols()), id, nullptr, 0,
                &reinserted);
  ++size_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

namespace {

struct RemoveResult {
  bool found = false;
};

}  // namespace

Status RStarTree::Remove(uint32_t id) {
  if (root_ == nullptr || id >= points_->rows()) {
    return Status::NotFound("id not indexed");
  }
  const Rect target(points_->row(id), points_->cols());

  // Find the leaf holding `id`, tracking the path.
  std::vector<Node*> path;
  std::vector<size_t> slot;  // child index taken at each internal node
  Node* node = root_;
  path.push_back(node);
  bool found = false;
  while (!found) {
    if (node->is_leaf()) {
      auto it = std::find(node->ids.begin(), node->ids.end(), id);
      if (it != node->ids.end()) {
        node->ids.erase(it);
        found = true;
        break;
      }
      // Backtrack.
      while (true) {
        path.pop_back();
        if (path.empty()) return Status::NotFound("id not indexed");
        Node* parent = path.back();
        size_t& idx = slot.back();
        ++idx;
        bool descended = false;
        for (; idx < parent->children.size(); ++idx) {
          if (parent->children[idx]->mbr.ContainsRect(target)) {
            node = parent->children[idx];
            path.push_back(node);
            descended = true;
            break;
          }
        }
        if (descended) break;
        slot.pop_back();
      }
    } else {
      bool descended = false;
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (node->children[i]->mbr.ContainsRect(target)) {
          slot.push_back(i);
          node = node->children[i];
          path.push_back(node);
          descended = true;
          break;
        }
      }
      if (!descended) {
        // No child covers the point: backtrack as in the leaf case.
        while (true) {
          path.pop_back();
          if (path.empty()) return Status::NotFound("id not indexed");
          Node* parent = path.back();
          size_t& idx = slot.back();
          ++idx;
          bool redescended = false;
          for (; idx < parent->children.size(); ++idx) {
            if (parent->children[idx]->mbr.ContainsRect(target)) {
              node = parent->children[idx];
              path.push_back(node);
              redescended = true;
              break;
            }
          }
          if (redescended) break;
          slot.pop_back();
        }
      }
    }
  }
  --size_;

  // Condense: remove underfull nodes along the path, collecting orphans.
  const size_t min_entries = options_.MinEntries();
  std::vector<Node*> orphans;
  for (size_t depth = path.size(); depth-- > 0;) {
    Node* n = path[depth];
    if (n == root_) break;
    Node* parent = path[depth - 1];
    if (n->count() < min_entries) {
      auto it = std::find(parent->children.begin(), parent->children.end(), n);
      assert(it != parent->children.end());
      parent->children.erase(it);
      orphans.push_back(n);
    } else {
      n->mbr = ComputeNodeRect(n);
    }
  }
  root_->mbr = ComputeNodeRect(root_);

  // Re-insert orphaned entries at their original levels.
  for (Node* orphan : orphans) {
    if (orphan->is_leaf()) {
      for (uint32_t oid : orphan->ids) {
        std::vector<bool> reinserted(root_->level + 1, false);
        InsertAtLevel(Rect(points_->row(oid), points_->cols()), oid, nullptr,
                      0, &reinserted);
      }
      delete orphan;
    } else {
      for (Node* child : orphan->children) {
        std::vector<bool> reinserted(root_->level + 1, false);
        InsertAtLevel(child->mbr, 0, child, child->level + 1, &reinserted);
      }
      orphan->children.clear();
      delete orphan;
    }
  }

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf() && root_->children.size() == 1) {
    Node* old_root = root_;
    root_ = root_->children[0];
    old_root->children.clear();
    delete old_root;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void RStarTree::WindowQuery(const Rect& window,
                            std::vector<uint32_t>* out) const {
  WindowQueryVisit(window, [out](uint32_t id) {
    out->push_back(id);
    return true;
  });
}

void RStarTree::WindowQueryVisit(
    const Rect& window, const std::function<bool(uint32_t)>& visit) const {
  if (root_ == nullptr) return;
  std::vector<const Node*> stack = {root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!window.Intersects(node->mbr)) continue;
    if (node->is_leaf()) {
      for (uint32_t id : node->ids) {
        if (window.ContainsPoint(points_->row(id))) {
          if (!visit(id)) return;
        }
      }
    } else {
      for (const Node* child : node->children) {
        if (window.Intersects(child->mbr)) stack.push_back(child);
      }
    }
  }
}

RTreeStats RStarTree::ComputeStats() const {
  RTreeStats stats;
  if (root_ == nullptr) return stats;
  stats.height = root_->level + 1;
  std::vector<const Node*> stack = {root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++stats.node_count;
    if (node->is_leaf()) {
      ++stats.leaf_count;
      stats.entry_count += node->ids.size();
    } else {
      for (const Node* child : node->children) stack.push_back(child);
    }
  }
  return stats;
}

size_t RStarTree::CheckInvariants() const {
  if (root_ == nullptr) return 0;
  size_t violations = 0;
  const size_t min_entries = options_.MinEntries();
  std::vector<const Node*> stack = {root_};
  size_t leaf_level_seen = std::numeric_limits<size_t>::max();
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    const bool is_root = (node == root_);
    if (node->count() > options_.max_entries) ++violations;
    if (!is_root && node->count() < min_entries) ++violations;
    if (node->is_leaf()) {
      if (leaf_level_seen == std::numeric_limits<size_t>::max()) {
        leaf_level_seen = node->level;
      } else if (node->level != leaf_level_seen) {
        ++violations;
      }
      for (uint32_t id : node->ids) {
        if (!node->mbr.ContainsPoint(points_->row(id))) ++violations;
      }
    } else {
      for (const Node* child : node->children) {
        if (child->level + 1 != node->level) ++violations;
        if (!node->mbr.ContainsRect(child->mbr)) ++violations;
        stack.push_back(child);
      }
    }
    const Rect computed = ComputeNodeRect(node);
    for (size_t j = 0; j < computed.dim(); ++j) {
      if (node->count() > 0 && (computed.lo(j) != node->mbr.lo(j) ||
                                computed.hi(j) != node->mbr.hi(j))) {
        ++violations;
        break;
      }
    }
  }
  return violations;
}

// ---------------------------------------------------------------------------
// WindowCursor
// ---------------------------------------------------------------------------

struct RStarTree::WindowCursor::Frame {
  const Node* node;
  size_t idx;
};

RStarTree::WindowCursor::WindowCursor(const RStarTree* tree, Rect window)
    : tree_(tree), window_(std::move(window)) {
  if (tree_->root_ != nullptr &&
      window_.Intersects(tree_->root_->mbr)) {
    stack_.push_back({tree_->root_, 0});
  }
}

RStarTree::WindowCursor::~WindowCursor() = default;
RStarTree::WindowCursor::WindowCursor(WindowCursor&&) noexcept = default;

bool RStarTree::WindowCursor::Next(uint32_t* id) {
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const Node* node = frame.node;
    if (node->is_leaf()) {
      while (frame.idx < node->ids.size()) {
        const uint32_t candidate = node->ids[frame.idx++];
        if (window_.ContainsPoint(tree_->points_->row(candidate))) {
          *id = candidate;
          return true;
        }
      }
      stack_.pop_back();
    } else {
      bool descended = false;
      while (frame.idx < node->children.size()) {
        const Node* child = node->children[frame.idx++];
        if (window_.Intersects(child->mbr)) {
          stack_.push_back({child, 0});
          descended = true;
          break;
        }
      }
      if (!descended) stack_.pop_back();
    }
  }
  return false;
}

}  // namespace dblsh::rtree
