#ifndef DBLSH_RTREE_RECT_H_
#define DBLSH_RTREE_RECT_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>
#include <vector>

namespace dblsh::rtree {

/// Axis-aligned bounding box in a low-dimensional (K ~ 10) float space.
/// Used for node MBRs and window-query ranges.
class Rect {
 public:
  Rect() = default;

  /// An "empty" rect that any Extend() call will snap to.
  explicit Rect(size_t dim)
      : lo_(dim, std::numeric_limits<float>::max()),
        hi_(dim, std::numeric_limits<float>::lowest()) {}

  /// Degenerate rect around a point.
  Rect(const float* point, size_t dim)
      : lo_(point, point + dim), hi_(point, point + dim) {}

  /// Window of half-width w/2 centered at `center`.
  static Rect Window(const float* center, size_t dim, double w) {
    Rect r(dim);
    const float half = static_cast<float>(w / 2.0);
    for (size_t j = 0; j < dim; ++j) {
      r.lo_[j] = center[j] - half;
      r.hi_[j] = center[j] + half;
    }
    return r;
  }

  size_t dim() const { return lo_.size(); }
  float lo(size_t j) const { return lo_[j]; }
  float hi(size_t j) const { return hi_[j]; }
  float& lo(size_t j) { return lo_[j]; }
  float& hi(size_t j) { return hi_[j]; }

  /// Grows this rect to cover `other`.
  void Extend(const Rect& other) {
    assert(dim() == other.dim());
    for (size_t j = 0; j < dim(); ++j) {
      lo_[j] = std::min(lo_[j], other.lo_[j]);
      hi_[j] = std::max(hi_[j], other.hi_[j]);
    }
  }

  /// Grows this rect to cover a point.
  void ExtendPoint(const float* p) {
    for (size_t j = 0; j < dim(); ++j) {
      lo_[j] = std::min(lo_[j], p[j]);
      hi_[j] = std::max(hi_[j], p[j]);
    }
  }

  bool Intersects(const Rect& other) const {
    for (size_t j = 0; j < dim(); ++j) {
      if (lo_[j] > other.hi_[j] || hi_[j] < other.lo_[j]) return false;
    }
    return true;
  }

  bool ContainsPoint(const float* p) const {
    for (size_t j = 0; j < dim(); ++j) {
      if (p[j] < lo_[j] || p[j] > hi_[j]) return false;
    }
    return true;
  }

  bool ContainsRect(const Rect& other) const {
    for (size_t j = 0; j < dim(); ++j) {
      if (other.lo_[j] < lo_[j] || other.hi_[j] > hi_[j]) return false;
    }
    return true;
  }

  double Area() const {
    double a = 1.0;
    for (size_t j = 0; j < dim(); ++j) {
      a *= std::max(0.0, static_cast<double>(hi_[j]) - lo_[j]);
    }
    return a;
  }

  /// Sum of side lengths (the R*-tree "margin" criterion).
  double Margin() const {
    double m = 0.0;
    for (size_t j = 0; j < dim(); ++j) {
      m += std::max(0.0, static_cast<double>(hi_[j]) - lo_[j]);
    }
    return m;
  }

  /// Area of the intersection with `other` (0 if disjoint).
  double OverlapArea(const Rect& other) const {
    double a = 1.0;
    for (size_t j = 0; j < dim(); ++j) {
      const double side = std::min<double>(hi_[j], other.hi_[j]) -
                          std::max<double>(lo_[j], other.lo_[j]);
      if (side <= 0.0) return 0.0;
      a *= side;
    }
    return a;
  }

  /// Area after extension to cover `other` minus current area.
  double Enlargement(const Rect& other) const {
    double extended = 1.0;
    for (size_t j = 0; j < dim(); ++j) {
      extended *= std::max<double>(hi_[j], other.hi_[j]) -
                  std::min<double>(lo_[j], other.lo_[j]);
    }
    return extended - Area();
  }

  float Center(size_t j) const { return 0.5f * (lo_[j] + hi_[j]); }

  /// Squared distance from the rect's center to another rect's center.
  double CenterDistanceSquared(const Rect& other) const {
    double d = 0.0;
    for (size_t j = 0; j < dim(); ++j) {
      const double diff = Center(j) - other.Center(j);
      d += diff * diff;
    }
    return d;
  }

 private:
  std::vector<float> lo_;
  std::vector<float> hi_;
};

}  // namespace dblsh::rtree

#endif  // DBLSH_RTREE_RECT_H_
