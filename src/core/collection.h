#ifndef DBLSH_CORE_COLLECTION_H_
#define DBLSH_CORE_COLLECTION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ann_index.h"
#include "core/query.h"
#include "dataset/float_matrix.h"
#include "dataset/vector_store.h"
#include "durability/wal.h"
#include "exec/task_executor.h"
#include "util/status.h"

namespace dblsh {

namespace durability {
struct Manifest;  // durability/snapshot.h
}  // namespace durability

struct DurabilityState;  // core/collection.cc

/// Writer-priority shared mutex for a shard's single-writer / multi-reader
/// discipline. std::shared_mutex is reader-preferring on glibc: a
/// saturating stream of readers holds the lock permanently read-locked and
/// starves the writer forever — the exact traffic shape a serving
/// collection sees. This lock instead parks new readers as soon as a
/// writer is waiting, so mutations commit promptly and readers resume on
/// the new epoch. In-flight readers always drain first (a writer never
/// preempts a running query). Meets the Lockable / SharedLockable
/// requirements used by std::unique_lock / std::shared_lock.
///
/// The mirror-image hazard (a saturating writer starving readers) does not
/// arise in the intended single-writer deployment; callers running many
/// writer threads should batch their mutations instead.
class WriterPriorityMutex {
 public:
  /// Shared (reader) acquisition; blocks while a writer holds or awaits
  /// the lock.
  void lock_shared() {
    std::unique_lock lock(mutex_);
    reader_cv_.wait(lock,
                    [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }

  /// Shared release; wakes a waiting writer once the last reader drains.
  void unlock_shared() {
    std::unique_lock lock(mutex_);
    if (--readers_ == 0) writer_cv_.notify_one();
  }

  /// Exclusive (writer) acquisition; new readers queue behind it.
  void lock() {
    std::unique_lock lock(mutex_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [&] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  /// Exclusive release; preferentially hands off to the next writer.
  void unlock() {
    std::unique_lock lock(mutex_);
    writer_active_ = false;
    if (writers_waiting_ > 0) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  size_t readers_ = 0;
  size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

/// Public snapshot of one index slot of a Collection (see
/// Collection::Indexes()). For a sharded collection the fields aggregate
/// over the per-shard instances: `built` means some shard's instance
/// serves and no shard *with content* is left unbuilt (a slot over an
/// empty shard serves that shard's zero rows exactly and does not count
/// against the aggregate), `staleness` is the worst (maximum) shard,
/// `rebuilds` sums across shards, and `build_error` reports the first
/// failing shard.
struct CollectionIndexInfo {
  std::string name;          ///< slot name (`name=` spec key or method name)
  std::string method;        ///< AnnIndex::Name() of the wrapped index
  bool supports_updates = false;    ///< absorbs mutations in place
  bool concurrent_queries = false;  ///< readers fan out without serializing
  bool built = false;        ///< false until the first (lazy) build succeeds
  size_t staleness = 0;      ///< mutations not yet absorbed by the structure
  size_t rebuild_threshold = 0;  ///< staleness level that triggers a rebuild
  size_t rebuilds = 0;       ///< automatic rebuilds performed so far
  /// True while a background rebuild of this slot is scheduled or running
  /// on the executor (always false in inline-rebuild mode). Use
  /// Collection::WaitForRebuilds() to quiesce before asserting on state.
  bool rebuild_inflight = false;
  /// Message of the last failed automatic (re)build, empty when healthy.
  /// A failing slot is out of service (routing skips it) until a later
  /// mutation's retry succeeds; the mutation that triggered the build
  /// still commits (see Upsert/Delete). Background-mode build failures
  /// instead keep the previous (stale but coherent) index serving.
  std::string build_error;
};

/// Construction knobs for a Collection beyond the index lineup. All fields
/// have spec-key equivalents in the FromSpec prefix (see FromSpec).
struct CollectionOptions {
  /// Number of shards the id space is partitioned into (>= 1). Global id g
  /// lives in shard g % shards at local row g / shards, so ids stay stable
  /// for callers while every shard owns an independent FloatMatrix, index
  /// instances, and writer lock. `shards = 1` is byte-for-byte the
  /// unsharded collection.
  size_t shards = 1;

  /// Executor running shard fan-outs, parallel builds and background
  /// rebuilds; nullptr uses exec::TaskExecutor::Default(). Injecting a
  /// dedicated pool isolates one collection's work from the rest of the
  /// process. Must outlive the collection.
  exec::TaskExecutor* executor = nullptr;

  /// When true, threshold-triggered rebuilds of static slots run as
  /// background executor tasks that swap in under the write lock once the
  /// shard is verified unchanged, instead of blocking the mutating writer
  /// (spec key `rebuild=background`). Default false: rebuilds stay inside
  /// the mutation's write transaction — the pre-shard behavior, and the
  /// right choice when tests need deterministic rebuild timing.
  bool background_rebuild = false;

  /// Storage backend for the per-shard row stores (spec key `storage=`).
  /// kFp32 (default) keeps raw rows — bit-identical to the pre-store
  /// collection. kSq8 scalar-quantizes rows to one byte per dimension
  /// (~4x less memory and scan bandwidth; see dataset/vector_store.h):
  /// verification scores candidates over u8 codes and every search
  /// re-ranks an inflated candidate list through the store's exact
  /// asymmetric distance (see `rerank`). kPq product-quantizes rows to
  /// `pq_m` bytes each (k-means sub-codebooks + per-query ADC tables;
  /// ~16x at dim 128 / m 16). Under either quantized kind all index
  /// slots are treated as static — in-place updates need fp32 rows — so
  /// updatable methods fall back to staleness-triggered rebuilds.
  StorageKind storage = StorageKind::kFp32;

  /// Product-quantization subspace count (spec key `m=M`, >= 1, <= dim;
  /// only meaningful — and only accepted by FromSpec — under
  /// `storage=pq`). Each vector is encoded as `pq_m` one-byte centroid
  /// ids, so bytes/vector == pq_m. The companion spec key `nbits=B` is
  /// accepted for forward compatibility but must equal 8 (256-centroid
  /// codebooks are the only supported width).
  size_t pq_m = 16;

  /// Re-rank depth multiplier for quantized storage (spec key `rerank=N`,
  /// >= 1): a k-NN search runs the underlying index at k * rerank, then
  /// rescores those candidates with the store's exact fp32-query distance
  /// and keeps the best k. Higher values recover more of the recall lost
  /// to quantization at the cost of a deeper index pass. Ignored for
  /// fp32 storage.
  size_t rerank = 4;

  /// Durability directory (spec key `durability=PATH`). Empty (default)
  /// keeps the collection RAM-only. Non-empty makes every committed
  /// Upsert/Delete durable: each shard appends to a checksummed WAL
  /// segment in this directory before the call returns, Checkpoint()
  /// writes per-shard snapshots + a manifest and rotates the logs, and
  /// FromSpec/Open replay snapshot + WAL on start (restart without losing
  /// the dynamic state). The directory belongs to one collection at a
  /// time.
  std::string durability_dir;

  /// Background tombstone-compaction trigger (spec key
  /// `compact_threshold=R`, 0 < R < 1; 0 disables). When a shard's
  /// tombstone ratio (dead rows / physical rows) reaches R after a commit,
  /// a background task rewrites the shard — trailing tombstoned rows are
  /// physically dropped and the shard's indexes are rebuilt over the
  /// compacted rows off-lock, swapping in atomically (RebindData) so
  /// readers never block. Requires `durability_dir` (the rewrite is folded
  /// into the durable state via a WAL trim record + checkpoint).
  double compact_threshold = 0.0;

  /// Group-commit width (spec key `wal_sync=N`, >= 1): the WAL fsyncs
  /// every Nth append. 1 (default) syncs each commit before it is
  /// acknowledged — full durability; larger values amortize the fsync at
  /// the cost of the last < N acknowledged commits on a crash.
  uint32_t wal_sync = 1;
};

/// Storage-backend report for a Collection (see Collection::Storage):
/// what the `dblsh_tool collection stats` surface and the serving stats
/// wire carry.
struct CollectionStorageInfo {
  std::string kind;             ///< "fp32" | "sq8" | "pq"
  size_t bytes_per_vector = 0;  ///< payload bytes per vector slot (all kinds)
  size_t rerank = 0;            ///< re-rank multiplier (0 when fp32)
  size_t resident_bytes = 0;    ///< store heap bytes, summed over shards
  std::vector<size_t> shard_resident_bytes;  ///< per-shard store bytes
};

/// Durability report for a Collection (see Collection::Durability): the
/// `dblsh_tool collection stats` surface and the serving stats wire carry
/// these counters.
struct CollectionDurabilityInfo {
  bool enabled = false;           ///< durability= configured
  std::string dir;                ///< durability directory
  double compact_threshold = 0;   ///< tombstone ratio trigger (0 = off)
  uint64_t checkpoints = 0;       ///< checkpoints taken (incl. on open)
  uint64_t compactions = 0;       ///< background shard compactions landed
  uint64_t wal_appends = 0;       ///< WAL records appended this process
  uint64_t replayed_records = 0;  ///< WAL records replayed at open
  double recovery_ms = 0;         ///< snapshot-load + replay time at open
};

/// The serving façade: one mutable dataset plus any number of named ANN
/// indexes over it, behind a single transactional surface —
///
///   auto made = Collection::FromSpec(
///       "collection,shards=4: DB-LSH,c=1.5; PM-LSH,rebuild_threshold=500",
///       std::make_unique<FloatMatrix>(std::move(seed)));
///   Collection& c = *made.value();
///   uint32_t id = c.Upsert(vec.data(), dim).value();
///   auto hits  = c.Search(query, request);             // best-capable index
///   auto exact = c.Search(query, request, "PM-LSH");   // explicit routing
///   c.Delete(id);
///
/// Compared with driving AnnIndex directly, the Collection sequences the
/// PR-3 update protocol (dataset mutation first, then every index) for the
/// caller, keeps N indexes coherent over one id space, and adds the things
/// serving needs:
///
/// **Concurrency — single writer / many readers per shard,
/// epoch-guarded.** Every shard owns a writer-priority lock: mutations
/// (Upsert/Delete and rebuild swap-ins) take the owning shard's exclusive
/// lock, Search/SearchBatch take shared locks. A reader never observes a
/// half-applied update — each mutation touches exactly one shard, so every
/// query sees each shard exactly as some committed epoch left it. Each
/// committed mutation advances the collection epoch counter (epoch()).
/// Reads on indexes whose SupportsConcurrentQueries() is false are
/// additionally serialized per (shard, slot) by a query mutex; DB-LSH /
/// FB-LSH and LinearScan fan out freely.
///
/// **Sharding — fan-out/merge search, contention-free writers.** With
/// `shards = S > 1` the dataset is partitioned by id across S segments.
/// Search fans one k-NN task per shard onto the executor and merges the
/// per-shard top-k through a TopKHeap keyed on (distance, global id). The
/// merge is exact: within a shard, local id order equals global id order,
/// so every member of the global top-k survives its shard's top-k and the
/// merged result — ties included — is identical to what a `shards = 1`
/// collection over the same rows returns. Writers on different shards
/// commit concurrently; builds and rebuilds of different shards run in
/// parallel on the executor.
///
/// **Rebuild scheduling.** Indexes with SupportsUpdates() == true absorb
/// every mutation in place and are always current. For static methods each
/// shard's slot counts staleness — mutations the structure has not
/// absorbed (deletes stay invisible thanks to the tombstone filter;
/// inserts are simply not findable through that index until it rebuilds) —
/// and the shard rebuilds the index over its live rows once staleness
/// reaches the slot's `rebuild_threshold` (spec key; default
/// kDefaultRebuildThreshold, minimum 1). By default the rebuild runs
/// inside the same write transaction, so readers never see a partially
/// built index; with CollectionOptions::background_rebuild the rebuild
/// instead runs off-lock over a snapshot and swaps in atomically (see
/// AnnIndex::RebindData), keeping the writer unblocked.
///
/// Filtered search: requests pass through unchanged — a sharded collection
/// rewrites `QueryRequest::filter` into local-id terms per shard — so
/// filters (and the other per-query overrides) work for every index in the
/// collection.
class Collection {
 public:
  /// Default `rebuild_threshold` for index slots that do not set the spec
  /// key: a static index is rebuilt after this many unabsorbed mutations.
  static constexpr size_t kDefaultRebuildThreshold = 256;

  /// An empty collection of `dim`-dimensional vectors (populate with
  /// Upsert). Indexes added while the collection is empty build lazily on
  /// the first mutation that lands in their shard.
  explicit Collection(size_t dim, const CollectionOptions& options = {});

  /// Takes ownership of `data` (seed rows; may carry tombstones). With
  /// `options.shards == 1` the unique_ptr keeps the matrix's address
  /// stable, so indexes that were built over *data before the hand-off
  /// stay valid — see AddPrebuiltIndex(). With more shards the rows are
  /// re-partitioned into per-shard matrices (row g becomes shard g % S,
  /// local row g / S) and the seed matrix is released.
  explicit Collection(std::unique_ptr<FloatMatrix> data,
                      const CollectionOptions& options = {});

  /// Blocks until every in-flight background rebuild lands, then tears the
  /// collection down. Never call from inside a task that a rebuild could
  /// be queued behind on a width-1 executor.
  ~Collection();

  /// Builds a collection from the collection-level spec grammar
  ///
  ///   "collection[,OPTION...]: INDEX_SPEC (';' INDEX_SPEC)*"
  ///
  /// where each OPTION is a CollectionOptions key — `shards=N` (>= 1),
  /// `rebuild=inline|background`, `storage=fp32|sq8|pq`, `m=M` (>= 1,
  /// pq only), `nbits=8` (pq only), `rerank=N` (>= 1),
  /// `durability=PATH`, `compact_threshold=R` (0 < R < 1) and
  /// `wal_sync=N` (>= 1) — and each INDEX_SPEC is an IndexFactory
  /// spec ("DB-LSH,c=1.5") that may additionally carry the slot-level keys
  /// `name=` (slot name; defaults to the method name) and
  /// `rebuild_threshold=N`. Takes ownership of `data` and adds every
  /// index, building each shard's instance over its partition of the seed
  /// rows (shards build in parallel on `executor`); any parse or build
  /// error is returned and the partial collection discarded. Returns by
  /// unique_ptr: a Collection owns synchronization state and is not
  /// movable.
  ///
  /// With `durability=PATH` the directory decides the start mode: a valid
  /// manifest there means the collection *recovers* (snapshots + WAL
  /// replay; `data` must then be null — seeding over existing durable
  /// state is InvalidArgument), no manifest means a fresh durable
  /// collection is initialized from `data` (which must be provided — it
  /// defines the dimensionality) and an initial checkpoint written.
  /// Index slots are not persisted; the caller supplies the same INDEX_SPEC
  /// list on reopen and each shard's indexes are rebuilt over the
  /// recovered rows.
  static Result<std::unique_ptr<Collection>> FromSpec(
      const std::string& spec, std::unique_ptr<FloatMatrix> data,
      exec::TaskExecutor* executor = nullptr);

  /// Opens a durable collection from existing on-disk state: exactly
  /// FromSpec(spec, nullptr, executor), requiring the spec to carry
  /// `durability=PATH` and that directory to hold a valid manifest.
  /// NotFound when the directory has no durable state, Corruption when
  /// the state is damaged beyond the last valid WAL record.
  static Result<std::unique_ptr<Collection>> Open(
      const std::string& spec, exec::TaskExecutor* executor = nullptr);

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  /// Adds one index from an IndexFactory spec plus the optional slot-level
  /// keys `name=` / `rebuild_threshold=` (stripped before the factory sees
  /// the spec). One instance is created per shard; non-empty shards build
  /// now, in parallel on the executor, empty shards build lazily at their
  /// next mutation. Duplicate slot names are InvalidArgument. Runs as a
  /// write transaction over every shard.
  Status AddIndex(const std::string& index_spec);

  /// Registers an already-built index (e.g. restored via DbLsh::Load)
  /// under `name` without rebuild downtime. Only available on an unsharded
  /// collection (InvalidArgument otherwise): a prebuilt index speaks the
  /// global id space, which coincides with shard 0's local ids only when
  /// shards == 1. Precondition: `index` was built over this collection's
  /// matrix — the one passed to Collection(std::unique_ptr<FloatMatrix>) —
  /// and is not used directly afterwards.
  Status AddPrebuiltIndex(const std::string& name,
                          std::unique_ptr<AnnIndex> index,
                          size_t rebuild_threshold = kDefaultRebuildThreshold);

  /// Inserts one vector of length dim(), recycling a tombstoned slot when
  /// one exists (preferring the shard with free slots, then the smallest
  /// shard), and makes it visible to every updatable index of the owning
  /// shard; static indexes count staleness and rebuild at their threshold.
  /// Returns the id now serving the vector. The whole update commits
  /// atomically with respect to readers.
  ///
  /// The returned status reports the *mutation*: once the arguments
  /// validate, the vector is committed and the id returned. A failing
  /// index (re)build scheduled by the mutation does not fail the
  /// mutation — the slot drops out of service, the error is surfaced via
  /// Indexes().build_error, and the build is retried at the next
  /// mutation. (Same for Delete.)
  Result<uint32_t> Upsert(const float* vec, size_t len);

  /// Replaces the vector at live id `id` in place (the id keeps serving,
  /// now with the new vector). Structurally: erase + insert fused into one
  /// write transaction on the owning shard, so no reader ever sees the id
  /// absent. NotFound when `id` is not live.
  Result<uint32_t> Upsert(uint32_t id, const float* vec, size_t len);

  /// Deletes live id `id`: tombstones the row (so no index, updatable or
  /// not, can return it — enforced by the shared verification path) and
  /// removes it from every updatable index of the owning shard so the slot
  /// can be recycled. NotFound when `id` is not live.
  Status Delete(uint32_t id);

  /// Serves one query from the named index, or — with `index_name` empty —
  /// from the best-capable one: the built slot with the lowest staleness
  /// (ties resolve to insertion order, so put the preferred method first).
  /// On a sharded collection the query fans one task per shard onto the
  /// executor and the per-shard top-k merge is exact (see the class
  /// comment). Runs under the shard shared locks: safe to call from any
  /// number of threads concurrently with writers. NotFound for an unknown
  /// name, InvalidArgument when no index is built yet.
  Result<QueryResponse> Search(const float* query, const QueryRequest& request,
                               const std::string& index_name = "") const;

  /// Batched Search over every row of `queries`; fans the (query x shard)
  /// grid out on the executor when the serving index supports concurrent
  /// queries. `num_threads = 0` uses hardware concurrency; pass 1 when
  /// timing per-query latency.
  Result<std::vector<QueryResponse>> SearchBatch(
      const FloatMatrix& queries, const QueryRequest& request,
      const std::string& index_name = "", size_t num_threads = 0) const;

  /// Live vectors currently served (summed over shards).
  size_t size() const;

  /// Vector dimensionality.
  size_t dim() const;

  /// Number of shards the id space is partitioned into.
  size_t shards() const { return shards_.size(); }

  /// Committed-mutation counter: advances by exactly one per successful
  /// Upsert/Delete. Two equal observations bracket a mutation-free
  /// interval (the test suite uses this to validate read consistency).
  uint64_t epoch() const;

  /// Blocks until no background rebuild is scheduled or running, lending
  /// the calling thread to the executor while it waits (so a width-1 pool
  /// cannot starve the very task being awaited). No-op in inline mode.
  /// With writers quiescent, Indexes() observed afterwards is final.
  void WaitForRebuilds() const;

  /// Per-slot status snapshot, in insertion order (aggregated over shards
  /// — see CollectionIndexInfo).
  std::vector<CollectionIndexInfo> Indexes() const;

  /// The named index instance of shard `shard` (default: shard 0, the only
  /// shard of an unsharded collection), or nullptr when the name or shard
  /// is unknown. The pointer stays valid until the slot's next background
  /// rebuild swap-in, and using it bypasses the collection's locking —
  /// only touch it while no other thread mutates (intended for
  /// persistence, e.g. dynamic_cast to DbLsh + Save(), on shards == 1).
  /// Sharded instances speak local ids.
  const AnnIndex* GetIndex(const std::string& name, size_t shard = 0) const;

  /// Copy of the backing data (rows, tombstones and all) taken under the
  /// shared locks — a consistent basis for oracle checks and backups. On a
  /// sharded collection the per-shard matrices are re-assembled into the
  /// global id space; ids no shard has assigned yet come back tombstoned.
  /// Under quantized storage the rows are the store's decoded
  /// reconstruction (the fp32 originals are not retained).
  FloatMatrix Snapshot() const;

  /// Storage-backend report: kind, payload bytes per vector, re-rank
  /// depth, and resident store bytes per shard, taken under the shared
  /// locks.
  CollectionStorageInfo Storage() const;

  /// Takes a durable checkpoint: rotates every shard onto a fresh WAL
  /// segment, writes per-shard snapshots and the manifest (its atomic
  /// rename is the commit point), then deletes the superseded segments.
  /// Readers keep serving throughout; each shard's writer is excluded
  /// only for the in-memory state capture. Recovery cost after the call
  /// is proportional to the mutations since it. InvalidArgument when the
  /// collection has no `durability=` configured. Safe to call
  /// concurrently (checkpoints serialize).
  Status Checkpoint();

  /// Durability report: directory, compaction trigger and the checkpoint
  /// / compaction / WAL / recovery counters (all zero when durability is
  /// off).
  CollectionDurabilityInfo Durability() const;

  /// Marks the collection a read replica: every later Upsert/Delete
  /// returns Status::ReadOnly carrying `primary_hint` (the primary's
  /// address, so clients can redirect writes). Replicated records keep
  /// applying through ApplyReplicatedRecord, which bypasses the gate.
  /// Call before exposing the collection to traffic; not reversible.
  void SetReadOnly(const std::string& primary_hint);

  /// True once SetReadOnly was called.
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Applies one record shipped from a primary's WAL to shard
  /// `shard_index`, exactly like crash-recovery replay (erase-then-insert
  /// slot recycling with LIFO verification, trim count checks, quantizer
  /// retrains), so the replicated state is byte-identical to what
  /// reopening the primary's directory would rebuild. Also appends the
  /// record (with the primary's LSN) to this collection's own WAL so a
  /// restarted follower recovers locally and re-subscribes from its own
  /// LSN. Records at or below the shard's applied LSN are skipped
  /// (duplicate delivery after a reconnect); Corruption on divergence.
  Status ApplyReplicatedRecord(size_t shard_index,
                               const durability::WalRecord& record);

  /// Per-shard applied LSN: the LSN of the last mutation committed to (or
  /// replicated into) each shard. A follower re-subscribes from these; a
  /// primary reports them as the per-shard replication watermarks.
  std::vector<uint64_t> ShardAppliedLsns() const;

  /// Registers a replication pin: Checkpoint's segment GC keeps every WAL
  /// segment with sequence >= `min_seq` (across all shards) until the pin
  /// is released. `min_seq` 0 pins everything. Returns the pin id (0 when
  /// durability is off — nothing to pin). Used by the replication feed so
  /// a subscribed follower's position is never collected out from under
  /// it.
  uint64_t AcquireWalPin(uint64_t min_seq);

  /// Raises a pin's floor as the feed advances to newer segments.
  void UpdateWalPin(uint64_t pin, uint64_t min_seq);

  /// Releases a pin; superseded segments become collectable again at the
  /// next checkpoint.
  void ReleaseWalPin(uint64_t pin);

 private:
  struct Slot {
    std::string name;
    std::string method_spec;  ///< factory spec the index was made from
    std::unique_ptr<AnnIndex> index;
    bool built = false;
    size_t staleness = 0;
    size_t rebuild_threshold = kDefaultRebuildThreshold;
    size_t rebuilds = 0;
    /// True from background-rebuild scheduling until its swap-in/abandon.
    bool rebuild_scheduled = false;
    std::string build_error;  ///< last failed automatic build, "" = healthy
    /// Serializes queries on indexes whose read path is only
    /// thread-compatible (SupportsConcurrentQueries() == false).
    std::unique_ptr<std::mutex> query_mutex;
  };

  /// One id-space partition: its rows, its index instances (local-id
  /// world), and its writer lock. All fields except the advisory atomics
  /// are guarded by `mutex`.
  struct Shard {
    mutable WriterPriorityMutex mutex;
    /// Owns the shard's row bytes (fp32 or quantized per
    /// CollectionOptions::storage) and the logical matrix behind `data`.
    std::unique_ptr<VectorStore> store;
    /// Cached &store->matrix(): the address-stable matrix every index of
    /// this shard is built over. Mutations go through `store` (it keeps
    /// the quantized payload in sync); shape/tombstone reads go here.
    FloatMatrix* data = nullptr;
    std::vector<Slot> slots;
    /// Bumps on every committed mutation of this shard; background
    /// rebuilds compare it against their snapshot to validate the swap.
    uint64_t version = 0;
    /// Advisory row/free-slot counts for lock-free insert routing; updated
    /// under `mutex`, read racily by PickInsertShard (routing balance,
    /// never correctness, depends on them).
    std::atomic<size_t> approx_rows{0};
    std::atomic<size_t> approx_free{0};
    /// LSN of the last mutation committed to (primary) or replicated into
    /// (follower) this shard; guarded by `mutex`. Checkpoint snapshots
    /// record it as their replay filter, and replication subscriptions
    /// resume from it.
    uint64_t applied_lsn = 0;
    /// Dead-row count the last compaction could not reclaim (interior
    /// tombstones); the trigger re-fires only once dead rows exceed it.
    size_t compact_floor = 0;
    /// True from compaction scheduling until the task lands or gives up.
    bool compact_scheduled = false;
  };

  /// The shard owning global id `id` (id % shards).
  size_t ShardOfId(uint32_t id) const { return id % shards_.size(); }
  /// The row of global id `id` inside its owning shard (id / shards).
  uint32_t LocalOfId(uint32_t id) const {
    return id / static_cast<uint32_t>(shards_.size());
  }
  /// Inverse mapping: the global id of `shard`'s row `local`.
  uint32_t GlobalId(size_t shard, uint32_t local) const {
    return local * static_cast<uint32_t>(shards_.size()) +
           static_cast<uint32_t>(shard);
  }

  /// The shard a fresh Upsert routes to: prefer recycling (a shard with
  /// free slots), then the smallest shard; ties to the lowest index.
  size_t PickInsertShard() const;

  /// Applies one committed mutation to every slot of `shard`: updatable
  /// built slots already absorbed it structurally (callers do that), so
  /// this advances staleness of static/unbuilt slots, triggers threshold
  /// rebuilds (inline or background per options) and lazy first builds,
  /// bumps the shard version and the collection epoch. Under durability
  /// the epoch value becomes the mutation's LSN and the record is
  /// appended (group-commit synced) to the shard's WAL before returning —
  /// a non-OK return means the in-memory commit stands but was NOT made
  /// durable (the caller must not acknowledge it; the poisoned writer
  /// fails every later mutation too, so the durable state stays a
  /// consistent prefix). Also evaluates the compaction trigger. Caller
  /// holds the shard's write lock. `vec` carries the upserted vector for
  /// WalOp::kUpsert and is ignored otherwise.
  Status CommitMutationLocked(size_t shard_index, durability::WalOp op,
                              uint32_t global_id, const float* vec);

  /// Sets up a fresh durability directory (no manifest yet): state,
  /// initial checkpoint over the seed rows. Options already validated.
  Status InitDurability(const CollectionOptions& options);

  /// Rebuilds every shard's store from its snapshot and replays the WAL
  /// segments at/after `manifest.wal_seq` (records at or before each
  /// snapshot's LSN are skipped), then takes a checkpoint so the next
  /// open starts from a rotated, torn-tail-free log. Called on the empty
  /// shards of a just-constructed collection, before any index exists.
  Status RecoverShards(const CollectionOptions& options,
                       const durability::Manifest& manifest);

  /// Evaluates the tombstone-ratio compaction trigger for `shard` and
  /// schedules RunCompaction when it fires. Caller holds the write lock.
  void MaybeCompactLocked(size_t shard_index);

  /// Registers a pending background compaction and enqueues it (same
  /// bg_inflight_ bookkeeping as ScheduleRebuild). Caller holds the
  /// shard's write lock and has set Shard::compact_scheduled.
  void ScheduleCompaction(size_t shard_index);

  /// Executor task: snapshot the shard off-lock, trim the copy's trailing
  /// tombstones, build replacement indexes over it, then — under the
  /// write lock, if the shard did not mutate meanwhile — trim the real
  /// store, log a WAL trim record and swap the indexes in (RebindData).
  /// The trim and the index swap share one critical section: a stale
  /// index handing out a trimmed id would read out of bounds. Finishes
  /// with a best-effort checkpoint to fold the rewrite into the
  /// snapshots.
  void RunCompaction(size_t shard_index);

  /// Inline rebuild/lazy-build pass over `shard`'s slots (and background
  /// scheduling when enabled). Caller holds the shard's write lock.
  void MaybeRebuildLocked(size_t shard_index);

  /// Registers a pending background rebuild and enqueues it. Caller holds
  /// the shard's write lock and has set Slot::rebuild_scheduled.
  void ScheduleRebuild(size_t shard_index, size_t slot_index);

  /// Executor task: snapshot the shard off-lock, build a replacement
  /// index, and swap it in under the write lock if the shard did not
  /// mutate meanwhile (bounded retries otherwise).
  void RunBackgroundRebuild(size_t shard_index, size_t slot_index);

  /// Index of the slot serving `index_name` (or the best-capable slot when
  /// empty); negative on routing failure, with `*why` set. Caller holds at
  /// least the shard's shared lock.
  int RouteLocked(const Shard& shard, const std::string& index_name,
                  Status* why) const;

  /// One shard's contribution to a fan-out search: routes, rewrites the
  /// filter into local ids, and queries under the shard's shared lock.
  /// Local ids in the response; an empty shard contributes an empty
  /// response. `*empty_shard` reports the skip so the merge can
  /// distinguish "nothing there" from "no results".
  Result<QueryResponse> SearchShard(size_t shard_index, const float* query,
                                    const QueryRequest& request,
                                    const std::string& index_name,
                                    bool* empty_shard) const;

  /// Merges per-shard responses (local ids) into one global response via a
  /// TopKHeap keyed on (distance, global id); stats are summed.
  QueryResponse MergeShardResponses(std::vector<QueryResponse> responses,
                                    size_t k) const;

  /// Quantized-storage re-rank: rescores `response`'s neighbors (local
  /// ids, quantized-scored at inflated k) with the shard store's exact
  /// asymmetric distance and keeps the best `k`. Caller holds at least the
  /// shard's shared lock.
  void RerankLocked(const Shard& shard, const float* query, size_t k,
                    QueryResponse* response) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t dim_ = 0;
  exec::TaskExecutor* executor_;  ///< never null after construction
  bool background_rebuild_ = false;
  StorageKind storage_ = StorageKind::kFp32;
  bool quantized_ = false;  ///< storage_ != kFp32, hoisted for hot paths
  size_t pq_m_ = 16;        ///< CollectionOptions::pq_m (pq storage only)
  size_t rerank_ = 4;       ///< CollectionOptions::rerank, >= 1
  std::atomic<uint64_t> epoch_{0};

  /// Read-replica gate: set once (SetReadOnly) before traffic, read on
  /// every mutation. `read_only_message_` is written before the release
  /// store and immutable afterwards.
  std::atomic<bool> read_only_{false};
  std::string read_only_message_;

  /// Durability runtime state (WAL writers, checkpoint bookkeeping,
  /// counters); nullptr when durability is off. See collection.cc.
  std::unique_ptr<DurabilityState> durability_;

  // Background-rebuild bookkeeping: count of scheduled-but-unfinished
  // tasks, waited on by WaitForRebuilds() and the destructor.
  mutable std::mutex bg_mutex_;
  mutable std::condition_variable bg_cv_;
  mutable size_t bg_inflight_ = 0;
  bool closing_ = false;  ///< guarded by bg_mutex_
};

}  // namespace dblsh

#endif  // DBLSH_CORE_COLLECTION_H_
