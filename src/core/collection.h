#ifndef DBLSH_CORE_COLLECTION_H_
#define DBLSH_CORE_COLLECTION_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ann_index.h"
#include "core/query.h"
#include "dataset/float_matrix.h"
#include "util/status.h"

namespace dblsh {

/// Writer-priority shared mutex for the Collection's single-writer /
/// multi-reader discipline. std::shared_mutex is reader-preferring on
/// glibc: a saturating stream of readers holds the lock permanently
/// read-locked and starves the writer forever — the exact traffic shape a
/// serving collection sees. This lock instead parks new readers as soon as
/// a writer is waiting, so mutations commit promptly and readers resume on
/// the new epoch. In-flight readers always drain first (a writer never
/// preempts a running query). Meets the Lockable / SharedLockable
/// requirements used by std::unique_lock / std::shared_lock.
///
/// The mirror-image hazard (a saturating writer starving readers) does not
/// arise in the intended single-writer deployment; callers running many
/// writer threads should batch their mutations instead.
class WriterPriorityMutex {
 public:
  /// Shared (reader) acquisition; blocks while a writer holds or awaits
  /// the lock.
  void lock_shared() {
    std::unique_lock lock(mutex_);
    reader_cv_.wait(lock,
                    [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }

  /// Shared release; wakes a waiting writer once the last reader drains.
  void unlock_shared() {
    std::unique_lock lock(mutex_);
    if (--readers_ == 0) writer_cv_.notify_one();
  }

  /// Exclusive (writer) acquisition; new readers queue behind it.
  void lock() {
    std::unique_lock lock(mutex_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [&] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  /// Exclusive release; preferentially hands off to the next writer.
  void unlock() {
    std::unique_lock lock(mutex_);
    writer_active_ = false;
    if (writers_waiting_ > 0) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  size_t readers_ = 0;
  size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

/// Public snapshot of one index slot of a Collection (see
/// Collection::Indexes()).
struct CollectionIndexInfo {
  std::string name;          ///< slot name (`name=` spec key or method name)
  std::string method;        ///< AnnIndex::Name() of the wrapped index
  bool supports_updates = false;    ///< absorbs mutations in place
  bool concurrent_queries = false;  ///< readers fan out without serializing
  bool built = false;        ///< false until the first (lazy) build succeeds
  size_t staleness = 0;      ///< mutations not yet absorbed by the structure
  size_t rebuild_threshold = 0;  ///< staleness level that triggers a rebuild
  size_t rebuilds = 0;       ///< automatic rebuilds performed so far
  /// Message of the last failed automatic (re)build, empty when healthy.
  /// A failing slot is out of service (routing skips it) until a later
  /// mutation's retry succeeds; the mutation that triggered the build
  /// still commits (see Upsert/Delete).
  std::string build_error;
};

/// The serving façade: one mutable dataset plus any number of named ANN
/// indexes over it, behind a single transactional surface —
///
///   auto made = Collection::FromSpec(
///       "collection: DB-LSH,c=1.5; PM-LSH,rebuild_threshold=500",
///       std::make_unique<FloatMatrix>(std::move(seed)));
///   Collection& c = *made.value();
///   uint32_t id = c.Upsert(vec.data(), dim).value();
///   auto hits  = c.Search(query, request);             // best-capable index
///   auto exact = c.Search(query, request, "PM-LSH");   // explicit routing
///   c.Delete(id);
///
/// Compared with driving AnnIndex directly, the Collection sequences the
/// PR-3 update protocol (dataset mutation first, then every index) for the
/// caller, keeps N indexes coherent over one id space, and adds the two
/// things serving needs:
///
/// **Concurrency — single writer / many readers, epoch-guarded.** All
/// mutations (Upsert/Delete/AddIndex and automatic rebuilds) run under the
/// collection's exclusive lock; Search/SearchBatch run under the shared
/// lock. A reader therefore never observes a half-applied update: every
/// query sees the dataset and every index exactly as some committed epoch
/// left them. Each committed mutation advances the epoch counter
/// (epoch()), which tests and monitoring use to tag what a reader saw.
/// Reads on indexes whose SupportsConcurrentQueries() is false are
/// additionally serialized per slot by a query mutex; DB-LSH/FB-LSH and
/// LinearScan fan out freely.
///
/// **Rebuild scheduling.** Indexes with SupportsUpdates() == true absorb
/// every mutation in place and are always current. For static methods the
/// slot counts staleness — mutations the structure has not absorbed
/// (deletes stay invisible thanks to the tombstone filter; inserts are
/// simply not findable through that index until it rebuilds) — and the
/// collection rebuilds the index over the live rows once staleness reaches
/// the slot's `rebuild_threshold` (spec key; default
/// kDefaultRebuildThreshold, minimum 1). Rebuilds run inside the same
/// write transaction, so readers never see a partially built index.
///
/// Filtered search: requests pass through unchanged, so
/// `QueryRequest::filter` (and the other per-query overrides) work for
/// every index in the collection.
class Collection {
 public:
  /// Default `rebuild_threshold` for index slots that do not set the spec
  /// key: a static index is rebuilt after this many unabsorbed mutations.
  static constexpr size_t kDefaultRebuildThreshold = 256;

  /// An empty collection of `dim`-dimensional vectors (populate with
  /// Upsert). Indexes added while the collection is empty build lazily on
  /// the first mutation.
  explicit Collection(size_t dim);

  /// Takes ownership of `data` (seed rows; may carry tombstones). The
  /// unique_ptr keeps the matrix's address stable, so indexes that were
  /// built over *data before the hand-off stay valid — see
  /// AddPrebuiltIndex().
  explicit Collection(std::unique_ptr<FloatMatrix> data);

  /// Builds a collection from the collection-level spec grammar
  ///
  ///   "collection: INDEX_SPEC (';' INDEX_SPEC)*"
  ///
  /// where each INDEX_SPEC is an IndexFactory spec ("DB-LSH,c=1.5") that
  /// may additionally carry the collection-level keys `name=` (slot name;
  /// defaults to the method name) and `rebuild_threshold=N`. Takes
  /// ownership of `data` and adds every index, building each over the seed
  /// rows; any parse or build error is returned and the partial collection
  /// discarded. Returns by unique_ptr: a Collection owns synchronization
  /// state and is not movable.
  static Result<std::unique_ptr<Collection>> FromSpec(
      const std::string& spec, std::unique_ptr<FloatMatrix> data);

  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  /// Adds one index from an IndexFactory spec plus the optional
  /// collection-level keys `name=` / `rebuild_threshold=` (stripped before
  /// the factory sees the spec). Builds over the live rows now when the
  /// collection is non-empty, lazily at the next mutation otherwise.
  /// Duplicate slot names are InvalidArgument. Runs as a write
  /// transaction.
  Status AddIndex(const std::string& index_spec);

  /// Registers an already-built index (e.g. restored via DbLsh::Load)
  /// under `name` without rebuild downtime. Precondition: `index` was
  /// built over this collection's matrix — the one passed to
  /// Collection(std::unique_ptr<FloatMatrix>) — and is not used directly
  /// afterwards.
  Status AddPrebuiltIndex(const std::string& name,
                          std::unique_ptr<AnnIndex> index,
                          size_t rebuild_threshold = kDefaultRebuildThreshold);

  /// Inserts one vector of length dim(), recycling a tombstoned slot when
  /// one exists, and makes it visible to every updatable index; static
  /// indexes count staleness and rebuild at their threshold. Returns the
  /// id now serving the vector. The whole update commits atomically with
  /// respect to readers.
  ///
  /// The returned status reports the *mutation*: once the arguments
  /// validate, the vector is committed and the id returned. A failing
  /// index (re)build scheduled by the mutation does not fail the
  /// mutation — the slot drops out of service, the error is surfaced via
  /// Indexes().build_error, and the build is retried at the next
  /// mutation. (Same for Delete.)
  Result<uint32_t> Upsert(const float* vec, size_t len);

  /// Replaces the vector at live id `id` in place (the id keeps serving,
  /// now with the new vector). Structurally: erase + insert fused into one
  /// write transaction, so no reader ever sees the id absent. NotFound
  /// when `id` is not live.
  Result<uint32_t> Upsert(uint32_t id, const float* vec, size_t len);

  /// Deletes live id `id`: tombstones the row (so no index, updatable or
  /// not, can return it — enforced by the shared verification path) and
  /// removes it from every updatable index's structures so the slot can be
  /// recycled. NotFound when `id` is not live.
  Status Delete(uint32_t id);

  /// Serves one query from the named index, or — with `index_name` empty —
  /// from the best-capable one: the built slot with the lowest staleness
  /// (ties resolve to insertion order, so put the preferred method first).
  /// Runs under the shared lock: safe to call from any number of threads
  /// concurrently with one writer. NotFound for an unknown name,
  /// InvalidArgument when no index is built yet.
  Result<QueryResponse> Search(const float* query, const QueryRequest& request,
                               const std::string& index_name = "") const;

  /// Batched Search over every row of `queries` (one routing decision,
  /// one lock acquisition); fans out over worker threads when the serving
  /// index supports concurrent queries. `num_threads = 0` uses hardware
  /// concurrency.
  Result<std::vector<QueryResponse>> SearchBatch(
      const FloatMatrix& queries, const QueryRequest& request,
      const std::string& index_name = "", size_t num_threads = 0) const;

  /// Live vectors currently served.
  size_t size() const;

  /// Vector dimensionality.
  size_t dim() const;

  /// Committed-mutation counter: advances by exactly one per successful
  /// Upsert/Delete. Two equal observations bracket a mutation-free
  /// interval (the test suite uses this to validate read consistency).
  uint64_t epoch() const;

  /// Per-slot status snapshot, in insertion order.
  std::vector<CollectionIndexInfo> Indexes() const;

  /// The named index, or nullptr. The pointer stays valid for the
  /// collection's lifetime, but using it directly bypasses the collection's
  /// locking — only touch it while no other thread mutates (intended for
  /// persistence, e.g. dynamic_cast to DbLsh + Save()).
  const AnnIndex* GetIndex(const std::string& name) const;

  /// Copy of the backing matrix (rows, tombstones and all) taken under the
  /// shared lock — a consistent basis for oracle checks and backups.
  FloatMatrix Snapshot() const;

 private:
  struct Slot {
    std::string name;
    std::string method_spec;  ///< factory spec the index was made from
    std::unique_ptr<AnnIndex> index;
    bool built = false;
    size_t staleness = 0;
    size_t rebuild_threshold = kDefaultRebuildThreshold;
    size_t rebuilds = 0;
    std::string build_error;  ///< last failed automatic build, "" = healthy
    /// Serializes queries on indexes whose read path is only
    /// thread-compatible (SupportsConcurrentQueries() == false).
    std::unique_ptr<std::mutex> query_mutex;
  };

  /// Applies one committed mutation to every slot: updatable built slots
  /// already absorbed it structurally (callers do that), so this advances
  /// staleness of static/unbuilt slots, triggers threshold rebuilds and
  /// lazy first builds, and bumps the epoch. Caller holds the write lock.
  void CommitMutationLocked();

  /// Rebuilds every slot whose staleness reached its threshold and
  /// first-builds lazy slots, over the current live rows. Build failures
  /// take the slot out of service (recorded in Slot::build_error, retried
  /// at the next mutation) without unwinding the committed dataset state.
  /// Caller holds the write lock.
  void MaybeRebuildLocked();

  /// Index of the slot serving `index_name` (or the best-capable slot when
  /// empty); negative on routing failure, with `*why` set. Caller holds at
  /// least the shared lock.
  int RouteLocked(const std::string& index_name, Status* why) const;

  mutable WriterPriorityMutex mutex_;
  std::unique_ptr<FloatMatrix> data_;
  std::vector<Slot> slots_;
  uint64_t epoch_ = 0;
};

}  // namespace dblsh

#endif  // DBLSH_CORE_COLLECTION_H_
