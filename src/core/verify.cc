#include "core/verify.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dataset/vector_store.h"
#include "simd/simd.h"

namespace dblsh {
namespace {

/// The calling thread's active per-query filter (see ScopedQueryFilter).
/// Plain thread_local pointer: install/lookup are a handful of instructions
/// on the query hot path and need no synchronization.
thread_local const QueryFilter* g_active_filter = nullptr;

/// Per-thread scratch for the quantized path's prepared query (see
/// VectorStore::PrepareQuery). Rebuilt on every VerifyCandidates call —
/// a dim-length pass per call, ~3% of a typical verification — so the
/// scratch never holds a stale query across calls.
thread_local std::vector<float> g_prepared_query;

}  // namespace

ScopedQueryFilter::ScopedQueryFilter(const QueryFilter* filter)
    : previous_(g_active_filter) {
  g_active_filter = (filter != nullptr && !filter->empty()) ? filter : nullptr;
}

ScopedQueryFilter::~ScopedQueryFilter() { g_active_filter = previous_; }

const QueryFilter* ScopedQueryFilter::Active() { return g_active_filter; }

VerifyResult VerifyCandidates(const float* query, const FloatMatrix& data,
                              const uint32_t* ids, size_t n,
                              const VerifyOptions& options, TopKHeap* heap,
                              QueryStats* stats) {
  // Chunk sizing: with an early exit armed, small chunks bound the wasted
  // distance computations past the exit point; when no exit can fire (full
  // scans — LinearScan, ground truth) larger chunks keep the batch
  // kernel's prefetch lookahead warm across more rows.
  constexpr size_t kExitChunk = 32;
  constexpr size_t kScanChunk = 256;
  const bool exit_possible = options.dist_bound >= 0.0 || options.budget < n;
  const size_t chunk = exit_possible ? kExitChunk : kScanChunk;
  float d2[kScanChunk];
  VerifyResult result;
  const auto& kernels = simd::Active();
  const float* base = data.data().data();
  const size_t dim = data.cols();
  // Quantized storage: when a quantized VectorStore manages this matrix's
  // payload (the matrix is then a metadata shell), distances come from the
  // store's prepared-query scoring instead of the raw fp32 kernels. Every
  // other semantic below — tombstones, filters, budget, dist_bound, chunk
  // boundaries, push order — is identical, which is how quantization
  // reaches all 12 methods with zero per-method code. The fp32/unbound
  // path is untouched (one pointer test per call).
  const VectorStore* store = data.store();
  const bool quantized = store != nullptr && store->quantized();
  if (quantized) store->PrepareQuery(query, &g_prepared_query);
  const float* prep = quantized ? g_prepared_query.data() : nullptr;
  // Tombstone filter: erased rows are dropped after the batch distance
  // computation, before the push — they consume neither budget nor
  // candidates_verified. The flag is hoisted so the static (no-mutation)
  // path is byte-for-byte the historical loop. The thread's active query
  // filter (request push-down) gets identical drop semantics.
  const bool tombstones = data.has_tombstones();
  const QueryFilter* filter = ScopedQueryFilter::Active();
  for (size_t off = 0; off < n && !result.exited; off += chunk) {
    const size_t m = std::min(chunk, n - off);
    if (filter != nullptr) {
      // Filtered path: reject before the distance kernel — a restrictive
      // allow-list must not pay SIMD work for candidates it will drop.
      // Tombstones are tested first so a dead row never counts as a
      // filtered *live* candidate (result.filtered feeds coverage-based
      // termination against live_rows()).
      uint32_t keep[kScanChunk];
      size_t kept = 0;
      for (size_t j = 0; j < m; ++j) {
        const uint32_t id =
            ids != nullptr ? ids[off + j] : static_cast<uint32_t>(off + j);
        if (tombstones && data.IsDeleted(id)) continue;
        if (!filter->Admits(id)) {
          ++result.filtered;
          continue;
        }
        keep[kept++] = id;
      }
      if (kept == 0) continue;
      if (quantized) {
        store->ScoreBatch(prep, 0, keep, kept, d2);
      } else {
        kernels.l2_squared_batch(query, base, dim, keep, kept, d2);
      }
      for (size_t j = 0; j < kept; ++j) {
        heap->Push(std::sqrt(d2[j]), keep[j]);
        ++result.pushed;
        if (stats != nullptr) ++stats->candidates_verified;
        if (result.pushed >= options.budget ||
            (options.dist_bound >= 0.0 && heap->Full() &&
             heap->Threshold() <= options.dist_bound)) {
          result.exited = true;
          break;
        }
      }
      continue;
    }
    if (quantized) {
      if (ids != nullptr) {
        store->ScoreBatch(prep, 0, ids + off, m, d2);
      } else {
        store->ScoreBatch(prep, off, nullptr, m, d2);
      }
    } else if (ids != nullptr) {
      kernels.l2_squared_batch(query, base, dim, ids + off, m, d2);
    } else {
      // Contiguous rows: advance the base pointer instead of materializing
      // sequential ids.
      kernels.l2_squared_batch(query, base + off * dim, dim, nullptr, m, d2);
    }
    for (size_t j = 0; j < m; ++j) {
      const uint32_t id =
          ids != nullptr ? ids[off + j] : static_cast<uint32_t>(off + j);
      if (tombstones && data.IsDeleted(id)) continue;
      heap->Push(std::sqrt(d2[j]), id);
      ++result.pushed;
      if (stats != nullptr) ++stats->candidates_verified;
      if (result.pushed >= options.budget ||
          (options.dist_bound >= 0.0 && heap->Full() &&
           heap->Threshold() <= options.dist_bound)) {
        result.exited = true;
        break;  // drop the rest of the chunk, exactly like the old loops
      }
    }
  }
  return result;
}

bool CandidateVerifier::Flush() {
  const size_t pending = buffered_;
  buffered_ = 0;
  if (pending == 0 || done_) return done_;
  if (budget_ <= verified_) {
    // Budget already consumed (possible only if a caller lowers it
    // mid-query): exit without verifying anything further.
    done_ = true;
    return true;
  }
  VerifyOptions options;
  options.budget = budget_ - verified_;
  options.dist_bound = dist_bound_;
  const VerifyResult result = VerifyCandidates(query_, *data_, buffer_,
                                               pending, options, heap_,
                                               stats_);
  verified_ += result.pushed;
  filtered_ += result.filtered;
  if (result.exited) done_ = true;
  return done_;
}

}  // namespace dblsh
