#ifndef DBLSH_CORE_INDEX_FACTORY_H_
#define DBLSH_CORE_INDEX_FACTORY_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "core/ann_index.h"
#include "util/status.h"

namespace dblsh {

/// String-keyed registry of every ANN method in the library.
///
///   auto index = IndexFactory::Make("DB-LSH,c=1.5,l=5,t=40");
///   auto pm    = IndexFactory::Make("PM-LSH,c=2,m=8");
///
/// Spec grammar (see README.md):
///
///   spec  := name ( ',' key '=' value )*
///   name  := registered method name, matched case-insensitively and
///            ignoring '-' / '_' ("db-lsh" == "DB-LSH" == "DBLSH")
///   key   := parameter name of the method's params struct (lower-case)
///   value := double | unsigned integer | bool (0/1/true/false) | token
///
/// Unknown methods, unknown keys, duplicate keys, and unparsable values all
/// return InvalidArgument instead of silently building a misconfigured
/// index. Methods register themselves from their own translation units via
/// DBLSH_REGISTER_INDEX, so linking a method's object file is all it takes
/// to make it sweepable by name.
class IndexFactory {
 public:
  /// A parsed spec string. Keys are lower-cased; the name keeps the
  /// spelling the user wrote (canonicalized only for lookup).
  class Spec {
   public:
    static Result<Spec> Parse(const std::string& text);

    const std::string& name() const { return name_; }
    const std::map<std::string, std::string>& values() const {
      return values_;
    }

    /// Copy of this spec with `key` removed; lets a builder consume a key
    /// of its own (e.g. FB-LSH's dataset-size hint `n`) before delegating
    /// the rest to a shared param binder.
    Spec WithoutKey(const std::string& key) const {
      Spec copy = *this;
      copy.values_.erase(key);
      return copy;
    }

   private:
    std::string name_;
    std::map<std::string, std::string> values_;
  };

  using Builder =
      std::function<Result<std::unique_ptr<AnnIndex>>(const Spec&)>;

  /// Adds a method to the registry. Called at static-initialization time by
  /// DBLSH_REGISTER_INDEX; re-registering a name replaces the entry (last
  /// one wins, which keeps repeated registration in tests harmless).
  static void Register(const std::string& name,
                       const std::string& description, Builder builder);

  /// Parses `spec_text` and builds the named method with the given
  /// parameter overrides applied on top of its paper defaults.
  static Result<std::unique_ptr<AnnIndex>> Make(const std::string& spec_text);

  /// Display names of every registered method, sorted; drives uniform
  /// method sweeps in the benches and the eval runner.
  static std::vector<std::string> ListMethods();

  /// One-line description of a registered method.
  static Result<std::string> Describe(const std::string& name);
};

/// Typed key consumer used inside factory builders: bind every key the
/// method supports, then Finish() turns unknown keys or unparsable values
/// into an InvalidArgument status.
///
///   PmLshParams p;
///   SpecReader reader(spec);
///   reader.Key("c", &p.c);
///   reader.Key("m", &p.m);
///   DBLSH_RETURN_IF_ERROR(reader.Finish());
class SpecReader {
 public:
  /// Binds to `spec`, which must outlive the reader.
  explicit SpecReader(const IndexFactory::Spec& spec) : spec_(spec) {}

  /// Each Key() overload writes the spec's value for `key` into `out` when
  /// present (leaving the default otherwise) and marks the key consumed;
  /// parse failures are deferred and reported by Finish().
  void Key(const std::string& key, double* out);
  /// Boolean keys accept 0/1/true/false.
  void Key(const std::string& key, bool* out);
  /// Raw-token keys (e.g. bucketing=dynamic); no parsing beyond lookup.
  void Key(const std::string& key, std::string* out);

  /// Unsigned-integer keys (size_t, uint64_t, ...). bool and the exact
  /// overloads above take precedence.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_unsigned_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  void Key(const std::string& key, T* out) {
    unsigned long long value = 0;
    if (ConsumeUnsigned(key, &value)) *out = static_cast<T>(value);
  }

  /// OK when every provided key was consumed and parsed; first offending
  /// key otherwise.
  Status Finish();

 private:
  /// Marks `key` consumed and returns its raw value, or nullptr when the
  /// spec does not set it.
  const std::string* Raw(const std::string& key);
  bool ConsumeUnsigned(const std::string& key, unsigned long long* out);
  void RecordError(const std::string& key, const char* expected);

  const IndexFactory::Spec& spec_;
  std::set<std::string> consumed_;
  std::string error_;  ///< first parse error, reported by Finish()
};

namespace factory_internal {

/// Performs the registration as a static-initializer side effect.
struct Registrar {
  Registrar(const char* name, const char* description,
            IndexFactory::Builder builder) {
    IndexFactory::Register(name, description, std::move(builder));
  }
};

}  // namespace factory_internal

/// Registers a method with the factory. Place at namespace scope in the
/// method's translation unit:
///
///   DBLSH_REGISTER_INDEX(kRegisterPmLsh, "PM-LSH",
///                        "PM-LSH (Zheng et al., PVLDB 2020)",
///                        [](const IndexFactory::Spec& spec) { ... });
#define DBLSH_REGISTER_INDEX(var, name, description, ...)                 \
  [[maybe_unused]] static const ::dblsh::factory_internal::Registrar var( \
      name, description, __VA_ARGS__)

}  // namespace dblsh

#endif  // DBLSH_CORE_INDEX_FACTORY_H_
