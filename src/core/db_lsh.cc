#include "core/db_lsh.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>

#include "core/index_factory.h"
#include "exec/task_executor.h"

#include "dataset/ground_truth.h"
#include "util/distance.h"
#include "util/random.h"

namespace dblsh {

DbLsh::DbLsh(DbLshParams params) : params_(params) {}

std::string DbLsh::Name() const {
  return params_.bucketing == BucketingMode::kDynamicQueryCentric ? "DB-LSH"
                                                                  : "FB-LSH";
}

Status DbLsh::Build(const FloatMatrix* data) {
  if (data == nullptr || data->rows() == 0) {
    return Status::InvalidArgument("DbLsh::Build requires a non-empty dataset");
  }
  if (params_.c <= 1.0) {
    return Status::InvalidArgument("approximation ratio c must exceed 1");
  }
  if (params_.l == 0) {
    return Status::InvalidArgument("number of projected spaces l must be >= 1");
  }
  if (params_.early_stop_slack < 1.0) {
    return Status::InvalidArgument(
        "early_stop_slack must be >= 1 (1 = the paper's exact condition)");
  }
  data_ = data;
  const size_t n = data->rows();

  // Paper defaults (Sec. VI-A).
  if (params_.w0 <= 0.0) params_.w0 = 4.0 * params_.c * params_.c;
  if (params_.k == 0) params_.k = (n > 1000000) ? 12 : 10;
  if (params_.t == 0) {
    // Default candidate budget 2tL ~ max(192, 4*sqrt(n)): grows sub-linearly
    // with n (the theory's budget is O(tL) = O(n^rho*)), which is what keeps
    // the measured query time sub-linear in the vary-n experiment while
    // sustaining ~90% recall on clustered data.
    const size_t budget = std::max<size_t>(
        192, static_cast<size_t>(4.0 * std::sqrt(static_cast<double>(n))));
    params_.t = std::max<size_t>(8, budget / (2 * params_.l));
  }
  // An under-estimated r0 only costs a few cheap empty rounds; an
  // over-estimate only widens the first window, so the sample NN distance is
  // divided by c^2 for safety.
  auto_r0_ = params_.r0 > 0.0
                 ? params_.r0
                 : std::max(1e-6, EstimateNnDistance(
                                      *data, params_.seed ^ 0x5EEDULL) /
                                      (params_.c * params_.c));

  bank_ = std::make_unique<lsh::ProjectionBank>(params_.l * params_.k,
                                                data->cols(), params_.seed);

  // Project the dataset once and slice into the L K-dimensional spaces.
  projected_.clear();
  projected_.reserve(params_.l);
  {
    FloatMatrix all = bank_->ProjectDataset(*data);
    for (size_t i = 0; i < params_.l; ++i) {
      FloatMatrix space(n, params_.k);
      for (size_t row = 0; row < n; ++row) {
        const float* src = all.row(row) + i * params_.k;
        std::copy_n(src, params_.k, space.mutable_row(row));
      }
      projected_.push_back(std::move(space));
    }
  }

  trees_.clear();
  kd_trees_.clear();
  if (params_.backend == IndexBackend::kRStarTree) {
    // Building over a mutated dataset (e.g. the streaming bench's rebuild
    // baseline) indexes live rows only; tombstoned slots stay out of the
    // trees so they can be recycled by InsertRow + Insert later.
    std::vector<uint32_t> live;
    if (data->has_tombstones()) {
      live.reserve(data->live_rows());
      for (uint32_t id = 0; id < n; ++id) {
        if (!data->IsDeleted(id)) live.push_back(id);
      }
    }
    trees_.reserve(params_.l);
    for (size_t i = 0; i < params_.l; ++i) {
      trees_.emplace_back(&projected_[i], params_.rtree_options);
      if (params_.bulk_load) {
        if (data->has_tombstones()) {
          DBLSH_RETURN_IF_ERROR(trees_.back().BulkLoad(live));
        } else {
          DBLSH_RETURN_IF_ERROR(trees_.back().BulkLoadAll());
        }
      } else {
        for (uint32_t id = 0; id < n; ++id) {
          if (data->IsDeleted(id)) continue;
          DBLSH_RETURN_IF_ERROR(trees_.back().Insert(id));
        }
      }
    }
  } else {
    kd_trees_.reserve(params_.l);
    for (size_t i = 0; i < params_.l; ++i) {
      kd_trees_.push_back(std::make_unique<kdtree::KdTree>(&projected_[i]));
    }
  }

  // Fixed-grid bucketing uses uniform random cell offsets (the `b` of the
  // static family, Eq. 1) so boundary losses are unbiased across functions.
  grid_offsets_.assign(params_.l * params_.k, 0.f);
  if (params_.bucketing == BucketingMode::kFixedGrid) {
    Rng rng(params_.seed ^ 0x0FF5E7ULL);
    for (auto& b : grid_offsets_) {
      b = static_cast<float>(rng.NextDouble());  // fraction of cell width
    }
  }

  return Status::OK();
}

DbLsh::QueryScratch& DbLsh::ThreadLocalScratch() {
  // Shared across instances on the thread; PrepareScratch re-sizes on row
  // count mismatch (e.g. after a rebuild or when alternating indexes) and
  // the monotone epoch keeps stale stamps inert.
  static thread_local QueryScratch scratch;
  return scratch;
}

uint32_t DbLsh::PrepareScratch(QueryScratch* scratch) const {
  if (scratch->visited_epoch_.size() != data_->rows()) {
    scratch->visited_epoch_.assign(data_->rows(), 0);
    scratch->epoch_ = 0;
  }
  if (++scratch->epoch_ == 0) {  // epoch wrapped: reset stamps
    std::fill(scratch->visited_epoch_.begin(),
              scratch->visited_epoch_.end(), 0);
    scratch->epoch_ = 1;
  }
  return scratch->epoch_;
}

rtree::Rect DbLsh::MakeBucket(const float* proj_center, size_t tree_index,
                              double width) const {
  if (params_.bucketing == BucketingMode::kDynamicQueryCentric) {
    return rtree::Rect::Window(proj_center, params_.k, width);
  }
  // Fixed (query-oblivious) grid cell of side `width` containing the query's
  // projection: the FB-LSH ablation. Cells tile the space at offsets `b`
  // (Eq. 1), independent of the query, so near-boundary neighbors can be
  // cut off — the hash-boundary problem DB-LSH eliminates.
  rtree::Rect cell(params_.k);
  for (size_t j = 0; j < params_.k; ++j) {
    const double offset =
        grid_offsets_[tree_index * params_.k + j] * width;
    const auto base = static_cast<float>(
        std::floor((proj_center[j] - offset) / width) * width + offset);
    cell.lo(j) = base;
    cell.hi(j) = static_cast<float>(base + width);
  }
  return cell;
}

bool DbLsh::RunRound(const float* query, double r,
                     CandidateVerifier* verifier,
                     std::vector<uint32_t>* visited_mark,
                     uint32_t query_epoch, QueryStats* stats) const {
  const double width = params_.w0 * r;
  const double c = params_.c;
  std::vector<float> proj(params_.l * params_.k);
  bank_->ProjectAll(query, proj.data());

  // Algorithm 1's termination tests — candidate budget exhausted, or the
  // k-th best distance certifying a (r,c)-NN result (optionally relaxed by
  // the early-stop slack) — live inside the verifier and are evaluated per
  // candidate in arrival order, so batching through the SIMD kernel leaves
  // the terminating candidate (and thus the heap) unchanged.
  verifier->set_dist_bound(params_.early_stop_slack * c * r);

  // Per-candidate dedup shared by both index backends; unseen ids are fed
  // to the batch verifier. Returns true when Algorithm 1 may terminate.
  auto process = [&](uint32_t id) -> bool {
    if (stats != nullptr) ++stats->points_accessed;
    if ((*visited_mark)[id] == query_epoch) return false;
    (*visited_mark)[id] = query_epoch;
    return verifier->Offer(id);
  };

  for (size_t i = 0; i < params_.l; ++i) {
    const float* center = proj.data() + i * params_.k;
    const rtree::Rect bucket = MakeBucket(center, i, width);
    if (stats != nullptr) ++stats->window_queries;
    uint32_t id = 0;
    if (params_.backend == IndexBackend::kRStarTree) {
      rtree::RStarTree::WindowCursor cursor(&trees_[i], bucket);
      while (cursor.Next(&id)) {
        if (process(id)) return true;
      }
    } else {
      std::vector<float> lo(params_.k), hi(params_.k);
      for (size_t j = 0; j < params_.k; ++j) {
        lo[j] = bucket.lo(j);
        hi[j] = bucket.hi(j);
      }
      kdtree::KdTree::WindowCursor cursor(kd_trees_[i].get(), lo.data(),
                                          hi.data());
      while (cursor.Next(&id)) {
        if (process(id)) return true;
      }
    }
    if (verifier->Flush()) return true;  // window boundary: settle exits
  }
  // All L windows drained without termination: round reports "not done".
  // (If every live point has been consumed — pushed, or dropped by the
  // request's filter — there is nothing left to find. Counting filtered
  // drops matters: a restrictive filter keeps the heap from filling and
  // the budget from tripping, and without this exit the radius ladder
  // would run its full 256 rounds of ever-larger window scans.)
  return verifier->verified() + verifier->filtered() >= data_->live_rows();
}

std::vector<Neighbor> DbLsh::Query(const float* query, size_t k,
                                   QueryStats* stats) const {
  return Query(query, k, stats, &ThreadLocalScratch());
}

std::vector<Neighbor> DbLsh::Query(const float* query, size_t k,
                                   QueryStats* stats,
                                   QueryScratch* scratch) const {
  return QueryImpl(query, k, params_.t, auto_r0_, stats, scratch);
}

QueryResponse DbLsh::Search(const float* query,
                            const QueryRequest& request) const {
  QueryResponse response;
  const size_t t =
      request.candidate_budget > 0 ? request.candidate_budget : params_.t;
  const double r0 = request.r0 > 0.0 ? request.r0 : auto_r0_;
  ScopedQueryFilter filter_scope(&request.filter);
  response.neighbors = QueryImpl(query, request.k, t, r0, &response.stats,
                                 &ThreadLocalScratch());
  return response;
}

std::vector<QueryResponse> DbLsh::QueryBatch(const FloatMatrix& queries,
                                             const QueryRequest& request,
                                             size_t num_threads) const {
  const size_t q_count = queries.rows();
  std::vector<QueryResponse> responses(q_count);
  if (q_count == 0) return responses;
  if (num_threads == 0) num_threads = exec::HardwareConcurrency();
  num_threads = std::min(num_threads, q_count);

  const size_t t =
      request.candidate_budget > 0 ? request.candidate_budget : params_.t;
  const double r0 = request.r0 > 0.0 ? request.r0 : auto_r0_;
  detail::FanOut(q_count, num_threads, [&]() {
    // One scratch per worker: the fully thread-safe read path.
    auto scratch = std::make_shared<QueryScratch>();
    return [this, scratch, &queries, &request, &responses, t, r0](size_t q) {
      // Per-call scope on the worker thread: the filter is thread-local.
      ScopedQueryFilter filter_scope(&request.filter);
      responses[q].neighbors = QueryImpl(queries.row(q), request.k, t, r0,
                                         &responses[q].stats, scratch.get());
    };
  });
  return responses;
}

std::vector<Neighbor> DbLsh::QueryImpl(const float* query, size_t k, size_t t,
                                       double r0, QueryStats* stats,
                                       QueryScratch* scratch) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  if (k == 0 || data_ == nullptr) return {};

  const uint32_t epoch = PrepareScratch(scratch);
  TopKHeap heap(k);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(2 * t * params_.l + k);
  double r = r0;
  // The radius ladder r0, c*r0, c^2*r0, ... terminates via the Algorithm 1
  // conditions; the iteration cap only guards degenerate inputs (it allows
  // the window to outgrow any float data spread).
  for (size_t round = 0; round < 256; ++round) {
    if (stats != nullptr) ++stats->rounds;
    if (RunRound(query, r, &verifier, &scratch->visited_epoch_, epoch,
                 stats)) {
      break;
    }
    r *= params_.c;
  }
  return heap.TakeSorted();
}

std::optional<Neighbor> DbLsh::RcNnQuery(const float* query, double r,
                                         QueryStats* stats) const {
  assert(data_ != nullptr && "Build() must succeed before Query()");
  QueryScratch& scratch = ThreadLocalScratch();
  const uint32_t epoch = PrepareScratch(&scratch);
  const size_t budget = 2 * params_.t * params_.l + 1;
  TopKHeap heap(1);
  CandidateVerifier verifier(query, data_, &heap, stats);
  verifier.set_budget(budget);
  if (stats != nullptr) ++stats->rounds;
  const bool done = RunRound(query, r, &verifier,
                             &scratch.visited_epoch_, epoch, stats);
  if (!done && heap.Size() == 0) return std::nullopt;
  std::vector<Neighbor> best = heap.TakeSorted();
  if (best.empty()) return std::nullopt;
  // Definition 2: report a point only when it certifies the (r,c)-NN
  // answer (within c*r) or the candidate budget tripped (event E2 then
  // guarantees the point is within c*r with constant probability).
  if (best[0].dist <= params_.c * r || verifier.verified() >= budget) {
    return best[0];
  }
  return std::nullopt;
}

bool DbLsh::SupportsUpdates() const {
  return params_.backend == IndexBackend::kRStarTree;
}

Status DbLsh::Insert(uint32_t id) {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Insert() requires a built index");
  }
  if (params_.backend != IndexBackend::kRStarTree) {
    return Status::Unimplemented(
        "the kd-tree backend is bulk-built and static; rebuild, or use "
        "backend=rtree for dynamic updates");
  }
  if (id >= data_->rows() || data_->IsDeleted(id)) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): not a live row of the backing dataset (insert the vector with "
        "FloatMatrix::InsertRow first)");
  }
  if (id > projected_[0].rows()) {
    return Status::InvalidArgument(
        "Insert(" + std::to_string(id) +
        "): appended ids must arrive densely (next expected id is " +
        std::to_string(projected_[0].rows()) + ")");
  }
  std::vector<float> proj(params_.l * params_.k);
  bank_->ProjectAll(data_->row(id), proj.data());
  for (size_t i = 0; i < params_.l; ++i) {
    FloatMatrix& space = projected_[i];
    const float* src = proj.data() + i * params_.k;
    if (id == space.rows()) {
      space.AppendRow(src, params_.k);
    } else {
      // Recycled slot: the caller Erase()d it from the trees earlier, so
      // overwriting the projected row cannot invalidate any stored entry.
      std::copy_n(src, params_.k, space.mutable_row(id));
    }
    DBLSH_RETURN_IF_ERROR(trees_[i].Insert(id));
  }
  return Status::OK();
}

Status DbLsh::Erase(uint32_t id) {
  if (data_ == nullptr) {
    return Status::InvalidArgument("Erase() requires a built index");
  }
  if (params_.backend != IndexBackend::kRStarTree) {
    return Status::Unimplemented(
        "the kd-tree backend is bulk-built and static; tombstone the row "
        "with FloatMatrix::EraseRow and rebuild before recycling the slot");
  }
  for (size_t i = 0; i < params_.l; ++i) {
    DBLSH_RETURN_IF_ERROR(trees_[i].Remove(id));
  }
  return Status::OK();
}

size_t DbLsh::IndexEntries() const {
  size_t total = 0;
  for (const auto& tree : trees_) total += tree.size();
  for (const auto& tree : kd_trees_) total += tree->size();
  return total;
}

Result<DbLshParams> DbLshParamsFromSpec(const IndexFactory::Spec& spec,
                                        DbLshParams base) {
  SpecReader reader(spec);
  reader.Key("c", &base.c);
  reader.Key("w0", &base.w0);
  reader.Key("k", &base.k);
  reader.Key("l", &base.l);
  reader.Key("t", &base.t);
  reader.Key("r0", &base.r0);
  reader.Key("early_stop_slack", &base.early_stop_slack);
  reader.Key("seed", &base.seed);
  reader.Key("bulk_load", &base.bulk_load);
  std::string bucketing;
  std::string backend;
  reader.Key("bucketing", &bucketing);
  reader.Key("backend", &backend);
  DBLSH_RETURN_IF_ERROR(reader.Finish());
  if (!bucketing.empty()) {
    if (bucketing == "dynamic") {
      base.bucketing = BucketingMode::kDynamicQueryCentric;
    } else if (bucketing == "fixed") {
      base.bucketing = BucketingMode::kFixedGrid;
    } else {
      return Status::InvalidArgument(
          "bucketing must be \"dynamic\" or \"fixed\", got \"" + bucketing +
          "\"");
    }
  }
  if (!backend.empty()) {
    if (backend == "rtree") {
      base.backend = IndexBackend::kRStarTree;
    } else if (backend == "kdtree") {
      base.backend = IndexBackend::kKdTree;
    } else {
      return Status::InvalidArgument(
          "backend must be \"rtree\" or \"kdtree\", got \"" + backend + "\"");
    }
  }
  return base;
}

DBLSH_REGISTER_INDEX(
    kRegisterDbLsh, "DB-LSH",
    "DB-LSH (Tian et al., ICDE 2022): dynamic query-centric bucketing over "
    "L R*-tree-indexed K-dim projected spaces",
    [](const IndexFactory::Spec& spec) -> Result<std::unique_ptr<AnnIndex>> {
      auto params = DbLshParamsFromSpec(spec, DbLshParams());
      if (!params.ok()) return params.status();
      std::unique_ptr<AnnIndex> index =
          std::make_unique<DbLsh>(params.value());
      return index;
    });


Status DbLsh::RebindData(const FloatMatrix* data) {
  DBLSH_RETURN_IF_ERROR(detail::ValidateRebind(Name(), data_, data));
  data_ = data;
  return Status::OK();
}

}  // namespace dblsh
