#ifndef DBLSH_CORE_QUERY_H_
#define DBLSH_CORE_QUERY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/top_k_heap.h"

namespace dblsh {

/// Per-query instrumentation filled in by every index. The evaluation
/// harness aggregates these to explain *why* a method is fast or slow
/// (candidate counts are the LSH cost model's main term).
struct QueryStats {
  size_t candidates_verified = 0;  ///< exact distance computations
  size_t points_accessed = 0;      ///< index entries touched (incl. repeats)
  size_t rounds = 0;               ///< (r,c)-NN rounds / radius expansions
  size_t window_queries = 0;       ///< index probes issued
};

/// Per-query id filter attached to a QueryRequest. A default-constructed
/// filter is *empty* and admits every id (the index default, consistent
/// with the request's zero-means-default convention). Non-empty filters
/// are enforced in the shared verification path (core/verify.h), so they
/// apply identically to every registered method with no per-method code:
/// a rejected id is dropped before the heap push — it consumes neither
/// candidate budget nor `candidates_verified`, exactly like a tombstoned
/// row.
///
/// Three flavors cover the common serving shapes:
///  - AllowOnly(ids): results may contain ONLY the listed ids (metadata
///    pre-filtering — "search within this user's documents").
///  - Deny(ids): the listed ids never appear (exclusion lists, "hide what
///    the user already saw").
///  - Of(predicate): arbitrary admit callback for filters too dynamic to
///    materialize; called per surviving candidate on the query thread.
///
/// Id-list flavors store a dense byte-map (O(1) per candidate) when the
/// largest id is small enough, and fall back to a sorted list with binary
/// search when it is not — so a sparse list with one huge (or garbage) id
/// costs O(list) memory, never O(max id). Both are cheap to copy between
/// requests; predicates carry whatever the std::function captures.
class QueryFilter {
 public:
  /// Empty filter: admits every id.
  QueryFilter() = default;

  /// Admit only the listed ids (allow-list). An empty list produces an
  /// empty *filter* (admit everything), not an admit-nothing one — empty
  /// always means "index default".
  static QueryFilter AllowOnly(const std::vector<uint32_t>& ids) {
    QueryFilter f;
    if (ids.empty()) return f;
    f.mode_ = Mode::kAllow;
    f.BuildSet(ids);
    return f;
  }

  /// Never return the listed ids (deny-list). An empty list produces an
  /// empty filter.
  static QueryFilter Deny(const std::vector<uint32_t>& ids) {
    QueryFilter f;
    if (ids.empty()) return f;
    f.mode_ = Mode::kDeny;
    f.BuildSet(ids);
    return f;
  }

  /// Admit ids for which `admit` returns true. A null callback produces an
  /// empty filter.
  static QueryFilter Of(std::function<bool(uint32_t)> admit) {
    QueryFilter f;
    if (!admit) return f;
    f.mode_ = Mode::kPredicate;
    f.admit_ = std::move(admit);
    return f;
  }

  /// True when the filter admits every id (the default).
  bool empty() const { return mode_ == Mode::kNone; }

  /// True when `id` may appear in results. Ids outside the stored set
  /// (e.g. rows appended after the filter was built) are denied by an
  /// allow-list and admitted by a deny-list — the natural reading of each.
  bool Admits(uint32_t id) const {
    switch (mode_) {
      case Mode::kNone:
        return true;
      case Mode::kAllow:
        return Contains(id);
      case Mode::kDeny:
        return !Contains(id);
      case Mode::kPredicate:
        return admit_(id);
    }
    return true;  // unreachable
  }

 private:
  enum class Mode : uint8_t { kNone, kAllow, kDeny, kPredicate };

  /// Largest id the dense byte-map representation may span (4 MiB); id
  /// sets reaching past it switch to the sorted-list representation so a
  /// single stray huge id cannot balloon the filter.
  static constexpr uint32_t kDenseLimit = 1u << 22;

  void BuildSet(const std::vector<uint32_t>& ids) {
    uint32_t max_id = 0;
    for (const uint32_t id : ids) max_id = std::max(max_id, id);
    if (max_id < kDenseLimit) {
      bitmap_.assign(static_cast<size_t>(max_id) + 1, 0);
      for (const uint32_t id : ids) bitmap_[id] = 1;
      return;
    }
    sorted_ = ids;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_.erase(std::unique(sorted_.begin(), sorted_.end()),
                  sorted_.end());
  }

  bool Contains(uint32_t id) const {
    if (!bitmap_.empty()) return id < bitmap_.size() && bitmap_[id] != 0;
    return std::binary_search(sorted_.begin(), sorted_.end(), id);
  }

  Mode mode_ = Mode::kNone;
  std::vector<uint8_t> bitmap_;          // kAllow / kDeny, dense ids
  std::vector<uint32_t> sorted_;         // kAllow / kDeny, sparse ids
  std::function<bool(uint32_t)> admit_;  // kPredicate
};

/// One (c,k)-ANN query with optional per-query overrides of the index's
/// tuning knobs. Fields an index does not support are silently ignored
/// (a serving layer can attach the same request to every method in a
/// lineup).
///
/// Composition contract: the override fields are independent and compose —
/// each is consulted on its own, so any subset may be set in one request.
/// Zero (for numeric fields) / empty (for `filter`) always means "use the
/// index's configured default", and a request left at the defaults is
/// behaviorally identical to the plain Query() hook (round-tripped by
/// tests/factory_test.cc).
struct QueryRequest {
  size_t k = 10;  ///< neighbors requested

  /// Candidate-budget override: DB-LSH/FB-LSH's `t` of Remark 2 (budget
  /// 2tL + k). Lets one built index trade accuracy for latency per query
  /// without rebuilding. 0 = the index's configured t.
  size_t candidate_budget = 0;

  /// Starting radius override for the (r,c)-NN cascade of radius-ladder
  /// methods (DB-LSH/FB-LSH). 0 = the index's auto-estimated r0.
  double r0 = 0.0;

  /// Per-query id filter, enforced for every method by the shared
  /// verification path. Empty (default) = no filtering.
  QueryFilter filter;
};

/// Result of one query: neighbors ascending by distance, with the
/// instrumentation folded in (no out-pointer threading).
struct QueryResponse {
  std::vector<Neighbor> neighbors;
  QueryStats stats;
};

}  // namespace dblsh

#endif  // DBLSH_CORE_QUERY_H_
