#ifndef DBLSH_CORE_QUERY_H_
#define DBLSH_CORE_QUERY_H_

#include <cstddef>
#include <vector>

#include "util/top_k_heap.h"

namespace dblsh {

/// Per-query instrumentation filled in by every index. The evaluation
/// harness aggregates these to explain *why* a method is fast or slow
/// (candidate counts are the LSH cost model's main term).
struct QueryStats {
  size_t candidates_verified = 0;  ///< exact distance computations
  size_t points_accessed = 0;      ///< index entries touched (incl. repeats)
  size_t rounds = 0;               ///< (r,c)-NN rounds / radius expansions
  size_t window_queries = 0;       ///< index probes issued
};

/// One (c,k)-ANN query with optional per-query overrides of the index's
/// tuning knobs. Fields an index does not support are silently ignored
/// (a serving layer can attach the same request to every method in a
/// lineup); zero always means "use the index's configured default".
struct QueryRequest {
  size_t k = 10;  ///< neighbors requested

  /// Candidate-budget override: DB-LSH/FB-LSH's `t` of Remark 2 (budget
  /// 2tL + k). Lets one built index trade accuracy for latency per query
  /// without rebuilding. 0 = the index's configured t.
  size_t candidate_budget = 0;

  /// Starting radius override for the (r,c)-NN cascade of radius-ladder
  /// methods (DB-LSH/FB-LSH). 0 = the index's auto-estimated r0.
  double r0 = 0.0;
};

/// Result of one query: neighbors ascending by distance, with the
/// instrumentation folded in (no out-pointer threading).
struct QueryResponse {
  std::vector<Neighbor> neighbors;
  QueryStats stats;
};

}  // namespace dblsh

#endif  // DBLSH_CORE_QUERY_H_
