#ifndef DBLSH_CORE_VERIFY_H_
#define DBLSH_CORE_VERIFY_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/query.h"
#include "dataset/float_matrix.h"
#include "util/top_k_heap.h"

namespace dblsh {

/// Early-exit policy for a verification pass. Both tests are evaluated
/// after every push, in candidate order — the same per-candidate semantics
/// the methods' hand-rolled loops used, so migrating onto this helper
/// changes which SIMD kernel computes the distances but not which
/// candidates end up in the heap.
struct VerifyOptions {
  /// Maximum number of candidates to push in this call; the pass exits at
  /// (not before) the push that reaches it.
  size_t budget = std::numeric_limits<size_t>::max();

  /// When non-negative: exit once the heap is full and its k-th distance
  /// is <= this bound (the (r,c)-NN certification test). Compared against
  /// actual (non-squared) distances.
  double dist_bound = -1.0;
};

struct VerifyResult {
  size_t pushed = 0;   ///< candidates actually pushed into the heap
  /// Live candidates dropped by the thread's active query filter (not
  /// tombstones). pushed + filtered is every distinct live candidate this
  /// call consumed — the count coverage-based termination tests need,
  /// since a restrictive filter keeps `pushed` from ever reaching the
  /// live-row count.
  size_t filtered = 0;
  bool exited = false; ///< true when budget or dist_bound tripped
};

/// Computes exact L2 distances for `n` candidates of `data` with the active
/// one-to-many SIMD kernel (software-prefetched, in chunks) and pushes
/// (distance, id) into `heap`. `ids == nullptr` verifies rows [0, n) — the
/// contiguous-scan case, used by LinearScan and the ground-truth oracle.
/// Increments stats->candidates_verified per push when `stats` is non-null.
/// Candidates after an early exit are neither pushed nor counted.
///
/// Tombstones: candidates whose row is erased in `data`
/// (FloatMatrix::IsDeleted) are silently dropped — not pushed, not counted
/// against the budget, not reported in stats. Because every method's
/// verification funnels through this function, a dataset-level erase is
/// enough to guarantee the id never appears in any index's results, even
/// when the index's internal structures still reference it.
///
/// Query filters: candidates rejected by the calling thread's active
/// QueryFilter (installed by ScopedQueryFilter below; the Search()
/// entrypoints install the request's filter automatically) are dropped
/// with exactly the tombstone semantics — not pushed, not counted against
/// the budget or stats — and the rejection happens *before* the distance
/// kernel, so restrictive filters skip the SIMD work for rejected
/// candidates. This is how `QueryRequest::filter` reaches all 12 methods
/// with zero per-method code. Dropped live candidates are tallied in
/// VerifyResult::filtered for coverage-based termination tests.
///
/// Quantized storage: when `data` is managed by a quantized VectorStore
/// (data.store()->quantized(); see dataset/vector_store.h), distances come
/// from the store's prepared-query scoring over u8 codes instead of the
/// raw fp32 kernels — same chunking, same tombstone/filter/budget/bound
/// semantics, approximately-equal distances (callers re-rank the final
/// top-k through the store's exact scorer; Collection does this
/// automatically). The fp32 path is byte-for-byte the historical loop.
///
/// Thread-safety: safe to call concurrently for distinct (heap, stats)
/// pairs over one immutable `data`; not safe concurrently with dataset
/// mutations.
VerifyResult VerifyCandidates(const float* query, const FloatMatrix& data,
                              const uint32_t* ids, size_t n,
                              const VerifyOptions& options, TopKHeap* heap,
                              QueryStats* stats);

/// RAII push-down of a per-query id filter into every VerifyCandidates /
/// CandidateVerifier call made by the current thread while the scope is
/// alive. The Search()/QueryBatch() entrypoints wrap the per-method Query()
/// hook in one of these, which is what makes `QueryRequest::filter` work
/// identically across all methods without touching their query code.
///
/// Scopes nest (the previous filter is restored on destruction) and are
/// strictly thread-local: a filter installed on one thread is invisible to
/// every other thread, so concurrent queries with different filters never
/// interfere. A null or empty filter deactivates filtering for the scope.
class ScopedQueryFilter {
 public:
  /// Installs `filter` (borrowed; must outlive the scope) as the calling
  /// thread's active filter. nullptr or an empty filter installs "no
  /// filtering".
  explicit ScopedQueryFilter(const QueryFilter* filter);
  ~ScopedQueryFilter();

  ScopedQueryFilter(const ScopedQueryFilter&) = delete;
  ScopedQueryFilter& operator=(const ScopedQueryFilter&) = delete;

  /// The calling thread's active filter, or nullptr when none is installed
  /// (consulted by VerifyCandidates; exposed for tests).
  static const QueryFilter* Active();

 private:
  const QueryFilter* previous_;
};

/// Streaming adapter over VerifyCandidates for index traversals that emit
/// candidates one at a time (cursors, bucket chains, B+-tree frontiers).
/// Offer() buffers deduplicated ids and flushes through the batch kernel
/// once kBatch are pending; callers must Flush() wherever their hand-rolled
/// loop re-read the verified-count or the heap threshold (typically at each
/// window/round boundary) so the early-exit decisions stay exact.
///
/// Exactness contract: the heap contents, the terminating candidate, and
/// candidates_verified match the historical per-candidate loops exactly.
/// points_accessed (and collision counters) can exceed the historical
/// numbers: an exit buried in a pending batch is only detected at the next
/// flush, so the caller keeps scanning — and counting accesses — through
/// the remainder of its current window/bucket before the flush boundary
/// latches the exit.
///
/// The dedup/marking step stays with the caller (epoch stamps, collision
/// counting); ids handed to Offer() must already be unique for the query.
class CandidateVerifier {
 public:
  static constexpr size_t kBatch = 32;

  /// `query`, `data`, `heap` and `stats` (nullable) must outlive the
  /// verifier; distances pushed are actual (non-squared) L2.
  CandidateVerifier(const float* query, const FloatMatrix* data,
                    TopKHeap* heap, QueryStats* stats)
      : query_(query), data_(data), heap_(heap), stats_(stats) {}

  /// Cumulative push budget across the whole query (not per flush).
  void set_budget(size_t budget) { budget_ = budget; }

  /// Certification bound for the current round; negative disables. May be
  /// tightened/re-set between rounds (callers flush at round boundaries).
  void set_dist_bound(double bound) { dist_bound_ = bound; }

  /// Buffers one candidate. Returns true when a flush has detected an
  /// early exit — the caller should stop feeding (pending semantics match
  /// the hand-rolled loops: the query terminates on true).
  bool Offer(uint32_t id) {
    if (done_) return true;
    buffer_[buffered_++] = id;
    if (buffered_ == kBatch) return Flush();
    return false;
  }

  /// Verifies a single candidate immediately (batch of one). For flows
  /// that must observe the updated heap threshold before the next
  /// candidate (PM-LSH / SRS projected-distance stop tests).
  bool VerifyNow(uint32_t id) {
    Offer(id);
    return Flush();
  }

  /// Drains the buffer through the batch kernel; returns done().
  bool Flush();

  /// True once the budget or distance bound tripped; latched.
  bool done() const { return done_; }

  /// Candidates pushed so far. Only counts flushed work — call Flush()
  /// first when using this in a loop condition.
  size_t verified() const { return verified_; }

  /// Live candidates dropped by the active query filter so far (flushed
  /// work only). verified() + filtered() is the distinct live candidates
  /// consumed — use it (not verified() alone) for "has everything been
  /// seen" termination tests so restrictive filters cannot disable them.
  size_t filtered() const { return filtered_; }

 private:
  const float* query_;
  const FloatMatrix* data_;
  TopKHeap* heap_;
  QueryStats* stats_;
  size_t budget_ = std::numeric_limits<size_t>::max();
  double dist_bound_ = -1.0;
  size_t verified_ = 0;
  size_t filtered_ = 0;
  bool done_ = false;
  size_t buffered_ = 0;
  uint32_t buffer_[kBatch];
};

}  // namespace dblsh

#endif  // DBLSH_CORE_VERIFY_H_
