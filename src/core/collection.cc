#include "core/collection.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "core/index_factory.h"
#include "util/text.h"

namespace dblsh {

Collection::Collection(size_t dim)
    : data_(std::make_unique<FloatMatrix>(0, dim)) {}

Collection::Collection(std::unique_ptr<FloatMatrix> data)
    : data_(std::move(data)) {
  assert(data_ != nullptr);
}

Result<std::unique_ptr<Collection>> Collection::FromSpec(
    const std::string& spec, std::unique_ptr<FloatMatrix> data) {
  static const char* kGrammar =
      "collection spec grammar: \"collection: INDEX_SPEC (; INDEX_SPEC)*\", "
      "e.g. \"collection: DB-LSH,c=1.5; PM-LSH,rebuild_threshold=500\"";
  const size_t colon = spec.find(':');
  if (colon == std::string::npos ||
      !text::EqualsIgnoreCase(text::Trim(spec.substr(0, colon)),
                              "collection")) {
    return Status::InvalidArgument(
        "missing \"collection:\" prefix in \"" + spec + "\"; " + kGrammar);
  }
  auto collection = std::make_unique<Collection>(std::move(data));
  const std::string body = spec.substr(colon + 1);
  size_t added = 0;
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t semi = body.find(';', pos);
    const std::string part = text::Trim(
        body.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos));
    pos = (semi == std::string::npos) ? body.size() + 1 : semi + 1;
    if (part.empty()) {
      return Status::InvalidArgument("empty index spec in \"" + spec +
                                     "\"; " + std::string(kGrammar));
    }
    DBLSH_RETURN_IF_ERROR(collection->AddIndex(part));
    ++added;
  }
  if (added == 0) {
    return Status::InvalidArgument("collection spec names no indexes; " +
                                   std::string(kGrammar));
  }
  return collection;
}

Status Collection::AddIndex(const std::string& index_spec) {
  auto parsed = IndexFactory::Spec::Parse(index_spec);
  if (!parsed.ok()) return parsed.status();
  const IndexFactory::Spec& spec = parsed.value();

  // Peel off the collection-level keys before the factory sees the spec.
  std::string slot_name;
  size_t rebuild_threshold = kDefaultRebuildThreshold;
  std::string method_spec = spec.name();
  for (const auto& [key, value] : spec.values()) {
    if (key == "name") {
      slot_name = value;
      continue;
    }
    if (key == "rebuild_threshold") {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || value.front() == '-') {
        return Status::InvalidArgument(
            "collection key \"rebuild_threshold\" expects a non-negative "
            "integer, got \"" + value + "\"");
      }
      rebuild_threshold = std::max<size_t>(1, static_cast<size_t>(n));
      continue;
    }
    method_spec += "," + key + "=" + value;
  }

  auto made = IndexFactory::Make(method_spec);
  if (!made.ok()) return made.status();
  if (slot_name.empty()) slot_name = made.value()->Name();

  std::unique_lock lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.name == slot_name) {
      return Status::InvalidArgument(
          "collection already has an index named \"" + slot_name +
          "\"; disambiguate with a name= spec key");
    }
  }
  Slot slot;
  slot.name = std::move(slot_name);
  slot.method_spec = method_spec;
  slot.index = std::move(made).value();
  slot.rebuild_threshold = rebuild_threshold;
  slot.query_mutex = std::make_unique<std::mutex>();
  if (data_->live_rows() > 0) {
    DBLSH_RETURN_IF_ERROR(slot.index->Build(data_.get()));
    slot.built = true;
  }
  // Empty collection: stay unbuilt; the first mutation triggers the lazy
  // build (MaybeRebuildLocked).
  slots_.push_back(std::move(slot));
  return Status::OK();
}

Status Collection::AddPrebuiltIndex(const std::string& name,
                                    std::unique_ptr<AnnIndex> index,
                                    size_t rebuild_threshold) {
  if (index == nullptr) {
    return Status::InvalidArgument("AddPrebuiltIndex: index is null");
  }
  std::unique_lock lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.name == name) {
      return Status::InvalidArgument(
          "collection already has an index named \"" + name + "\"");
    }
  }
  Slot slot;
  slot.name = name;
  slot.method_spec = index->Name() + " (prebuilt)";
  slot.index = std::move(index);
  slot.built = true;
  slot.rebuild_threshold = std::max<size_t>(1, rebuild_threshold);
  slot.query_mutex = std::make_unique<std::mutex>();
  slots_.push_back(std::move(slot));
  return Status::OK();
}

void Collection::MaybeRebuildLocked() {
  for (Slot& slot : slots_) {
    const bool lazy_first_build = !slot.built && data_->live_rows() > 0;
    const bool threshold_hit =
        slot.built && slot.staleness >= slot.rebuild_threshold;
    if (!lazy_first_build && !threshold_hit) continue;
    if (Status s = slot.index->Build(data_.get()); !s.ok()) {
      // A failed (re)build leaves the slot out of service but the
      // collection consistent: mark unbuilt so routing skips it, record
      // the error for Indexes(), and retry at the next mutation. The
      // mutation that got us here stays committed.
      slot.built = false;
      slot.build_error = s.ToString();
      continue;
    }
    if (slot.built) ++slot.rebuilds;  // lazy first builds are not rebuilds
    slot.built = true;
    slot.staleness = 0;
    slot.build_error.clear();
  }
}

void Collection::CommitMutationLocked() {
  for (Slot& slot : slots_) {
    // Updatable built slots absorbed the mutation structurally (the caller
    // ran Insert/Erase on them); everyone else just got staler.
    if (!(slot.built && slot.index->SupportsUpdates())) ++slot.staleness;
  }
  MaybeRebuildLocked();
  // Committed: exactly one epoch per successful mutation, build failures
  // notwithstanding (failing slots are out of service, not blocking).
  ++epoch_;
}

Result<uint32_t> Collection::Upsert(const float* vec, size_t len) {
  std::unique_lock lock(mutex_);
  if (len != data_->cols()) {
    return Status::InvalidArgument(
        "Upsert: vector has dimension " + std::to_string(len) +
        ", collection serves " + std::to_string(data_->cols()));
  }
  const uint32_t id = data_->InsertRow(vec, len);
  for (Slot& slot : slots_) {
    if (!slot.built || !slot.index->SupportsUpdates()) continue;
    if (Status s = slot.index->Insert(id); !s.ok()) {
      // Self-heal: a structural insert failure leaves that one index
      // missing the id; forcing its staleness to the threshold makes
      // CommitMutationLocked rebuild it over the live rows, restoring
      // coherence without unwinding the committed dataset state.
      slot.staleness = slot.rebuild_threshold;
    }
  }
  CommitMutationLocked();
  return id;
}

Result<uint32_t> Collection::Upsert(uint32_t id, const float* vec,
                                    size_t len) {
  std::unique_lock lock(mutex_);
  if (len != data_->cols()) {
    return Status::InvalidArgument(
        "Upsert: vector has dimension " + std::to_string(len) +
        ", collection serves " + std::to_string(data_->cols()));
  }
  if (id >= data_->rows() || data_->IsDeleted(id)) {
    return Status::NotFound("Upsert: id " + std::to_string(id) +
                            " is not a live vector");
  }
  // Fused replace: tombstone + structural erase, then recycle the slot —
  // FloatMatrix's free-list is LIFO, so InsertRow hands the same id back —
  // and re-insert. All under one write transaction: no reader ever sees
  // the id missing.
  DBLSH_RETURN_IF_ERROR(data_->EraseRow(id));
  for (Slot& slot : slots_) {
    if (!slot.built || !slot.index->SupportsUpdates()) continue;
    if (Status s = slot.index->Erase(id); !s.ok()) {
      slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
      continue;
    }
    // Erased cleanly: the matching Insert below restores the id.
  }
  const uint32_t recycled = data_->InsertRow(vec, len);
  assert(recycled == id && "LIFO free-list must hand the slot straight back");
  for (Slot& slot : slots_) {
    if (!slot.built || !slot.index->SupportsUpdates()) continue;
    if (slot.staleness >= slot.rebuild_threshold) continue;  // rebuilding
    if (Status s = slot.index->Insert(recycled); !s.ok()) {
      slot.staleness = slot.rebuild_threshold;
    }
  }
  CommitMutationLocked();
  return recycled;
}

Status Collection::Delete(uint32_t id) {
  std::unique_lock lock(mutex_);
  if (id >= data_->rows()) {
    return Status::NotFound("Delete: id " + std::to_string(id) +
                            " was never assigned");
  }
  DBLSH_RETURN_IF_ERROR(data_->EraseRow(id));  // NotFound when already gone
  for (Slot& slot : slots_) {
    if (!slot.built || !slot.index->SupportsUpdates()) continue;
    if (Status s = slot.index->Erase(id); !s.ok()) {
      slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
    }
  }
  CommitMutationLocked();
  return Status::OK();
}

int Collection::RouteLocked(const std::string& index_name,
                            Status* why) const {
  if (!index_name.empty()) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].name != index_name) continue;
      if (!slots_[i].built) {
        *why = Status::InvalidArgument(
            "collection index \"" + index_name +
            "\" is not built yet (collection was empty when it was added)");
        return -1;
      }
      return static_cast<int>(i);
    }
    *why = Status::NotFound("collection has no index named \"" + index_name +
                            "\"");
    return -1;
  }
  // Best-capable routing: the freshest built slot, insertion order as the
  // tie-break (so callers list their preferred method first).
  int best = -1;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].built) continue;
    if (best < 0 || slots_[i].staleness <
                        slots_[static_cast<size_t>(best)].staleness) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    *why = Status::InvalidArgument(
        slots_.empty() ? "collection has no indexes; AddIndex first"
                       : "collection has no built index yet; Upsert data "
                         "first");
  }
  return best;
}

Result<QueryResponse> Collection::Search(const float* query,
                                         const QueryRequest& request,
                                         const std::string& index_name) const {
  std::shared_lock lock(mutex_);
  Status why = Status::OK();
  const int route = RouteLocked(index_name, &why);
  if (route < 0) return why;
  const Slot& slot = slots_[static_cast<size_t>(route)];
  if (slot.index->SupportsConcurrentQueries()) {
    return slot.index->Search(query, request);
  }
  // Thread-compatible read path: readers of this slot serialize among
  // themselves (writers are already excluded by the shared lock).
  std::lock_guard slot_lock(*slot.query_mutex);
  return slot.index->Search(query, request);
}

Result<std::vector<QueryResponse>> Collection::SearchBatch(
    const FloatMatrix& queries, const QueryRequest& request,
    const std::string& index_name, size_t num_threads) const {
  std::shared_lock lock(mutex_);
  if (!queries.empty() && queries.cols() != data_->cols()) {
    return Status::InvalidArgument(
        "SearchBatch: queries have dimension " +
        std::to_string(queries.cols()) + ", collection serves " +
        std::to_string(data_->cols()));
  }
  Status why = Status::OK();
  const int route = RouteLocked(index_name, &why);
  if (route < 0) return why;
  const Slot& slot = slots_[static_cast<size_t>(route)];
  if (slot.index->SupportsConcurrentQueries()) {
    return slot.index->QueryBatch(queries, request, num_threads);
  }
  std::lock_guard slot_lock(*slot.query_mutex);
  return slot.index->QueryBatch(queries, request, num_threads);
}

size_t Collection::size() const {
  std::shared_lock lock(mutex_);
  return data_->live_rows();
}

size_t Collection::dim() const {
  std::shared_lock lock(mutex_);
  return data_->cols();
}

uint64_t Collection::epoch() const {
  std::shared_lock lock(mutex_);
  return epoch_;
}

std::vector<CollectionIndexInfo> Collection::Indexes() const {
  std::shared_lock lock(mutex_);
  std::vector<CollectionIndexInfo> infos;
  infos.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    CollectionIndexInfo info;
    info.name = slot.name;
    info.method = slot.index->Name();
    info.supports_updates = slot.index->SupportsUpdates();
    info.concurrent_queries = slot.index->SupportsConcurrentQueries();
    info.built = slot.built;
    info.staleness = slot.staleness;
    info.rebuild_threshold = slot.rebuild_threshold;
    info.rebuilds = slot.rebuilds;
    info.build_error = slot.build_error;
    infos.push_back(std::move(info));
  }
  return infos;
}

const AnnIndex* Collection::GetIndex(const std::string& name) const {
  std::shared_lock lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.name == name) return slot.index.get();
  }
  return nullptr;
}

FloatMatrix Collection::Snapshot() const {
  std::shared_lock lock(mutex_);
  return *data_;
}

}  // namespace dblsh
