#include "core/collection.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "core/index_factory.h"
#include "util/text.h"
#include "util/top_k_heap.h"

namespace dblsh {

Collection::Collection(size_t dim, const CollectionOptions& options)
    : dim_(dim),
      executor_(options.executor != nullptr ? options.executor
                                            : &exec::TaskExecutor::Default()),
      background_rebuild_(options.background_rebuild),
      storage_(options.storage),
      quantized_(options.storage != StorageKind::kFp32),
      rerank_(std::max<size_t>(1, options.rerank)) {
  const size_t num_shards = std::max<size_t>(1, options.shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->store =
        MakeVectorStore(storage_, std::make_unique<FloatMatrix>(0, dim));
    shard->data = &shard->store->matrix();
    shards_.push_back(std::move(shard));
  }
}

Collection::Collection(std::unique_ptr<FloatMatrix> data,
                       const CollectionOptions& options)
    : executor_(options.executor != nullptr ? options.executor
                                            : &exec::TaskExecutor::Default()),
      background_rebuild_(options.background_rebuild),
      storage_(options.storage),
      quantized_(options.storage != StorageKind::kFp32),
      rerank_(std::max<size_t>(1, options.rerank)) {
  assert(data != nullptr);
  dim_ = data->cols();
  const size_t num_shards = std::max<size_t>(1, options.shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (num_shards == 1) {
    // Address-stable adoption: prebuilt indexes over *data stay valid
    // (fp32 storage; quantized stores re-encode, see AddPrebuiltIndex).
    shards_[0]->store = MakeVectorStore(storage_, std::move(data));
  } else {
    // Partition by id: global row g lands in shard g % S at local row
    // g / S, so the per-shard ids stay dense and globally recoverable.
    std::vector<std::unique_ptr<FloatMatrix>> parts;
    parts.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      parts.push_back(std::make_unique<FloatMatrix>(0, dim_));
    }
    const FloatMatrix& src = *data;
    for (size_t g = 0; g < src.rows(); ++g) {
      parts[g % num_shards]->AppendRow(src.row(g), src.cols());
    }
    // Replay the tombstones in erasure order so each shard's LIFO
    // free-list recycles in the same relative order the source would.
    for (const uint32_t g : src.free_slots()) {
      Status erased = parts[g % num_shards]->EraseRow(LocalOfId(g));
      assert(erased.ok());
      (void)erased;
    }
    for (size_t s = 0; s < num_shards; ++s) {
      shards_[s]->store = MakeVectorStore(storage_, std::move(parts[s]));
    }
  }
  for (auto& shard : shards_) {
    shard->data = &shard->store->matrix();
    shard->approx_rows.store(shard->data->rows(), std::memory_order_relaxed);
    shard->approx_free.store(shard->data->free_slots().size(),
                             std::memory_order_relaxed);
  }
}

Collection::~Collection() {
  {
    std::lock_guard lock(bg_mutex_);
    closing_ = true;
  }
  WaitForRebuilds();
}

Result<std::unique_ptr<Collection>> Collection::FromSpec(
    const std::string& spec, std::unique_ptr<FloatMatrix> data,
    exec::TaskExecutor* executor) {
  static const char* kGrammar =
      "collection spec grammar: \"collection[,shards=N][,rebuild=inline|"
      "background][,storage=fp32|sq8][,rerank=N]: INDEX_SPEC (; "
      "INDEX_SPEC)*\", e.g. \"collection,shards=4,storage=sq8:"
      " DB-LSH,c=1.5; PM-LSH,rebuild_threshold=500\"";
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "missing \"collection:\" prefix in \"" + spec + "\"; " + kGrammar);
  }
  auto prefix = IndexFactory::Spec::Parse(text::Trim(spec.substr(0, colon)));
  if (!prefix.ok()) return prefix.status();
  if (!text::EqualsIgnoreCase(text::Trim(prefix.value().name()),
                              "collection")) {
    return Status::InvalidArgument(
        "missing \"collection:\" prefix in \"" + spec + "\"; " + kGrammar);
  }
  CollectionOptions options;
  options.executor = executor;
  std::string rebuild_mode;
  std::string storage_name;
  SpecReader reader(prefix.value());
  reader.Key("shards", &options.shards);
  reader.Key("rebuild", &rebuild_mode);
  reader.Key("storage", &storage_name);
  reader.Key("rerank", &options.rerank);
  DBLSH_RETURN_IF_ERROR(reader.Finish());
  if (options.shards == 0) {
    return Status::InvalidArgument(
        "collection key \"shards\" must be >= 1; " + std::string(kGrammar));
  }
  if (rebuild_mode == "background") {
    options.background_rebuild = true;
  } else if (!rebuild_mode.empty() && rebuild_mode != "inline") {
    return Status::InvalidArgument(
        "collection key \"rebuild\" expects inline or background, got \"" +
        rebuild_mode + "\"");
  }
  if (!storage_name.empty()) {
    auto kind = ParseStorageKind(storage_name);
    if (!kind.ok()) return kind.status();
    options.storage = kind.value();
  }
  if (options.rerank == 0) {
    return Status::InvalidArgument(
        "collection key \"rerank\" must be >= 1; " + std::string(kGrammar));
  }
  auto collection =
      std::make_unique<Collection>(std::move(data), options);
  const std::string body = spec.substr(colon + 1);
  size_t added = 0;
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t semi = body.find(';', pos);
    const std::string part = text::Trim(
        body.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos));
    pos = (semi == std::string::npos) ? body.size() + 1 : semi + 1;
    if (part.empty()) {
      return Status::InvalidArgument("empty index spec in \"" + spec +
                                     "\"; " + std::string(kGrammar));
    }
    DBLSH_RETURN_IF_ERROR(collection->AddIndex(part));
    ++added;
  }
  if (added == 0) {
    return Status::InvalidArgument("collection spec names no indexes; " +
                                   std::string(kGrammar));
  }
  return collection;
}

Status Collection::AddIndex(const std::string& index_spec) {
  auto parsed = IndexFactory::Spec::Parse(index_spec);
  if (!parsed.ok()) return parsed.status();
  const IndexFactory::Spec& spec = parsed.value();

  // Peel off the slot-level keys before the factory sees the spec.
  std::string slot_name;
  size_t rebuild_threshold = kDefaultRebuildThreshold;
  std::string method_spec = spec.name();
  for (const auto& [key, value] : spec.values()) {
    if (key == "name") {
      slot_name = value;
      continue;
    }
    if (key == "rebuild_threshold") {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || value.front() == '-') {
        return Status::InvalidArgument(
            "collection key \"rebuild_threshold\" expects a non-negative "
            "integer, got \"" + value + "\"");
      }
      rebuild_threshold = std::max<size_t>(1, static_cast<size_t>(n));
      continue;
    }
    method_spec += "," + key + "=" + value;
  }

  // One instance per shard (each shard indexes its own partition).
  const size_t num_shards = shards_.size();
  std::vector<std::unique_ptr<AnnIndex>> instances;
  instances.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto made = IndexFactory::Make(method_spec);
    if (!made.ok()) return made.status();
    instances.push_back(std::move(made).value());
  }
  if (slot_name.empty()) slot_name = instances[0]->Name();

  // Write transaction over every shard; ascending order keeps concurrent
  // AddIndex calls deadlock-free against the single-shard writers.
  std::vector<std::unique_lock<WriterPriorityMutex>> locks;
  locks.reserve(num_shards);
  for (auto& shard : shards_) locks.emplace_back(shard->mutex);
  for (const Slot& slot : shards_[0]->slots) {
    if (slot.name == slot_name) {
      return Status::InvalidArgument(
          "collection already has an index named \"" + slot_name +
          "\"; disambiguate with a name= spec key");
    }
  }

  // First builds of the non-empty shards run in parallel on the executor
  // (the build bodies take no locks; the caller holds them all). Under
  // quantized storage each shard materializes a decoded fp32 view for the
  // duration of its build — builds read matrix().row(), stores keep codes.
  std::vector<Status> builds(num_shards, Status::OK());
  executor_->ParallelFor(num_shards, [&](size_t s) {
    if (shards_[s]->data->live_rows() > 0) {
      ScopedDecodeView view(shards_[s]->store.get());
      builds[s] = instances[s]->Build(shards_[s]->data);
    }
  });
  for (const Status& status : builds) {
    if (!status.ok()) return status;  // nothing published on any shard
  }

  for (size_t s = 0; s < num_shards; ++s) {
    Slot slot;
    slot.name = slot_name;
    slot.method_spec = method_spec;
    slot.index = std::move(instances[s]);
    slot.built = shards_[s]->data->live_rows() > 0;
    slot.rebuild_threshold = rebuild_threshold;
    slot.query_mutex = std::make_unique<std::mutex>();
    // Empty shard: stay unbuilt; the shard's first mutation triggers the
    // lazy build (MaybeRebuildLocked).
    shards_[s]->slots.push_back(std::move(slot));
  }
  return Status::OK();
}

Status Collection::AddPrebuiltIndex(const std::string& name,
                                    std::unique_ptr<AnnIndex> index,
                                    size_t rebuild_threshold) {
  if (index == nullptr) {
    return Status::InvalidArgument("AddPrebuiltIndex: index is null");
  }
  if (shards_.size() > 1) {
    return Status::InvalidArgument(
        "AddPrebuiltIndex requires shards=1: a prebuilt index speaks the "
        "global id space, which only matches shard 0 of an unsharded "
        "collection");
  }
  if (quantized_) {
    return Status::InvalidArgument(
        "AddPrebuiltIndex requires storage=fp32: a prebuilt index holds "
        "state computed over the fp32 payload the quantized store has "
        "released; load into an fp32 collection or AddIndex to rebuild "
        "from codes");
  }
  Shard& shard = *shards_[0];
  std::unique_lock lock(shard.mutex);
  for (const Slot& slot : shard.slots) {
    if (slot.name == name) {
      return Status::InvalidArgument(
          "collection already has an index named \"" + name + "\"");
    }
  }
  Slot slot;
  slot.name = name;
  slot.method_spec = index->Name() + " (prebuilt)";
  slot.index = std::move(index);
  slot.built = true;
  slot.rebuild_threshold = std::max<size_t>(1, rebuild_threshold);
  slot.query_mutex = std::make_unique<std::mutex>();
  shard.slots.push_back(std::move(slot));
  return Status::OK();
}

void Collection::MaybeRebuildLocked(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  // Quantized storage: the first inline build of this pass materializes a
  // decoded fp32 view, every later build in the pass reuses it, and the
  // optional's destructor releases it on exit (no-op construction when no
  // slot builds).
  std::optional<ScopedDecodeView> view;
  for (size_t i = 0; i < shard.slots.size(); ++i) {
    Slot& slot = shard.slots[i];
    const bool lazy_first_build = !slot.built && shard.data->live_rows() > 0;
    const bool threshold_hit =
        slot.built && slot.staleness >= slot.rebuild_threshold;
    if (!lazy_first_build && !threshold_hit) continue;
    if (background_rebuild_ && threshold_hit) {
      // Offload: the writer keeps going; the executor snapshots, builds
      // and swaps in under this lock later (RunBackgroundRebuild). Lazy
      // first builds stay inline — there is no old index to keep serving.
      if (!slot.rebuild_scheduled) {
        slot.rebuild_scheduled = true;
        ScheduleRebuild(shard_index, i);
      }
      continue;
    }
    if (quantized_ && !view.has_value()) view.emplace(shard.store.get());
    if (Status s = slot.index->Build(shard.data); !s.ok()) {
      // A failed (re)build leaves the slot out of service but the
      // collection consistent: mark unbuilt so routing skips it, record
      // the error for Indexes(), and retry at the next mutation. The
      // mutation that got us here stays committed.
      slot.built = false;
      slot.build_error = s.ToString();
      continue;
    }
    if (slot.built) ++slot.rebuilds;  // lazy first builds are not rebuilds
    slot.built = true;
    slot.staleness = 0;
    slot.build_error.clear();
  }
}

void Collection::ScheduleRebuild(size_t shard_index, size_t slot_index) {
  {
    std::lock_guard lock(bg_mutex_);
    if (closing_) {
      // A mutation racing the destructor is a caller bug; stay safe.
      shards_[shard_index]->slots[slot_index].rebuild_scheduled = false;
      return;
    }
    ++bg_inflight_;
  }
  executor_->Schedule([this, shard_index, slot_index] {
    RunBackgroundRebuild(shard_index, slot_index);
    // Decrement and notify under the lock: the destructor may tear the
    // collection down the instant it observes bg_inflight_ == 0, and it
    // can only observe that after this critical section fully releases —
    // a notify outside the lock would race it into use-after-free.
    std::lock_guard lock(bg_mutex_);
    --bg_inflight_;
    bg_cv_.notify_all();
  });
}

void Collection::RunBackgroundRebuild(size_t shard_index, size_t slot_index) {
  Shard& shard = *shards_[shard_index];
  for (int attempt = 0; attempt < 3; ++attempt) {
    // 1. Snapshot the shard under the shared lock (readers keep serving,
    //    the writer is not excluded for longer than a matrix copy). Under
    //    quantized storage the snapshot is the store's decoded fp32
    //    reconstruction (DecodedCopy); for fp32 it is the byte-identical
    //    matrix copy this always was.
    FloatMatrix snapshot;
    uint64_t version = 0;
    std::string method_spec;
    {
      std::shared_lock lock(shard.mutex);
      snapshot = shard.store->DecodedCopy();
      version = shard.version;
      method_spec = shard.slots[slot_index].method_spec;
    }

    // 2. Build a replacement index over the snapshot, off every lock —
    //    this is the expensive part the writer no longer pays for.
    auto made = IndexFactory::Make(method_spec);
    Status built =
        made.ok() ? made.value()->Build(&snapshot) : made.status();

    // 3. Swap in under the write lock, but only if the shard is exactly
    //    as the snapshot captured it; otherwise retry with a fresh copy.
    std::unique_lock lock(shard.mutex);
    Slot& slot = shard.slots[slot_index];
    if (!built.ok()) {
      // Unlike an inline rebuild failure, the old index is still coherent
      // (tombstones keep filtering) — keep it serving and surface the
      // error; the next commit past the threshold re-schedules us.
      slot.build_error = built.ToString();
      slot.rebuild_scheduled = false;
      return;
    }
    if (shard.version != version) continue;  // mutated mid-build: retry

    if (Status rebound = made.value()->RebindData(shard.data);
        !rebound.ok()) {
      // Index type without rebind support: fall back to the pre-refactor
      // inline rebuild under the lock (correct, just blocking). Quantized
      // stores need the decoded view for the duration of the build.
      std::optional<ScopedDecodeView> view;
      if (quantized_) view.emplace(shard.store.get());
      if (Status s = slot.index->Build(shard.data); !s.ok()) {
        slot.built = false;
        slot.build_error = s.ToString();
      } else {
        slot.built = true;
        ++slot.rebuilds;
        slot.staleness = 0;
        slot.build_error.clear();
      }
      slot.rebuild_scheduled = false;
      return;
    }
    slot.index = std::move(made).value();
    slot.built = true;
    slot.staleness = 0;
    ++slot.rebuilds;
    slot.build_error.clear();
    slot.rebuild_scheduled = false;
    return;
  }
  // The writer mutated through every attempt. Yield: staleness is still at
  // or past the threshold, so the very next commit re-schedules a rebuild.
  std::unique_lock lock(shard.mutex);
  shard.slots[slot_index].rebuild_scheduled = false;
}

void Collection::WaitForRebuilds() const {
  for (;;) {
    {
      std::unique_lock lock(bg_mutex_);
      if (bg_cv_.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return bg_inflight_ == 0; })) {
        return;
      }
    }
    // Lend this thread to the executor so a narrow pool cannot starve the
    // very task being awaited (the caller holds no collection locks here).
    executor_->RunOnePendingTask();
  }
}

void Collection::CommitMutationLocked(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (Slot& slot : shard.slots) {
    // Updatable built slots absorbed the mutation structurally (the caller
    // ran Insert/Erase on them); everyone else just got staler. Under
    // quantized storage every slot is static — in-place index maintenance
    // reads fp32 rows the store has released — so all of them age.
    if (quantized_ || !(slot.built && slot.index->SupportsUpdates())) {
      ++slot.staleness;
    }
  }
  MaybeRebuildLocked(shard_index);
  ++shard.version;
  shard.approx_rows.store(shard.data->rows(), std::memory_order_relaxed);
  shard.approx_free.store(shard.data->free_slots().size(),
                          std::memory_order_relaxed);
  // Committed: exactly one epoch per successful mutation, build failures
  // notwithstanding (failing slots are out of service, not blocking).
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

size_t Collection::PickInsertShard() const {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) return 0;
  // Advisory reads: a racing writer can skew the balance by a row, never
  // the correctness (the chosen shard commits under its own lock).
  for (size_t s = 0; s < num_shards; ++s) {
    if (shards_[s]->approx_free.load(std::memory_order_relaxed) > 0) {
      return s;  // recycle before growing any shard
    }
  }
  size_t best = 0;
  size_t best_rows = std::numeric_limits<size_t>::max();
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t rows =
        shards_[s]->approx_rows.load(std::memory_order_relaxed);
    if (rows < best_rows) {
      best_rows = rows;
      best = s;
    }
  }
  return best;
}

Result<uint32_t> Collection::Upsert(const float* vec, size_t len) {
  if (len != dim_) {
    return Status::InvalidArgument(
        "Upsert: vector has dimension " + std::to_string(len) +
        ", collection serves " + std::to_string(dim_));
  }
  const size_t shard_index = PickInsertShard();
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  const uint32_t local = shard.store->InsertRow(vec, len);
  // In-place index maintenance is fp32-only (quantized slots are static and
  // rebuild from the decode view when staleness hits the threshold).
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (Status s = slot.index->Insert(local); !s.ok()) {
        // Self-heal: a structural insert failure leaves that one index
        // missing the id; forcing its staleness to the threshold makes
        // CommitMutationLocked rebuild it over the live rows, restoring
        // coherence without unwinding the committed dataset state.
        slot.staleness = slot.rebuild_threshold;
      }
    }
  }
  CommitMutationLocked(shard_index);
  return GlobalId(shard_index, local);
}

Result<uint32_t> Collection::Upsert(uint32_t id, const float* vec,
                                    size_t len) {
  if (len != dim_) {
    return Status::InvalidArgument(
        "Upsert: vector has dimension " + std::to_string(len) +
        ", collection serves " + std::to_string(dim_));
  }
  const size_t shard_index = ShardOfId(id);
  const uint32_t local = LocalOfId(id);
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  if (local >= shard.data->rows() || shard.data->IsDeleted(local)) {
    return Status::NotFound("Upsert: id " + std::to_string(id) +
                            " is not a live vector");
  }
  // Fused replace: tombstone + structural erase, then recycle the slot —
  // FloatMatrix's free-list is LIFO, so InsertRow hands the same id back —
  // and re-insert. All under one write transaction: no reader ever sees
  // the id missing.
  DBLSH_RETURN_IF_ERROR(shard.store->EraseRow(local));
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (Status s = slot.index->Erase(local); !s.ok()) {
        slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
        continue;
      }
      // Erased cleanly: the matching Insert below restores the id.
    }
  }
  const uint32_t recycled = shard.store->InsertRow(vec, len);
  assert(recycled == local &&
         "LIFO free-list must hand the slot straight back");
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (slot.staleness >= slot.rebuild_threshold) continue;  // rebuilding
      if (Status s = slot.index->Insert(recycled); !s.ok()) {
        slot.staleness = slot.rebuild_threshold;
      }
    }
  }
  CommitMutationLocked(shard_index);
  return GlobalId(shard_index, recycled);
}

Status Collection::Delete(uint32_t id) {
  const size_t shard_index = ShardOfId(id);
  const uint32_t local = LocalOfId(id);
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  if (local >= shard.data->rows()) {
    return Status::NotFound("Delete: id " + std::to_string(id) +
                            " was never assigned");
  }
  DBLSH_RETURN_IF_ERROR(
      shard.store->EraseRow(local));  // NotFound when already gone
  if (!quantized_) {
    for (Slot& slot : shard.slots) {
      if (!slot.built || !slot.index->SupportsUpdates()) continue;
      if (Status s = slot.index->Erase(local); !s.ok()) {
        slot.staleness = slot.rebuild_threshold;  // self-heal via rebuild
      }
    }
  }
  CommitMutationLocked(shard_index);
  return Status::OK();
}

int Collection::RouteLocked(const Shard& shard,
                            const std::string& index_name,
                            Status* why) const {
  if (!index_name.empty()) {
    for (size_t i = 0; i < shard.slots.size(); ++i) {
      if (shard.slots[i].name != index_name) continue;
      if (!shard.slots[i].built) {
        *why = Status::InvalidArgument(
            "collection index \"" + index_name +
            "\" is not built yet (collection was empty when it was added)");
        return -1;
      }
      return static_cast<int>(i);
    }
    *why = Status::NotFound("collection has no index named \"" + index_name +
                            "\"");
    return -1;
  }
  // Best-capable routing: the freshest built slot, insertion order as the
  // tie-break (so callers list their preferred method first).
  int best = -1;
  for (size_t i = 0; i < shard.slots.size(); ++i) {
    if (!shard.slots[i].built) continue;
    if (best < 0 || shard.slots[i].staleness <
                        shard.slots[static_cast<size_t>(best)].staleness) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    *why = Status::InvalidArgument(
        shard.slots.empty() ? "collection has no indexes; AddIndex first"
                            : "collection has no built index yet; Upsert "
                              "data first");
  }
  return best;
}

Result<QueryResponse> Collection::SearchShard(size_t shard_index,
                                              const float* query,
                                              const QueryRequest& request,
                                              const std::string& index_name,
                                              bool* empty_shard) const {
  const Shard& shard = *shards_[shard_index];
  *empty_shard = false;
  std::shared_lock lock(shard.mutex);
  if (shard.slots.empty()) {
    return Status::InvalidArgument("collection has no indexes; AddIndex "
                                   "first");
  }
  if (!index_name.empty()) {
    // Name resolution first: an unknown name is NotFound even when this
    // shard happens to be empty (slot lists are identical across shards).
    const bool known = std::any_of(
        shard.slots.begin(), shard.slots.end(),
        [&](const Slot& slot) { return slot.name == index_name; });
    if (!known) {
      return Status::NotFound("collection has no index named \"" +
                              index_name + "\"");
    }
  }
  if (shard.data->live_rows() == 0) {
    *empty_shard = true;
    return QueryResponse{};  // nothing to contribute, not an error
  }
  Status why = Status::OK();
  const int route = RouteLocked(shard, index_name, &why);
  if (route < 0) return why;
  const Slot& slot = shard.slots[static_cast<size_t>(route)];

  // Quantized storage: run the index at an inflated k, then re-rank that
  // candidate list with the store's exact distance and keep the caller's
  // k. Truncating to k per shard keeps the fan-out merge exact — the
  // re-ranked list is this shard's true (store-exact) top-k.
  const size_t effective_k = quantized_ ? request.k * rerank_ : request.k;
  auto serve = [&](const QueryRequest& effective) -> QueryResponse {
    QueryResponse response;
    if (slot.index->SupportsConcurrentQueries()) {
      response = slot.index->Search(query, effective);
    } else {
      // Thread-compatible read path: readers of this slot serialize among
      // themselves (writers are already excluded by the shared lock).
      std::lock_guard slot_lock(*slot.query_mutex);
      response = slot.index->Search(query, effective);
    }
    if (quantized_) RerankLocked(shard, query, request.k, &response);
    return response;
  };

  if (request.filter.empty() && effective_k == request.k) {
    return serve(request);
  }
  // The shard's index speaks local ids; rewrite the caller's global-id
  // filter accordingly. Only the filter (and the quantized-storage k
  // inflation) changes — keep the scalar overrides in sync with
  // QueryRequest's field list.
  QueryRequest local;
  local.k = effective_k;
  local.candidate_budget = request.candidate_budget;
  local.r0 = request.r0;
  if (!request.filter.empty()) {
    const QueryFilter* global = &request.filter;  // outlives the fan-out
    local.filter = QueryFilter::Of([this, global, shard_index](uint32_t lid) {
      return global->Admits(GlobalId(shard_index, lid));
    });
  }
  return serve(local);
}

void Collection::RerankLocked(const Shard& shard, const float* query,
                              size_t k, QueryResponse* response) const {
  // Exact pass over the (inflated) candidate list: rescore with the raw
  // fp32 query against each row's stored codes — no query-quantization
  // error — then keep the best k under the same (dist, id) order the
  // TopKHeap uses, so ties resolve identically to an exact index.
  for (Neighbor& neighbor : response->neighbors) {
    neighbor.dist = std::sqrt(
        shard.store->ExactL2Squared(query, neighbor.id));
  }
  std::sort(response->neighbors.begin(), response->neighbors.end());
  if (response->neighbors.size() > k) response->neighbors.resize(k);
}

QueryResponse Collection::MergeShardResponses(
    std::vector<QueryResponse> responses, size_t k) const {
  QueryResponse merged;
  TopKHeap heap(k);
  for (size_t s = 0; s < responses.size(); ++s) {
    for (const Neighbor& neighbor : responses[s].neighbors) {
      // Exact merge: within a shard, local id order equals global id
      // order, so each shard's top-k (local tie-break) contains every
      // global top-k member of that shard; pushing with global ids
      // reproduces the single-shard (dist, id) tie-break exactly.
      heap.Push(neighbor.dist, GlobalId(s, neighbor.id));
    }
    merged.stats.candidates_verified += responses[s].stats.candidates_verified;
    merged.stats.points_accessed += responses[s].stats.points_accessed;
    merged.stats.rounds += responses[s].stats.rounds;
    merged.stats.window_queries += responses[s].stats.window_queries;
  }
  merged.neighbors = heap.TakeSorted();
  return merged;
}

Result<QueryResponse> Collection::Search(const float* query,
                                         const QueryRequest& request,
                                         const std::string& index_name) const {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    // Unsharded fast path: identical to the pre-shard Collection (plus the
    // inflate-and-re-rank pass when storage is quantized).
    const Shard& shard = *shards_[0];
    std::shared_lock lock(shard.mutex);
    Status why = Status::OK();
    const int route = RouteLocked(shard, index_name, &why);
    if (route < 0) return why;
    const Slot& slot = shard.slots[static_cast<size_t>(route)];
    QueryRequest effective = request;
    if (quantized_) effective.k = request.k * rerank_;
    QueryResponse response;
    if (slot.index->SupportsConcurrentQueries()) {
      response = slot.index->Search(query, effective);
    } else {
      std::lock_guard slot_lock(*slot.query_mutex);
      response = slot.index->Search(query, effective);
    }
    if (quantized_) RerankLocked(shard, query, request.k, &response);
    return response;
  }

  // Fan out one k-NN task per shard and merge.
  std::vector<QueryResponse> responses(num_shards);
  std::vector<Status> statuses(num_shards, Status::OK());
  std::vector<uint8_t> empty(num_shards, 0);
  executor_->ParallelFor(num_shards, [&](size_t s) {
    bool empty_shard = false;
    auto got = SearchShard(s, query, request, index_name, &empty_shard);
    if (got.ok()) {
      responses[s] = std::move(got).value();
    } else {
      statuses[s] = got.status();
    }
    empty[s] = empty_shard ? 1 : 0;
  });
  size_t empties = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (!statuses[s].ok()) return statuses[s];
    empties += empty[s];
  }
  if (empties == num_shards) {
    return Status::InvalidArgument(
        "collection has no built index yet; Upsert data first");
  }
  return MergeShardResponses(std::move(responses), request.k);
}

Result<std::vector<QueryResponse>> Collection::SearchBatch(
    const FloatMatrix& queries, const QueryRequest& request,
    const std::string& index_name, size_t num_threads) const {
  if (!queries.empty() && queries.cols() != dim_) {
    return Status::InvalidArgument(
        "SearchBatch: queries have dimension " +
        std::to_string(queries.cols()) + ", collection serves " +
        std::to_string(dim_));
  }
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    const Shard& shard = *shards_[0];
    std::shared_lock lock(shard.mutex);
    Status why = Status::OK();
    const int route = RouteLocked(shard, index_name, &why);
    if (route < 0) return why;
    const Slot& slot = shard.slots[static_cast<size_t>(route)];
    QueryRequest effective = request;
    if (quantized_) effective.k = request.k * rerank_;
    auto got = [&]() -> Result<std::vector<QueryResponse>> {
      if (slot.index->SupportsConcurrentQueries()) {
        return slot.index->QueryBatch(queries, effective, num_threads);
      }
      std::lock_guard slot_lock(*slot.query_mutex);
      return slot.index->QueryBatch(queries, effective, num_threads);
    }();
    if (!got.ok() || !quantized_) return got;
    std::vector<QueryResponse> responses = std::move(got).value();
    for (size_t q = 0; q < responses.size(); ++q) {
      RerankLocked(shard, queries.row(q), request.k, &responses[q]);
    }
    return responses;
  }

  const size_t q_count = queries.rows();
  if (q_count == 0) return std::vector<QueryResponse>{};
  if (num_threads == 0) num_threads = exec::HardwareConcurrency();
  // Grid fan-out: every (query, shard) cell is an independent task, so a
  // slow shard never stalls the other shards' progress on later queries.
  std::vector<QueryResponse> cells(q_count * num_shards);
  std::vector<Status> statuses(q_count * num_shards, Status::OK());
  std::vector<uint8_t> empty(q_count * num_shards, 0);
  executor_->ParallelFor(
      q_count * num_shards,
      [&](size_t cell) {
        const size_t q = cell / num_shards;
        const size_t s = cell % num_shards;
        bool empty_shard = false;
        auto got =
            SearchShard(s, queries.row(q), request, index_name, &empty_shard);
        if (got.ok()) {
          cells[cell] = std::move(got).value();
        } else {
          statuses[cell] = got.status();
        }
        empty[cell] = empty_shard ? 1 : 0;
      },
      num_threads);

  std::vector<QueryResponse> out;
  out.reserve(q_count);
  for (size_t q = 0; q < q_count; ++q) {
    std::vector<QueryResponse> row;
    row.reserve(num_shards);
    size_t empties = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t cell = q * num_shards + s;
      if (!statuses[cell].ok()) return statuses[cell];
      empties += empty[cell];
      row.push_back(std::move(cells[cell]));
    }
    if (empties == num_shards) {
      return Status::InvalidArgument(
          "collection has no built index yet; Upsert data first");
    }
    out.push_back(MergeShardResponses(std::move(row), request.k));
  }
  return out;
}

size_t Collection::size() const {
  size_t live = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    live += shard->data->live_rows();
  }
  return live;
}

size_t Collection::dim() const { return dim_; }

uint64_t Collection::epoch() const {
  return epoch_.load(std::memory_order_acquire);
}

std::vector<CollectionIndexInfo> Collection::Indexes() const {
  // Shared locks over every shard, ascending (consistent with AddIndex).
  std::vector<std::shared_lock<WriterPriorityMutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  std::vector<CollectionIndexInfo> infos;
  infos.reserve(shards_[0]->slots.size());
  for (size_t i = 0; i < shards_[0]->slots.size(); ++i) {
    const Slot& first = shards_[0]->slots[i];
    CollectionIndexInfo info;
    info.name = first.name;
    info.method = first.index->Name();
    info.supports_updates = first.index->SupportsUpdates();
    info.concurrent_queries = first.index->SupportsConcurrentQueries();
    info.rebuild_threshold = first.rebuild_threshold;
    // Built aggregate: some shard's instance serves, and no shard that has
    // content is left unbuilt. (A slot over an empty shard serves that
    // shard's zero rows exactly; it does not count against the aggregate.)
    bool any_built = false;
    bool all_nonempty_built = true;
    for (const auto& shard : shards_) {
      const Slot& slot = shard->slots[i];
      if (slot.built) any_built = true;
      if (!slot.built && shard->data->live_rows() > 0) {
        all_nonempty_built = false;
      }
      info.staleness = std::max(info.staleness, slot.staleness);
      info.rebuilds += slot.rebuilds;
      info.rebuild_inflight = info.rebuild_inflight || slot.rebuild_scheduled;
      if (info.build_error.empty()) info.build_error = slot.build_error;
    }
    info.built = any_built && all_nonempty_built;
    infos.push_back(std::move(info));
  }
  return infos;
}

const AnnIndex* Collection::GetIndex(const std::string& name,
                                     size_t shard_index) const {
  if (shard_index >= shards_.size()) return nullptr;
  const Shard& shard = *shards_[shard_index];
  std::shared_lock lock(shard.mutex);
  for (const Slot& slot : shard.slots) {
    if (slot.name == name) return slot.index.get();
  }
  return nullptr;
}

FloatMatrix Collection::Snapshot() const {
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::shared_lock lock(shards_[0]->mutex);
    // DecodedCopy: the byte-identical matrix copy for fp32, the store's
    // fp32 reconstruction (same ids/tombstones) for quantized backends.
    return shards_[0]->store->DecodedCopy();
  }
  // Consistent cut: shared locks over every shard while re-assembling the
  // global id space (mutations are single-shard, so this is the same
  // guarantee a fan-out search sees, made simultaneous).
  std::vector<std::shared_lock<WriterPriorityMutex>> locks;
  locks.reserve(num_shards);
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  size_t rows = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t shard_rows = shards_[s]->data->rows();
    if (shard_rows > 0) {
      rows = std::max(rows, (shard_rows - 1) * num_shards + s + 1);
    }
  }
  FloatMatrix out(rows, dim_);
  for (size_t g = 0; g < rows; ++g) {
    const Shard& shard = *shards_[g % num_shards];
    const uint32_t local = LocalOfId(static_cast<uint32_t>(g));
    if (local < shard.data->rows()) {
      // DecodeRow instead of a raw row copy: quantized stores hold codes,
      // not fp32 payload (for fp32 this is the same copy as before).
      shard.store->DecodeRow(local, out.mutable_row(g));
    }
  }
  for (size_t g = 0; g < rows; ++g) {
    const Shard& shard = *shards_[g % num_shards];
    const uint32_t local = LocalOfId(static_cast<uint32_t>(g));
    // Ids past a shard's frontier were never assigned; report them (and
    // genuine tombstones) as erased so oracle scans skip them.
    if (local >= shard.data->rows() || shard.data->IsDeleted(local)) {
      Status erased = out.EraseRow(g);
      assert(erased.ok());
      (void)erased;
    }
  }
  return out;
}

CollectionStorageInfo Collection::Storage() const {
  // Shared locks over every shard, ascending (consistent with Indexes()).
  std::vector<std::shared_lock<WriterPriorityMutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);

  CollectionStorageInfo info;
  info.kind = StorageKindName(storage_);
  info.bytes_per_vector = shards_[0]->store->bytes_per_vector();
  info.rerank = quantized_ ? rerank_ : 0;
  info.shard_resident_bytes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const size_t bytes = shard->store->resident_bytes();
    info.shard_resident_bytes.push_back(bytes);
    info.resident_bytes += bytes;
  }
  return info;
}

}  // namespace dblsh
